#!/usr/bin/env python
"""Game playing with parallel game-tree search.

Two demonstrations on real games, both through the node-expansion
model (the tree is *generated* by the search, as in a game program):

1. Tic-tac-toe: pick the best move from a mid-game position by running
   N-Parallel alpha-beta (width 1) on each successor, and compare the
   expansion counts against N-Sequential alpha-beta.
2. Nim: decide the winner of several positions with the Boolean
   win/loss tree (a NAND tree) and check against Sprague-Grundy theory.
"""

from repro.core.nodeexpansion import (
    n_parallel_alpha_beta,
    n_parallel_solve,
    n_sequential_alpha_beta,
    n_sequential_solve,
)
from repro.games import Nim, TicTacToe, game_tree, win_loss_tree


def best_move_tictactoe() -> None:
    game = TicTacToe()
    pos = game.initial_position()
    for move in (4, 0):  # X center, O corner
        pos = game.apply(pos, move)
    print("position under analysis:")
    print(game.pretty(pos))
    print()

    # Each successor has O to move; game_tree roots it with MIN
    # polarity, and values stay in the absolute convention (X = +1),
    # so X simply picks the maximum over its replies.
    total_seq = total_par = 0
    scored = []
    for move in game.moves(pos):
        child = game.apply(pos, move)
        tree = game_tree(game, child)
        seq = n_sequential_alpha_beta(tree)
        par = n_parallel_alpha_beta(tree, width=1)
        assert seq.value == par.value
        scored.append((seq.value, move))
        total_seq += seq.num_steps
        total_par += par.num_steps
    value, move = max(scored)
    print(f"best move for X: square {move} (game value {value:+.0f})")
    print(
        f"search cost over all replies: sequential {total_seq} steps, "
        f"width-1 parallel {total_par} steps "
        f"({total_seq / total_par:.2f}x speed-up)\n"
    )


def nim_analysis() -> None:
    print("Nim (normal play): win/loss via NAND game trees")
    header = f"{'heaps':>12} {'take<=':>7} {'tree says':>10} {'grundy':>7} {'S* steps':>9} {'P* steps':>9}"
    print(header)
    print("-" * len(header))
    for heaps, limit in [
        ((3, 5), None),
        ((2, 2), None),
        ((7,), 3),
        ((8,), 3),
        ((1, 2, 3), None),
        ((1, 2, 4), None),
    ]:
        game = Nim(heaps, max_take=limit)
        tree = win_loss_tree(game)
        seq = n_sequential_solve(tree)
        tree2 = win_loss_tree(game)
        par = n_parallel_solve(tree2, width=1)
        assert bool(seq.value) == bool(par.value) == game.first_player_wins()
        says = "first wins" if seq.value else "second wins"
        print(
            f"{str(heaps):>12} {str(limit or '-'):>7} {says:>10} "
            f"{game.grundy(game.initial_position()):>7} "
            f"{seq.num_steps:>9} {par.num_steps:>9}"
        )


def main() -> None:
    best_move_tictactoe()
    nim_analysis()


if __name__ == "__main__":
    main()
