#!/usr/bin/env python
"""Theorem 1 in action: speed-up of Parallel SOLVE as the tree grows.

Sweeps the height of uniform binary NOR trees with golden-ratio i.i.d.
leaves and prints, per height, the mean sequential work S(T), the mean
width-1 parallel step count P(T), the speed-up S/P, the processor
count (always n + 1) and the normalised constant c = speed-up/(n+1).
Theorem 1 predicts c to settle at a positive constant — watch the last
column stop shrinking.
"""

import numpy as np

from repro import parallel_solve, sequential_solve
from repro.analysis import SpeedupSample, fit_speedup_linearity, measure_speedup
from repro.trees.generators import iid_boolean
from repro.trees.generators.iid import level_invariant_bias


def main() -> None:
    trials = 10
    header = (
        f"{'n':>4} {'procs':>6} {'mean S(T)':>10} {'mean P(T)':>10} "
        f"{'speed-up':>9} {'c = S/P/(n+1)':>14}"
    )
    bias = level_invariant_bias(2)
    print("uniform binary NOR, i.i.d. leaves at the level-invariant bias "
          f"p* = {bias:.4f}\n")
    print(header)
    print("-" * len(header))
    fit_samples = []
    for n in range(6, 17, 2):
        samples = [
            measure_speedup(
                iid_boolean(2, n, bias, seed=1000 * n + t),
                sequential_solve,
                lambda tree: parallel_solve(tree, width=1),
            )
            for t in range(trials)
        ]
        mean_s = np.mean([s.sequential_steps for s in samples])
        mean_p = np.mean([s.parallel_steps for s in samples])
        speedup = mean_s / mean_p
        procs = max(s.processors for s in samples)
        fit_samples.append(
            SpeedupSample(
                height=n,
                sequential_steps=round(mean_s),
                parallel_steps=round(mean_p),
                parallel_work=round(
                    float(np.mean([s.parallel_work for s in samples]))
                ),
                processors=procs,
            )
        )
        print(
            f"{n:>4} {procs:>6} {mean_s:>10.0f} {mean_p:>10.1f} "
            f"{speedup:>9.2f} {speedup / (n + 1):>14.3f}"
        )
    fit = fit_speedup_linearity(fit_samples)
    print(
        f"\nlinear fit: speed-up ~ {fit.slope:.3f} * (n+1) "
        f"{fit.intercept:+.2f}   (R^2 = {fit.r_squared:.3f})"
    )


if __name__ == "__main__":
    main()
