#!/usr/bin/env python
"""Real wall-clock speed-up when the leaf oracle is expensive.

Everything else in this repository measures *model* steps (the paper's
own methodology, GIL-proof by construction).  This example shows the
bridge to actual parallel hardware: when evaluating a leaf costs real
CPU time — here an iterated-hash proof-of-work stands in for a
position evaluator — the width-1 batches are embarrassingly parallel,
and running them on a process pool yields genuine wall-clock speed-up
in ordinary CPython.
"""

import hashlib
import os
from concurrent.futures import ProcessPoolExecutor

from repro.core import WidthPolicy
from repro.models.oracle_runner import run_with_oracle
from repro.trees.generators import iid_boolean
from repro.trees.generators.iid import level_invariant_bias

#: iterations of the stand-in "expensive evaluator".
WORK_FACTOR = 12_000


def expensive_oracle(seed_value: int) -> int:
    """Burn CPU deterministically, then emit a bit.

    The bit equals the stored leaf value, so both runs compute the
    same tree; the hashing is the stand-in for real evaluation cost.
    """
    digest = str(seed_value).encode()
    for _ in range(WORK_FACTOR):
        digest = hashlib.sha256(digest).digest()
    return seed_value % 2


def main() -> None:
    n = 10
    tree = iid_boolean(2, n, level_invariant_bias(2), seed=7)

    def payload(t, leaf):
        # 2*value + leaf parity: value recoverable as payload % 2.
        return int(t.leaf_value(leaf))

    cores = os.cpu_count() or 1
    print(f"binary NOR tree, height {n}; oracle ~{WORK_FACTOR} hashes "
          f"per leaf; {cores} CPU core(s) available")
    print("expected wall-clock speed-up ~ min(cores, mean batch "
          "size); on a single-core machine the two runs tie.\n")

    serial = run_with_oracle(
        tree, expensive_oracle, WidthPolicy(1), None, payload=payload
    )
    print(
        f"serial batches:   {serial.total_seconds:6.2f}s "
        f"({serial.total_work} leaf evaluations, "
        f"{serial.num_steps} steps)"
    )

    with ProcessPoolExecutor() as pool:
        # Warm the pool so fork/spawn cost is not billed to the run.
        list(pool.map(expensive_oracle, [0, 1]))
        parallel = run_with_oracle(
            tree, expensive_oracle, WidthPolicy(1), pool,
            payload=payload,
        )
    print(
        f"process-pool batches: {parallel.total_seconds:6.2f}s "
        f"({parallel.total_work} leaf evaluations, "
        f"{parallel.num_steps} steps)"
    )
    assert serial.value == parallel.value
    print(
        f"\nwall-clock speed-up: "
        f"{serial.total_seconds / parallel.total_seconds:.2f}x "
        f"(model schedule identical: same steps, same batches)"
    )


if __name__ == "__main__":
    main()
