#!/usr/bin/env python
"""Quickstart: evaluate one AND/OR tree three ways.

Builds a uniform binary NOR tree with i.i.d. leaves at the golden-ratio
bias (the "hardest" i.i.d. setting, Section 6), then runs the paper's
three algorithms and prints the model costs side by side:

* Sequential SOLVE      — one leaf per step (the baseline S(T));
* Team SOLVE (p = 16)   — leftmost-p naive parallelism, ~sqrt(p) gain;
* Parallel SOLVE (w = 1) — the paper's algorithm, ~n+1 processors and
  a speed-up linear in n.
"""

from repro import parallel_solve, sequential_solve, team_solve
from repro.trees.generators import golden_ratio_instance


def main() -> None:
    height = 14
    tree = golden_ratio_instance(height, seed=2026)
    print(f"uniform binary NOR tree, height n = {height}, "
          f"{tree.num_leaves()} leaves\n")

    seq = sequential_solve(tree)
    team = team_solve(tree, processors=16)
    par = parallel_solve(tree, width=1)
    assert seq.value == team.value == par.value

    print(f"root value: {seq.value}\n")
    header = f"{'algorithm':>24} {'steps':>8} {'work':>8} {'procs':>6} {'speed-up':>9}"
    print(header)
    print("-" * len(header))
    for name, res in [
        ("Sequential SOLVE", seq),
        ("Team SOLVE (p=16)", team),
        ("Parallel SOLVE (w=1)", par),
    ]:
        speedup = seq.num_steps / res.num_steps
        print(
            f"{name:>24} {res.num_steps:>8} {res.total_work:>8} "
            f"{res.processors:>6} {speedup:>9.2f}"
        )
    print(
        f"\nParallel SOLVE used {par.processors} processors "
        f"(paper: n + 1 = {height + 1}) and achieved a "
        f"{seq.num_steps / par.num_steps:.1f}x speed-up."
    )


if __name__ == "__main__":
    main()
