#!/usr/bin/env python
"""Parallel theorem proving by AND/OR tree evaluation.

Backward-chaining deduction over a propositional Horn knowledge base is
exactly AND/OR tree evaluation (the paper's second motivating
application).  This example builds a layered synthetic knowledge base,
proves a set of goals with Sequential SOLVE (= classical left-to-right
SLD resolution) and with Parallel SOLVE of width 1, and reports the
speed-up of the parallel prover.
"""

import numpy as np

from repro.core import parallel_solve, sequential_solve
from repro.logic import KnowledgeBase, goal_tree


def layered_kb(
    layers: int, atoms_per_layer: int, rules_per_atom: int, seed: int
) -> KnowledgeBase:
    """A KB whose layer-k atoms depend on layer-(k-1) atoms.

    Layer 0 atoms are facts with probability 1/2; proving a top-layer
    atom explores a deep AND/OR tree.
    """
    rng = np.random.default_rng(seed)
    kb = KnowledgeBase()
    for a in range(atoms_per_layer):
        if rng.random() < 0.5:
            kb.add_fact(f"l0_{a}")
    for layer in range(1, layers):
        for a in range(atoms_per_layer):
            for _ in range(rules_per_atom):
                body_size = int(rng.integers(1, 4))
                body = [
                    f"l{layer - 1}_{int(rng.integers(atoms_per_layer))}"
                    for _ in range(body_size)
                ]
                kb.add_rule(f"l{layer}_{a}", body)
    return kb


def main() -> None:
    kb = layered_kb(layers=7, atoms_per_layer=8, rules_per_atom=3, seed=11)
    closure = kb.forward_closure()
    print(
        f"knowledge base: {len(kb.rules)} rules, {len(kb.facts)} facts, "
        f"{len(closure)} derivable atoms\n"
    )

    header = (
        f"{'goal':>8} {'provable':>9} {'SLD leaves':>11} "
        f"{'parallel steps':>15} {'speed-up':>9}"
    )
    print(header)
    print("-" * len(header))
    for a in range(8):
        goal = f"l6_{a}"
        seq = sequential_solve(goal_tree(kb, goal))
        par = parallel_solve(goal_tree(kb, goal), width=1)
        assert bool(seq.value) == bool(par.value) == (goal in closure)
        print(
            f"{goal:>8} {('yes' if seq.value else 'no'):>9} "
            f"{seq.num_steps:>11} {par.num_steps:>15} "
            f"{seq.num_steps / par.num_steps:>9.2f}"
        )


if __name__ == "__main__":
    main()
