#!/usr/bin/env python
"""Depth-limited game play: Connect-3 on a 4x4 board.

The "wide-and-shallow" regime the paper's Section 8 contrasts with its
tall-tree analysis: branching ~4, search depth capped at 6 plies with
a heuristic at the frontier.  We play a full game where both sides
choose moves by node-expansion alpha-beta, report the per-move search
cost of the sequential vs the width-1 parallel searcher, and render
the final board.
"""

from repro.core.nodeexpansion import (
    n_parallel_alpha_beta,
    n_sequential_alpha_beta,
)
from repro.games import ConnectK, game_tree


def choose_move(game, position, depth):
    """Best move for the player to move, with both searchers' costs."""
    mover = position[1]
    best = None
    seq_cost = par_cost = 0
    for move in game.moves(position):
        child = game.apply(position, move)
        seq = n_sequential_alpha_beta(game_tree(game, child,
                                                max_depth=depth))
        par = n_parallel_alpha_beta(game_tree(game, child,
                                              max_depth=depth), 1)
        assert abs(seq.value - par.value) < 1e-12
        seq_cost += seq.num_steps
        par_cost += par.num_steps
        # Values are from X's perspective; O minimises.
        score = seq.value if mover == 1 else -seq.value
        if best is None or score > best[0]:
            best = (score, move)
    return best[1], seq_cost, par_cost


def main() -> None:
    game = ConnectK(4, 4, 3)
    pos = game.initial_position()
    ply = 0
    total_seq = total_par = 0
    print("Connect-3 on 4x4, both players searching to depth 6\n")
    print(f"{'ply':>4} {'player':>7} {'move':>5} {'S* steps':>9} "
          f"{'P* steps':>9} {'speed-up':>9}")
    while game.moves(pos) and ply < 16:
        move, seq_cost, par_cost = choose_move(game, pos, depth=6)
        print(
            f"{ply:>4} {'X' if pos[1] == 1 else 'O':>7} {move:>5} "
            f"{seq_cost:>9} {par_cost:>9} {seq_cost / par_cost:>9.2f}"
        )
        total_seq += seq_cost
        total_par += par_cost
        pos = game.apply(pos, move)
        ply += 1
    print("\nfinal position:")
    print(ConnectK.pretty(pos))
    outcome = game.terminal_value(pos)
    verdict = {1.0: "X wins", -1.0: "O wins", 0.0: "draw"}[outcome]
    print(f"\nresult: {verdict}")
    print(
        f"total search: sequential {total_seq} expansions, width-1 "
        f"parallel {total_par} steps ({total_seq / total_par:.2f}x)"
    )


if __name__ == "__main__":
    main()
