#!/usr/bin/env python
"""The Section 7 machine: N-Parallel SOLVE (w=1) on message passing.

Runs the discrete-event simulation of the paper's implementation —
one processor per level, six message types, pre-emption instead of
abort messages — on a binary NOR instance, and compares:

* the idealized node-expansion costs (S*, P* from Section 5),
* the machine's wall-clock ticks with one processor per level,
* the machine's ticks with a fixed processor budget (zone multiplexing).
"""

from repro.core.nodeexpansion import n_parallel_solve, n_sequential_solve
from repro.simulator import simulate
from repro.trees.generators import iid_boolean
from repro.trees.generators.iid import level_invariant_bias


def main() -> None:
    n = 13
    tree = iid_boolean(2, n, level_invariant_bias(2), seed=77)
    print(f"binary NOR tree, height {n}, {tree.num_leaves()} leaves\n")

    seq = n_sequential_solve(tree)
    par = n_parallel_solve(tree, width=1)
    assert seq.value == par.value
    print(f"idealized model:   S* = {seq.num_steps} expansions, "
          f"P* = {par.num_steps} steps "
          f"({seq.num_steps / par.num_steps:.2f}x)\n")

    full = simulate(tree)
    assert full.value == seq.value
    print(
        f"machine, 1 proc/level ({n + 1} procs): {full.ticks} ticks, "
        f"{full.expansions} expansions, {full.messages} messages\n"
        f"  speed-up over sequential: {seq.num_steps / full.ticks:.2f}x\n"
        f"  overhead vs idealized P*: {full.ticks / par.num_steps:.2f}x\n"
    )

    print("fixed processor budgets (zone multiplexing):")
    print(f"{'p':>4} {'ticks':>7} {'speed-up':>9}")
    for p in (1, 2, 4, 7, 14):
        res = simulate(tree, physical_processors=p)
        assert res.value == seq.value
        print(f"{p:>4} {res.ticks:>7} {seq.num_steps / res.ticks:>9.2f}")


if __name__ == "__main__":
    main()
