#!/usr/bin/env python
"""Walkthrough of the Proposition 5 reproduction finding.

Proposition 5 of the paper (stated without proof) claims that Parallel
alpha-beta is never faster on an instance T than on its skeleton H~_T.
This script rebuilds the concrete counterexample the reproduction
found, renders both trees, replays the parallel runs step by step and
explains the mechanism.
"""

from repro.analysis import minmax_skeleton_of
from repro.core.alphabeta import (
    parallel_alpha_beta,
    sequential_alpha_beta,
)
from repro.trees.generators import iid_minmax
from repro.trees.render import render_schedule, render_tree


def main() -> None:
    tree = iid_minmax(2, 4, seed=501)
    skeleton = minmax_skeleton_of(tree)

    print("instance T  (uniform binary MIN/MAX, height 4, seed 501):")
    print(render_tree(tree, max_depth=3))
    print("\nskeleton H~_T (ancestors of the leaves Sequential "
          "alpha-beta reads):")
    print(render_tree(skeleton))

    seq_t = sequential_alpha_beta(tree)
    seq_h = sequential_alpha_beta(skeleton)
    print(f"\nSequential alpha-beta: {seq_t.num_steps} steps on T, "
          f"{seq_h.num_steps} on H~ (identical, as Section 3 argues).")

    par_t = parallel_alpha_beta(tree, 1)
    par_h = parallel_alpha_beta(skeleton, 1)
    print("\nwidth-1 Parallel alpha-beta:")
    print(render_schedule(par_t.trace, label="  on T:"))
    print(render_schedule(par_h.trace, label="  on H~_T:"))

    print(f"""
P~(T) = {par_t.num_steps} > P~(H~_T) = {par_h.num_steps} — the literal
Proposition 5 inequality fails.  Mechanism: a leaf outside H~ (0.726)
is pruned *sequentially* using the finished left subtree's value as an
alpha-bound; under parallel order that bound is not yet available, the
leaf's MIN-parent stays unfinished, and it inflates the pruning number
of the leaf the run actually needs (0.46) by one — delaying it a step.

The gap is a small constant ({par_t.num_steps}/{par_h.num_steps} =
{par_t.num_steps / par_h.num_steps:.2f}), so Theorem 3's linear
speed-up is unaffected: its proof only needs P~(T) = O(P~(H~_T)).
""")


if __name__ == "__main__":
    main()
