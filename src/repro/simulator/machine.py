"""The message-passing multiprocessor (Section 7).

A machine simulates the implementation of N-Parallel SOLVE of width 1
on a binary NOR tree:

* one virtual processor per tree level (level d handles invocations
  whose root node is at level d);
* any processor can send a message to any other in unit time —
  messages sent at tick t are delivered at tick t + 1;
* per tick, a processor performs at most one unit of work (one node
  expansion, or one step of a case-two path traversal with its message
  sends); message handling and gate bookkeeping are free;
* optionally, only ``physical_processors`` physical processors exist:
  levels are divided into zones of that many consecutive levels,
  physical processor i serves level i of every zone and multiplexes
  between them round-robin (the fixed-p adaptation the paper sketches).

The run terminates when processor 0 reports val(root) to the machine;
at that point a halt broadcast would stop all processors, which the
simulation models by simply ending.

Fault injection and recovery
----------------------------
The paper assumes a perfectly reliable network and perfectly reliable
processors.  Passing a seeded :class:`repro.faults.FaultPlan` relaxes
both assumptions: the machine consults the plan at dispatch time
(drop / duplicate / delay a message), at delivery time (reorder one
tick's arrivals) and once per level per tick (crash or stall a
processor).  Three recovery mechanisms keep faulty runs convergent to
the fault-free ``val(root)``:

* **retransmission** — every ``val`` message is acknowledged by its
  receiver; the sender re-sends unacknowledged values on a timer
  (sequence numbers make duplicates harmless, values are idempotent
  ground truth);
* **heartbeat supervision** — busy processors emit heartbeats; the
  machine tracks the most recent P-invocation dispatched to each
  level and re-issues it when the level has been silent longer than
  ``heartbeat_timeout`` ticks (covering dropped invocations and
  crashed processors alike);
* **checkpointed restart** — a crashed processor loses its in-flight
  tasks and unacknowledged values but recovers from its per-level
  checkpoint of settled ``val(v)`` facts (``val_memory``), so
  re-issued invocations replay known child values instead of
  recomputing whole subtrees.

With ``fault_plan=None`` (the default) none of this machinery runs and
the simulation is bit-identical to the fault-free machine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ..errors import SimulationError
from ..telemetry import (
    ActivityCoalescer,
    Recorder,
    live,
    record_fault_stats,
)
from ..trees.base import GameTree, NodeId
from ..types import TreeKind
from .messages import MACHINE_LEVEL, SUPERVISOR_LEVEL, Message, MsgKind
from .processor import LevelProcessor

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..faults.plan import FaultPlan


@dataclass
class FaultStats:
    """Fault and recovery accounting for one machine run.

    ``None`` on fault-free runs; under a :class:`FaultPlan` every
    injected fault and every recovery action is counted here, so the
    overhead of a faulty run (extra ticks, extra messages) can be
    attributed to its causes.
    """

    #: rate- and schedule-driven faults actually applied.
    dropped: int = 0
    duplicated: int = 0
    delayed: int = 0
    reordered: int = 0
    crashes: int = 0
    stalls: int = 0
    #: messages that arrived at a crashed processor and were lost.
    lost_in_outage: int = 0
    #: recovery traffic.
    retransmissions: int = 0
    reissues: int = 0
    heartbeats: int = 0
    acks: int = 0

    @property
    def injected(self) -> int:
        """Total faults applied (recovery traffic not included)."""
        return (self.dropped + self.duplicated + self.delayed
                + self.reordered + self.crashes + self.stalls)


@dataclass
class SimulationResult:
    """Outcome and cost profile of one machine run."""

    value: int
    ticks: int
    expansions: int
    messages: int
    #: expansions performed at each tick (the machine's "parallel degree").
    degree_by_tick: List[int] = field(default_factory=list)
    #: delivered messages as (tick, Message), when event tracing is on.
    events: Optional[List[Tuple[int, Message]]] = None
    #: fault/recovery accounting; ``None`` for fault-free runs.
    fault_stats: Optional[FaultStats] = None

    @property
    def max_degree(self) -> int:
        return max(self.degree_by_tick) if self.degree_by_tick else 0


def render_event_log(result: SimulationResult,
                     max_lines: Optional[int] = None) -> str:
    """Human-readable delivery log of a traced run.

    ``max_lines=None`` renders every delivery; ``max_lines=0`` renders
    only the summary footer; negative values are rejected (a negative
    slice would silently drop the *newest* events, which is never what
    a caller debugging a run wants).
    """
    if result.events is None:
        return "(run without trace_events=True)"
    if max_lines is not None and max_lines < 0:
        raise ValueError(f"max_lines must be >= 0 or None, got {max_lines}")
    if max_lines == 0:
        return f"... {len(result.events)} more"
    lines = []
    for tick, msg in result.events[:max_lines]:
        lines.append(f"t={tick:>4}  L{msg.dest_level:>2}  {msg!r}")
    if max_lines is not None and len(result.events) > max_lines:
        lines.append(f"... {len(result.events) - max_lines} more")
    return "\n".join(lines)


@dataclass
class _PendingInvocation:
    """Supervisor record: newest P-invocation dispatched to a level."""

    kind_name: str
    node: NodeId
    since: int


class Machine:
    """Discrete-event simulator of the Section 7 implementation."""

    def __init__(
        self,
        tree: GameTree,
        physical_processors: Optional[int] = None,
        work_priority: str = "p_first",
        trace_events: bool = False,
        fault_plan: Optional["FaultPlan"] = None,
        heartbeat_interval: int = 3,
        heartbeat_timeout: int = 12,
        retransmit_timeout: int = 5,
        recorder: Optional[Recorder] = None,
    ):
        if tree.kind is not TreeKind.BOOLEAN:
            raise SimulationError("the implementation evaluates NOR trees")
        if work_priority not in ("p_first", "s_first"):
            raise SimulationError(
                "work_priority must be 'p_first' or 's_first'"
            )
        if heartbeat_interval < 1 or retransmit_timeout < 2:
            raise SimulationError(
                "heartbeat_interval must be >= 1 and "
                "retransmit_timeout >= 2"
            )
        if heartbeat_timeout <= heartbeat_interval:
            raise SimulationError(
                "heartbeat_timeout must exceed heartbeat_interval"
            )
        self.work_priority = work_priority
        self.tree = tree
        self.num_levels = tree.height() + 1
        if physical_processors is not None and physical_processors < 1:
            raise SimulationError("need at least one physical processor")
        self.physical = physical_processors
        self.faults = fault_plan
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        self.retransmit_timeout = retransmit_timeout
        self.fault_stats: Optional[FaultStats] = (
            FaultStats() if fault_plan is not None else None
        )
        self.procs: Dict[int, LevelProcessor] = {
            d: LevelProcessor(self, d) for d in range(self.num_levels)
        }
        self._mailbox: Dict[int, List[Message]] = {}
        self._seq = 0
        self._tick = 0
        self._expansions = 0
        self._expansions_this_tick = 0
        self._messages = 0
        self._root_value: Optional[int] = None
        self._rr: Dict[int, int] = {}  # round-robin cursor per phys proc
        self._events: Optional[List[Tuple[int, Message]]] = (
            [] if trace_events else None
        )
        # Supervisor state (fault mode only).
        self._sup_pending: Dict[int, _PendingInvocation] = {}
        self._last_heard: Dict[int, int] = {}
        # Telemetry (one busy/idle coalescer per Section-7 level).
        self._rec = live(recorder)
        self._coalescers: Dict[int, ActivityCoalescer] = (
            {
                d: ActivityCoalescer(self._rec, f"level-{d}")
                for d in range(self.num_levels)
            }
            if self._rec is not None
            else {}
        )

    # -- messaging ---------------------------------------------------------
    def send(self, kind: MsgKind, node: NodeId, dest_level: int,
             value: Optional[int] = None) -> None:
        self._seq += 1
        self._messages += 1
        if self._rec is not None:
            self._rec.count(f"machine.msg.{kind.name}")
        msg = Message(kind=kind, node=node, dest_level=dest_level,
                      seq=self._seq, sent_at=self._tick, value=value)
        if self.faults is None:
            self._mailbox.setdefault(self._tick + 1, []).append(msg)
            return
        self._supervise_send(msg)
        stats = self.fault_stats
        assert stats is not None
        fault = self.faults.message_fault(msg.seq, kind.name, self._tick)
        if fault is None:
            self._mailbox.setdefault(self._tick + 1, []).append(msg)
            return
        fault_kind, extra = fault
        if fault_kind == "drop":
            stats.dropped += 1
        elif fault_kind == "duplicate":
            stats.duplicated += 1
            self._mailbox.setdefault(self._tick + 1, []).append(msg)
            self._mailbox.setdefault(self._tick + 2, []).append(msg)
        elif fault_kind == "delay":
            stats.delayed += 1
            self._mailbox.setdefault(
                self._tick + 1 + max(1, extra), []
            ).append(msg)
        else:  # pragma: no cover - defensive
            raise SimulationError(f"unknown message fault {fault_kind!r}")

    def count_expansion(self, node: NodeId) -> None:
        self._expansions += 1
        self._expansions_this_tick += 1

    # -- supervisor (fault mode only) --------------------------------------
    def _supervise_send(self, msg: Message) -> None:
        """Track the newest P-invocation dispatched to each level.

        Only P-invocations are supervised: the pre-emption rule makes
        the newest one the only computation whose value is still
        needed, and every lost S-SOLVE is re-demanded through the
        P-cascade (a ``val(w) = 0`` upgrades the sibling search to
        P-SOLVE*), so supervising P alone suffices for liveness.
        """
        if msg.dest_level >= 0 and msg.kind in (
            MsgKind.P_SOLVE, MsgKind.P_SOLVE2, MsgKind.P_SOLVE3
        ):
            self._sup_pending[msg.dest_level] = _PendingInvocation(
                kind_name=msg.kind.name, node=msg.node, since=self._tick
            )

    def _observe_delivery(self, msg: Message) -> None:
        """Credit liveness and settle pending invocations on delivery.

        Called only for messages actually handed to an *up* processor
        (or the machine itself): a value swallowed by a crashed or
        stalled receiver must not clear the pending record, otherwise
        a sender crash that also wipes the retransmission state would
        leave nobody responsible for re-producing the value.
        """
        if msg.kind is not MsgKind.VAL:
            return
        sender = msg.dest_level + 1
        self._last_heard[sender] = self._tick
        pending = self._sup_pending.get(sender)
        if pending is not None and pending.node == msg.node:
            del self._sup_pending[sender]

    def _recovery_phase(self) -> None:
        """Inject processor faults, run timers, re-issue on silence."""
        plan = self.faults
        stats = self.fault_stats
        assert plan is not None and stats is not None
        tick = self._tick
        for level in range(self.num_levels):
            proc = self.procs[level]
            fault = plan.processor_fault(level, tick)
            if fault is not None and not proc.in_outage(tick):
                fault_kind, duration = fault
                if fault_kind == "crash":
                    stats.crashes += 1
                    proc.crash(until=tick + duration)
                elif fault_kind == "stall":
                    stats.stalls += 1
                    proc.stall(until=tick + duration)
                else:  # pragma: no cover - defensive
                    raise SimulationError(
                        f"unknown processor fault {fault_kind!r}"
                    )
        for level in range(self.num_levels):
            self.procs[level].tick_recovery(tick)
        for level, pending in list(self._sup_pending.items()):
            # The anchor is refreshed only by deliveries that prove
            # progress on *this* invocation (a matching heartbeat, or
            # its val clearing the record entirely).  Generic liveness
            # must not count: a processor heartbeating while stuck on
            # older work would otherwise suppress the re-issue of a
            # dropped newer invocation forever.
            if tick - pending.since >= self.heartbeat_timeout:
                stats.reissues += 1
                if self._rec is not None:
                    self._rec.event(
                        "reissue", track="faults",
                        level=level, kind=pending.kind_name,
                    )
                # send() re-registers the pending record with
                # since=tick, which restarts the silence timer.
                self.send(MsgKind[pending.kind_name], pending.node, level)

    # -- run loop ------------------------------------------------------------
    def run(self, max_ticks: Optional[int] = None) -> SimulationResult:
        """Simulate until the root's value reaches the machine."""
        if max_ticks is None:
            # Generous default: the sequential algorithm expands at most
            # every node once; allow a constant factor of slack.
            max_ticks = 64 * (self.tree.num_leaves() * 2 + 16) \
                * max(1, self.num_levels)
        if self.faults is not None:
            self.faults.begin_run()
        degree_by_tick: List[int] = []
        # Kick-off: the machine directs processor 0 to solve the root.
        self.send(MsgKind.P_SOLVE, self.tree.root, 0)
        rec = self._rec
        while self._root_value is None:
            self._tick += 1
            if rec is not None:
                rec.advance(self._tick)
            if self._tick > max_ticks:
                raise SimulationError(
                    f"no result after {max_ticks} ticks — deadlock?"
                )
            self._expansions_this_tick = 0
            arrivals = self._mailbox.pop(self._tick, [])
            if self.faults is not None and len(arrivals) > 1:
                perm = self.faults.reorder_batch(self._tick, len(arrivals))
                if perm is not None:
                    assert self.fault_stats is not None
                    self.fault_stats.reordered += 1
                    arrivals = [arrivals[i] for i in perm]
            if self._events is not None:
                self._events.extend(
                    (self._tick, msg) for msg in arrivals
                )
            by_level: Dict[int, List[Message]] = {}
            for msg in arrivals:
                self._route(msg, by_level)
            for level in sorted(by_level):
                self.procs[level].handle_inbox(by_level[level])
            if self._root_value is not None:
                degree_by_tick.append(self._expansions_this_tick)
                break
            if self.faults is not None:
                self._recovery_phase()
            self._work_phase()
            degree_by_tick.append(self._expansions_this_tick)
            if rec is not None:
                rec.sample(
                    "machine.degree", self._expansions_this_tick,
                    track="machine",
                )
        if rec is not None:
            for level, coalescer in self._coalescers.items():
                coalescer.finish(self._tick)
                rec.gauge(
                    f"machine.level{level}.busy_ticks",
                    coalescer.busy_ticks,
                )
            rec.count("machine.ticks", self._tick)
            rec.count("machine.expansions", self._expansions)
            rec.count("machine.messages", self._messages)
            record_fault_stats(rec, self.fault_stats)
        return SimulationResult(
            value=self._root_value,
            ticks=self._tick,
            expansions=self._expansions,
            messages=self._messages,
            degree_by_tick=degree_by_tick,
            events=self._events,
            fault_stats=self.fault_stats,
        )

    def _route(
        self, msg: Message, by_level: Dict[int, List[Message]]
    ) -> None:
        """Direct one arrival to the machine, supervisor, or a level."""
        if msg.dest_level < 0:
            if msg.dest_level == MACHINE_LEVEL and msg.kind is MsgKind.VAL:
                self._root_value = msg.value
                if self.faults is not None:
                    self._observe_delivery(msg)
            elif (msg.dest_level == SUPERVISOR_LEVEL
                    and msg.kind is MsgKind.HEARTBEAT):
                self._last_heard[msg.node] = self._tick
                pending = self._sup_pending.get(msg.node)
                if (pending is not None and msg.value is not None
                        and msg.value == pending.node):
                    # The level is demonstrably working on the pending
                    # invocation: restart its silence timer.
                    pending.since = self._tick
            else:
                raise SimulationError(f"bad machine message {msg!r}")
            return
        if msg.dest_level >= self.num_levels:
            raise SimulationError(
                f"message below the deepest level: {msg!r}"
            )
        if self.faults is not None:
            proc = self.procs[msg.dest_level]
            if proc.is_down(self._tick):
                assert self.fault_stats is not None
                self.fault_stats.lost_in_outage += 1
                return
            if proc.is_stalled(self._tick):
                proc.stall_buffer.append(msg)
                return
            self._observe_delivery(msg)
        by_level.setdefault(msg.dest_level, []).append(msg)

    def _work_phase(self) -> None:
        rec = self._rec
        if self.physical is None:
            if rec is None:
                for level in range(self.num_levels):
                    self.procs[level].work()
                return
            for level in range(self.num_levels):
                busy = self.procs[level].work()
                self._coalescers[level].observe(self._tick, busy)
            return
        p = self.physical
        busy_levels = set()
        for phys in range(min(p, self.num_levels)):
            levels = list(range(phys, self.num_levels, p))
            start = self._rr.get(phys, 0)
            for i in range(len(levels)):
                level = levels[(start + i) % len(levels)]
                if self.procs[level].has_work():
                    if self.procs[level].work():
                        busy_levels.add(level)
                    self._rr[phys] = (start + i + 1) % len(levels)
                    break
        if rec is not None:
            for level in range(self.num_levels):
                self._coalescers[level].observe(
                    self._tick, level in busy_levels
                )


def simulate(
    tree: GameTree,
    physical_processors: Optional[int] = None,
    max_ticks: Optional[int] = None,
    work_priority: str = "p_first",
    trace_events: bool = False,
    fault_plan: Optional["FaultPlan"] = None,
    recorder: Optional[Recorder] = None,
    **recovery_knobs: int,
) -> SimulationResult:
    """Run the Section 7 machine on a binary NOR tree.

    With a seeded ``fault_plan``, messages may be dropped, duplicated,
    delayed or reordered and processors may crash or stall; the
    recovery protocol still converges to the fault-free ``val(root)``
    and the run's fault accounting lands in ``result.fault_stats``.
    ``recovery_knobs`` forwards ``heartbeat_interval`` /
    ``heartbeat_timeout`` / ``retransmit_timeout`` to the machine.

    ``recorder`` attaches a telemetry sink: per-level busy/idle spans
    (one track per level processor), per-kind message counters, a
    per-tick degree time series and bridged fault accounting.
    """
    machine = Machine(tree, physical_processors,
                      work_priority=work_priority,
                      trace_events=trace_events,
                      fault_plan=fault_plan,
                      recorder=recorder,
                      **recovery_knobs)
    return machine.run(max_ticks)
