"""The message-passing multiprocessor (Section 7).

A machine simulates the implementation of N-Parallel SOLVE of width 1
on a binary NOR tree:

* one virtual processor per tree level (level d handles invocations
  whose root node is at level d);
* any processor can send a message to any other in unit time —
  messages sent at tick t are delivered at tick t + 1;
* per tick, a processor performs at most one unit of work (one node
  expansion, or one step of a case-two path traversal with its message
  sends); message handling and gate bookkeeping are free;
* optionally, only ``physical_processors`` physical processors exist:
  levels are divided into zones of that many consecutive levels,
  physical processor i serves level i of every zone and multiplexes
  between them round-robin (the fixed-p adaptation the paper sketches).

The run terminates when processor 0 reports val(root) to the machine;
at that point a halt broadcast would stop all processors, which the
simulation models by simply ending.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import SimulationError
from ..trees.base import GameTree, NodeId
from ..types import TreeKind
from .messages import Message, MsgKind
from .processor import LevelProcessor


@dataclass
class SimulationResult:
    """Outcome and cost profile of one machine run."""

    value: int
    ticks: int
    expansions: int
    messages: int
    #: expansions performed at each tick (the machine's "parallel degree").
    degree_by_tick: List[int] = field(default_factory=list)
    #: delivered messages as (tick, Message), when event tracing is on.
    events: Optional[List[tuple]] = None

    @property
    def max_degree(self) -> int:
        return max(self.degree_by_tick) if self.degree_by_tick else 0


def render_event_log(result: SimulationResult,
                     max_lines: Optional[int] = None) -> str:
    """Human-readable delivery log of a traced run."""
    if result.events is None:
        return "(run without trace_events=True)"
    lines = []
    for tick, msg in result.events[:max_lines]:
        lines.append(f"t={tick:>4}  L{msg.dest_level:>2}  {msg!r}")
    if max_lines is not None and len(result.events) > max_lines:
        lines.append(f"... {len(result.events) - max_lines} more")
    return "\n".join(lines)


class Machine:
    """Discrete-event simulator of the Section 7 implementation."""

    def __init__(
        self,
        tree: GameTree,
        physical_processors: Optional[int] = None,
        work_priority: str = "p_first",
        trace_events: bool = False,
    ):
        if tree.kind is not TreeKind.BOOLEAN:
            raise SimulationError("the implementation evaluates NOR trees")
        if work_priority not in ("p_first", "s_first"):
            raise SimulationError(
                "work_priority must be 'p_first' or 's_first'"
            )
        self.work_priority = work_priority
        self.tree = tree
        self.num_levels = tree.height() + 1
        if physical_processors is not None and physical_processors < 1:
            raise SimulationError("need at least one physical processor")
        self.physical = physical_processors
        self.procs: Dict[int, LevelProcessor] = {
            d: LevelProcessor(self, d) for d in range(self.num_levels)
        }
        self._mailbox: Dict[int, List[Message]] = {}
        self._seq = 0
        self._tick = 0
        self._expansions = 0
        self._expansions_this_tick = 0
        self._messages = 0
        self._root_value: Optional[int] = None
        self._rr: Dict[int, int] = {}  # round-robin cursor per phys proc
        self._events: Optional[List[tuple]] = [] if trace_events else None

    # -- messaging ---------------------------------------------------------
    def send(self, kind: MsgKind, node: NodeId, dest_level: int,
             value: Optional[int] = None) -> None:
        self._seq += 1
        self._messages += 1
        msg = Message(kind=kind, node=node, dest_level=dest_level,
                      seq=self._seq, sent_at=self._tick, value=value)
        self._mailbox.setdefault(self._tick + 1, []).append(msg)

    def count_expansion(self, node: NodeId) -> None:
        self._expansions += 1
        self._expansions_this_tick += 1

    # -- run loop ------------------------------------------------------------
    def run(self, max_ticks: Optional[int] = None) -> SimulationResult:
        """Simulate until the root's value reaches the machine."""
        if max_ticks is None:
            # Generous default: the sequential algorithm expands at most
            # every node once; allow a constant factor of slack.
            max_ticks = 64 * (self.tree.num_leaves() * 2 + 16) \
                * max(1, self.num_levels)
        degree_by_tick: List[int] = []
        # Kick-off: the machine directs processor 0 to solve the root.
        self.send(MsgKind.P_SOLVE, self.tree.root, 0)
        while self._root_value is None:
            self._tick += 1
            if self._tick > max_ticks:
                raise SimulationError(
                    f"no result after {max_ticks} ticks — deadlock?"
                )
            self._expansions_this_tick = 0
            arrivals = self._mailbox.pop(self._tick, [])
            if self._events is not None:
                self._events.extend(
                    (self._tick, msg) for msg in arrivals
                )
            by_level: Dict[int, List[Message]] = {}
            for msg in arrivals:
                if msg.dest_level < 0:
                    if msg.kind is not MsgKind.VAL:  # pragma: no cover
                        raise SimulationError(f"bad machine message {msg!r}")
                    self._root_value = msg.value
                elif msg.dest_level >= self.num_levels:
                    raise SimulationError(
                        f"message below the deepest level: {msg!r}"
                    )
                else:
                    by_level.setdefault(msg.dest_level, []).append(msg)
            for level in sorted(by_level):
                self.procs[level].handle_inbox(by_level[level])
            if self._root_value is not None:
                degree_by_tick.append(self._expansions_this_tick)
                break
            self._work_phase()
            degree_by_tick.append(self._expansions_this_tick)
        return SimulationResult(
            value=self._root_value,
            ticks=self._tick,
            expansions=self._expansions,
            messages=self._messages,
            degree_by_tick=degree_by_tick,
            events=self._events,
        )

    def _work_phase(self) -> None:
        if self.physical is None:
            for level in range(self.num_levels):
                self.procs[level].work()
            return
        p = self.physical
        for phys in range(min(p, self.num_levels)):
            levels = list(range(phys, self.num_levels, p))
            start = self._rr.get(phys, 0)
            for i in range(len(levels)):
                level = levels[(start + i) % len(levels)]
                if self.procs[level].has_work():
                    self.procs[level].work()
                    self._rr[phys] = (start + i + 1) % len(levels)
                    break


def simulate(
    tree: GameTree,
    physical_processors: Optional[int] = None,
    max_ticks: Optional[int] = None,
    work_priority: str = "p_first",
    trace_events: bool = False,
) -> SimulationResult:
    """Run the Section 7 machine on a binary NOR tree."""
    machine = Machine(tree, physical_processors,
                      work_priority=work_priority,
                      trace_events=trace_events)
    return machine.run(max_ticks)
