"""Per-level (virtual) processors and the pre-emption rule.

Each level of the NOR tree has a processor assigned to it; the
processor owning level d handles exactly the invocations whose root
node lies at level d.  The pre-emption rule replaces abort messages:

    a processor works only on the most recent invocation of S-SOLVE*
    whose root is at its level and on the most recent invocation of
    P-SOLVE*/P-SOLVE**/P-SOLVE*** whose root is at its level; all
    other invocations automatically terminate.

One deliberate strengthening over the paper's prose: every ``val``
message a processor receives is remembered (``val_memory``).  Value
messages carry ground truth (each reports the true NOR value of its
node), so replaying remembered values into a freshly installed waiting
task is always sound — and it is needed, because a value can arrive
while the path traversal that will install its consumer is still in
flight.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..errors import SimulationError
from ..trees.base import NodeId
from .messages import SUPERVISOR_LEVEL, Message, MsgKind
from .tasks import Case1Task, STask, TraverseTask, Wait2Task, Wait3Task


@dataclass
class _UnackedVal:
    """Sender-side retransmission record for one ``val`` message."""

    value: int
    dest_level: int
    next_retry: int


class LevelProcessor:
    """The virtual processor responsible for one tree level."""

    def __init__(self, machine, level: int):
        self.machine = machine
        self.level = level
        self.s_task: Optional[STask] = None
        self.p_task = None
        #: Settled val(v) facts for nodes one level below.  Under fault
        #: injection this doubles as the processor's crash checkpoint:
        #: it survives a crash-and-restart, so re-issued invocations
        #: replay known child values instead of recomputing subtrees.
        self.val_memory: Dict[NodeId, int] = {}
        # -- fault-mode state (inert on fault-free runs) -------------------
        #: ticks before which the processor is crashed / stalled.
        self._down_until: Optional[int] = None
        self._stalled_until: Optional[int] = None
        #: messages that arrived while stalled, replayed on resume.
        self.stall_buffer: List[Message] = []
        #: vals sent but not yet acknowledged, keyed by node.
        self._unacked: Dict[NodeId, _UnackedVal] = {}
        self._last_heartbeat = 0
        #: newest invocation sequence numbers applied per slot; stale
        #: (duplicated or long-delayed) invocations must never regress
        #: the pre-emption rule's "most recent invocation wins".
        self._s_seq = 0
        self._p_seq = 0

    # -- fault-mode lifecycle ----------------------------------------------
    def is_down(self, tick: int) -> bool:
        if self._down_until is not None and tick < self._down_until:
            return True
        self._down_until = None
        return False

    def is_stalled(self, tick: int) -> bool:
        if self._stalled_until is not None and tick < self._stalled_until:
            return True
        self._stalled_until = None
        return False

    def in_outage(self, tick: int) -> bool:
        return self.is_down(tick) or self.is_stalled(tick)

    def crash(self, until: int) -> None:
        """Lose all in-flight state; keep the val_memory checkpoint."""
        self.s_task = None
        self.p_task = None
        self._unacked.clear()
        self.stall_buffer.clear()
        self._stalled_until = None
        self._down_until = until

    def stall(self, until: int) -> None:
        """Freeze: no work, no heartbeats; arrivals buffer until resume."""
        self._stalled_until = until

    def busy(self) -> bool:
        """Is there anything this processor is still responsible for?"""
        if self.p_task is not None and not self.p_task.finished:
            return True
        if self.s_task is not None and not self.s_task.done:
            return True
        return bool(self._unacked)

    def tick_recovery(self, tick: int) -> None:
        """Per-tick recovery bookkeeping (free, like gate bookkeeping)."""
        if self.is_down(tick) or self.is_stalled(tick):
            return
        if self.stall_buffer:
            buffered, self.stall_buffer = self.stall_buffer, []
            self.handle_inbox(buffered)
        stats = self.machine.fault_stats
        for node, entry in list(self._unacked.items()):
            if tick >= entry.next_retry:
                stats.retransmissions += 1
                self.machine.send(
                    MsgKind.VAL, node, entry.dest_level, value=entry.value
                )
                entry.next_retry = tick + self.machine.retransmit_timeout
        if self.busy() and (
            tick - self._last_heartbeat >= self.machine.heartbeat_interval
        ):
            self._last_heartbeat = tick
            stats.heartbeats += 1
            # The beacon reports *which* invocation is being worked on
            # (the unfinished P-task's node): the supervisor treats a
            # heartbeat as progress only if it matches the pending
            # invocation — a processor stuck on older work must not
            # suppress the re-issue of a dropped newer invocation.
            working: Optional[NodeId] = None
            if self.p_task is not None and not self.p_task.finished:
                working = self.p_task.node
            self.machine.send(
                MsgKind.HEARTBEAT, self.level, SUPERVISOR_LEVEL,
                value=working,
            )

    # -- messaging helpers (used by tasks) ---------------------------------
    def send_val(self, node: NodeId, value: int) -> None:
        self.machine.send(MsgKind.VAL, node, self.level - 1, value=value)
        if self.machine.faults is not None:
            # Sequence-numbered delivery: keep retransmitting until the
            # receiver acknowledges (duplicates are idempotent).
            self._unacked[node] = _UnackedVal(
                value=value,
                dest_level=self.level - 1,
                next_retry=self.machine._tick
                + self.machine.retransmit_timeout,
            )

    def send_invocation(self, kind_name: str, node: NodeId,
                        dest_level: int) -> None:
        self.machine.send(MsgKind[kind_name], node, dest_level)

    def install_pending(self, pending) -> None:
        """Install the deferred self-directed task of a path traversal."""
        if pending is None:  # pragma: no cover - defensive
            raise SimulationError("traversal finished without a self task")
        tag, node = pending
        if tag == "terminal":
            self.p_task = Case1Task(node)
        elif tag == "left":
            self.p_task = Wait2Task(node, self)
        else:
            self.p_task = Wait3Task(node, self)

    # -- message handling ----------------------------------------------------
    def handle_inbox(self, inbox: List[Message]) -> None:
        """Apply one tick's arrivals: newest invocation per slot wins.

        Sequence numbers guard each slot against regression: a stale
        invocation (a duplicate, or a copy delayed past its successor)
        is discarded rather than allowed to overwrite a more recent
        task.  On fault-free runs arrival order matches send order, so
        the guards never fire.
        """
        newest_s: Optional[Message] = None
        newest_p: Optional[Message] = None
        vals: List[Message] = []
        for msg in inbox:
            if msg.kind is MsgKind.VAL:
                vals.append(msg)
            elif msg.kind is MsgKind.ACK:
                self._unacked.pop(msg.node, None)
            elif msg.kind is MsgKind.HEARTBEAT:
                raise SimulationError(
                    f"heartbeat addressed to a processor: {msg!r}"
                )
            elif msg.kind is MsgKind.S_SOLVE:
                if newest_s is None or msg.seq > newest_s.seq:
                    newest_s = msg
            else:
                if newest_p is None or msg.seq > newest_p.seq:
                    newest_p = msg

        if newest_s is not None and newest_s.seq > self._s_seq:
            self._s_seq = newest_s.seq
            if not self._is_redundant_s(newest_s):
                self.s_task = STask(newest_s.node)
        if newest_p is not None and newest_p.seq > self._p_seq:
            self._p_seq = newest_p.seq
            if not self._is_redundant_p(newest_p):
                self._install_p(newest_p)
        for msg in vals:
            self.val_memory[msg.node] = msg.value
            if self.machine.faults is not None:
                self.machine.fault_stats.acks += 1
                self.machine.send(
                    MsgKind.ACK, msg.node, self.level + 1, value=msg.seq
                )
            if self.p_task is not None and not self.p_task.finished:
                self.p_task.on_val(self, msg.node, msg.value)

    def _is_redundant_s(self, msg: Message) -> bool:
        """Re-issued S-SOLVE for the subtree already being searched?

        Only consulted under fault injection: a re-issued invocation
        for the very task already in progress must not restart it and
        throw away partial depth-first progress.
        """
        return (
            self.machine.faults is not None
            and self.s_task is not None
            and not self.s_task.done
            and self.s_task.root == msg.node
        )

    def _is_redundant_p(self, msg: Message) -> bool:
        """Re-issued P-invocation for the task already installed?"""
        if self.machine.faults is None or self.p_task is None:
            return False
        if self.p_task.finished:
            return False
        return getattr(self.p_task, "node", None) == msg.node

    def _install_p(self, msg: Message) -> None:
        if msg.kind is MsgKind.P_SOLVE:
            in_progress = (
                self.s_task is not None
                and not self.s_task.done
                and self.s_task.root == msg.node
            )
            if in_progress:
                # Case two: convert the running sequential search.
                self.p_task = TraverseTask(self.s_task, self)
                self.s_task = None
            else:
                self.p_task = Case1Task(msg.node)
        elif msg.kind is MsgKind.P_SOLVE2:
            self.p_task = Wait2Task(msg.node, self)
        elif msg.kind is MsgKind.P_SOLVE3:
            self.p_task = Wait3Task(msg.node, self)
        else:  # pragma: no cover - defensive
            raise SimulationError(f"unexpected invocation {msg!r}")

    # -- work scheduling -------------------------------------------------------
    def has_work(self) -> bool:
        if self.machine.faults is not None \
                and self.in_outage(self.machine._tick):
            return False
        if self.p_task is not None and not self.p_task.finished \
                and self.p_task.needs_work:
            return True
        return self.s_task is not None and not self.s_task.done

    def work(self) -> bool:
        """One unit of work; returns whether any work was done.

        By default the P-task (expansion / traversal on the critical
        cascade) has priority over the S-task (the speculative sibling
        search); the machine's ``work_priority`` knob flips this for
        the ablation benchmark.  The boolean feeds the machine's
        per-level busy/idle telemetry and changes nothing else.
        """
        if self.machine.faults is not None \
                and self.in_outage(self.machine._tick):
            return False
        p_ready = (
            self.p_task is not None
            and not self.p_task.finished
            and self.p_task.needs_work
        )
        s_ready = self.s_task is not None and not self.s_task.done
        prefer_s = getattr(self.machine, "work_priority", "p_first") \
            == "s_first"
        if p_ready and not (prefer_s and s_ready):
            self.p_task.work(self)
            return True
        elif s_ready:
            self.s_task.work(self)
            return True
        return False
