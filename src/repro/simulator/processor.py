"""Per-level (virtual) processors and the pre-emption rule.

Each level of the NOR tree has a processor assigned to it; the
processor owning level d handles exactly the invocations whose root
node lies at level d.  The pre-emption rule replaces abort messages:

    a processor works only on the most recent invocation of S-SOLVE*
    whose root is at its level and on the most recent invocation of
    P-SOLVE*/P-SOLVE**/P-SOLVE*** whose root is at its level; all
    other invocations automatically terminate.

One deliberate strengthening over the paper's prose: every ``val``
message a processor receives is remembered (``val_memory``).  Value
messages carry ground truth (each reports the true NOR value of its
node), so replaying remembered values into a freshly installed waiting
task is always sound — and it is needed, because a value can arrive
while the path traversal that will install its consumer is still in
flight.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..errors import SimulationError
from ..trees.base import NodeId
from .messages import Message, MsgKind
from .tasks import Case1Task, STask, TraverseTask, Wait2Task, Wait3Task


class LevelProcessor:
    """The virtual processor responsible for one tree level."""

    def __init__(self, machine, level: int):
        self.machine = machine
        self.level = level
        self.s_task: Optional[STask] = None
        self.p_task = None
        self.val_memory: Dict[NodeId, int] = {}

    # -- messaging helpers (used by tasks) ---------------------------------
    def send_val(self, node: NodeId, value: int) -> None:
        self.machine.send(MsgKind.VAL, node, self.level - 1, value=value)

    def send_invocation(self, kind_name: str, node: NodeId,
                        dest_level: int) -> None:
        self.machine.send(MsgKind[kind_name], node, dest_level)

    def install_pending(self, pending) -> None:
        """Install the deferred self-directed task of a path traversal."""
        if pending is None:  # pragma: no cover - defensive
            raise SimulationError("traversal finished without a self task")
        tag, node = pending
        if tag == "terminal":
            self.p_task = Case1Task(node)
        elif tag == "left":
            self.p_task = Wait2Task(node, self)
        else:
            self.p_task = Wait3Task(node, self)

    # -- message handling ----------------------------------------------------
    def handle_inbox(self, inbox: List[Message]) -> None:
        """Apply one tick's arrivals: newest invocation per slot wins."""
        newest_s: Optional[Message] = None
        newest_p: Optional[Message] = None
        vals: List[Message] = []
        for msg in inbox:
            if msg.kind is MsgKind.VAL:
                vals.append(msg)
            elif msg.kind is MsgKind.S_SOLVE:
                if newest_s is None or msg.seq > newest_s.seq:
                    newest_s = msg
            else:
                if newest_p is None or msg.seq > newest_p.seq:
                    newest_p = msg

        if newest_s is not None:
            self.s_task = STask(newest_s.node)
        if newest_p is not None:
            self._install_p(newest_p)
        for msg in vals:
            self.val_memory[msg.node] = msg.value
            if self.p_task is not None and not self.p_task.finished:
                self.p_task.on_val(self, msg.node, msg.value)

    def _install_p(self, msg: Message) -> None:
        if msg.kind is MsgKind.P_SOLVE:
            in_progress = (
                self.s_task is not None
                and not self.s_task.done
                and self.s_task.root == msg.node
            )
            if in_progress:
                # Case two: convert the running sequential search.
                self.p_task = TraverseTask(self.s_task, self)
                self.s_task = None
            else:
                self.p_task = Case1Task(msg.node)
        elif msg.kind is MsgKind.P_SOLVE2:
            self.p_task = Wait2Task(msg.node, self)
        elif msg.kind is MsgKind.P_SOLVE3:
            self.p_task = Wait3Task(msg.node, self)
        else:  # pragma: no cover - defensive
            raise SimulationError(f"unexpected invocation {msg!r}")

    # -- work scheduling -------------------------------------------------------
    def has_work(self) -> bool:
        if self.p_task is not None and not self.p_task.finished \
                and self.p_task.needs_work:
            return True
        return self.s_task is not None and not self.s_task.done

    def work(self) -> None:
        """One unit of work.

        By default the P-task (expansion / traversal on the critical
        cascade) has priority over the S-task (the speculative sibling
        search); the machine's ``work_priority`` knob flips this for
        the ablation benchmark.
        """
        p_ready = (
            self.p_task is not None
            and not self.p_task.finished
            and self.p_task.needs_work
        )
        s_ready = self.s_task is not None and not self.s_task.done
        prefer_s = getattr(self.machine, "work_priority", "p_first") \
            == "s_first"
        if p_ready and not (prefer_s and s_ready):
            self.p_task.work(self)
        elif s_ready:
            self.s_task.work(self)
