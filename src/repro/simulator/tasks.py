"""Task objects executed by the level processors (Section 7).

Three kinds of work exist in the implementation:

* :class:`STask` — a non-recursive left-to-right depth-first search of a
  subtree (the implementation of S-SOLVE*), one node expansion per work
  tick, with the current root-to-frontier path held on a pushdown stack;
* :class:`Case1Task` — P-SOLVE*(v) when no S-SOLVE*(v) is in progress:
  expand v (one tick), spawn P-SOLVE*(w) / S-SOLVE*(x) for the
  children, then wait for their values;
* :class:`TraverseTask` — P-SOLVE*(v) when S-SOLVE*(v) *is* in
  progress (case two): walk the stack's path top-down, one node per
  tick, sending P-SOLVE** / P-SOLVE*** / P-SOLVE* and sibling
  S-SOLVE* messages as prescribed; plus the two waiting variants
  :class:`Wait2Task` (P-SOLVE**) and :class:`Wait3Task` (P-SOLVE***).

All tasks interact with their processor through a tiny interface:
``needs_work`` / ``work()`` for ticks, ``on_val`` for value messages.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..errors import SimulationError
from ..trees.base import GameTree, NodeId
from ..types import Gate


def _binary_children(tree: GameTree, node: NodeId) -> Tuple[NodeId, NodeId]:
    kids = tree.children(node)
    if len(kids) != 2:
        raise SimulationError(
            "the Section 7 implementation handles binary NOR trees; "
            f"node {node!r} has {len(kids)} children"
        )
    return kids[0], kids[1]


def _check_nor(tree: GameTree, node: NodeId) -> None:
    if tree.gate(node) is not Gate.NOR:
        raise SimulationError(
            "the Section 7 implementation handles binary NOR trees; "
            f"node {node!r} computes {tree.gate(node).label}"
        )


class STask:
    """Sequential depth-first NOR evaluation of the subtree at ``root``.

    The stack holds frames ``[node, children or None, child index]``;
    the top frame is always unexpanded.  One call to :meth:`work`
    performs exactly one node expansion; the gate bookkeeping between
    expansions is free, as in the node-expansion model.
    """

    def __init__(self, root: NodeId):
        self.root = root
        self.stack: List[list] = [[root, None, 0]]
        self.done = False
        self.result: Optional[int] = None

    @property
    def needs_work(self) -> bool:
        return not self.done

    def work(self, proc) -> None:
        """One expansion step; reports val(root) upward on completion."""
        if self.done:  # pragma: no cover - defensive
            return
        frame = self.stack[-1]
        node = frame[0]
        proc.machine.count_expansion(node)
        if proc.machine.tree.is_leaf(node):
            ret = int(proc.machine.tree.leaf_value(node))
            self.stack.pop()
            self._unwind(proc.machine.tree, ret)
        else:
            _check_nor(proc.machine.tree, node)
            frame[1] = _binary_children(proc.machine.tree, node)
            self.stack.append([frame[1][0], None, 0])
        if self.done:
            proc.send_val(self.root, self.result)

    def _unwind(self, tree: GameTree, ret: int) -> None:
        """Free gate bookkeeping after a subtree returned ``ret``."""
        while self.stack:
            frame = self.stack[-1]
            gate = tree.gate(frame[0])
            if ret == gate.absorbing:
                ret = gate.on_absorb
                self.stack.pop()
                continue
            frame[2] += 1
            if frame[2] == len(frame[1]):
                ret = gate.otherwise
                self.stack.pop()
                continue
            self.stack.append([frame[1][frame[2]], None, 0])
            return
        self.done = True
        self.result = ret


class _WaitingMixin:
    """Shared val(w)/val(x) bookkeeping for the waiting task kinds."""

    node: NodeId
    left: NodeId
    right: NodeId

    def _init_wait(self, proc, send_p_on_left_zero: bool) -> None:
        self.w_val: Optional[int] = None
        self.x_val: Optional[int] = None
        self.finished = False
        self._send_p = send_p_on_left_zero
        # Values may have arrived before this task was installed (e.g.
        # while the path traversal was still in flight); consult the
        # processor's value memory.
        for child, setter in ((self.left, "w"), (self.right, "x")):
            if child in proc.val_memory and not self.finished:
                self.on_val(proc, child, proc.val_memory[child])

    def on_val(self, proc, node: NodeId, value: int) -> None:
        if self.finished:
            return
        if node == self.left and self.w_val is None:
            self.w_val = value
            if value == 1:
                self._report(proc, 0)
            elif self.x_val is not None:
                self._report(proc, 1 if self.x_val == 0 else 0)
            elif self._send_p:
                # First message was val(w) = 0: upgrade the sibling
                # search S-SOLVE*(x) into the width-1 cascade.
                proc.send_invocation("P_SOLVE", self.right, proc.level + 1)
        elif node == self.right and self.x_val is None:
            self.x_val = value
            if value == 1:
                self._report(proc, 0)
            elif self.w_val is not None:
                self._report(proc, 1 if self.w_val == 0 else 0)

    def _report(self, proc, value: int) -> None:
        self.finished = True
        proc.send_val(self.node, value)


class Case1Task(_WaitingMixin):
    """P-SOLVE*(v), case one: expand v, spawn children, wait."""

    def __init__(self, node: NodeId):
        self.node = node
        self.expanded = False
        self.finished = False

    @property
    def needs_work(self) -> bool:
        return not self.expanded and not self.finished

    def work(self, proc) -> None:
        tree = proc.machine.tree
        self.expanded = True
        proc.machine.count_expansion(self.node)
        if tree.is_leaf(self.node):
            self.finished = True
            proc.send_val(self.node, int(tree.leaf_value(self.node)))
            return
        _check_nor(tree, self.node)
        self.left, self.right = _binary_children(tree, self.node)
        proc.send_invocation("P_SOLVE", self.left, proc.level + 1)
        proc.send_invocation("S_SOLVE", self.right, proc.level + 1)
        self._init_wait(proc, send_p_on_left_zero=True)

    def on_val(self, proc, node, value):
        if not self.expanded:
            return  # children unknown yet; memory will catch us up
        super().on_val(proc, node, value)


class Wait2Task(_WaitingMixin):
    """P-SOLVE**(v): v already expanded, left child's value unknown."""

    def __init__(self, node: NodeId, proc):
        self.node = node
        self.left, self.right = _binary_children(proc.machine.tree, node)
        self._init_wait(proc, send_p_on_left_zero=True)

    needs_work = False

    def work(self, proc) -> None:  # pragma: no cover - never scheduled
        raise SimulationError("Wait2Task has no work phase")


class Wait3Task(_WaitingMixin):
    """P-SOLVE***(v): v expanded and its left child is known to be 0."""

    def __init__(self, node: NodeId, proc):
        self.node = node
        self.left, self.right = _binary_children(proc.machine.tree, node)
        self.w_val = 0
        self.x_val = None
        self.finished = False
        self._send_p = False
        if self.right in proc.val_memory:
            self.on_val(proc, self.right, proc.val_memory[self.right])

    needs_work = False

    def work(self, proc) -> None:  # pragma: no cover - never scheduled
        raise SimulationError("Wait3Task has no work phase")


class TraverseTask:
    """P-SOLVE*(v), case two: convert a running S-SOLVE*(v) search.

    Walks the S-task's stack path top-down, one node per tick, sending
    the messages Section 7 prescribes.  The message addressed to this
    processor itself (for v, the first path node) is applied locally
    when the walk completes, which avoids racing the walk against its
    own self-message; values arriving meanwhile land in the processor's
    value memory and are replayed on installation.
    """

    def __init__(self, stask: STask, proc):
        tree = proc.machine.tree
        self.node = stask.root
        # (offset from own level, action tag, node, right sibling or None)
        self.actions: List[tuple] = []
        for offset, frame in enumerate(stask.stack):
            node, kids, idx = frame
            if kids is None:
                self.actions.append((offset, "terminal", node, None))
            elif idx == 0:
                self.actions.append((offset, "left", node, kids[1]))
            else:
                self.actions.append((offset, "right", node, None))
        self.cursor = 0
        self.pending_self: Optional[tuple] = None
        self.finished = False

    @property
    def needs_work(self) -> bool:
        return not self.finished

    def on_val(self, proc, node: NodeId, value: int) -> None:
        """Values arriving mid-walk are held in the processor's value
        memory and replayed when the deferred self task installs."""

    def work(self, proc) -> None:
        offset, tag, node, sibling = self.actions[self.cursor]
        level = proc.level + offset
        if offset == 0:
            # Own node: defer installation until the walk completes.
            self.pending_self = (tag, node)
            if tag == "left":
                proc.send_invocation("S_SOLVE", sibling, level + 1)
        else:
            if tag == "terminal":
                proc.send_invocation("P_SOLVE", node, level)
            elif tag == "left":
                proc.send_invocation("P_SOLVE2", node, level)
                proc.send_invocation("S_SOLVE", sibling, level + 1)
            else:  # "right"
                proc.send_invocation("P_SOLVE3", node, level)
        self.cursor += 1
        if self.cursor == len(self.actions):
            self.finished = True
            proc.install_pending(self.pending_self)
