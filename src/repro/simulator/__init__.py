"""Section 7: message-passing implementation of N-Parallel SOLVE (w=1)."""

from .machine import (
    FaultStats,
    Machine,
    SimulationResult,
    render_event_log,
    simulate,
)
from .messages import Message, MsgKind

__all__ = [
    "FaultStats",
    "Machine",
    "SimulationResult",
    "simulate",
    "render_event_log",
    "Message",
    "MsgKind",
]
