"""The six message types of the Section 7 implementation.

A processor may send or receive messages of six types::

    S-SOLVE*(v)    P-SOLVE*(v)    P-SOLVE**(v)    P-SOLVE***(v)
    val(v) = 0     val(v) = 1

The first four are invocation messages directed at processor d(v) (the
processor owning v's level); the value messages travel from d(v) to
d(v) - 1.  Messages are timestamped with a global sequence number so
the pre-emption rule ("work only on the most recent invocation") is
deterministic even when several invocations arrive in one tick.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from ..trees.base import NodeId


class MsgKind(enum.Enum):
    S_SOLVE = "S-SOLVE*"
    P_SOLVE = "P-SOLVE*"
    P_SOLVE2 = "P-SOLVE**"
    P_SOLVE3 = "P-SOLVE***"
    VAL = "val"


#: Invocation kinds, i.e. everything except VAL.
INVOCATIONS = (
    MsgKind.S_SOLVE,
    MsgKind.P_SOLVE,
    MsgKind.P_SOLVE2,
    MsgKind.P_SOLVE3,
)


@dataclass(frozen=True)
class Message:
    """One message in flight.

    Attributes
    ----------
    kind / node / value:
        Payload: ``value`` is only set for :attr:`MsgKind.VAL`.
    dest_level:
        Level (virtual processor index) the message is addressed to;
        ``-1`` addresses the machine itself (the root's value report).
    seq:
        Global send order; higher = more recent (pre-emption tiebreak).
    sent_at:
        Tick at which the message was sent; it is delivered at
        ``sent_at + 1`` (unit-time message passing).
    """

    kind: MsgKind
    node: NodeId
    dest_level: int
    seq: int
    sent_at: int
    value: Optional[int] = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.kind is MsgKind.VAL:
            return f"<val({self.node})={self.value} -> L{self.dest_level}>"
        return f"<{self.kind.value}({self.node}) -> L{self.dest_level}>"
