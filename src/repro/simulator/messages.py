"""The message types of the Section 7 implementation.

A processor may send or receive messages of six types::

    S-SOLVE*(v)    P-SOLVE*(v)    P-SOLVE**(v)    P-SOLVE***(v)
    val(v) = 0     val(v) = 1

The first four are invocation messages directed at processor d(v) (the
processor owning v's level); the value messages travel from d(v) to
d(v) - 1.  Messages are timestamped with a global sequence number so
the pre-emption rule ("work only on the most recent invocation") is
deterministic even when several invocations arrive in one tick.

Two further kinds exist only when fault injection is active (the paper
assumes a perfectly reliable network, so the fault-free machine never
sends them):

* ``ACK`` — delivery receipt for a ``val`` message, addressed back to
  the sending level; its ``value`` field carries the acknowledged
  sequence number.
* ``HEARTBEAT`` — liveness beacon from a busy processor to the
  machine's supervisor (:data:`SUPERVISOR_LEVEL`); its ``node`` field
  carries the emitting level.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from ..trees.base import NodeId


class MsgKind(enum.Enum):
    S_SOLVE = "S-SOLVE*"
    P_SOLVE = "P-SOLVE*"
    P_SOLVE2 = "P-SOLVE**"
    P_SOLVE3 = "P-SOLVE***"
    VAL = "val"
    ACK = "ack"
    HEARTBEAT = "heartbeat"


#: Invocation kinds, i.e. the messages that install a task.
INVOCATIONS = (
    MsgKind.S_SOLVE,
    MsgKind.P_SOLVE,
    MsgKind.P_SOLVE2,
    MsgKind.P_SOLVE3,
)

#: Recovery-protocol kinds (only in flight under fault injection).
RECOVERY_KINDS = (MsgKind.ACK, MsgKind.HEARTBEAT)

#: ``dest_level`` addressing the machine itself (root value report).
MACHINE_LEVEL = -1

#: ``dest_level`` addressing the machine's fault supervisor.
SUPERVISOR_LEVEL = -2


@dataclass(frozen=True)
class Message:
    """One message in flight.

    Attributes
    ----------
    kind / node / value:
        Payload: ``value`` is only set for :attr:`MsgKind.VAL`.
    dest_level:
        Level (virtual processor index) the message is addressed to;
        ``-1`` addresses the machine itself (the root's value report).
    seq:
        Global send order; higher = more recent (pre-emption tiebreak).
    sent_at:
        Tick at which the message was sent; it is delivered at
        ``sent_at + 1`` (unit-time message passing).
    """

    kind: MsgKind
    node: NodeId
    dest_level: int
    seq: int
    sent_at: int
    value: Optional[int] = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.kind is MsgKind.VAL:
            return f"<val({self.node})={self.value} -> L{self.dest_level}>"
        return f"<{self.kind.value}({self.node}) -> L{self.dest_level}>"
