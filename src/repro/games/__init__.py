"""Game substrates feeding the node-expansion algorithms."""

from .base import Game, game_tree, win_loss_tree
from .connect import ConnectK
from .nim import Nim, NimMove, NimPosition
from .player import (
    GameRecord,
    MoveChoice,
    best_move,
    play_game,
    principal_variation,
)
from .synthetic import SyntheticGame
from .tictactoe import TicTacToe, winner

__all__ = [
    "Game",
    "game_tree",
    "win_loss_tree",
    "TicTacToe",
    "winner",
    "Nim",
    "NimPosition",
    "NimMove",
    "SyntheticGame",
    "ConnectK",
    "best_move",
    "play_game",
    "principal_variation",
    "MoveChoice",
    "GameRecord",
]
