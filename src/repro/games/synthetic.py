"""A synthetic game with tunable branching and depth.

Useful for benchmarking the game-tree adapters at controlled sizes:
positions are (path id, depth) pairs, every non-terminal position has
exactly ``branching`` moves, the game ends at ``depth_limit``, and leaf
values are drawn from a hash of the path — so the tree is effectively a
uniform MIN/MAX tree generated through the :class:`Game` interface,
exercising the same code paths a real game would.
"""

from __future__ import annotations

import hashlib
from typing import List, Tuple

from .base import Game

SyntheticPosition = Tuple[int, int]  # (path id, depth)


class SyntheticGame(Game):
    """Uniform branching game with pseudo-random terminal values."""

    def __init__(self, branching: int, depth_limit: int, seed: int = 0,
                 num_values: int = 1024):
        if branching < 1 or depth_limit < 0:
            raise ValueError("branching >= 1 and depth_limit >= 0 required")
        self.branching = branching
        self.depth_limit = depth_limit
        self.seed = seed
        self.num_values = num_values

    def initial_position(self) -> SyntheticPosition:
        return (0, 0)

    def moves(self, position: SyntheticPosition) -> List[int]:
        _path, depth = position
        if depth >= self.depth_limit:
            return []
        return list(range(self.branching))

    def apply(self, position: SyntheticPosition, move: int) -> SyntheticPosition:
        path, depth = position
        return (path * self.branching + move + 1, depth + 1)

    def terminal_value(self, position: SyntheticPosition) -> float:
        path, _depth = position
        digest = hashlib.blake2b(
            f"{self.seed}:{path}".encode(), digest_size=8
        ).digest()
        return float(int.from_bytes(digest, "big") % self.num_values)

    def mover_wins_at_terminal(self, position: SyntheticPosition) -> bool:
        # Derive a deterministic pseudo-random win bit for Boolean use.
        return int(self.terminal_value(position)) % 2 == 1
