"""Connect-k on an m x n board with gravity (Connect Four family).

A "wide-and-shallow" game in the sense of the paper's Section 8
remark — relatively large branching factor (one move per non-full
column) and bounded depth — used by the examples and benchmarks to
exercise depth-limited heuristic search through the game-tree
adapters.
"""

from __future__ import annotations

from typing import List, Tuple

from .base import Game

#: (columns tuple of piece-tuples bottom-up, player to move).
ConnectPosition = Tuple[Tuple[Tuple[int, ...], ...], int]


class ConnectK(Game):
    """Drop pieces into columns; first to align ``k`` wins.

    Player 1 (the MAX player) moves first.  Alignment counts rows,
    columns and both diagonals.
    """

    def __init__(self, columns: int = 4, rows: int = 4, k: int = 3):
        if columns < 1 or rows < 1 or k < 2:
            raise ValueError("need columns, rows >= 1 and k >= 2")
        self.columns = columns
        self.rows = rows
        self.k = k

    def initial_position(self) -> ConnectPosition:
        return (tuple(() for _ in range(self.columns)), 1)

    def moves(self, position: ConnectPosition) -> List[int]:
        board, _player = position
        if self._winner(board) != 0:
            return []
        return [
            c for c in range(self.columns) if len(board[c]) < self.rows
        ]

    def apply(self, position: ConnectPosition, move: int) -> ConnectPosition:
        board, player = position
        if len(board[move]) >= self.rows:
            raise ValueError(f"column {move} is full")
        new_col = board[move] + (player,)
        new_board = board[:move] + (new_col,) + board[move + 1:]
        return (new_board, 3 - player)

    def terminal_value(self, position: ConnectPosition) -> float:
        board, _player = position
        w = self._winner(board)
        if w == 1:
            return 1.0
        if w == 2:
            return -1.0
        return 0.0

    def evaluate(self, position: ConnectPosition) -> float:
        """Heuristic: difference in open k-windows, squashed to (-1, 1)."""
        board, _player = position
        w = self._winner(board)
        if w:
            return 1.0 if w == 1 else -1.0
        score = 0
        for window in self._windows():
            cells = [self._cell(board, c, r) for c, r in window]
            if 2 not in cells and 1 in cells:
                score += 1
            if 1 not in cells and 2 in cells:
                score -= 1
        return score / (1.0 + abs(score)) * 0.5

    # -- board geometry ----------------------------------------------------
    def _cell(self, board, col: int, row: int) -> int:
        column = board[col]
        return column[row] if row < len(column) else 0

    def _windows(self):
        k = self.k
        for c in range(self.columns):
            for r in range(self.rows):
                if c + k <= self.columns:
                    yield [(c + i, r) for i in range(k)]
                if r + k <= self.rows:
                    yield [(c, r + i) for i in range(k)]
                if c + k <= self.columns and r + k <= self.rows:
                    yield [(c + i, r + i) for i in range(k)]
                if c + k <= self.columns and r - k + 1 >= 0:
                    yield [(c + i, r - i) for i in range(k)]

    def _winner(self, board) -> int:
        for window in self._windows():
            cells = [self._cell(board, c, r) for c, r in window]
            if cells[0] != 0 and all(x == cells[0] for x in cells):
                return cells[0]
        return 0

    @staticmethod
    def pretty(position: ConnectPosition) -> str:
        board, player = position
        rows = len(board[0]) if board else 0
        height = max((len(col) for col in board), default=0)
        sym = {0: ".", 1: "X", 2: "O"}
        lines = []
        max_row = max(height, 1)
        for r in range(max_row - 1, -1, -1):
            lines.append(
                " ".join(
                    sym[col[r] if r < len(col) else 0] for col in board
                )
            )
        lines.append(f"({sym[player]} to move)")
        return "\n".join(lines)
