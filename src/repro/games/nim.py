"""Nim — a win/loss game with a closed-form ground truth.

Multi-heap Nim under the normal-play convention: a move removes 1..k
objects from one heap; whoever cannot move loses.  The Sprague-Grundy
theorem gives the exact answer (first player wins iff the XOR of the
heap Grundy numbers is non-zero; with take-limit k a heap of size s has
Grundy number s mod (k+1)), making Nim a perfect oracle for the Boolean
win/loss trees and the node-expansion algorithms.
"""

from __future__ import annotations

from functools import reduce
from typing import List, Optional, Tuple

from .base import Game

#: Immutable multiset of heap sizes.
NimPosition = Tuple[int, ...]

#: Moves are (heap index, number of objects taken).
NimMove = Tuple[int, int]


class Nim(Game):
    """Normal-play Nim with an optional per-move take limit."""

    def __init__(self, heaps: Tuple[int, ...], max_take: Optional[int] = None):
        if not heaps or any(h < 0 for h in heaps):
            raise ValueError("heaps must be non-negative and non-empty")
        self._initial = tuple(heaps)
        self.max_take = max_take

    def initial_position(self) -> NimPosition:
        return self._initial

    def moves(self, position: NimPosition) -> List[NimMove]:
        out: List[NimMove] = []
        for i, heap in enumerate(position):
            limit = heap if self.max_take is None else min(heap, self.max_take)
            out.extend((i, take) for take in range(1, limit + 1))
        return out

    def apply(self, position: NimPosition, move: NimMove) -> NimPosition:
        i, take = move
        if not 1 <= take <= position[i]:
            raise ValueError(f"cannot take {take} from heap {i}")
        if self.max_take is not None and take > self.max_take:
            raise ValueError(f"take limit is {self.max_take}")
        return position[:i] + (position[i] - take,) + position[i + 1:]

    def terminal_value(self, position: NimPosition) -> float:
        # The mover has no objects left to take: they lose.  From the
        # MAX player's perspective this is only meaningful relative to
        # whose turn it is, so win/loss analyses should use
        # ``win_loss_tree`` / ``first_player_wins``.
        return -1.0

    def grundy(self, position: NimPosition) -> int:
        """Grundy number of ``position`` (closed form)."""
        if self.max_take is None:
            return reduce(lambda a, b: a ^ b, position, 0)
        k = self.max_take
        return reduce(lambda a, b: a ^ b, (h % (k + 1) for h in position), 0)

    def first_player_wins(self, position: Optional[NimPosition] = None) -> bool:
        """Ground truth from Sprague-Grundy theory."""
        if position is None:
            position = self._initial
        return self.grundy(position) != 0
