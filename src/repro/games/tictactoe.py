"""Tic-tac-toe — a fully solvable MIN/MAX workload.

Positions are immutable 9-tuples over {0, 1, 2} (empty / X / O) plus
the player to move; X is the MAX player.  The complete game tree from
the empty board has height <= 9 and its value is 0 (draw) — a classic
end-to-end check for every alpha-beta variant in the library.
"""

from __future__ import annotations

from typing import List, Tuple

from .base import Game

Board = Tuple[int, ...]
#: (board, player to move): player 1 = X (MAX), player 2 = O (MIN).
TTTPosition = Tuple[Board, int]

_LINES = (
    (0, 1, 2), (3, 4, 5), (6, 7, 8),   # rows
    (0, 3, 6), (1, 4, 7), (2, 5, 8),   # columns
    (0, 4, 8), (2, 4, 6),              # diagonals
)


def winner(board: Board) -> int:
    """1 if X has a line, 2 if O has one, 0 otherwise."""
    for a, b, c in _LINES:
        if board[a] != 0 and board[a] == board[b] == board[c]:
            return board[a]
    return 0


class TicTacToe(Game):
    """Standard 3x3 tic-tac-toe; X (player 1) is the MAX player."""

    def initial_position(self) -> TTTPosition:
        return ((0,) * 9, 1)

    def moves(self, position: TTTPosition) -> List[int]:
        board, _player = position
        if winner(board) != 0:
            return []
        return [i for i in range(9) if board[i] == 0]

    def apply(self, position: TTTPosition, move: int) -> TTTPosition:
        board, player = position
        if board[move] != 0:
            raise ValueError(f"square {move} is occupied")
        new_board = board[:move] + (player,) + board[move + 1:]
        return (new_board, 3 - player)

    def terminal_value(self, position: TTTPosition) -> float:
        board, _player = position
        w = winner(board)
        if w == 1:
            return 1.0
        if w == 2:
            return -1.0
        return 0.0

    def evaluate(self, position: TTTPosition) -> float:
        """Cheap heuristic for depth-limited search: open-line count."""
        board, _player = position
        w = winner(board)
        if w:
            return 1.0 if w == 1 else -1.0
        score = 0.0
        for a, b, c in _LINES:
            cells = (board[a], board[b], board[c])
            if 2 not in cells and 1 in cells:
                score += 0.1
            if 1 not in cells and 2 in cells:
                score -= 0.1
        return score

    @staticmethod
    def pretty(position: TTTPosition) -> str:
        """Render a position for example scripts."""
        board, player = position
        sym = {0: ".", 1: "X", 2: "O"}
        rows = [
            " ".join(sym[board[r * 3 + c]] for c in range(3))
            for r in range(3)
        ]
        return "\n".join(rows) + f"\n({sym[player]} to move)"
