"""Core value types shared across the package.

The paper works with two families of trees:

* *Boolean* trees (AND/OR trees, presented as NOR trees in Section 2),
  whose internal nodes are short-circuiting Boolean gates; and
* *MIN/MAX* trees (Section 4), whose internal nodes alternate MAX (root,
  even depth) and MIN (odd depth) and whose leaves carry real values.

We generalise the Boolean side slightly: every internal node carries a
:class:`Gate`, and the engine only relies on each gate having an
*absorbing* input value (a child taking that value determines the node
immediately) plus an *otherwise* output (the node's value when every
child is determined non-absorbing).  NOR, OR, AND and NAND all fit this
mould, so the paper's NOR presentation and the native AND/OR
presentation share a single evaluation engine.
"""

from __future__ import annotations

import enum
from typing import Union

#: A Boolean leaf holds 0/1; a MIN/MAX leaf holds a float.
LeafValue = Union[int, float]


class TreeKind(enum.Enum):
    """Which evaluation semantics a tree uses."""

    BOOLEAN = "boolean"
    MINMAX = "minmax"


class NodeType(enum.Enum):
    """MIN/MAX polarity of an internal node (root is MAX, alternating)."""

    MAX = "max"
    MIN = "min"

    @property
    def opponent(self) -> "NodeType":
        return NodeType.MIN if self is NodeType.MAX else NodeType.MAX


class Gate(enum.Enum):
    """A short-circuiting Boolean gate.

    Attributes
    ----------
    absorbing:
        The input value that determines the gate's output on its own.
    on_absorb:
        The output produced when some child takes the absorbing value.
    otherwise:
        The output produced when *all* children are determined and none
        took the absorbing value.
    """

    AND = ("and", 0, 0, 1)
    OR = ("or", 1, 1, 0)
    NOR = ("nor", 1, 0, 1)
    NAND = ("nand", 0, 1, 0)

    def __init__(self, label: str, absorbing: int, on_absorb: int, otherwise: int):
        self.label = label
        self.absorbing = absorbing
        self.on_absorb = on_absorb
        self.otherwise = otherwise

    def output(self, child_values) -> int:
        """The gate's value given a full tuple of child values."""
        vals = list(child_values)
        if not vals:
            raise ValueError("gate applied to zero children")
        if self.absorbing in vals:
            return self.on_absorb
        return self.otherwise

    @property
    def dual(self) -> "Gate":
        """The gate computing the complement on complemented inputs."""
        return _GATE_DUAL[self]


_GATE_DUAL = {
    Gate.AND: Gate.OR,
    Gate.OR: Gate.AND,
    Gate.NOR: Gate.NAND,
    Gate.NAND: Gate.NOR,
}


#: Golden-ratio leaf bias used in Althofer's i.i.d. setting (Section 6):
#: the unique positive p with p**2 = 1 - p, i.e. p = (sqrt(5) - 1) / 2.
#: On a uniform binary alternating AND/OR tree this bias reproduces
#: itself every two levels, so instances stay maximally "undecided" as
#: the tree grows.
GOLDEN_BIAS = (5 ** 0.5 - 1) / 2
