"""Backward chaining as AND/OR tree evaluation.

``goal_tree(kb, goal)`` builds the lazily expanded AND/OR tree of the
backward-chaining search:

* a *goal node* (even depth, OR gate) has one child per rule whose head
  is the goal; it is a leaf 1 if the goal is a fact, and a leaf 0 if it
  is neither a fact nor the head of any rule;
* a *rule node* (odd depth, AND gate) has one child per body atom, and
  is a leaf 1 when the body is empty.

Cycle handling: an atom already under proof on the current path cannot
support itself (propositional Horn logic has finite derivations in the
minimal model), so re-encountering it yields a leaf 0.  This keeps the
tree finite and the evaluation equal to forward chaining — which the
test suite verifies on random knowledge bases.

Running :func:`repro.core.sequential_solve` on this tree *is*
left-to-right SLD resolution with memo-free backtracking; running
:func:`repro.core.parallel_solve` parallelizes the prover exactly as
Section 2 prescribes.
"""

from __future__ import annotations

from typing import FrozenSet, Tuple, Union

from ..trees.gates import GateScheme
from ..trees.lazy import LazyTree
from ..types import Gate, TreeKind
from .kb import KnowledgeBase, Rule

#: ("goal", atom, atoms on the path) or ("rule", rule, atoms on the path)
GoalPayload = Tuple[str, Union[str, Rule], FrozenSet[str]]


def goal_tree(kb: KnowledgeBase, goal: str) -> LazyTree:
    """The backward-chaining AND/OR tree for proving ``goal`` from ``kb``."""

    def expand(payload: GoalPayload, depth: int):
        kind, item, on_path = payload
        if kind == "goal":
            atom = item
            if kb.is_fact(atom):
                return ("leaf", 1)
            if atom in on_path:
                return ("leaf", 0)  # cyclic support proves nothing
            rules = kb.rules_for(atom)
            if not rules:
                return ("leaf", 0)
            extended = on_path | {atom}
            return (
                "internal",
                [("rule", rule, extended) for rule in rules],
            )
        rule = item
        if not rule.body:
            return ("leaf", 1)
        return (
            "internal",
            [("goal", atom, on_path) for atom in rule.body],
        )

    return LazyTree(
        ("goal", goal, frozenset()),
        expand,
        kind=TreeKind.BOOLEAN,
        gates=GateScheme([Gate.OR, Gate.AND]),
    )


def prove(kb: KnowledgeBase, goal: str) -> bool:
    """Convenience: evaluate the goal tree with Sequential SOLVE."""
    from ..core.sequential_solve import sequential_solve

    return bool(sequential_solve(goal_tree(kb, goal)).value)
