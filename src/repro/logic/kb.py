"""Propositional Horn-clause knowledge bases.

The paper's introduction notes that AND/OR tree evaluation "is closely
related to the problem of efficiently executing theorem-proving
algorithms for the propositional calculus based on backward-chaining
deduction" — this module is that substrate.  A knowledge base holds
facts (atoms known true) and Horn rules ``head :- body``; backward
chaining from a goal produces an AND/OR tree (see
:mod:`repro.logic.goal_tree`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Sequence, Set, Tuple


@dataclass(frozen=True)
class Rule:
    """A Horn rule: ``head`` holds if every atom of ``body`` holds."""

    head: str
    body: Tuple[str, ...]

    def __post_init__(self):
        if not self.head:
            raise ValueError("rule head must be a non-empty atom")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if not self.body:
            return f"{self.head}."
        return f"{self.head} :- {', '.join(self.body)}"


class KnowledgeBase:
    """Facts plus Horn rules with simple indexing by head."""

    def __init__(
        self,
        facts: Sequence[str] = (),
        rules: Sequence[Rule] = (),
    ):
        self.facts: Set[str] = set(facts)
        self.rules: List[Rule] = list(rules)
        self._by_head: Dict[str, List[Rule]] = {}
        for rule in self.rules:
            self._by_head.setdefault(rule.head, []).append(rule)

    def add_fact(self, atom: str) -> None:
        self.facts.add(atom)

    def add_rule(self, head: str, body: Sequence[str]) -> None:
        rule = Rule(head, tuple(body))
        self.rules.append(rule)
        self._by_head.setdefault(head, []).append(rule)

    def rules_for(self, atom: str) -> List[Rule]:
        """Rules whose head is ``atom`` (in declaration order)."""
        return self._by_head.get(atom, [])

    def is_fact(self, atom: str) -> bool:
        return atom in self.facts

    def forward_closure(self) -> FrozenSet[str]:
        """All atoms derivable by forward chaining — the ground truth
        the backward-chaining AND/OR search is checked against."""
        known: Set[str] = set(self.facts)
        changed = True
        while changed:
            changed = False
            for rule in self.rules:
                if rule.head not in known and all(
                    atom in known for atom in rule.body
                ):
                    known.add(rule.head)
                    changed = True
        return frozenset(known)
