"""Propositional backward chaining over AND/OR trees."""

from .goal_tree import goal_tree, prove
from .kb import KnowledgeBase, Rule

__all__ = ["KnowledgeBase", "Rule", "goal_tree", "prove"]
