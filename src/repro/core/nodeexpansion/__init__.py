"""The node-expansion model (Section 5)."""

from .alphabeta import (
    ExpansionAlphaBetaState,
    NAlphaBetaWidthPolicy,
    n_parallel_alpha_beta,
    n_sequential_alpha_beta,
    prune_expansion_to_fixpoint,
    run_expansion_minmax,
    select_expansion_frontier,
)
from .engine import (
    IncrementalNWidthPolicy,
    NSequentialPolicy,
    NWidthPolicy,
    run_expansion,
    select_frontier_by_pruning_number,
    select_leftmost_frontier,
)
from .solve import n_parallel_solve, n_sequential_solve
from .state import ExpansionState

__all__ = [
    "ExpansionState",
    "ExpansionAlphaBetaState",
    "run_expansion",
    "run_expansion_minmax",
    "n_sequential_solve",
    "n_parallel_solve",
    "n_sequential_alpha_beta",
    "n_parallel_alpha_beta",
    "NSequentialPolicy",
    "NWidthPolicy",
    "IncrementalNWidthPolicy",
    "NAlphaBetaWidthPolicy",
    "select_frontier_by_pruning_number",
    "select_leftmost_frontier",
    "select_expansion_frontier",
    "prune_expansion_to_fixpoint",
]
