"""Node-expansion versions of Sequential and Parallel alpha-beta.

Section 5 notes that "Sequential alpha-beta and Parallel alpha-beta can
also be converted into their node-expansion versions"; the paper omits
the details for space.  The conversion follows the same recipe as
SOLVE: the pruned tree T-tilde now lives over the generated tree T*,
frontier nodes (live, unexpanded, not pruned) replace unfinished
leaves as the selectable unit, and expansion of a leaf finishes it.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Set

from ...errors import ModelViolationError, PruningInvariantError
from ...models.accounting import EvalResult, ExecutionTrace
from ...trees.base import GameTree, NodeId
from ...types import NodeType


class ExpansionAlphaBetaState:
    """T* plus pruned-tree bookkeeping for MIN/MAX node expansion."""

    def __init__(self, tree: GameTree):
        self.tree = tree
        self.expanded: Set[NodeId] = set()
        self.finished_value: Dict[NodeId, float] = {}
        self.pruned: Set[NodeId] = set()
        self.touched: Set[NodeId] = set()
        self._unfinished_children: Dict[NodeId, int] = {}

    # -- queries ----------------------------------------------------------
    def is_finished(self, node: NodeId) -> bool:
        return node in self.finished_value

    # -- updates ------------------------------------------------------------
    def expand(self, node: NodeId) -> None:
        if node in self.expanded:
            raise ModelViolationError(f"node {node!r} expanded twice")
        self.expanded.add(node)
        if self.tree.is_leaf(node):
            self._mark_touched(node)
            self._finish(node, float(self.tree.leaf_value(node)))

    def prune(self, node: NodeId) -> None:
        if node in self.pruned:
            return
        if node in self.finished_value:
            raise ModelViolationError(
                f"pruning rule applies only to unfinished nodes: {node!r}"
            )
        self.pruned.add(node)
        parent = self.tree.parent(node)
        if parent is not None:
            self._child_settled(parent)

    def _mark_touched(self, node: NodeId) -> None:
        for anc in self.tree.ancestors(node):
            if anc in self.touched:
                break
            self.touched.add(anc)

    def _finish(self, node: NodeId, val: float) -> None:
        if node in self.finished_value:
            return
        self.finished_value[node] = val
        parent = self.tree.parent(node)
        if parent is not None:
            self._child_settled(parent)

    def _child_settled(self, node: NodeId) -> None:
        if node in self.finished_value or node in self.pruned:
            return
        if node not in self.expanded:  # pragma: no cover - defensive
            raise ModelViolationError(
                f"child of unexpanded node {node!r} settled"
            )
        remaining = self._unfinished_children.get(node)
        if remaining is None:
            remaining = self.tree.arity(node)
        remaining -= 1
        self._unfinished_children[node] = remaining
        if remaining > 0:
            return
        vals = [
            self.finished_value[c]
            for c in self.tree.children(node)
            if c not in self.pruned
        ]
        if not vals:
            raise PruningInvariantError(
                f"every child of {node!r} was pruned while it survived"
            )
        if self.tree.node_type(node) is NodeType.MAX:
            self._finish(node, max(vals))
        else:
            self._finish(node, min(vals))


def prune_expansion_to_fixpoint(state: ExpansionAlphaBetaState) -> int:
    """Apply the pruning rule over T* until fixpoint; free in the model."""
    total = 0
    while True:
        pruned_now = _prune_pass(state)
        total += pruned_now
        if pruned_now == 0:
            return total


def _prune_pass(state: ExpansionAlphaBetaState) -> int:
    tree = state.tree
    root = tree.root
    if state.is_finished(root) or root not in state.expanded:
        return 0
    count = 0
    stack = [(root, -math.inf, math.inf)]
    while stack:
        node, alpha, beta = stack.pop()
        if node in state.pruned or node in state.finished_value:
            continue
        is_max = tree.node_type(node) is NodeType.MAX
        finished_vals = [
            state.finished_value[c]
            for c in tree.children(node)
            if c in state.finished_value and c not in state.pruned
        ]
        if is_max:
            child_alpha = max([alpha] + finished_vals)
            child_beta = beta
        else:
            child_alpha = alpha
            child_beta = min([beta] + finished_vals)
        for child in tree.children(node):
            if child in state.pruned or child in state.finished_value:
                continue
            if child_alpha >= child_beta:
                state.prune(child)
                count += 1
                if node in state.finished_value or node in state.pruned:
                    break
                continue
            if child in state.expanded and child in state.touched:
                stack.append((child, child_alpha, child_beta))
    return count


def select_expansion_frontier(
    tree: GameTree, state: ExpansionAlphaBetaState, width: int
) -> List[NodeId]:
    """Frontier nodes of T-tilde over T* with pruning number <= width."""
    out: List[NodeId] = []
    root = tree.root
    if state.is_finished(root) or root in state.pruned:
        return out
    stack = [(root, width)]
    while stack:
        node, budget = stack.pop()
        if node not in state.expanded:
            out.append(node)
            continue
        frames = []
        unfinished_seen = 0
        for child in tree.children(node):
            if child in state.pruned or child in state.finished_value:
                continue
            remaining = budget - unfinished_seen
            if remaining < 0:
                break
            frames.append((child, remaining))
            unfinished_seen += 1
        stack.extend(reversed(frames))
    return out


class NAlphaBetaWidthPolicy:
    """N-Parallel alpha-beta of width w (w = 0: N-Sequential)."""

    def __init__(self, width: int):
        if width < 0:
            raise ValueError("width must be >= 0")
        self.width = width
        self.name = f"n-parallel-alpha-beta(w={width})"

    def __call__(self, tree: GameTree, state: ExpansionAlphaBetaState):
        return select_expansion_frontier(tree, state, self.width)


def run_expansion_minmax(
    tree: GameTree,
    policy: Callable[[GameTree, ExpansionAlphaBetaState], List[NodeId]],
    *,
    keep_batches: bool = False,
    on_step=None,
    max_steps: Optional[int] = None,
) -> EvalResult:
    """Run a node-expansion alpha-beta policy; return value and trace."""
    state = ExpansionAlphaBetaState(tree)
    trace = ExecutionTrace(keep_batches=keep_batches)
    expanded_order: List[NodeId] = []
    root = tree.root

    step = 0
    while not state.is_finished(root):
        batch = policy(tree, state)
        if not batch:
            raise ModelViolationError(
                f"policy {getattr(policy, 'name', policy)!r} selected no "
                f"frontier nodes while the root is unfinished"
            )
        for node in batch:
            state.expand(node)
        prune_expansion_to_fixpoint(state)
        trace.record(batch)
        expanded_order.extend(batch)
        if on_step is not None:
            on_step(state, step, batch)
        step += 1
        if max_steps is not None and step > max_steps:
            raise ModelViolationError(f"exceeded {max_steps} steps")

    return EvalResult(state.finished_value[root], trace, expanded_order)


def n_sequential_alpha_beta(tree: GameTree, **kw) -> EvalResult:
    """N-Sequential alpha-beta: expand the leftmost frontier node."""
    return run_expansion_minmax(tree, NAlphaBetaWidthPolicy(0), **kw)


def n_parallel_alpha_beta(
    tree: GameTree, width: int = 1, **kw
) -> EvalResult:
    """N-Parallel alpha-beta of the given width."""
    return run_expansion_minmax(tree, NAlphaBetaWidthPolicy(width), **kw)
