"""N-Sequential SOLVE and N-Parallel SOLVE wrappers (Section 5).

``n_sequential_solve`` is the paper's S-SOLVE* — a left-to-right
depth-first search that generates the tree as it goes — and
``n_parallel_solve`` its width-w parallelization P-SOLVE*.  Theorem 4:
width 1 achieves a c(n+1) speed-up in expansions-per-step on uniform
trees, with n+1 processors.
"""

from __future__ import annotations

from ...errors import BackendUnsupportedError
from ...models.accounting import EvalResult
from ...trees.base import GameTree
from ..parallel_solve import resolve_backend
from .engine import (
    IncrementalNWidthPolicy,
    NSequentialPolicy,
    NWidthPolicy,
    run_expansion,
)


def n_sequential_solve(tree: GameTree, **kw) -> EvalResult:
    """Expand the leftmost frontier node at each step (S-SOLVE*)."""
    return run_expansion(tree, NSequentialPolicy(), **kw)


def n_parallel_solve(
    tree: GameTree,
    width: int = 1,
    *,
    backend: str = "incremental",
    **kw,
) -> EvalResult:
    """Expand all frontier nodes with pruning number <= width (P-SOLVE*).

    ``backend`` selects the frontier engine (see
    :func:`repro.core.parallel_solve.parallel_solve`).  The arena
    backend lowers a *fixed* tree to arrays up front, which the
    expansion model's grow-as-you-go frontier contradicts, so it is
    rejected here rather than silently falling back.
    """
    backend = resolve_backend(backend)
    if backend == "arena":
        raise BackendUnsupportedError(
            "engine 'n-parallel-solve' has no arena backend "
            "(the expansion model grows the tree as it goes, so there "
            "is nothing to lower up front); use 'incremental' or "
            "'rescan'",
            engine="n-parallel-solve", backend="arena",
        )
    if backend == "incremental":
        policy = IncrementalNWidthPolicy(width)
        policy.recorder = kw.get("recorder")
        return run_expansion(tree, policy, **kw)
    return run_expansion(tree, NWidthPolicy(width), **kw)
