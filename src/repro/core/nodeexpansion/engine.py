"""Step-synchronous engine for the node-expansion model (Boolean trees).

One basic step = select a batch of frontier nodes (per policy) and
expand all of them simultaneously.  Running time is the number of steps,
total work the number of expansions, processors the maximum batch size.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ...errors import ModelViolationError
from ...models.accounting import EvalResult, ExecutionTrace
from ...telemetry import Recorder, live
from ...trees.base import GameTree, NodeId
from ..frontier import FrontierIndex, _IncrementalPolicy
from .state import ExpansionState

ExpansionPolicy = Callable[[GameTree, ExpansionState], List[NodeId]]

ExpansionStepHook = Callable[[ExpansionState, int, List[NodeId]], None]


def select_frontier_by_pruning_number(
    tree: GameTree, state: ExpansionState, width: int
) -> List[NodeId]:
    """Frontier nodes of T* with pruning number <= ``width``.

    The walk mirrors the leaf-evaluation selection, but its terminals
    are *unexpanded* live nodes rather than leaves — an expanded node is
    an interior point of T* and the walk descends through it.
    """
    out: List[NodeId] = []
    root = tree.root
    if root in state.value:
        return out
    stack = [(root, width)]
    while stack:
        node, budget = stack.pop()
        if node not in state.expanded:
            out.append(node)
            continue
        frames = []
        live_seen = 0
        for child in tree.children(node):
            if child in state.value:
                continue
            remaining = budget - live_seen
            if remaining < 0:
                break
            frames.append((child, remaining))
            live_seen += 1
        stack.extend(reversed(frames))
    return out


def select_leftmost_frontier(
    tree: GameTree, state: ExpansionState, limit: int
) -> List[NodeId]:
    """The leftmost ``limit`` frontier nodes of T*."""
    out: List[NodeId] = []
    root = tree.root
    if root in state.value:
        return out
    stack = [root]
    while stack and len(out) < limit:
        node = stack.pop()
        if node not in state.expanded:
            out.append(node)
            continue
        kids = [c for c in tree.children(node) if c not in state.value]
        stack.extend(reversed(kids))
    return out


class NSequentialPolicy:
    """N-Sequential SOLVE: expand the leftmost frontier node."""

    name = "n-sequential-solve"

    def __call__(self, tree: GameTree, state: ExpansionState):
        return select_leftmost_frontier(tree, state, 1)


class NWidthPolicy:
    """N-Parallel SOLVE of width w (w = 0: N-Sequential SOLVE)."""

    def __init__(self, width: int):
        if width < 0:
            raise ValueError("width must be >= 0")
        self.width = width
        self.name = f"n-parallel-solve(w={width})"

    def __call__(self, tree: GameTree, state: ExpansionState):
        return select_frontier_by_pruning_number(tree, state, self.width)


class IncrementalNWidthPolicy(_IncrementalPolicy):
    """N-Parallel SOLVE width-w selection, incrementally maintained.

    Step-for-step identical to :class:`NWidthPolicy`.  The walk's
    terminals are unexpanded live nodes, so the index consumes both
    transition feeds: determinations (settle/splice) and expansions
    (frontier node becomes interior, children join).
    """

    def __init__(self, width: int):
        super().__init__()
        if width < 0:
            raise ValueError("width must be >= 0")
        self.width = width
        self.name = f"n-parallel-solve(w={width}, incremental)"

    def _bind(self, tree: GameTree, state: object) -> FrontierIndex:
        assert isinstance(state, ExpansionState)
        expanded = state.expanded

        def terminal(node: NodeId) -> bool:
            return node not in expanded

        idx = FrontierIndex(
            tree,
            state,
            width=self.width,
            settled=state.value.__contains__,
            terminal=terminal,
        )
        state.subscribe(idx.on_settled, idx.on_expanded)
        return idx

    def __call__(self, tree: GameTree, state: ExpansionState):
        return self.index_for(tree, state).batch()


def run_expansion(
    tree: GameTree,
    policy: ExpansionPolicy,
    *,
    keep_batches: bool = False,
    on_step: Optional[ExpansionStepHook] = None,
    max_steps: Optional[int] = None,
    recorder: Optional[Recorder] = None,
) -> EvalResult:
    """Evaluate a Boolean tree in the node-expansion model."""
    rec = live(recorder)
    state = ExpansionState(tree)
    trace = ExecutionTrace(keep_batches=keep_batches)
    expanded_order: List[NodeId] = []
    root = tree.root

    step = 0
    while root not in state.value:
        batch = policy(tree, state)
        if not batch:
            raise ModelViolationError(
                f"policy {getattr(policy, 'name', policy)!r} selected no "
                f"frontier nodes while the root is undetermined"
            )
        for node in batch:
            state.expand(node)
        trace.record(batch)
        expanded_order.extend(batch)
        if rec is not None:
            rec.advance(step + 1)
            rec.add_span(
                "step", step, step + 1, track="expansion",
                degree=len(batch),
            )
            rec.count("expansion.nodes_expanded", len(batch))
            rec.sample("expansion.degree", len(batch), track="expansion")
        if on_step is not None:
            on_step(state, step, batch)
        step += 1
        if max_steps is not None and step > max_steps:
            raise ModelViolationError(f"exceeded {max_steps} steps")

    if rec is not None:
        rec.count("expansion.steps", step)
        rec.gauge("expansion.processors", trace.processors)
    return EvalResult(state.value[root], trace, expanded_order)
