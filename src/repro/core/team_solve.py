"""Team SOLVE — the naive parallelization (Section 2, Proposition 1).

At each step the team evaluates the leftmost ``p`` live leaves.  On
uniform trees this guarantees only an Omega(sqrt(p)) speed-up over
Sequential SOLVE, and instances exist where sqrt(p) is also an upper
bound (see :func:`repro.trees.generators.team_solve_hard_instance`).
It is the baseline that Parallel SOLVE's width strategy improves on.
"""

from __future__ import annotations

from ..models.accounting import EvalResult
from ..trees.base import GameTree
from .policies import TeamPolicy
from .solve_engine import run_boolean


def team_solve(
    tree: GameTree,
    processors: int,
    *,
    keep_batches: bool = False,
) -> EvalResult:
    """Run Team SOLVE with ``processors`` processors on a Boolean tree."""
    return run_boolean(
        tree, TeamPolicy(processors), keep_batches=keep_batches
    )
