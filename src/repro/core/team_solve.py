"""Team SOLVE — the naive parallelization (Section 2, Proposition 1).

At each step the team evaluates the leftmost ``p`` live leaves.  On
uniform trees this guarantees only an Omega(sqrt(p)) speed-up over
Sequential SOLVE, and instances exist where sqrt(p) is also an upper
bound (see :func:`repro.trees.generators.team_solve_hard_instance`).
It is the baseline that Parallel SOLVE's width strategy improves on.
"""

from __future__ import annotations

from typing import Optional

from ..models.accounting import EvalResult
from ..telemetry import Recorder
from ..trees.base import GameTree
from .arena import arena_team_solve
from .frontier import IncrementalTeamPolicy
from .parallel_solve import resolve_backend
from .policies import TeamPolicy
from .solve_engine import Policy, run_boolean


def team_solve(
    tree: GameTree,
    processors: int,
    *,
    keep_batches: bool = False,
    backend: str = "incremental",
    recorder: Optional[Recorder] = None,
) -> EvalResult:
    """Run Team SOLVE with ``processors`` processors on a Boolean tree.

    ``backend`` selects the frontier engine (see
    :func:`repro.core.parallel_solve.parallel_solve`).
    """
    policy: Policy
    backend = resolve_backend(backend)
    if backend == "arena":
        return arena_team_solve(
            tree, processors, keep_batches=keep_batches, recorder=recorder
        )
    if backend == "incremental":
        policy = IncrementalTeamPolicy(processors)
        policy.recorder = recorder
    else:
        policy = TeamPolicy(processors)
    return run_boolean(
        tree, policy, keep_batches=keep_batches, recorder=recorder
    )
