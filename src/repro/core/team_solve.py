"""Team SOLVE — the naive parallelization (Section 2, Proposition 1).

At each step the team evaluates the leftmost ``p`` live leaves.  On
uniform trees this guarantees only an Omega(sqrt(p)) speed-up over
Sequential SOLVE, and instances exist where sqrt(p) is also an upper
bound (see :func:`repro.trees.generators.team_solve_hard_instance`).
It is the baseline that Parallel SOLVE's width strategy improves on.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..models.accounting import EvalResult
from ..telemetry import Recorder
from ..trees.base import GameTree
from .arena import arena_team_solve
from .frontier import IncrementalTeamPolicy
from .parallel_solve import (
    check_shm_support,
    resolve_backend,
    resolve_executor,
)
from .policies import TeamPolicy
from .solve_engine import Policy, run_boolean

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .shm import ShmOptions


def team_solve(
    tree: GameTree,
    processors: int,
    *,
    keep_batches: bool = False,
    backend: str = "incremental",
    executor: str = "inline",
    shm_options: "Optional[ShmOptions]" = None,
    recorder: Optional[Recorder] = None,
) -> EvalResult:
    """Run Team SOLVE with ``processors`` processors on a Boolean tree.

    ``backend`` selects the frontier engine and ``executor`` the leaf
    evaluation site (see
    :func:`repro.core.parallel_solve.parallel_solve`).
    """
    policy: Policy
    backend = resolve_backend(backend)
    if resolve_executor(executor) == "shm":
        check_shm_support("team-solve", backend)
        from .shm import shm_team_solve

        return shm_team_solve(
            tree, processors,
            keep_batches=keep_batches,
            recorder=recorder,
            options=shm_options,
        )
    if backend == "arena":
        return arena_team_solve(
            tree, processors, keep_batches=keep_batches, recorder=recorder
        )
    if backend == "incremental":
        policy = IncrementalTeamPolicy(processors)
        policy.recorder = recorder
    else:
        policy = TeamPolicy(processors)
    return run_boolean(
        tree, policy, keep_batches=keep_batches, recorder=recorder
    )
