"""Step-synchronous engine for the leaf-evaluation model (Boolean trees).

One basic step = select a batch of live leaves (per policy), evaluate
all of them simultaneously, and let determination propagate for free.
The engine is the direct executable form of the paper's algorithm
statements ("At each step, evaluate ...").
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..errors import ModelViolationError
from ..models.accounting import EvalResult, ExecutionTrace
from ..telemetry import Recorder, live
from ..trees.base import GameTree, NodeId
from .status import BooleanState

#: A selection policy: (tree, state) -> batch of live leaves.
Policy = Callable[[GameTree, BooleanState], List[NodeId]]

#: Optional per-step instrumentation hook: (state, step index, batch).
StepHook = Callable[[BooleanState, int, List[NodeId]], None]


def run_boolean(
    tree: GameTree,
    policy: Policy,
    *,
    keep_batches: bool = False,
    on_step: Optional[StepHook] = None,
    max_steps: Optional[int] = None,
    validate_batches: bool = False,
    recorder: Optional[Recorder] = None,
) -> EvalResult:
    """Evaluate a Boolean tree under ``policy``; return value and trace.

    Parameters
    ----------
    keep_batches:
        Store the full batch at every step in the trace (needed by the
        base-path/code analyses; off by default to save memory).
    on_step:
        Called after each step with the updated state — used by
        invariant-checking tests and by analyses that watch liveness.
    max_steps:
        Safety valve for tests; exceeding it raises
        :class:`~repro.errors.ModelViolationError`.
    validate_batches:
        Check every selected leaf against the model's contract (live,
        distinct) before evaluating — for exercising custom policies;
        the built-in policies satisfy the contract by construction.
    recorder:
        Telemetry sink; the logical clock is the basic-step count.
    """
    rec = live(recorder)
    state = BooleanState(tree)
    trace = ExecutionTrace(keep_batches=keep_batches)
    evaluated: List[NodeId] = []
    root = tree.root

    # Height-0 trees need no special case: every policy selects the
    # root leaf itself, so the loop runs exactly one (validated,
    # traced) step.
    step = 0
    while root not in state.value:
        batch = policy(tree, state)
        if not batch:
            raise ModelViolationError(
                f"policy {getattr(policy, 'name', policy)!r} selected no "
                f"leaves while the root is undetermined"
            )
        if validate_batches:
            _validate_batch(tree, state, batch)
        for leaf in batch:
            state.evaluate_leaf(leaf)
        trace.record(batch)
        evaluated.extend(batch)
        if rec is not None:
            rec.advance(step + 1)
            rec.add_span(
                "step", step, step + 1, track="solve", degree=len(batch)
            )
            rec.count("solve.leaves_evaluated", len(batch))
            rec.sample("solve.degree", len(batch), track="solve")
        if on_step is not None:
            on_step(state, step, batch)
        step += 1
        if max_steps is not None and step > max_steps:
            raise ModelViolationError(f"exceeded {max_steps} steps")

    if rec is not None:
        rec.count("solve.steps", step)
        rec.gauge("solve.processors", trace.processors)
    return EvalResult(state.value[root], trace, evaluated)


def _validate_batch(tree: GameTree, state: BooleanState, batch) -> None:
    """Enforce the leaf-evaluation model's contract on a batch."""
    seen = set()
    for leaf in batch:
        if leaf in seen:
            raise ModelViolationError(
                f"policy selected leaf {leaf!r} twice in one step"
            )
        seen.add(leaf)
        if not tree.is_leaf(leaf):
            raise ModelViolationError(
                f"policy selected non-leaf {leaf!r}"
            )
        if not state.is_live(leaf):
            raise ModelViolationError(
                f"policy selected dead leaf {leaf!r}"
            )
