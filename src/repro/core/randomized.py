"""Randomized algorithms (Section 6).

R-Sequential SOLVE is N-Sequential SOLVE acting on a randomly permuted
input tree: at every node the children are visited in a uniformly random
order, with randomization performed lazily, "only to the extent
necessary to determine the steps of the algorithm".  R-Parallel SOLVE,
R-Sequential alpha-beta and R-Parallel alpha-beta extend the same
randomization to the other algorithms.

All functions here take a ``seed``; running the deterministic algorithm
on ``PermutedTree(tree, seed)`` *is* the randomized algorithm.
``estimate_expectation`` averages any of them over a seed ensemble,
giving the quantities E(S*_R) and E(P*_R) of Theorem 5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence

import numpy as np

from ..models.accounting import EvalResult
from ..trees.base import GameTree
from ..trees.permuted import PermutedTree
from .nodeexpansion import (
    n_parallel_alpha_beta,
    n_parallel_solve,
    n_sequential_alpha_beta,
    n_sequential_solve,
)


def r_sequential_solve(tree: GameTree, seed: int) -> EvalResult:
    """R-Sequential SOLVE: random depth-first search (node expansion)."""
    return n_sequential_solve(PermutedTree(tree, seed))


def r_parallel_solve(
    tree: GameTree, width: int = 1, *, seed: int
) -> EvalResult:
    """R-Parallel SOLVE of the given width."""
    return n_parallel_solve(PermutedTree(tree, seed), width)


def r_sequential_alpha_beta(tree: GameTree, seed: int) -> EvalResult:
    """R-Sequential alpha-beta: random-order depth-first alpha-beta."""
    return n_sequential_alpha_beta(PermutedTree(tree, seed))


def r_parallel_alpha_beta(
    tree: GameTree, width: int = 1, *, seed: int
) -> EvalResult:
    """R-Parallel alpha-beta of the given width."""
    return n_parallel_alpha_beta(PermutedTree(tree, seed), width)


@dataclass
class ExpectationEstimate:
    """Sample statistics of a randomized algorithm over a seed ensemble."""

    mean_steps: float
    mean_work: float
    max_processors: int
    std_steps: float
    num_samples: int

    @classmethod
    def from_results(cls, results: Sequence[EvalResult]):
        steps = np.array([r.num_steps for r in results], dtype=float)
        work = np.array([r.total_work for r in results], dtype=float)
        return cls(
            mean_steps=float(steps.mean()),
            mean_work=float(work.mean()),
            max_processors=max(r.processors for r in results),
            std_steps=float(steps.std(ddof=1)) if len(steps) > 1 else 0.0,
            num_samples=len(results),
        )


def estimate_expectation(
    algorithm: Callable[..., EvalResult],
    tree: GameTree,
    seeds: Sequence[int],
    **kwargs,
) -> ExpectationEstimate:
    """Run ``algorithm(tree, seed=s, **kwargs)`` for each seed; aggregate.

    Also checks that every run computed the same root value (they must:
    permutation never changes the value).
    """
    results: List[EvalResult] = [
        algorithm(tree, seed=s, **kwargs) for s in seeds
    ]
    values = {r.value for r in results}
    if len(values) != 1:
        raise AssertionError(
            f"randomized runs disagreed on the root value: {values}"
        )
    return ExpectationEstimate.from_results(results)
