"""Step-synchronous engine for the pruning process (Section 4).

A general step consists of

1. a *leaf-evaluation step*: the policy selects unfinished leaves of
   the current pruned tree and all of them are evaluated; then
2. a maximal sequence of free *propagation steps* (finishing nodes whose
   remaining children are finished) and *pruning steps* (deleting
   unfinished nodes whose alpha-bound reaches their beta-bound).

Bounds follow the paper's definitions: the alpha-bound of v is the
largest value among finished siblings of MIN-ancestors of v (v counts
as its own ancestor), the beta-bound the smallest value among finished
siblings of MAX-ancestors.  Since a *finished* sibling of an unfinished
child u of a MAX node x is just a finished child of x, the bounds are
computed in one top-down pass: descending from x into u,

* x MAX:  alpha(u) = max(alpha(x), max value of x's finished children)
* x MIN:  beta(u)  = min(beta(x),  min value of x's finished children)

The pruning pass repeats until fixpoint: pruning a child can finish its
parent, which sharpens bounds elsewhere.  Because bounds only ever
tighten, working with momentarily stale bounds merely delays a prune to
the next round of the fixpoint loop — it never prunes wrongly.
"""

from __future__ import annotations

import math
from typing import Callable, List, Optional

from ...errors import ModelViolationError
from ...models.accounting import EvalResult, ExecutionTrace
from ...telemetry import Recorder, live
from ...trees.base import GameTree, NodeId
from ...types import NodeType
from ..frontier import FrontierIndex, _IncrementalPolicy
from .state import AlphaBetaState

#: A selection policy: (tree, state) -> batch of unfinished leaves.
MinmaxPolicy = Callable[[GameTree, AlphaBetaState], List[NodeId]]

#: Per-step hook: (state, step index, batch).
MinmaxStepHook = Callable[[AlphaBetaState, int, List[NodeId]], None]


def prune_to_fixpoint(state: AlphaBetaState) -> int:
    """Apply the pruning rule until nothing more can be deleted.

    Returns the number of nodes pruned.  Cost is not charged to the
    model (pruning and propagation are free).
    """
    total = 0
    while True:
        pruned_now = _prune_pass(state)
        total += pruned_now
        if pruned_now == 0:
            return total


def _prune_pass(state: AlphaBetaState) -> int:
    tree = state.tree
    root = tree.root
    if state.is_finished(root):
        return 0
    count = 0
    stack = [(root, -math.inf, math.inf)]
    while stack:
        node, alpha, beta = stack.pop()
        if node in state.pruned or node in state.finished_value:
            continue  # settled by a cascade after being pushed
        is_max = tree.node_type(node) is NodeType.MAX
        finished_vals = [
            state.finished_value[c]
            for c in tree.children(node)
            if c in state.finished_value and c not in state.pruned
        ]
        if is_max:
            child_alpha = max([alpha] + finished_vals)
            child_beta = beta
        else:
            child_alpha = alpha
            child_beta = min([beta] + finished_vals)
        for child in tree.children(node):
            if child in state.pruned or child in state.finished_value:
                continue
            if child_alpha >= child_beta:
                state.prune(child)
                count += 1
                if node in state.finished_value or node in state.pruned:
                    break  # the prune cascaded; siblings are settled
                continue
            if not tree.is_leaf(child) and child in state.touched:
                stack.append((child, child_alpha, child_beta))
    return count


def select_unfinished_by_pruning_number(
    tree: GameTree, state: AlphaBetaState, width: int
) -> List[NodeId]:
    """Unfinished leaves of T-tilde with pruning number <= ``width``.

    Same budgeted DFS as the Boolean case, with "determined" replaced by
    "finished" and pruned children excluded from both the walk and the
    sibling counts.
    """
    out: List[NodeId] = []
    root = tree.root
    if state.is_finished(root) or root in state.pruned:
        return out
    stack = [(root, width)]
    while stack:
        node, budget = stack.pop()
        if tree.is_leaf(node):
            out.append(node)
            continue
        frames = []
        unfinished_seen = 0
        for child in tree.children(node):
            if child in state.pruned:
                continue  # not part of T-tilde
            if child in state.finished_value:
                continue  # finished: not an unfinished sibling
            remaining = budget - unfinished_seen
            if remaining < 0:
                break
            frames.append((child, remaining))
            unfinished_seen += 1
        stack.extend(reversed(frames))
    return out


class AlphaBetaWidthPolicy:
    """Parallel alpha-beta of width w (w = 0: Sequential alpha-beta)."""

    def __init__(self, width: int):
        if width < 0:
            raise ValueError("width must be >= 0")
        self.width = width
        self.name = f"parallel-alpha-beta(w={width})"

    def __call__(
        self, tree: GameTree, state: AlphaBetaState
    ) -> List[NodeId]:
        return select_unfinished_by_pruning_number(tree, state, self.width)


class IncrementalAlphaBetaWidthPolicy(_IncrementalPolicy):
    """Width-w alpha-beta selection, incrementally maintained.

    Step-for-step identical to :class:`AlphaBetaWidthPolicy`:
    "settled" is finished-or-pruned, and the state's transition feed
    (finishes *and* prunes, children before parents) keeps the index
    current across the free propagation/pruning cascades.
    """

    def __init__(self, width: int):
        super().__init__()
        if width < 0:
            raise ValueError("width must be >= 0")
        self.width = width
        self.name = f"parallel-alpha-beta(w={width}, incremental)"

    def _bind(self, tree: GameTree, state: object) -> FrontierIndex:
        assert isinstance(state, AlphaBetaState)
        finished = state.finished_value
        pruned = state.pruned

        def settled(node: NodeId) -> bool:
            return node in finished or node in pruned

        idx = FrontierIndex(tree, state, width=self.width, settled=settled)
        state.subscribe(idx.on_settled)
        return idx

    def __call__(
        self, tree: GameTree, state: AlphaBetaState
    ) -> List[NodeId]:
        return self.index_for(tree, state).batch()


def run_minmax(
    tree: GameTree,
    policy: MinmaxPolicy,
    *,
    keep_batches: bool = False,
    on_step: Optional[MinmaxStepHook] = None,
    max_steps: Optional[int] = None,
    recorder: Optional[Recorder] = None,
) -> EvalResult:
    """Run the pruning process under ``policy``; return value and trace."""
    rec = live(recorder)
    state = AlphaBetaState(tree)
    trace = ExecutionTrace(keep_batches=keep_batches)
    evaluated: List[NodeId] = []
    root = tree.root

    step = 0
    while not state.is_finished(root):
        batch = policy(tree, state)
        if not batch:
            raise ModelViolationError(
                f"policy {getattr(policy, 'name', policy)!r} selected no "
                f"leaves while the root is unfinished"
            )
        for leaf in batch:
            state.finish_leaf(leaf)
        pruned = prune_to_fixpoint(state)
        trace.record(batch)
        evaluated.extend(batch)
        if rec is not None:
            rec.advance(step + 1)
            rec.add_span(
                "step", step, step + 1, track="alphabeta",
                degree=len(batch), pruned=pruned,
            )
            rec.count("alphabeta.leaves_evaluated", len(batch))
            if pruned:
                rec.count("alphabeta.pruned", pruned)
            rec.sample("alphabeta.degree", len(batch), track="alphabeta")
        if on_step is not None:
            on_step(state, step, batch)
        step += 1
        if max_steps is not None and step > max_steps:
            raise ModelViolationError(f"exceeded {max_steps} steps")

    if rec is not None:
        rec.count("alphabeta.steps", step)
        rec.gauge("alphabeta.processors", trace.processors)
    return EvalResult(state.finished_value[root], trace, evaluated)
