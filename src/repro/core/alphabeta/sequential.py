"""Classical depth-first alpha-beta and plain minimax baselines.

``alpha_beta`` is the textbook Knuth–Moore procedure (fail-soft, deep
cutoffs, cut on v >= beta / v <= alpha).  It serves two purposes:

* it is the *sequential baseline* whose leaf count S-tilde(T) Theorem 3
  compares against, and
* it is an independent oracle: the pruning-process engine with the
  width-0 policy must evaluate exactly the same leaves in the same
  order (enforced by the test suite).

``minimax`` evaluates every leaf — the no-pruning baseline.
"""

from __future__ import annotations

import math
from typing import List

from ...models.accounting import EvalResult, ExecutionTrace
from ...trees.base import GameTree, NodeId
from ...types import NodeType


def alpha_beta(tree: GameTree) -> EvalResult:
    """Left-to-right alpha-beta; one degree-1 step per leaf evaluated."""
    evaluated: List[NodeId] = []
    value = _ab(tree, tree.root, -math.inf, math.inf, evaluated)
    trace = ExecutionTrace()
    for leaf in evaluated:
        trace.record([leaf])
    return EvalResult(value, trace, evaluated)


def _ab(
    tree: GameTree,
    node: NodeId,
    alpha: float,
    beta: float,
    evaluated: List[NodeId],
) -> float:
    if tree.is_leaf(node):
        evaluated.append(node)
        return float(tree.leaf_value(node))
    if tree.node_type(node) is NodeType.MAX:
        value = -math.inf
        for child in tree.children(node):
            value = max(value, _ab(tree, child, alpha, beta, evaluated))
            alpha = max(alpha, value)
            if value >= beta:
                break
        return value
    value = math.inf
    for child in tree.children(node):
        value = min(value, _ab(tree, child, alpha, beta, evaluated))
        beta = min(beta, value)
        if value <= alpha:
            break
    return value


def alpha_beta_leaf_set(tree: GameTree) -> List[NodeId]:
    """L-tilde(T): leaves Sequential alpha-beta evaluates, in order."""
    return alpha_beta(tree).evaluated


def minimax(tree: GameTree) -> EvalResult:
    """Full minimax: evaluates every leaf (the no-pruning baseline)."""
    evaluated: List[NodeId] = []
    value = _mm(tree, tree.root, evaluated)
    trace = ExecutionTrace()
    for leaf in evaluated:
        trace.record([leaf])
    return EvalResult(value, trace, evaluated)


def _mm(tree: GameTree, node: NodeId, evaluated: List[NodeId]) -> float:
    if tree.is_leaf(node):
        evaluated.append(node)
        return float(tree.leaf_value(node))
    child_vals = [_mm(tree, c, evaluated) for c in tree.children(node)]
    if tree.node_type(node) is NodeType.MAX:
        return max(child_vals)
    return min(child_vals)
