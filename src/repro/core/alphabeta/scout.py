"""SCOUT (Pearl 1984) — the test-then-search variant of alpha-beta.

Section 6's remark motivates including it: a randomized version of
SCOUT is known to be optimal among randomized sequential algorithms for
uniform MIN/MAX trees (Saks & Wigderson 1986), whereas the analogous
question for R-Sequential alpha-beta is open.  We provide SCOUT as an
additional sequential baseline for the benchmark suite.

SCOUT evaluates the first child exactly, then *tests* each remaining
child against the current value with a Boolean-cheap test search, only
re-searching children that pass the test.  Leaves may be visited by
several test calls; the leaf-evaluation model charges every visit, so
the trace records evaluation *events* (``distinct_leaves`` reports the
deduplicated count).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ...models.accounting import EvalResult, ExecutionTrace
from ...trees.base import GameTree, NodeId
from ...types import NodeType


@dataclass
class ScoutResult(EvalResult):
    """SCOUT outcome; ``evaluated`` lists evaluation events in order."""

    @property
    def distinct_leaves(self) -> int:
        return len(set(self.evaluated))


def scout(tree: GameTree) -> ScoutResult:
    """Evaluate a MIN/MAX tree with SCOUT."""
    events: List[NodeId] = []
    value = _scout_eval(tree, tree.root, events)
    trace = ExecutionTrace()
    for leaf in events:
        trace.record([leaf])
    return ScoutResult(value, trace, events)


def _scout_eval(tree: GameTree, node: NodeId, events: List[NodeId]) -> float:
    if tree.is_leaf(node):
        events.append(node)
        return float(tree.leaf_value(node))
    kids = tree.children(node)
    value = _scout_eval(tree, kids[0], events)
    is_max = tree.node_type(node) is NodeType.MAX
    for child in kids[1:]:
        if is_max:
            # Re-search only if the child can beat the current value.
            if _scout_test_gt(tree, child, value, events):
                value = _scout_eval(tree, child, events)
        else:
            if _scout_test_lt(tree, child, value, events):
                value = _scout_eval(tree, child, events)
    return value


def _scout_test_gt(
    tree: GameTree, node: NodeId, bound: float, events: List[NodeId]
) -> bool:
    """Whether val(node) > bound, by Boolean short-circuit search."""
    if tree.is_leaf(node):
        events.append(node)
        return float(tree.leaf_value(node)) > bound
    if tree.node_type(node) is NodeType.MAX:
        return any(
            _scout_test_gt(tree, c, bound, events)
            for c in tree.children(node)
        )
    return all(
        _scout_test_gt(tree, c, bound, events)
        for c in tree.children(node)
    )


def _scout_test_lt(
    tree: GameTree, node: NodeId, bound: float, events: List[NodeId]
) -> bool:
    """Whether val(node) < bound, by Boolean short-circuit search."""
    if tree.is_leaf(node):
        events.append(node)
        return float(tree.leaf_value(node)) < bound
    if tree.node_type(node) is NodeType.MAX:
        return all(
            _scout_test_lt(tree, c, bound, events)
            for c in tree.children(node)
        )
    return any(
        _scout_test_lt(tree, c, bound, events)
        for c in tree.children(node)
    )
