"""Pruned-tree state for the alpha-beta pruning process (Section 4).

The paper's general method maintains a *pruned tree* T-tilde, obtained
from the input tree by deleting subtrees, with the invariant that the
root value of T-tilde equals the root value of T (Theorem 2).  A node
is *finished* when every leaf of its pruned subtree has been evaluated;
finished nodes have a value in T-tilde.  Unfinished nodes may be
*pruned* (deleted) when their alpha-bound meets their beta-bound.

This class tracks finishes, prunes and the cascades between them:

* finishing the last unfinished (non-pruned) child of a node finishes
  the node with the MAX/MIN of its remaining children's values;
* pruning a child removes it from the node's unfinished count and can
  therefore also finish the node.

Bounds themselves are computed top-down by the engine's pruning pass;
the state only stores what is monotone (finished values, pruned flags).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set

from ...errors import ModelViolationError, PruningInvariantError
from ...trees.base import GameTree, NodeId
from ...types import NodeType


class AlphaBetaState:
    """Evaluation state of the pruning process over a MIN/MAX tree."""

    def __init__(self, tree: GameTree):
        self.tree = tree
        #: value of each finished node in the pruned tree.
        self.finished_value: Dict[NodeId, float] = {}
        #: nodes deleted by the pruning rule (subtree roots).
        self.pruned: Set[NodeId] = set()
        #: leaves that have been evaluated.
        self.evaluated: Set[NodeId] = set()
        #: nodes with at least one evaluated leaf in their subtree; the
        #: pruning pass only needs to descend into these.
        self.touched: Set[NodeId] = set()
        self._unfinished_children: Dict[NodeId, int] = {}
        self._observers: List[Callable[[NodeId], None]] = []

    def subscribe(self, on_settled: Callable[[NodeId], None]) -> None:
        """Call ``on_settled(node)`` whenever a node finishes or is pruned.

        Fired immediately after the transition is recorded and before
        the cascade reaches the parent, so observers always see
        children settle before their ancestors.  A node settles at most
        once (finished and pruned are mutually exclusive).
        """
        self._observers.append(on_settled)

    # -- queries ----------------------------------------------------------
    def is_finished(self, node: NodeId) -> bool:
        return node in self.finished_value

    def is_pruned_here(self, node: NodeId) -> bool:
        """Whether ``node`` itself carries a pruned flag."""
        return node in self.pruned

    def in_pruned_tree(self, node: NodeId) -> bool:
        """Whether ``node`` is still part of T-tilde (no pruned ancestor)."""
        for anc in self.tree.ancestors(node):
            if anc in self.pruned:
                return False
        return True

    def root_value(self) -> Optional[float]:
        return self.finished_value.get(self.tree.root)

    def pruning_number(self, leaf: NodeId) -> int:
        """Unfinished left-siblings of the ancestors of ``leaf`` in T-tilde.

        Reference implementation used for cross-checking the budgeted
        selection DFS.
        """
        count = 0
        for anc in self.tree.ancestors(leaf):
            for sib in self.tree.left_siblings(anc):
                if sib not in self.pruned and sib not in self.finished_value:
                    count += 1
        return count

    # -- updates ------------------------------------------------------------
    def finish_leaf(self, leaf: NodeId) -> float:
        """Evaluate ``leaf``, finishing it, and cascade finishes upward."""
        if leaf in self.evaluated:
            raise ModelViolationError(f"leaf {leaf!r} evaluated twice")
        if not self.tree.is_leaf(leaf):
            raise ModelViolationError(f"{leaf!r} is not a leaf")
        self.evaluated.add(leaf)
        val = float(self.tree.leaf_value(leaf))
        self._mark_touched(leaf)
        self._finish(leaf, val)
        return val

    def prune(self, node: NodeId) -> None:
        """Delete unfinished ``node`` from T-tilde; cascade to the parent."""
        if node in self.pruned:
            return
        if node in self.finished_value:
            raise ModelViolationError(
                f"pruning rule applies only to unfinished nodes: {node!r}"
            )
        self.pruned.add(node)
        for notify in self._observers:
            notify(node)
        parent = self.tree.parent(node)
        if parent is not None:
            self._child_settled(parent)

    # -- internals -----------------------------------------------------------
    def _mark_touched(self, node: NodeId) -> None:
        for anc in self.tree.ancestors(node):
            if anc in self.touched:
                break
            self.touched.add(anc)

    def _finish(self, node: NodeId, val: float) -> None:
        if node in self.finished_value:
            return
        self.finished_value[node] = val
        for notify in self._observers:
            notify(node)
        parent = self.tree.parent(node)
        if parent is not None:
            self._child_settled(parent)

    def _child_settled(self, node: NodeId) -> None:
        """A child of ``node`` was finished or pruned; update the count."""
        if node in self.finished_value or node in self.pruned:
            return
        remaining = self._unfinished_children.get(node)
        if remaining is None:
            remaining = self.tree.arity(node)
        remaining -= 1
        self._unfinished_children[node] = remaining
        if remaining > 0:
            return
        vals = [
            self.finished_value[c]
            for c in self.tree.children(node)
            if c not in self.pruned
        ]
        if not vals:
            raise PruningInvariantError(
                f"every child of {node!r} was pruned while {node!r} "
                f"survived — the pruning pass violated top-down order"
            )
        if self.tree.node_type(node) is NodeType.MAX:
            self._finish(node, max(vals))
        else:
            self._finish(node, min(vals))
