"""MIN/MAX tree evaluation: the alpha-beta pruning process (Section 4)."""

from .engine import (
    AlphaBetaWidthPolicy,
    IncrementalAlphaBetaWidthPolicy,
    prune_to_fixpoint,
    run_minmax,
    select_unfinished_by_pruning_number,
)
from .parallel import parallel_alpha_beta, sequential_alpha_beta
from .scout import ScoutResult, scout
from .sequential import alpha_beta, alpha_beta_leaf_set, minimax
from .sss import sss_leaf_count, sss_star
from .state import AlphaBetaState

__all__ = [
    "AlphaBetaState",
    "AlphaBetaWidthPolicy",
    "IncrementalAlphaBetaWidthPolicy",
    "run_minmax",
    "prune_to_fixpoint",
    "select_unfinished_by_pruning_number",
    "sequential_alpha_beta",
    "parallel_alpha_beta",
    "alpha_beta",
    "alpha_beta_leaf_set",
    "minimax",
    "scout",
    "ScoutResult",
    "sss_star",
    "sss_leaf_count",
]
