"""SSS* (Stockman 1979) — the best-first MIN/MAX comparator.

The paper's related work contrasts parallel alpha-beta with parallel
SSS* (Vornberger 1987, reference [11]); this module supplies the
sequential SSS* baseline so the benchmark suite can reproduce that
comparison's sequential side: SSS* never evaluates more leaves than
left-to-right alpha-beta (Stockman's dominance theorem, which holds
with leftmost tie-breaking on trees with distinct leaf values), at the
price of maintaining a priority queue of partial solution trees.

Implementation notes.  States are (node, LIVE/SOLVED, merit h) as in
Stockman's case table, with the root a MAX node:

* LIVE leaf          -> SOLVED with merit min(h, leaf value)   (this is
  the only place a leaf is evaluated, and what the trace charges);
* LIVE MAX internal  -> all children enter LIVE with merit h (each is
  an alternative strategy choice);
* LIVE MIN internal  -> the first child enters LIVE (a solution tree
  needs every child; siblings enter when predecessors solve);
* SOLVED child of a MIN node -> next sibling LIVE, or parent SOLVED
  when it was the last;
* SOLVED child of a MAX node -> parent SOLVED, and every state below
  the parent is purged (no alternative strategy there can beat h).

The OPEN list pops the highest merit; ties break *leftmost first*
(lexicographically smallest root-path), which is the ordering the
dominance theorem needs.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Dict, List, Tuple

from ...models.accounting import EvalResult, ExecutionTrace
from ...trees.base import GameTree, NodeId
from ...types import NodeType, TreeKind

_LIVE = 0
_SOLVED = 1


def sss_star(tree: GameTree) -> EvalResult:
    """Evaluate a MIN/MAX tree with SSS*; trace = leaf evaluations."""
    if tree.kind is not TreeKind.MINMAX:
        raise ValueError("SSS* evaluates MIN/MAX trees")
    root = tree.root
    evaluated: List[NodeId] = []

    # Heap entries: (-merit, path, tiebreak, node, status).  ``path``
    # is the tuple of child indices from the root, so lexicographic
    # order = leftmost-first.
    counter = itertools.count()
    heap: List[tuple] = []
    paths: Dict[NodeId, Tuple[int, ...]] = {root: ()}
    purged_roots: List[NodeId] = []

    def push(node: NodeId, status: int, merit: float) -> None:
        heapq.heappush(
            heap, (-merit, paths[node], next(counter), node, status)
        )

    def is_purged(node: NodeId) -> bool:
        for anc in tree.ancestors(node):
            if anc in purge_set:
                return True
            if anc == root:
                break
        return False

    purge_set: set = set()

    push(root, _LIVE, float("inf"))
    while True:
        neg_merit, _path, _tb, node, status = heapq.heappop(heap)
        merit = -neg_merit
        if is_purged(node):
            continue
        if status == _SOLVED and node == root:
            trace = ExecutionTrace()
            for leaf in evaluated:
                trace.record([leaf])
            return EvalResult(merit, trace, evaluated)

        if status == _LIVE:
            if tree.is_leaf(node):
                evaluated.append(node)
                value = float(tree.leaf_value(node))
                push(node, _SOLVED, min(merit, value))
            elif tree.node_type(node) is NodeType.MAX:
                for idx, child in enumerate(tree.children(node)):
                    paths[child] = paths[node] + (idx,)
                    push(child, _LIVE, merit)
            else:  # MIN internal: first child only
                child = tree.children(node)[0]
                paths[child] = paths[node] + (0,)
                push(child, _LIVE, merit)
            continue

        # status == _SOLVED, node != root
        parent = tree.parent(node)
        if tree.node_type(parent) is NodeType.MIN:
            siblings = tree.children(parent)
            idx = paths[node][-1]
            if idx + 1 < len(siblings):
                nxt = siblings[idx + 1]
                paths[nxt] = paths[parent] + (idx + 1,)
                push(nxt, _LIVE, merit)
            else:
                push(parent, _SOLVED, merit)
        else:  # parent is MAX: solve it and purge the competition
            paths.setdefault(parent, paths[node][:-1])
            _purge_descendants(heap, tree, parent, purge_set)
            push(parent, _SOLVED, merit)


def _purge_descendants(heap, tree, parent, purge_set) -> None:
    """Mark every *strict* descendant of ``parent`` as purged.

    Implemented as a marker set consulted on pop (lazy deletion):
    entering the parent into the set would also kill the parent's own
    SOLVED entry, so instead each child subtree root is marked.
    """
    if tree.is_leaf(parent):  # pragma: no cover - MAX leaf impossible here
        return
    for child in tree.children(parent):
        purge_set.add(child)


def sss_leaf_count(tree: GameTree) -> int:
    """Number of leaves SSS* evaluates on ``tree``."""
    return sss_star(tree).total_work
