"""Sequential and Parallel alpha-beta as pruning-process policies.

``sequential_alpha_beta`` is the paper's leaf-evaluation-model statement
"at each step, evaluate the leftmost unfinished leaf of the current
pruned tree" — i.e. the width-0 policy.  ``parallel_alpha_beta`` is the
width-w generalisation of Section 4 (Theorem 3: width 1 gives a c(n+1)
speed-up on uniform MIN/MAX trees using n+1 processors).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ...models.accounting import EvalResult
from ...telemetry import Recorder
from ...trees.base import GameTree
from ..arena import ArenaAlphaBetaWidthPolicy, arena_alpha_beta
from ..parallel_solve import (
    check_shm_support,
    resolve_backend,
    resolve_executor,
)
from .engine import (
    AlphaBetaWidthPolicy,
    IncrementalAlphaBetaWidthPolicy,
    MinmaxPolicy,
    run_minmax,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..shm import ShmOptions


def _width_policy(
    width: int, backend: str, recorder: Optional[Recorder] = None
) -> MinmaxPolicy:
    backend = resolve_backend(backend)
    if backend == "arena":
        return ArenaAlphaBetaWidthPolicy(width)
    if backend == "incremental":
        policy = IncrementalAlphaBetaWidthPolicy(width)
        policy.recorder = recorder
        return policy
    return AlphaBetaWidthPolicy(width)


def sequential_alpha_beta(
    tree: GameTree,
    *,
    keep_batches: bool = False,
    backend: str = "incremental",
    executor: str = "inline",
    shm_options: "Optional[ShmOptions]" = None,
    recorder: Optional[Recorder] = None,
) -> EvalResult:
    """The alpha-beta pruning procedure, one leaf per basic step."""
    backend = resolve_backend(backend)
    if resolve_executor(executor) == "shm":
        check_shm_support("sequential-alpha-beta", backend)
        from ..shm import shm_sequential_alpha_beta

        return shm_sequential_alpha_beta(
            tree,
            keep_batches=keep_batches,
            recorder=recorder,
            options=shm_options,
        )
    if backend == "arena":
        return arena_alpha_beta(
            tree, 0, keep_batches=keep_batches, recorder=recorder
        )
    return run_minmax(
        tree,
        _width_policy(0, backend, recorder),
        keep_batches=keep_batches,
        recorder=recorder,
    )


def parallel_alpha_beta(
    tree: GameTree,
    width: int = 1,
    *,
    keep_batches: bool = False,
    on_step=None,
    backend: str = "incremental",
    executor: str = "inline",
    shm_options: "Optional[ShmOptions]" = None,
    recorder: Optional[Recorder] = None,
) -> EvalResult:
    """Parallel alpha-beta of the given width.

    ``backend`` selects the frontier engine: ``"incremental"``
    (default), ``"rescan"`` (the reference per-step recomputation) or
    ``"arena"`` (vectorised struct-of-arrays sweeps).  All produce
    identical per-step batches.

    ``executor`` selects where leaf batches are evaluated:
    ``"inline"`` (in-process, the default) or ``"shm"`` (a
    shared-memory worker pool over the arena columns, see
    :mod:`repro.core.shm`; requires ``backend="arena"``).

    ``recorder`` attaches a telemetry sink (step spans with prune
    counts, degree samples, frontier counters).
    """
    backend = resolve_backend(backend)
    if resolve_executor(executor) == "shm":
        check_shm_support("parallel-alpha-beta", backend, on_step=on_step)
        from ..shm import shm_parallel_alpha_beta

        return shm_parallel_alpha_beta(
            tree, width,
            keep_batches=keep_batches,
            recorder=recorder,
            options=shm_options,
        )
    if backend == "arena" and on_step is None:
        return arena_alpha_beta(
            tree, width, keep_batches=keep_batches, recorder=recorder
        )
    return run_minmax(
        tree,
        _width_policy(width, backend, recorder),
        keep_batches=keep_batches,
        on_step=on_step,
        recorder=recorder,
    )
