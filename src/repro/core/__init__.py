"""Core evaluation algorithms (the paper's contribution).

Leaf-evaluation model, Boolean trees (Section 2):

* :func:`sequential_solve` — the left-to-right algorithm (S-SOLVE);
* :func:`team_solve` — leftmost-p naive parallelization;
* :func:`parallel_solve` — the width-w pruning-number algorithm.

MIN/MAX trees (Section 4) live in :mod:`repro.core.alphabeta`; the
node-expansion model (Section 5) in :mod:`repro.core.nodeexpansion`;
randomized variants (Section 6) in :mod:`repro.core.randomized`.
"""

from .arena import (
    ArenaAlphaBetaWidthPolicy,
    ArenaBoundedWidthPolicy,
    ArenaSaturationPolicy,
    ArenaTeamPolicy,
    ArenaWidthPolicy,
    arena_alpha_beta,
    arena_parallel_solve,
    arena_saturation_solve,
    arena_team_solve,
)
from .frontier import (
    FrontierIndex,
    IncrementalBoundedWidthPolicy,
    IncrementalSaturationPolicy,
    IncrementalSequentialPolicy,
    IncrementalTeamPolicy,
    IncrementalWidthPolicy,
)
from .parallel_solve import (
    BACKENDS,
    EXECUTORS,
    parallel_solve,
    saturation_solve,
    span,
)
from .policies import (
    BoundedWidthPolicy,
    SaturationPolicy,
    SequentialPolicy,
    TeamPolicy,
    WidthPolicy,
    rank_by_urgency,
    select_by_pruning_number,
    select_leftmost_live,
    select_with_pruning_numbers,
)
from .sequential_solve import (
    sequential_leaf_set,
    sequential_solve,
    solve_subtree,
)
from .shm import (
    ShmOptions,
    ShmRunResult,
    ShmSession,
    shm_parallel_alpha_beta,
    shm_parallel_solve,
    shm_saturation_solve,
    shm_sequential_alpha_beta,
    shm_team_solve,
)
from .solve_engine import run_boolean
from .status import BooleanState
from .team_solve import team_solve

__all__ = [
    "sequential_solve",
    "sequential_leaf_set",
    "solve_subtree",
    "team_solve",
    "parallel_solve",
    "saturation_solve",
    "span",
    "run_boolean",
    "BooleanState",
    "BACKENDS",
    "EXECUTORS",
    "ShmOptions",
    "ShmRunResult",
    "ShmSession",
    "shm_parallel_solve",
    "shm_saturation_solve",
    "shm_team_solve",
    "shm_sequential_alpha_beta",
    "shm_parallel_alpha_beta",
    "FrontierIndex",
    "SequentialPolicy",
    "TeamPolicy",
    "WidthPolicy",
    "BoundedWidthPolicy",
    "SaturationPolicy",
    "arena_parallel_solve",
    "arena_saturation_solve",
    "arena_team_solve",
    "arena_alpha_beta",
    "ArenaWidthPolicy",
    "ArenaBoundedWidthPolicy",
    "ArenaTeamPolicy",
    "ArenaSaturationPolicy",
    "ArenaAlphaBetaWidthPolicy",
    "IncrementalWidthPolicy",
    "IncrementalBoundedWidthPolicy",
    "IncrementalTeamPolicy",
    "IncrementalSequentialPolicy",
    "IncrementalSaturationPolicy",
    "rank_by_urgency",
    "select_leftmost_live",
    "select_by_pruning_number",
    "select_with_pruning_numbers",
]
