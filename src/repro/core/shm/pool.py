"""Persistent shared-memory worker pool for per-step leaf batches.

One :class:`ShmPool` serves one published arena
(:class:`~repro.core.shm.segments.ArenaSegments`) for a whole run.  It
reuses :class:`~repro.models.executors.OracleRuntime` wholesale — the
chunking, bounded-backoff crash retries, hung-chunk timeouts, pool
rebuilds and the rebuild circuit breaker all apply unchanged — and
adds only the shared-memory transport:

* the pool's worker processes attach the segments once, in the
  executor *initializer* (so a rebuilt pool re-attaches by itself —
  ``OracleRuntime.restart_pool`` calls the factory again, which
  re-runs the initializer in the fresh workers);
* a step's payloads are just the positions ``0..m-1`` of the batch
  column — one small int each, instead of pickling leaf values out
  and back;
* each worker reads ``batch[pos]`` → ``values[idx]``, runs the leaf
  oracle, and writes ``out[idx]`` in place.  The runtime's ordered
  result list doubles as the step barrier: when ``evaluate`` returns,
  every leaf of the step is in shared memory.

The oracle's return value is also sent back through the future (the
runtime needs per-chunk results for its retry bookkeeping anyway);
:meth:`ShmPool.evaluate_batch` reads the authoritative values from the
``out`` column after the barrier.  Retried chunks simply overwrite
``out`` entries with the same values — the oracle is pure, so a
half-written chunk from a crashed worker is harmless.
"""

from __future__ import annotations

from concurrent.futures import Executor, ProcessPoolExecutor
from typing import Callable, List, Optional

import numpy as np

from ...models.executors import OracleRuntime, RuntimeStats
from ...telemetry import Recorder
from .oracle import identity_oracle
from .segments import ArenaSegments, SegmentSpec

__all__ = ["ShmPool"]

#: A leaf oracle: ``(stored_value, preorder_index) -> value``.
LeafOracle = Callable[[float, int], float]

#: Builds the executor for a pool; receives the segment spec and the
#: leaf oracle so injected executors (tests use thread pools) can run
#: the same initializer the default process pool does.
ExecutorFactory = Callable[[SegmentSpec, LeafOracle], Executor]

# Worker-process state, populated by _worker_init.  With the default
# fork start method a child inherits whatever the coordinator held in
# these globals (an injected in-process executor may have set them);
# the initializer closes any inherited mapping before attaching its
# own, so every worker ends up with a fresh attachment either way.
_WORKER_SEGMENTS: Optional[ArenaSegments] = None
_WORKER_ORACLE: Optional[LeafOracle] = None


def _worker_init(spec: SegmentSpec, oracle: LeafOracle) -> None:
    """Executor initializer: attach the segments, keep the oracle.

    Runs once per worker process (and again in every process of a
    rebuilt pool).  When tests inject a *thread* pool the initializer
    runs in the coordinator process; attaching there is equally valid
    (same segments, second mapping) and exercises the identical code
    path without process-spawn cost.
    """
    global _WORKER_SEGMENTS, _WORKER_ORACLE
    if _WORKER_SEGMENTS is not None:
        _WORKER_SEGMENTS.close()
    _WORKER_SEGMENTS = ArenaSegments.attach(spec)
    _WORKER_ORACLE = oracle


def _worker_eval(pos: int) -> float:
    """Evaluate the leaf at batch position ``pos`` in place."""
    segments, oracle = _WORKER_SEGMENTS, _WORKER_ORACLE
    if segments is None or oracle is None:
        raise RuntimeError("shm worker used before its initializer ran")
    assert segments.batch is not None
    assert segments.values is not None
    assert segments.out is not None
    idx = int(segments.batch[pos])
    value = float(oracle(float(segments.values[idx]), idx))
    segments.out[idx] = value
    return value


class ShmPool:
    """Step-barrier evaluation of leaf batches over shared memory.

    Parameters mirror :class:`~repro.models.executors.OracleRuntime`
    (``chunk_size``, ``max_retries``, backoff, ``chunk_timeout``,
    ``max_consecutive_rebuilds``, injectable ``executor_factory`` and
    ``sleep``); ``workers`` sizes the default process pool and
    ``oracle`` is the per-leaf function (default
    :func:`~repro.core.shm.oracle.identity_oracle`).

    The pool does not own the segments — close order is pool first,
    then segments (sessions in :mod:`repro.core.shm.engine` handle
    both).
    """

    def __init__(
        self,
        segments: ArenaSegments,
        oracle: Optional[LeafOracle] = None,
        *,
        workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
        max_retries: int = 2,
        backoff_seconds: float = 0.05,
        max_backoff_seconds: float = 1.0,
        chunk_timeout: Optional[float] = None,
        max_consecutive_rebuilds: Optional[int] = None,
        executor_factory: Optional[ExecutorFactory] = None,
        sleep: Optional[Callable[[float], None]] = None,
        recorder: Optional[Recorder] = None,
    ) -> None:
        if segments.closed:
            raise ValueError("cannot build a pool over closed segments")
        self.segments = segments
        self.oracle: LeafOracle = (
            oracle if oracle is not None else identity_oracle
        )
        self.workers = workers
        spec = segments.spec
        leaf_oracle = self.oracle
        if executor_factory is None:
            def factory() -> Executor:
                return ProcessPoolExecutor(
                    max_workers=workers,
                    initializer=_worker_init,
                    initargs=(spec, leaf_oracle),
                )
        else:
            bound = executor_factory

            def factory() -> Executor:
                return bound(spec, leaf_oracle)

        self.runtime = OracleRuntime(
            _worker_eval,
            max_workers=workers,
            chunk_size=chunk_size,
            max_retries=max_retries,
            backoff_seconds=backoff_seconds,
            max_backoff_seconds=max_backoff_seconds,
            chunk_timeout=chunk_timeout,
            max_consecutive_rebuilds=max_consecutive_rebuilds,
            executor_factory=factory,
            sleep=sleep,
            recorder=recorder,
        )

    @property
    def stats(self) -> RuntimeStats:
        return self.runtime.stats

    # -- lifecycle ---------------------------------------------------------
    def __enter__(self) -> "ShmPool":
        self.runtime.__enter__()
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Shut the worker pool down (idempotent; segments untouched)."""
        self.runtime.close()

    # -- evaluation --------------------------------------------------------
    def evaluate_batch(self, batch_idx: np.ndarray) -> np.ndarray:
        """Evaluate one step's leaf batch; returns values in batch order.

        Writes the batch's preorder indices into the shared ``batch``
        column, dispatches positions ``0..m-1`` through the runtime
        (chunked across the workers), and blocks until every chunk
        succeeded — the step barrier.  Crash/timeout retries and the
        circuit breaker behave exactly as documented on
        :meth:`OracleRuntime.evaluate`; a tripped breaker propagates
        :class:`~repro.errors.DegradedRunError` to the engine loop.
        """
        segments = self.segments
        assert segments.batch is not None
        assert segments.out is not None
        m = int(batch_idx.shape[0])
        segments.batch[:m] = batch_idx
        self.runtime.evaluate(range(m))
        return np.asarray(segments.out[batch_idx], dtype=np.float64)
