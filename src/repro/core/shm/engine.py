"""Shared-memory arena engines: the paper's rounds on real processors.

These are the arena step loops of :mod:`repro.core.arena` with one
substitution: instead of gathering leaf values out of the lowered
columns in-process, each step's batch is evaluated *in place* across
OS worker processes through a :class:`~repro.core.shm.pool.ShmPool`,
with the pool's ordered-result return acting as the step barrier.
Selection, settle cascades, pruning sweeps, trace accounting and
telemetry are byte-for-byte the serial arena code paths, so for any
pure leaf oracle the value, per-step batches, step count and work of a
shm run are bit-identical to ``backend="arena"`` — the determinism
contract the differential and golden suites pin.  Wall-clock numbers
(:class:`ShmRunResult.oracle_seconds` / ``total_seconds`` and the
runtime stats) are where real hardware shows up.

A :class:`ShmSession` owns the published segments and the pool for one
tree and can run any number of engines over them (e28 runs the whole
speed-up curve in one session); the ``shm_*`` one-shot functions wrap
a session around a single run and are what the solver entry points
dispatch to for ``executor="shm"``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Callable, List, Optional

import numpy as np

from ...errors import DegradedRunError, ModelViolationError
from ...models.accounting import EvalResult, ExecutionTrace
from ...models.executors import RuntimeStats
from ...telemetry import Recorder, live, record_runtime_stats
from ...trees.base import GameTree, NodeId
from ...trees.canonical import canonical_arrays
from ..arena.alphabeta import _AlphaBetaArena
from ..arena.boolean import _BooleanArena
from ..arena.selection import most_urgent, select_frontier, select_width
from .pool import ExecutorFactory, LeafOracle, ShmPool
from .segments import ArenaSegments

__all__ = [
    "ShmOptions",
    "ShmRunResult",
    "ShmSession",
    "shm_parallel_alpha_beta",
    "shm_parallel_solve",
    "shm_saturation_solve",
    "shm_sequential_alpha_beta",
    "shm_team_solve",
]


@dataclass(frozen=True)
class ShmOptions:
    """Tuning knobs for a shared-memory session.

    ``oracle`` is the per-leaf function (default: the free identity
    oracle); ``workers`` sizes the pool (``None``: executor default);
    the remaining fields pass straight through to
    :class:`~repro.models.executors.OracleRuntime` — see its docstring
    for retry/backoff/timeout/circuit-breaker semantics.
    ``executor_factory`` and ``sleep`` are test-injection points.
    """

    oracle: Optional[LeafOracle] = None
    workers: Optional[int] = None
    chunk_size: Optional[int] = None
    max_retries: int = 2
    backoff_seconds: float = 0.05
    max_backoff_seconds: float = 1.0
    chunk_timeout: Optional[float] = None
    max_consecutive_rebuilds: Optional[int] = None
    executor_factory: Optional[ExecutorFactory] = None
    sleep: Optional[Callable[[float], None]] = None


@dataclass
class ShmRunResult(EvalResult):
    """An :class:`~repro.models.accounting.EvalResult` plus the run's
    wall-clock and pool accounting.

    ``value``/``trace``/``evaluated`` obey the serial determinism
    contract; ``stats`` is a snapshot of the pool's
    :class:`~repro.models.executors.RuntimeStats` after the run and
    ``oracle_seconds``/``total_seconds`` are wall-clock (meaningful
    only to wall-clock consumers, per lint R7)."""

    stats: RuntimeStats = field(default_factory=RuntimeStats)
    oracle_seconds: float = 0.0
    total_seconds: float = 0.0


class ShmSession:
    """Segments + worker pool for one tree, reusable across runs.

    Publishing the columns and forking the pool are per-*tree* costs;
    a session amortises them across every engine call made inside the
    ``with`` block.  Closing tears the pool down first, then unmaps
    and unlinks the segments (idempotent, exception-safe), so no
    ``/dev/shm`` entry survives the session — including the degraded
    path, where the :class:`~repro.errors.DegradedRunError` from the
    pool's circuit breaker propagates through the engine loop (with
    ``steps_completed`` filled in) and out of the ``with``.
    """

    def __init__(
        self,
        tree: GameTree,
        options: Optional[ShmOptions] = None,
        *,
        recorder: Optional[Recorder] = None,
    ) -> None:
        self.tree = tree
        self.options = options if options is not None else ShmOptions()
        self.arrays = canonical_arrays(tree)
        self._rec = live(recorder)
        # The pool's runtime emits oracle.* counters and retry/rebuild
        # events; in logical-clock mode those would break byte-identity
        # with the serial arena telemetry, so the runtime only gets the
        # recorder when wall-clock observation was opted into.
        pool_recorder = (
            recorder
            if self._rec is not None and self._rec.wallclock
            else None
        )
        opts = self.options
        self.segments = ArenaSegments.publish(self.arrays)
        try:
            self.pool = ShmPool(
                self.segments,
                opts.oracle,
                workers=opts.workers,
                chunk_size=opts.chunk_size,
                max_retries=opts.max_retries,
                backoff_seconds=opts.backoff_seconds,
                max_backoff_seconds=opts.max_backoff_seconds,
                chunk_timeout=opts.chunk_timeout,
                max_consecutive_rebuilds=opts.max_consecutive_rebuilds,
                executor_factory=opts.executor_factory,
                sleep=opts.sleep,
                recorder=pool_recorder,
            )
        except BaseException:
            self.segments.close()
            raise

    # -- lifecycle ---------------------------------------------------------
    def __enter__(self) -> "ShmSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Shut the pool down, then unmap and unlink the segments."""
        try:
            self.pool.close()
        finally:
            self.segments.close()

    # -- shared plumbing ---------------------------------------------------
    def _evaluate(
        self, batch_idx: np.ndarray, trace: ExecutionTrace
    ) -> np.ndarray:
        try:
            return self.pool.evaluate_batch(batch_idx)
        except DegradedRunError as exc:
            exc.steps_completed = trace.num_steps
            raise

    def _finish(
        self,
        value,
        trace: ExecutionTrace,
        evaluated: List[NodeId],
        start: float,
    ) -> ShmRunResult:
        stats = replace(self.pool.stats)
        return ShmRunResult(
            value,
            trace,
            evaluated,
            stats=stats,
            oracle_seconds=stats.oracle_seconds,
            total_seconds=time.perf_counter() - start,  # lint: disable=R7
        )

    # -- Boolean engines ---------------------------------------------------
    def _run_boolean(
        self,
        select: "Callable[[_BooleanArena], np.ndarray]",
        policy_name: str,
        *,
        keep_batches: bool,
        max_steps: Optional[int] = None,
    ) -> ShmRunResult:
        """The arena Boolean step loop with a shared-memory barrier."""
        rec = self._rec
        arena = _BooleanArena(self.arrays)
        trace = ExecutionTrace(keep_batches=keep_batches)
        evaluated: List[NodeId] = []
        node_ids = self.arrays.node_ids
        start = time.perf_counter()  # lint: disable=R7

        step = 0
        while not arena.settled[0]:
            batch_idx = select(arena)
            if batch_idx.shape[0] == 0:
                raise ModelViolationError(
                    f"policy {policy_name!r} selected no leaves while "
                    f"the root is undetermined"
                )
            values = self._evaluate(batch_idx, trace)
            # The oracle round-trips the stored 0/1 values, so this
            # write-back is numerically a no-op — the point is that it
            # came through shared memory, not the local column.
            arena.leaf_values[batch_idx] = values.astype(np.int8)
            arena.evaluate_batch(batch_idx)
            batch: List[NodeId] = node_ids[batch_idx].tolist()
            trace.record(batch)
            evaluated.extend(batch)
            if rec is not None:
                rec.advance(step + 1)
                rec.add_span(
                    "step", step, step + 1, track="solve",
                    degree=len(batch),
                )
                rec.count("solve.leaves_evaluated", len(batch))
                rec.sample("solve.degree", len(batch), track="solve")
            step += 1
            if max_steps is not None and step > max_steps:
                raise ModelViolationError(f"exceeded {max_steps} steps")

        if rec is not None:
            rec.count("solve.steps", step)
            rec.gauge("solve.processors", trace.processors)
            if rec.wallclock:
                record_runtime_stats(rec, self.pool.stats)
        return self._finish(int(arena.value[0]), trace, evaluated, start)

    def parallel_solve(
        self,
        width: int = 1,
        *,
        max_processors: Optional[int] = None,
        keep_batches: bool = False,
        max_steps: Optional[int] = None,
    ) -> ShmRunResult:
        """Parallel SOLVE of the given width over the session's pool."""
        if width < 0:
            raise ValueError("width must be >= 0")
        if max_processors is None:
            name = f"parallel-solve(w={width}, arena+shm)"

            def select(arena: _BooleanArena) -> np.ndarray:
                return select_width(
                    arena.arrays, arena.settled, width, arena.budget
                )

        else:
            if max_processors < 1:
                raise ValueError("need at least one processor")
            name = (
                f"parallel-solve(w={width}, p={max_processors}, arena+shm)"
            )

            def select(arena: _BooleanArena) -> np.ndarray:
                leaves = select_width(
                    arena.arrays, arena.settled, width, arena.budget
                )
                scores = width - arena.budget[leaves]
                return most_urgent(leaves, scores, width, max_processors)

        return self._run_boolean(
            select, name, keep_batches=keep_batches, max_steps=max_steps
        )

    def team_solve(
        self,
        processors: int,
        *,
        keep_batches: bool = False,
        max_steps: Optional[int] = None,
    ) -> ShmRunResult:
        """Team SOLVE (leftmost ``processors`` live leaves)."""
        if processors < 1:
            raise ValueError("Team SOLVE needs at least one processor")

        def select(arena: _BooleanArena) -> np.ndarray:
            return select_frontier(arena.arrays, arena.settled)[
                :processors
            ]

        return self._run_boolean(
            select, f"team-solve(p={processors}, arena+shm)",
            keep_batches=keep_batches, max_steps=max_steps,
        )

    def saturation_solve(
        self,
        *,
        keep_batches: bool = False,
        max_steps: Optional[int] = None,
    ) -> ShmRunResult:
        """Saturation SOLVE (every live leaf each step)."""

        def select(arena: _BooleanArena) -> np.ndarray:
            return select_frontier(arena.arrays, arena.settled)

        return self._run_boolean(
            select, "saturation-solve(arena+shm)",
            keep_batches=keep_batches, max_steps=max_steps,
        )

    # -- MIN/MAX engine ----------------------------------------------------
    def alpha_beta(
        self,
        width: int = 0,
        *,
        keep_batches: bool = False,
        max_steps: Optional[int] = None,
    ) -> ShmRunResult:
        """The pruning process of the given width (0 = sequential)."""
        if width < 0:
            raise ValueError("width must be >= 0")
        rec = self._rec
        arrays = self.arrays
        arena = _AlphaBetaArena(arrays)
        trace = ExecutionTrace(keep_batches=keep_batches)
        evaluated: List[NodeId] = []
        node_ids = arrays.node_ids
        name = f"parallel-alpha-beta(w={width}, arena+shm)"
        start = time.perf_counter()  # lint: disable=R7

        step = 0
        while not arena.finished[0]:
            batch_idx = select_width(
                arrays, arena.settled, width, arena.budget
            )
            if batch_idx.shape[0] == 0:
                raise ModelViolationError(
                    f"policy {name!r} selected no leaves while the root "
                    f"is unfinished"
                )
            values = self._evaluate(batch_idx, trace)
            arena.finish_leaves(batch_idx, values=values)
            pruned = arena.prune_to_fixpoint()
            batch: List[NodeId] = node_ids[batch_idx].tolist()
            trace.record(batch)
            evaluated.extend(batch)
            if rec is not None:
                rec.advance(step + 1)
                rec.add_span(
                    "step", step, step + 1, track="alphabeta",
                    degree=len(batch), pruned=pruned,
                )
                rec.count("alphabeta.leaves_evaluated", len(batch))
                if pruned:
                    rec.count("alphabeta.pruned", pruned)
                rec.sample(
                    "alphabeta.degree", len(batch), track="alphabeta"
                )
            step += 1
            if max_steps is not None and step > max_steps:
                raise ModelViolationError(f"exceeded {max_steps} steps")

        if rec is not None:
            rec.count("alphabeta.steps", step)
            rec.gauge("alphabeta.processors", trace.processors)
            if rec.wallclock:
                record_runtime_stats(rec, self.pool.stats)
        return self._finish(
            float(arena.finished_value[0]), trace, evaluated, start
        )


# -- one-shot entry points -------------------------------------------------
def shm_parallel_solve(
    tree: GameTree,
    width: int = 1,
    *,
    max_processors: Optional[int] = None,
    keep_batches: bool = False,
    recorder: Optional[Recorder] = None,
    options: Optional[ShmOptions] = None,
    max_steps: Optional[int] = None,
) -> ShmRunResult:
    """Parallel SOLVE through a one-run shared-memory session."""
    with ShmSession(tree, options, recorder=recorder) as session:
        return session.parallel_solve(
            width,
            max_processors=max_processors,
            keep_batches=keep_batches,
            max_steps=max_steps,
        )


def shm_team_solve(
    tree: GameTree,
    processors: int,
    *,
    keep_batches: bool = False,
    recorder: Optional[Recorder] = None,
    options: Optional[ShmOptions] = None,
    max_steps: Optional[int] = None,
) -> ShmRunResult:
    """Team SOLVE through a one-run shared-memory session."""
    with ShmSession(tree, options, recorder=recorder) as session:
        return session.team_solve(
            processors, keep_batches=keep_batches, max_steps=max_steps
        )


def shm_saturation_solve(
    tree: GameTree,
    *,
    keep_batches: bool = False,
    recorder: Optional[Recorder] = None,
    options: Optional[ShmOptions] = None,
    max_steps: Optional[int] = None,
) -> ShmRunResult:
    """Saturation SOLVE through a one-run shared-memory session."""
    with ShmSession(tree, options, recorder=recorder) as session:
        return session.saturation_solve(
            keep_batches=keep_batches, max_steps=max_steps
        )


def shm_sequential_alpha_beta(
    tree: GameTree,
    *,
    keep_batches: bool = False,
    recorder: Optional[Recorder] = None,
    options: Optional[ShmOptions] = None,
    max_steps: Optional[int] = None,
) -> ShmRunResult:
    """Sequential alpha-beta through a one-run shared-memory session."""
    with ShmSession(tree, options, recorder=recorder) as session:
        return session.alpha_beta(
            0, keep_batches=keep_batches, max_steps=max_steps
        )


def shm_parallel_alpha_beta(
    tree: GameTree,
    width: int = 1,
    *,
    keep_batches: bool = False,
    recorder: Optional[Recorder] = None,
    options: Optional[ShmOptions] = None,
    max_steps: Optional[int] = None,
) -> ShmRunResult:
    """Parallel alpha-beta through a one-run shared-memory session."""
    with ShmSession(tree, options, recorder=recorder) as session:
        return session.alpha_beta(
            width, keep_batches=keep_batches, max_steps=max_steps
        )
