"""``python -m repro shm`` — drive the shared-memory executor.

Three modes:

* default — measure the wall-clock speedup curve: one
  :class:`~repro.core.shm.ShmSession` per worker count, a calibrated
  constant-cost leaf oracle, and a printed table of per-p seconds,
  speedup over p=1, and the paper's ``c.(n+1)`` step-count speedup
  for the same instance (Theorem 1's hardware shadow);
* ``--check`` — no clocks: assert the shm executor replays the serial
  arena's value and per-step batches bit-identically at every worker
  count and chunk size requested;
* ``--quick`` — the CI canary: a small tree, p=2, identity only.
"""

from __future__ import annotations

import argparse

from .engine import ShmOptions, ShmSession
from .oracle import CalibratedOracle

__all__ = ["add_shm_arguments", "run_shm"]


def add_shm_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--check", action="store_true",
        help="identity check only (no wall-clock): shm vs serial arena",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI canary: small tree, p=2 identity check",
    )
    parser.add_argument("--branching", type=int, default=3)
    parser.add_argument("--height", type=int, default=6)
    parser.add_argument("--width", type=int, default=1)
    parser.add_argument("--seed", type=int, default=2028)
    parser.add_argument(
        "--p", type=str, default="1,2,4", metavar="P1,P2,...",
        help="worker counts to sweep",
    )
    parser.add_argument(
        "--chunk-sizes", type=str, default="none,3", metavar="C1,C2,...",
        help="chunk sizes for --check ('none' = one chunk per worker)",
    )
    parser.add_argument(
        "--cost", type=float, default=0.004, metavar="SECONDS",
        help="calibrated per-leaf oracle cost",
    )
    parser.add_argument(
        "--mode", choices=("sleep", "spin"), default="sleep",
        help="oracle cost model: sleep overlaps on any core count; "
        "spin burns real CPU",
    )
    parser.add_argument("--repeats", type=int, default=2)


def _tree(args: argparse.Namespace):
    from ...trees.generators import iid_boolean
    from ...trees.generators.iid import level_invariant_bias

    return iid_boolean(
        args.branching, args.height,
        level_invariant_bias(args.branching), seed=args.seed,
    )


def _check(tree, width, p_grid, chunk_sizes) -> int:
    from .. import parallel_solve

    reference = parallel_solve(
        tree, width, keep_batches=True, backend="arena"
    )
    signature = (
        reference.value, reference.trace.degrees,
        reference.trace.batches,
    )
    cells = 0
    for p in p_grid:
        for chunk in chunk_sizes:
            shm = parallel_solve(
                tree, width, keep_batches=True, backend="arena",
                executor="shm",
                shm_options=ShmOptions(workers=p, chunk_size=chunk),
            )
            got = (shm.value, shm.trace.degrees, shm.trace.batches)
            if got != signature:
                print(f"MISMATCH at p={p} chunk={chunk}")
                return 1
            cells += 1
    print(
        f"ok — {cells} shm cells identical to the serial arena "
        f"(value={reference.value}, steps={reference.num_steps}, "
        f"work={reference.total_work})"
    )
    return 0


def run_shm(args: argparse.Namespace) -> int:
    from ...bench.wallclock import best_of
    from .. import parallel_solve

    if args.quick:
        args.height = min(args.height, 4)
        p_grid = (2,)
        chunk_sizes = (None,)
    else:
        p_grid = tuple(int(p) for p in args.p.split(","))
        chunk_sizes = tuple(
            None if c.strip().lower() == "none" else int(c)
            for c in args.chunk_sizes.split(",")
        )
    tree = _tree(args)
    print(
        f"uniform NOR tree: d={args.branching} n={args.height} "
        f"w={args.width} seed={args.seed}"
    )
    status = _check(tree, args.width, p_grid, chunk_sizes)
    if status != 0 or args.check or args.quick:
        return status

    sequential = parallel_solve(tree, 0, backend="arena")
    reference = parallel_solve(tree, args.width, backend="arena")
    oracle = CalibratedOracle(args.cost, args.mode)
    print(
        f"\noracle: {args.mode}, {args.cost * 1e3:.2f} ms/leaf — "
        f"{reference.total_work} leaves over {reference.num_steps} "
        f"steps (sequential: {sequential.num_steps})"
    )
    print(f"{'p':>4} {'seconds':>9} {'speedup':>8} {'efficiency':>11}")
    base = None
    for p in p_grid:
        with ShmSession(
            tree, ShmOptions(workers=p, oracle=oracle)
        ) as session:
            seconds = best_of(
                lambda: session.parallel_solve(args.width),
                args.repeats,
            )
        if base is None:
            base = seconds
        speedup = base / seconds
        print(
            f"{p:>4} {seconds:>9.3f} {speedup:>7.2f}x "
            f"{speedup / p:>10.1%}"
        )
    step_speedup = sequential.num_steps / reference.num_steps
    n_plus_1 = args.height + 1
    print(
        f"\nstep-count speedup S(T)/steps = {step_speedup:.2f} "
        f"on n+1 = {n_plus_1} processors "
        f"(c_hat = {step_speedup / n_plus_1:.3f}; "
        f"Theorem 1 predicts c.(n+1))"
    )
    return 0
