"""Shared-memory segments over the arena's canonical columns.

The arena engines (:mod:`repro.core.arena`) already lower a tree once
into flat :class:`~repro.trees.canonical.CanonicalArrays` columns.
This module maps the three columns a *leaf worker* needs into
:mod:`multiprocessing.shared_memory` blocks, once per tree:

``values``
    A float64 copy of ``CanonicalArrays.values`` (leaf payloads;
    internal entries are NaN and never read by a worker).
``batch``
    An int64 scratch column the coordinator fills with the current
    step's preorder leaf indices before dispatching the step.
``out``
    A float64 column the workers write oracle outputs into, in place,
    indexed by preorder position.

The coordinator (the process that ran :meth:`ArenaSegments.publish`)
owns the blocks: it is the only process that ever calls ``unlink``.
Workers attach read-write by name via :meth:`ArenaSegments.attach`.
CPython registers a shared-memory name with the ``resource_tracker``
on *every* open (create or attach), but a process pool shares one
tracker process with its parent and registration is set-based, so the
attach-side registrations collapse into the owner's and the owner's
``unlink`` (which unregisters) leaves the tracker clean — no
leaked-resource warnings, no early unlinks under the owner.  The
lifecycle tests pin this by listing ``/dev/shm`` before and after.

Segment names embed the owner pid and a per-process counter, so two
concurrent sessions (or a crash-rebuilt pool attaching again) can
never collide.
"""

from __future__ import annotations

import itertools
import os
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Optional, Tuple

import numpy as np

from ...trees.canonical import CanonicalArrays

__all__ = ["ArenaSegments", "SegmentSpec"]

#: Per-process counter feeding unique segment names.
_COUNTER = itertools.count()


@dataclass(frozen=True)
class SegmentSpec:
    """Picklable description of one published arena — what a worker
    needs to attach: the three segment names, the node count, and the
    owner's pid (attachers never unlink; the owner does)."""

    values_name: str
    batch_name: str
    out_name: str
    n_nodes: int
    owner_pid: int


class ArenaSegments:
    """One tree's columns mapped into shared memory.

    Build with :meth:`publish` (owner side) or :meth:`attach` (worker
    side); use as a context manager or call :meth:`close` — the owner's
    close also unlinks.  Both are idempotent, so the crash-rebuild and
    degraded paths can tear down unconditionally.
    """

    def __init__(
        self,
        spec: SegmentSpec,
        blocks: Tuple[
            shared_memory.SharedMemory,
            shared_memory.SharedMemory,
            shared_memory.SharedMemory,
        ],
        *,
        owner: bool,
    ) -> None:
        self.spec = spec
        self._blocks: Optional[Tuple[shared_memory.SharedMemory, ...]] = (
            blocks
        )
        self._owner = owner
        n = spec.n_nodes
        values_blk, batch_blk, out_blk = blocks
        #: Leaf payloads (read-only by convention; workers never write).
        self.values: Optional[np.ndarray] = np.ndarray(
            (n,), dtype=np.float64, buffer=values_blk.buf
        )
        #: Current step's preorder leaf indices (coordinator-written).
        self.batch: Optional[np.ndarray] = np.ndarray(
            (n,), dtype=np.int64, buffer=batch_blk.buf
        )
        #: Oracle outputs, written in place by the workers.
        self.out: Optional[np.ndarray] = np.ndarray(
            (n,), dtype=np.float64, buffer=out_blk.buf
        )

    # -- construction ------------------------------------------------------
    @classmethod
    def publish(cls, arrays: CanonicalArrays) -> "ArenaSegments":
        """Create the blocks and copy the arena's columns in (owner)."""
        n = arrays.n_nodes
        if n < 1:
            raise ValueError("cannot publish an empty arena")
        stem = f"repro_{os.getpid()}_{next(_COUNTER)}"
        nbytes = n * 8  # float64 and int64 columns alike
        made = []
        try:
            for role in ("values", "batch", "out"):
                made.append(
                    shared_memory.SharedMemory(
                        name=f"{stem}_{role}", create=True, size=nbytes
                    )
                )
        except BaseException:
            for blk in made:
                blk.close()
                blk.unlink()
            raise
        spec = SegmentSpec(
            values_name=made[0].name,
            batch_name=made[1].name,
            out_name=made[2].name,
            n_nodes=n,
            owner_pid=os.getpid(),
        )
        segments = cls(spec, (made[0], made[1], made[2]), owner=True)
        assert segments.values is not None
        assert segments.batch is not None
        assert segments.out is not None
        segments.values[:] = arrays.values
        segments.batch[:] = 0
        segments.out[:] = 0.0
        return segments

    @classmethod
    def attach(cls, spec: SegmentSpec) -> "ArenaSegments":
        """Map an already-published arena by name (worker side)."""
        blocks = []
        try:
            for name in (
                spec.values_name, spec.batch_name, spec.out_name
            ):
                blocks.append(shared_memory.SharedMemory(name=name))
        except BaseException:
            for blk in blocks:
                blk.close()
            raise
        # An attachment never owns the blocks — even one made in the
        # owner's process (injected in-process executors do this): the
        # published ArenaSegments is the sole unlinker.
        return cls(spec, (blocks[0], blocks[1], blocks[2]), owner=False)

    # -- lifecycle ---------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._blocks is None

    def close(self) -> None:
        """Drop the views, unmap the blocks, and (owner only) unlink.

        Idempotent.  The numpy views must be released before the mmap
        can close (an exported buffer makes ``close`` raise
        ``BufferError``), so the ``values``/``batch``/``out``
        attributes are dead after this call.
        """
        blocks = self._blocks
        if blocks is None:
            return
        self._blocks = None
        self.values = None
        self.batch = None
        self.out = None
        for blk in blocks:
            blk.close()
        if self._owner:
            for blk in blocks:
                try:
                    blk.unlink()
                except FileNotFoundError:  # lint: disable=R6
                    pass  # already unlinked (double-teardown race)

    def __enter__(self) -> "ArenaSegments":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
