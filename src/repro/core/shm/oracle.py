"""Leaf oracles for the shared-memory executor.

The determinism contract of ``executor="shm"`` is that the oracle is a
*pure function of the stored leaf value* — it may take wall-clock time
(that is the whole point: the paper's speed-up only materialises on
hardware when leaf evaluation is expensive), but the value it returns
must equal what the serial arena engines read straight out of
``CanonicalArrays.values``.  Both oracles here satisfy that:

* :func:`identity_oracle` — return the stored value, free.  The
  default; shm runs with it are pure determinism canaries.
* :class:`CalibratedOracle` — return the stored value after burning a
  fixed cost per leaf, either by sleeping (machine-independent; the
  mode experiment e28 registers, since sleeping workers overlap on any
  core count) or by spinning (real CPU work, for measuring speed-up on
  actual cores).

Oracles cross the process boundary by pickle, so both are module-level
and carry only plain data.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

__all__ = ["CalibratedOracle", "identity_oracle"]


def identity_oracle(value: float, index: int) -> float:
    """The free oracle: a leaf's value is already its evaluation."""
    return value


@dataclass(frozen=True)
class CalibratedOracle:
    """A leaf oracle costing a fixed ``cost_s`` seconds per call.

    ``mode="sleep"`` blocks in ``time.sleep`` (workers overlap even on
    a single core — the machine-independent calibration e28 uses);
    ``mode="spin"`` busy-waits on the monotonic clock (real CPU load,
    for measuring against physical cores).  Either way the stored
    value comes back unchanged, so batches and root values stay
    bit-identical to the serial engines.
    """

    cost_s: float
    mode: str = "sleep"

    def __post_init__(self) -> None:
        if self.cost_s < 0:
            raise ValueError("cost_s must be >= 0")
        if self.mode not in ("sleep", "spin"):
            raise ValueError(
                f"unknown mode {self.mode!r}; expected 'sleep' or 'spin'"
            )

    def __call__(self, value: float, index: int) -> float:
        if self.cost_s > 0:
            if self.mode == "sleep":
                time.sleep(self.cost_s)
            else:
                deadline = (
                    time.perf_counter() + self.cost_s  # lint: disable=R7
                )
                while time.perf_counter() < deadline:  # lint: disable=R7
                    pass
        return value
