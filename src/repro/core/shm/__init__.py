"""Shared-memory parallel leaf evaluation over the arena columns.

``repro.core.shm`` is the bridge from the paper's model-step speedups
to measured hardware: the arena's
:class:`~repro.trees.canonical.CanonicalArrays` columns are mapped
into :mod:`multiprocessing.shared_memory` blocks once per tree
(:mod:`~repro.core.shm.segments`), a persistent worker pool built on
:class:`~repro.models.executors.OracleRuntime` evaluates each step's
leaf batch in place (:mod:`~repro.core.shm.pool`), and the arena step
loops run the paper's synchronous rounds over that barrier
(:mod:`~repro.core.shm.engine`).  The solver entry points expose it as
``backend="arena", executor="shm"``; experiment e28 measures the
resulting wall-clock speed-up curve against the c·(n+1) prediction.
"""

from .engine import (
    ShmOptions,
    ShmRunResult,
    ShmSession,
    shm_parallel_alpha_beta,
    shm_parallel_solve,
    shm_saturation_solve,
    shm_sequential_alpha_beta,
    shm_team_solve,
)
from .oracle import CalibratedOracle, identity_oracle
from .pool import ShmPool
from .segments import ArenaSegments, SegmentSpec

__all__ = [
    "ArenaSegments",
    "CalibratedOracle",
    "SegmentSpec",
    "ShmOptions",
    "ShmPool",
    "ShmRunResult",
    "ShmSession",
    "identity_oracle",
    "shm_parallel_alpha_beta",
    "shm_parallel_solve",
    "shm_saturation_solve",
    "shm_sequential_alpha_beta",
    "shm_team_solve",
]
