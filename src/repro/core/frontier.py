"""Incremental frontier engine for the width-w model-step algorithms.

The paper defines every width-w algorithm by a per-step rescan: "at
each step, evaluate all live leaves with pruning number at most w".
The reference policies in :mod:`repro.core.policies` implement that
statement literally — a budgeted DFS from the root at every basic
step, which re-walks the whole in-range region even though almost none
of it changed since the previous step.  This module maintains the same
selection *incrementally*: determinations are pushed into a priority
structure as they happen, and each basic step reads the ready-made
frontier instead of recomputing it.

Data structure
--------------
For a width ``w`` define the *active region* as the set of unsettled
nodes with pruning number at most ``w`` — exactly the nodes the
budgeted rescan visits.  :class:`FrontierIndex` stores

* ``budget[v] = w - pn(v) >= 0`` for every active node ``v`` (for the
  unbounded policies — Team/Saturation — every live node is active and
  budgets are unused);
* a DFS *order key* per active node: the tuple of child positions on
  the root path, so left-to-right tree order is lexicographic key
  order;
* the frontier — the active *terminal* nodes (live leaves, or
  unexpanded nodes in the node-expansion model) as a sorted list of
  ``(key, node)`` pairs.  Removals tombstone in place (validity is
  checked against the budget table on read) and reads compact the
  list, so no read or write pays more than the touched entries.

Events
------
The engines mutate state one transition at a time and the state
objects publish the transitions (see ``subscribe`` on
:class:`~repro.core.status.BooleanState`,
:class:`~repro.core.alphabeta.state.AlphaBetaState` and
:class:`~repro.core.nodeexpansion.state.ExpansionState`), always
children before ancestors:

* :meth:`FrontierIndex.on_settled` — a node became determined,
  finished or pruned.  Its active subtree is spliced out, and every
  still-live right-sibling loses one unit of sibling cost: its active
  subtree gets ``budget += 1`` and nodes whose budget reaches 0 are
  activated by a budgeted DFS confined to the newly exposed region.
* :meth:`FrontierIndex.on_expanded` (node-expansion model) — a
  frontier node became interior; its children inherit budgets
  ``budget[v] - live_index``.

Costs
-----
A node is activated at most once, raised at most ``w`` times while
active, and removed at most once, so total maintenance over a whole
run is ``O(R * (w + height))`` where ``R`` is the number of nodes
that are ever active — independent of the number of steps.  The
rescan backend pays the size of the active region *per step*, so the
incremental engine wins exactly when runs are long relative to how
fast the region churns; see ``docs/frontier_engine.md`` for the
equivalence argument and measurements.

The incremental and rescan backends are step-for-step identical — the
differential property suite under ``tests/properties/`` asserts equal
per-step batches on every generated instance.
"""

from __future__ import annotations

from bisect import insort
from typing import Callable, Dict, List, Optional, Tuple

from ..telemetry import Recorder
from ..telemetry import live as _live_recorder
from ..trees.base import GameTree, NodeId
from .status import BooleanState

#: Root-path child positions; lexicographic order == left-to-right order.
OrderKey = Tuple[int, ...]


class FrontierIndex:
    """Incrementally maintained width-w frontier over a game tree.

    Parameters
    ----------
    tree:
        The tree being evaluated (any :class:`~repro.trees.base.GameTree`).
    state:
        The engine state publishing transitions; held only for identity
        checks by the policies.
    width:
        The pruning-number bound ``w``, or ``None`` for the unbounded
        frontier (all live terminals — Team/Saturation selection).
    settled:
        Predicate: has this node left the unsettled set (determined /
        finished-or-pruned)?
    terminal:
        Predicate for the walk's terminals, for models whose terminals
        can *stop* being terminal (the node-expansion model passes
        "not yet expanded").  ``None`` (leaf-evaluation models) uses
        ``tree.is_leaf``, which is immutable and never re-checked on
        reads.
    """

    def __init__(
        self,
        tree: GameTree,
        state: object,
        *,
        width: Optional[int],
        settled: Callable[[NodeId], bool],
        terminal: Optional[Callable[[NodeId], bool]] = None,
        recorder: Optional[Recorder] = None,
    ):
        if width is not None and width < 0:
            raise ValueError("width must be >= 0")
        self._rec = _live_recorder(recorder)
        self.tree = tree
        self.state = state
        self.width = width
        self._settled = settled
        #: terminals can only mutate in the expansion model.
        self._terminal_mutates = terminal is not None
        self._terminal = terminal if terminal is not None else tree.is_leaf
        #: remaining budget (w - pruning number) of each active node.
        self._budget: Dict[NodeId, int] = {}
        self._key: Dict[NodeId, OrderKey] = {}
        #: sorted (key, node) pairs over the active terminals; entries
        #: whose node is no longer an active terminal are tombstones.
        self._frontier: List[Tuple[OrderKey, NodeId]] = []
        #: read offset: entries before it are consumed tombstones.
        self._start = 0
        self._kids: Dict[NodeId, Tuple[NodeId, ...]] = {}
        root = tree.root
        if not settled(root):
            initial = width if width is not None else 0
            self._activate(root, initial, (), sink=self._frontier)
            self._frontier.sort()

    def set_recorder(self, recorder: Optional[Recorder]) -> None:
        """Attach a telemetry sink (normalised; ``None`` disables)."""
        self._rec = _live_recorder(recorder)

    # -- reads -------------------------------------------------------------
    def _is_current(self, node: NodeId) -> bool:
        if node not in self._budget:
            return False
        return not self._terminal_mutates or self._terminal(node)

    def batch(self) -> List[NodeId]:
        """All frontier terminals, in left-to-right order.

        Compacts tombstones as a side effect, so a full read costs the
        live size plus each stale entry once.
        """
        frontier = self._frontier
        budget = self._budget
        start = self._start
        if self._terminal_mutates:
            terminal = self._terminal
            live = [
                entry for entry in frontier[start:]
                if entry[1] in budget and terminal(entry[1])
            ]
        else:
            live = [
                entry for entry in frontier[start:] if entry[1] in budget
            ]
        if start or len(live) != len(frontier):
            self._frontier = live
            self._start = 0
        return [entry[1] for entry in live]

    def first(self, limit: int) -> List[NodeId]:
        """The leftmost ``limit`` frontier terminals."""
        frontier = self._frontier
        budget = self._budget
        out: List[NodeId] = []
        i = self._start
        n = len(frontier)
        while i < n and len(out) < limit:
            node = frontier[i][1]
            if self._is_current(node):
                out.append(node)
            elif not out:
                # Contiguous consumed prefix: advance the read offset.
                self._start = i + 1
            i += 1
        return out

    def scored_batch(self) -> List[Tuple[NodeId, int]]:
        """Frontier terminals with their pruning numbers, in order."""
        width = self.width
        if width is None:
            raise ValueError("unbounded frontier has no pruning budgets")
        budget = self._budget
        return [(node, width - budget[node]) for node in self.batch()]

    def most_urgent(self, processors: int) -> List[NodeId]:
        """The ``processors`` lowest-pruning-number frontier terminals.

        Ties break towards earlier tree order; the selection is
        returned in tree order — exactly
        :func:`~repro.core.policies.rank_by_urgency` over
        :meth:`scored_batch`, but via a bounded heap instead of a full
        sort, so a step costs one frontier scan even when only a few
        of many ready leaves can run.
        """
        width = self.width
        if width is None:
            raise ValueError("unbounded frontier has no pruning budgets")
        leaves = self.batch()
        if self._rec is not None:
            self._rec.observe("frontier.most_urgent_pool", len(leaves))
        if len(leaves) <= processors:
            return leaves
        budget = self._budget
        scores = [width - budget[node] for node in leaves]
        # Scores lie in [0, width]; counting sort finds the cutoff
        # score and how many of its holders fit, no heap needed.
        counts = [0] * (width + 1)
        for score in scores:
            counts[score] += 1
        quota = processors
        for cutoff, count in enumerate(counts):
            if count >= quota:
                break
            quota -= count
        out = []
        for leaf, score in zip(leaves, scores):
            if score > cutoff:
                continue
            if score == cutoff:
                if not quota:
                    continue
                quota -= 1
            out.append(leaf)
        return out

    def pruning_number(self, node: NodeId) -> int:
        """Pruning number of an active node (``w - budget``)."""
        if self.width is None:
            raise ValueError("unbounded frontier has no pruning budgets")
        return self.width - self._budget[node]

    # -- event handlers ----------------------------------------------------
    def on_settled(self, node: NodeId) -> None:
        """``node`` left the unsettled set (determined/finished/pruned).

        Must be invoked once per transition, children before ancestors.
        Delivering a cascade's events after the whole cascade has been
        applied is allowed (and cheaper: sibling raises under an
        ancestor that settled in the same cascade are skipped).
        """
        budget_map = self._budget
        if self._rec is not None:
            self._rec.count("frontier.settled")
        if node in budget_map:
            self._remove_subtree(node)
        parent = self.tree.parent(node)
        if parent is None:
            return
        pb = budget_map.get(parent)
        if pb is None or self._settled(parent):
            # Siblings are untracked (outside the active region) or
            # the parent's own event removes the whole region.
            return
        if self.width is None:
            return  # unbounded: liveness is all that matters
        settled = self._settled
        pkey: Optional[OrderKey] = None
        live_i = 0
        seen = False
        for pos, child in enumerate(self.children_of(parent)):
            if not seen:
                if child == node:
                    seen = True
                elif not settled(child):
                    live_i += 1
                    if live_i > pb:
                        # ``node`` and everything right of it was
                        # already out of range; nothing can activate.
                        return
                continue
            if settled(child):
                continue
            # Live right-sibling: its live index dropped by one, so its
            # budget rose by one.
            new_b = pb - live_i
            if new_b < 0:
                return
            if child in budget_map:
                self._raise(child)
            else:
                if pkey is None:
                    pkey = self._key[parent]
                self._activate(child, new_b, pkey + (pos,))
            live_i += 1

    def on_expanded(self, node: NodeId) -> None:
        """Frontier ``node`` was expanded (node-expansion model only).

        The node's frontier entry goes stale in place (reads check the
        terminal predicate); if the node is interior its children
        inherit the budget.
        """
        b = self._budget.get(node)
        if b is None:
            return
        if self._rec is not None:
            self._rec.count("frontier.expanded")
        if self.tree.is_leaf(node):
            # The leaf's determination cascade follows as on_settled
            # events, which clear the budget/key entries.
            return
        key = self._key[node]
        bounded = self.width is not None
        settled = self._settled
        live_i = 0
        for pos, child in enumerate(self.children_of(node)):
            if settled(child):
                continue
            cb = b - live_i if bounded else b
            live_i += 1
            if bounded and cb < 0:
                break
            self._activate(child, cb, key + (pos,))

    # -- internals ---------------------------------------------------------
    def children_of(self, node: NodeId) -> Tuple[NodeId, ...]:
        """Cached ordered children (never called on walk terminals)."""
        kids = self._kids.get(node)
        if kids is None:
            kids = self._kids[node] = tuple(self.tree.children(node))
        return kids

    def _activate(
        self,
        node: NodeId,
        budget: int,
        key: OrderKey,
        sink: Optional[List[Tuple[OrderKey, NodeId]]] = None,
    ) -> None:
        """Insert ``node`` (budget >= 0) and its in-range subtree."""
        fresh: List[Tuple[OrderKey, NodeId]] = [] if sink is None else sink
        bounded = self.width is not None
        settled = self._settled
        terminal = self._terminal
        budget_map = self._budget
        key_map = self._key
        stack = [(node, budget, key)]
        while stack:
            v, b, k = stack.pop()
            budget_map[v] = b
            key_map[v] = k
            if terminal(v):
                fresh.append((k, v))
                continue
            live_i = 0
            for pos, child in enumerate(self.children_of(v)):
                if settled(child):
                    continue
                cb = b - live_i if bounded else b
                live_i += 1
                if bounded and cb < 0:
                    break
                stack.append((child, cb, k + (pos,)))
        if sink is None:
            frontier = self._frontier
            for entry in fresh:
                insort(frontier, entry, lo=self._start)

    def _raise(self, node: NodeId) -> None:
        """Credit ``+1`` budget to ``node``'s active subtree, expanding
        across the activation boundary where budgets reach zero."""
        settled = self._settled
        terminal = self._terminal
        budget_map = self._budget
        stack = [node]
        while stack:
            v = stack.pop()
            b = budget_map[v] + 1
            budget_map[v] = b
            if terminal(v):
                continue
            vkey: Optional[OrderKey] = None
            live_i = 0
            for pos, child in enumerate(self.children_of(v)):
                if settled(child):
                    continue
                cb = b - live_i
                live_i += 1
                if cb < 0:
                    break
                if child in budget_map:
                    stack.append(child)
                else:
                    if vkey is None:
                        vkey = self._key[v]
                    self._activate(child, cb, vkey + (pos,))

    def _remove_subtree(self, node: NodeId) -> None:
        """Drop the active subtree of ``node`` from the budget/key
        tables; its frontier entries become tombstones."""
        budget_map = self._budget
        key_map = self._key
        terminal = self._terminal
        if terminal(node):
            del budget_map[node]
            del key_map[node]
            if self._rec is not None:
                self._rec.observe("frontier.settle_cascade", 1)
            return
        kids_map = self._kids
        removed = 0
        stack = [node]
        while stack:
            v = stack.pop()
            del budget_map[v]
            del key_map[v]
            removed += 1
            if terminal(v):
                continue
            for child in kids_map.get(v, ()):
                if child in budget_map:
                    stack.append(child)
            kids_map.pop(v, None)
        if self._rec is not None:
            self._rec.observe("frontier.settle_cascade", removed)


# ---------------------------------------------------------------------------
# Incremental selection policies (Boolean leaf-evaluation model)
# ---------------------------------------------------------------------------


class _IncrementalPolicy:
    """Base for policies backed by a :class:`FrontierIndex`.

    The index binds lazily to the engine's state on the first call (and
    rebinds if the policy object is reused on a fresh run); the state's
    transition feed keeps it current from then on.

    Setting :attr:`recorder` (done by the solver entry points) attaches
    a telemetry sink to the index at bind time.
    """

    def __init__(self) -> None:
        self._index: Optional[FrontierIndex] = None
        self.recorder: Optional[Recorder] = None

    def _bind(self, tree: GameTree, state: object) -> FrontierIndex:
        raise NotImplementedError

    def index_for(self, tree: GameTree, state: object) -> FrontierIndex:
        idx = self._index
        if idx is None or idx.state is not state:
            idx = self._bind(tree, state)
            idx.set_recorder(self.recorder)
            self._index = idx
        return idx


def _boolean_index(
    tree: GameTree, state: BooleanState, width: Optional[int]
) -> FrontierIndex:
    idx = FrontierIndex(
        tree, state, width=width, settled=state.value.__contains__
    )
    state.subscribe(idx.on_settled)
    return idx


class IncrementalWidthPolicy(_IncrementalPolicy):
    """Parallel SOLVE width-w selection, incrementally maintained.

    Step-for-step identical to :class:`~repro.core.policies.WidthPolicy`.
    """

    def __init__(self, width: int):
        super().__init__()
        if width < 0:
            raise ValueError("width must be >= 0")
        self.width = width
        self.name = f"parallel-solve(w={width}, incremental)"

    def _bind(self, tree: GameTree, state: object) -> FrontierIndex:
        assert isinstance(state, BooleanState)
        return _boolean_index(tree, state, self.width)

    def __call__(self, tree: GameTree, state: BooleanState) -> List[NodeId]:
        return self.index_for(tree, state).batch()


class IncrementalBoundedWidthPolicy(_IncrementalPolicy):
    """Width-w selection capped at ``processors`` leaves, incremental.

    Step-for-step identical to
    :class:`~repro.core.policies.BoundedWidthPolicy`.
    """

    def __init__(self, width: int, processors: int):
        super().__init__()
        if width < 0:
            raise ValueError("width must be >= 0")
        if processors < 1:
            raise ValueError("need at least one processor")
        self.width = width
        self.processors = processors
        self.name = (
            f"parallel-solve(w={width}, p={processors}, incremental)"
        )

    def _bind(self, tree: GameTree, state: object) -> FrontierIndex:
        assert isinstance(state, BooleanState)
        return _boolean_index(tree, state, self.width)

    def __call__(self, tree: GameTree, state: BooleanState) -> List[NodeId]:
        return self.index_for(tree, state).most_urgent(self.processors)


class IncrementalTeamPolicy(_IncrementalPolicy):
    """Team SOLVE selection (leftmost p live leaves), incremental.

    Step-for-step identical to :class:`~repro.core.policies.TeamPolicy`.
    """

    def __init__(self, processors: int):
        super().__init__()
        if processors < 1:
            raise ValueError("Team SOLVE needs at least one processor")
        self.processors = processors
        self.name = f"team-solve(p={processors}, incremental)"

    def _bind(self, tree: GameTree, state: object) -> FrontierIndex:
        assert isinstance(state, BooleanState)
        return _boolean_index(tree, state, None)

    def __call__(self, tree: GameTree, state: BooleanState) -> List[NodeId]:
        return self.index_for(tree, state).first(self.processors)


class IncrementalSequentialPolicy(IncrementalTeamPolicy):
    """Sequential SOLVE (leftmost live leaf), incremental."""

    def __init__(self) -> None:
        super().__init__(1)
        self.name = "sequential-solve(incremental)"


class IncrementalSaturationPolicy(_IncrementalPolicy):
    """Saturation selection (every live leaf), incremental.

    Step-for-step identical to
    :class:`~repro.core.policies.SaturationPolicy`.
    """

    name = "saturation-solve(incremental)"

    def _bind(self, tree: GameTree, state: object) -> FrontierIndex:
        assert isinstance(state, BooleanState)
        return _boolean_index(tree, state, None)

    def __call__(self, tree: GameTree, state: BooleanState) -> List[NodeId]:
        return self.index_for(tree, state).batch()
