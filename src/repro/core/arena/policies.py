"""Event-fed arena policies for the object-graph engines.

The pure arena engines in :mod:`.boolean` / :mod:`.alphabeta` keep all
run state in arrays and never build a
:class:`~repro.core.status.BooleanState` — which is exactly what makes
them fast, but callers that pass an ``on_step=`` hook are owed the
real state object.  For that path the solver entry points fall back to
these *policies*: the engine loop stays object-graph
(:func:`~repro.core.solve_engine.run_boolean` /
:func:`~repro.core.alphabeta.engine.run_minmax`), while selection runs
on the arena columns — a ``settled`` boolean column kept current by
subscribing to the state's transition feed, queried through the same
kernels the pure engines use.  Batches are identical either way.

The structure mirrors :class:`~repro.core.frontier._IncrementalPolicy`:
lazy bind on first call, rebind when the policy object is reused on a
fresh run, ``recorder`` attribute accepted for interface symmetry
(arena selection emits no frontier counters).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

import numpy as np

from ...telemetry import Recorder
from ...trees.base import GameTree, NodeId
from ...trees.canonical import CanonicalArrays, canonical_arrays
from ..status import BooleanState

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..alphabeta.state import AlphaBetaState
from .selection import most_urgent, select_frontier, select_width

__all__ = [
    "ArenaWidthPolicy",
    "ArenaBoundedWidthPolicy",
    "ArenaTeamPolicy",
    "ArenaSaturationPolicy",
    "ArenaAlphaBetaWidthPolicy",
]


class _Binding:
    """One run's view: lowered columns plus the live settled mask."""

    def __init__(self, tree: GameTree, state: object) -> None:
        self.state = state
        self.arrays: CanonicalArrays = canonical_arrays(tree)
        n = self.arrays.n_nodes
        self.settled = np.zeros(n, dtype=bool)
        self.budget = np.zeros(n, dtype=np.int64)
        self._index = self.arrays.index_map()

    def on_settled(self, node: NodeId) -> None:
        self.settled[self._index[node]] = True

    def seed_boolean(self, state: BooleanState) -> None:
        """Absorb determinations that predate the subscription."""
        index = self._index
        # Bind-time seed, not a hot path: the pre-subscription settled
        # set is almost always empty.
        for node in state.value:  # lint: disable=R12
            self.settled[index[node]] = True

    def seed_minmax(self, state: "AlphaBetaState") -> None:
        index = self._index
        # Bind-time seed, not a hot path (see seed_boolean).
        for node in state.finished_value:  # lint: disable=R12
            self.settled[index[node]] = True
        for node in state.pruned:  # lint: disable=R12
            self.settled[index[node]] = True

    def to_ids(self, batch: np.ndarray) -> List[NodeId]:
        ids: List[NodeId] = self.arrays.node_ids[batch].tolist()
        return ids


class _ArenaPolicy:
    """Base: bind lazily to the engine's state, track settles."""

    def __init__(self) -> None:
        self._binding: Optional[_Binding] = None
        self.recorder: Optional[Recorder] = None

    def _bind(self, tree: GameTree, state: object) -> _Binding:
        raise NotImplementedError

    def binding_for(self, tree: GameTree, state: object) -> _Binding:
        binding = self._binding
        if binding is None or binding.state is not state:
            binding = self._bind(tree, state)
            self._binding = binding
        return binding


class _ArenaBooleanPolicy(_ArenaPolicy):
    def _bind(self, tree: GameTree, state: object) -> _Binding:
        assert isinstance(state, BooleanState)
        binding = _Binding(tree, state)
        binding.seed_boolean(state)
        state.subscribe(binding.on_settled)
        return binding


class ArenaWidthPolicy(_ArenaBooleanPolicy):
    """Parallel SOLVE width-w selection on the arena columns."""

    def __init__(self, width: int) -> None:
        super().__init__()
        if width < 0:
            raise ValueError("width must be >= 0")
        self.width = width
        self.name = f"parallel-solve(w={width}, arena)"

    def __call__(self, tree: GameTree, state: BooleanState) -> List[NodeId]:
        binding = self.binding_for(tree, state)
        return binding.to_ids(
            select_width(
                binding.arrays, binding.settled, self.width, binding.budget
            )
        )


class ArenaBoundedWidthPolicy(_ArenaBooleanPolicy):
    """Width-w selection capped at ``processors`` leaves, arena-backed."""

    def __init__(self, width: int, processors: int) -> None:
        super().__init__()
        if width < 0:
            raise ValueError("width must be >= 0")
        if processors < 1:
            raise ValueError("need at least one processor")
        self.width = width
        self.processors = processors
        self.name = f"parallel-solve(w={width}, p={processors}, arena)"

    def __call__(self, tree: GameTree, state: BooleanState) -> List[NodeId]:
        binding = self.binding_for(tree, state)
        leaves = select_width(
            binding.arrays, binding.settled, self.width, binding.budget
        )
        scores = self.width - binding.budget[leaves]
        return binding.to_ids(
            most_urgent(leaves, scores, self.width, self.processors)
        )


class ArenaTeamPolicy(_ArenaBooleanPolicy):
    """Team SOLVE selection (leftmost p live leaves), arena-backed."""

    def __init__(self, processors: int) -> None:
        super().__init__()
        if processors < 1:
            raise ValueError("Team SOLVE needs at least one processor")
        self.processors = processors
        self.name = f"team-solve(p={processors}, arena)"

    def __call__(self, tree: GameTree, state: BooleanState) -> List[NodeId]:
        binding = self.binding_for(tree, state)
        frontier = select_frontier(binding.arrays, binding.settled)
        return binding.to_ids(frontier[: self.processors])


class ArenaSaturationPolicy(_ArenaBooleanPolicy):
    """Saturation selection (every live leaf), arena-backed."""

    name = "saturation-solve(arena)"

    def __call__(self, tree: GameTree, state: BooleanState) -> List[NodeId]:
        binding = self.binding_for(tree, state)
        return binding.to_ids(
            select_frontier(binding.arrays, binding.settled)
        )


class ArenaAlphaBetaWidthPolicy(_ArenaPolicy):
    """Width-w alpha-beta selection on the arena columns.

    "Settled" is finished-or-pruned; the state's transition feed
    covers both, children before ancestors.
    """

    def __init__(self, width: int) -> None:
        super().__init__()
        if width < 0:
            raise ValueError("width must be >= 0")
        self.width = width
        self.name = f"parallel-alpha-beta(w={width}, arena)"

    def _bind(self, tree: GameTree, state: object) -> _Binding:
        # Runtime import: repro.core.alphabeta imports this package for
        # its backend dispatch, so the reverse import must be deferred.
        from ..alphabeta.state import AlphaBetaState

        assert isinstance(state, AlphaBetaState)
        binding = _Binding(tree, state)
        binding.seed_minmax(state)
        state.subscribe(binding.on_settled)
        return binding

    def __call__(
        self, tree: GameTree, state: "AlphaBetaState"
    ) -> List[NodeId]:
        binding = self.binding_for(tree, state)
        return binding.to_ids(
            select_width(
                binding.arrays, binding.settled, self.width, binding.budget
            )
        )
