"""Arena engine for the pruning process (sequential/parallel alpha-beta).

Mirrors :func:`repro.core.alphabeta.engine.run_minmax` step for step:
select unfinished leaves of the pruned tree by pruning number, finish
them, then apply free propagation/pruning to fixpoint.

The key equivalence: one pass of
:func:`~repro.core.alphabeta.engine._prune_pass` is a *pure top-down
function of the start-of-pass state*.  No node on the DFS stack can be
settled mid-pass (a cascade finish needs every child settled, and any
on-stack node is unfinished), sibling-subtree cascades travel strictly
upward, and the prune condition ``alpha >= beta`` is constant across
one node's children — so the set of nodes pruned in a pass (and hence
the pass's prune *count*, which feeds the ``pruned=`` span attribute)
is exactly what a level-synchronous sweep over a snapshot computes.
This module runs that sweep: bounds propagate down one level at a
time over full-size alpha/beta columns, prunes are collected, and the
finish cascade is applied level-batched bottom-up afterwards.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ...errors import ModelViolationError, PruningInvariantError
from ...models.accounting import EvalResult, ExecutionTrace
from ...telemetry import Recorder, live
from ...trees.base import GameTree, NodeId
from ...trees.canonical import CanonicalArrays, canonical_arrays
from .selection import children_of_many, select_width

__all__ = ["arena_alpha_beta"]

_INF = float("inf")


class _AlphaBetaArena:
    """Mutable run state of one pruning-process arena evaluation."""

    def __init__(self, arrays: CanonicalArrays) -> None:
        self.arrays = arrays
        n = arrays.n_nodes
        self.finished = np.zeros(n, dtype=bool)
        self.pruned = np.zeros(n, dtype=bool)
        #: finished-or-pruned; the walk's settled predicate.
        self.settled = np.zeros(n, dtype=bool)
        self.touched = np.zeros(n, dtype=bool)
        self.finished_value = np.zeros(n, dtype=np.float64)
        #: unfinished-children counters (garbage once a node settles).
        self.unfinished = arrays.arities.astype(np.int64)
        self.budget = np.zeros(n, dtype=np.int64)
        #: child alpha/beta bounds, written top-down before every read.
        self.alpha = np.zeros(n, dtype=np.float64)
        self.beta = np.zeros(n, dtype=np.float64)

    # -- finishing ---------------------------------------------------------
    def finish_leaves(
        self,
        batch: np.ndarray,
        values: Optional[np.ndarray] = None,
    ) -> None:
        """Finish a batch of distinct unfinished leaves and cascade.

        ``values`` supplies the batch's leaf values from an external
        evaluator (the shared-memory executor); the default reads the
        lowered column — a pure oracle makes the two paths identical.
        """
        self._mark_touched(batch)
        self.finished[batch] = True
        self.settled[batch] = True
        self.finished_value[batch] = (
            self.arrays.values[batch] if values is None else values
        )
        depths = self.arrays.depths[batch]
        buckets: Dict[int, List[np.ndarray]] = {}
        for depth in np.unique(depths).tolist():
            buckets[depth] = [batch[depths == depth]]
        self._cascade(buckets)

    def _mark_touched(self, batch: np.ndarray) -> None:
        """Mark the batch and its ancestors touched (stop at touched)."""
        touched, parents = self.touched, self.arrays.parents
        current = batch
        while current.shape[0]:
            current = current[~touched[current]]
            if current.shape[0] == 0:
                break
            touched[current] = True
            current = current[current != 0]
            current = np.unique(parents[current])

    def _cascade(self, buckets: Dict[int, List[np.ndarray]]) -> None:
        """Propagate finishes upward from newly settled nodes.

        ``buckets`` maps depth to arrays of nodes that settled this
        round (finished leaves or freshly pruned nodes).  A parent
        finishes when its unfinished-children counter reaches zero,
        with the MAX/MIN of its non-pruned children's values; if every
        child was pruned, the pruning pass violated top-down order.
        """
        arrays = self.arrays
        parents, levels = arrays.parents, arrays.levels
        settled, finished = self.settled, self.finished
        values = self.finished_value
        for depth in range(max(buckets), 0, -1):
            parts = buckets.get(depth)
            if not parts:
                continue
            nodes = parts[0] if len(parts) == 1 else np.concatenate(parts)
            up = parents[nodes]
            up = up[~settled[up]]
            if up.shape[0] == 0:
                continue
            np.add.at(self.unfinished, up, -1)
            done = np.unique(up)
            done = done[self.unfinished[done] == 0]
            if done.shape[0] == 0:
                continue
            kids, segment = children_of_many(arrays, done, levels[depth])
            surviving = ~self.pruned[kids]
            kids, segment = kids[surviving], segment[surviving]
            counts = np.bincount(segment, minlength=done.shape[0])
            orphaned = done[counts == 0]
            if orphaned.shape[0]:
                node = arrays.node_ids[int(orphaned[0])]
                raise PruningInvariantError(
                    f"every child of {node!r} was pruned while {node!r} "
                    f"survived — the pruning pass violated top-down order"
                )
            # MAX at even depth: finish with the max of the non-pruned
            # (hence finished) children; MIN at odd depth dually.
            acc = self.alpha  # reuse the bounds column as accumulator
            if (depth - 1) % 2 == 0:
                acc[done] = -_INF
                np.maximum.at(acc, done[segment], values[kids])
            else:
                acc[done] = _INF
                np.minimum.at(acc, done[segment], values[kids])
            values[done] = acc[done]
            finished[done] = True
            settled[done] = True
            buckets.setdefault(depth - 1, []).append(done)

    # -- pruning -----------------------------------------------------------
    def prune_to_fixpoint(self) -> int:
        total = 0
        while True:
            pruned_now = self._prune_pass()
            total += pruned_now
            if pruned_now == 0:
                return total

    def _prune_pass(self) -> int:
        """One level-synchronous sweep of the pruning rule.

        Bounds and prune decisions read the start-of-pass state only;
        prunes (and their finish cascades) are applied after the full
        sweep — the purity argument in the module docstring makes this
        equivalent to the reference DFS pass, prune count included.
        """
        if self.finished[0]:
            return 0
        arrays = self.arrays
        parents, levels = arrays.parents, arrays.levels
        alpha, beta = self.alpha, self.beta
        finished, pruned, settled = self.finished, self.pruned, self.settled
        values = self.finished_value

        alpha[0], beta[0] = -_INF, _INF
        visited = np.zeros(1, dtype=np.int64)
        prunes: Dict[int, np.ndarray] = {}
        for depth, level in enumerate(levels[1:]):
            children, segment = children_of_many(arrays, visited, level)
            if children.shape[0] == 0:
                break
            # Sharpen the bound each visited node passes down with its
            # finished non-pruned children (MAX tightens alpha at even
            # depths, MIN tightens beta at odd depths).
            fin = children[finished[children] & ~pruned[children]]
            if depth % 2 == 0:
                np.maximum.at(alpha, parents[fin], values[fin])
            else:
                np.minimum.at(beta, parents[fin], values[fin])
            up = visited[segment]
            cut = alpha[up] >= beta[up]
            open_child = ~settled[children]
            doomed = children[cut & open_child]
            if doomed.shape[0]:
                prunes[depth + 1] = doomed
            descend = (
                ~cut & open_child
                & ~arrays.is_leaf[children] & self.touched[children]
            )
            visited = children[descend]
            if visited.shape[0] == 0:
                break
            alpha[visited] = alpha[parents[visited]]
            beta[visited] = beta[parents[visited]]

        if not prunes:
            return 0
        count = 0
        buckets: Dict[int, List[np.ndarray]] = {}
        for depth, doomed in prunes.items():
            count += int(doomed.shape[0])
            pruned[doomed] = True
            settled[doomed] = True
            buckets[depth] = [doomed]
        self._cascade(buckets)
        return count


def arena_alpha_beta(
    tree: GameTree,
    width: int = 0,
    *,
    keep_batches: bool = False,
    recorder: Optional[Recorder] = None,
    max_steps: Optional[int] = None,
) -> EvalResult:
    """The pruning process of width ``width`` on the arena backend.

    Width 0 is Sequential alpha-beta; the step loop mirrors
    :func:`~repro.core.alphabeta.engine.run_minmax` call for call.
    """
    if width < 0:
        raise ValueError("width must be >= 0")
    rec = live(recorder)
    arrays = canonical_arrays(tree)
    arena = _AlphaBetaArena(arrays)
    trace = ExecutionTrace(keep_batches=keep_batches)
    evaluated: List[NodeId] = []
    node_ids = arrays.node_ids
    name = f"parallel-alpha-beta(w={width}, arena)"

    step = 0
    while not arena.finished[0]:
        batch_idx = select_width(arrays, arena.settled, width, arena.budget)
        if batch_idx.shape[0] == 0:
            raise ModelViolationError(
                f"policy {name!r} selected no leaves while the root is "
                f"unfinished"
            )
        arena.finish_leaves(batch_idx)
        pruned = arena.prune_to_fixpoint()
        batch: List[NodeId] = node_ids[batch_idx].tolist()
        trace.record(batch)
        evaluated.extend(batch)
        if rec is not None:
            rec.advance(step + 1)
            rec.add_span(
                "step", step, step + 1, track="alphabeta",
                degree=len(batch), pruned=pruned,
            )
            rec.count("alphabeta.leaves_evaluated", len(batch))
            if pruned:
                rec.count("alphabeta.pruned", pruned)
            rec.sample("alphabeta.degree", len(batch), track="alphabeta")
        step += 1
        if max_steps is not None and step > max_steps:
            raise ModelViolationError(f"exceeded {max_steps} steps")

    if rec is not None:
        rec.count("alphabeta.steps", step)
        rec.gauge("alphabeta.processors", trace.processors)
    return EvalResult(float(arena.finished_value[0]), trace, evaluated)
