"""Vectorised frontier selection over :class:`CanonicalArrays` columns.

The three selection primitives every backend shares, as level-batched
array sweeps instead of per-node DFS:

* :func:`select_width` — the budgeted width-w walk ("all live leaves
  with pruning number at most w").  Equivalent to
  :func:`repro.core.policies.select_with_pruning_numbers`: at each
  level the candidate children of in-range parents are gathered by
  subtree-interval search, settled siblings are dropped (they never
  cost budget), and the per-parent live index is recovered with a
  segmented scan — ``child_budget = parent_budget - live_index``,
  keep iff ``>= 0``.
* :func:`select_frontier` — the unbounded liveness walk (every live
  terminal), the Team/Saturation selection.
* :func:`most_urgent` — the fixed-machine cap: of the in-range
  leaves, the ``processors`` with the smallest pruning number,
  leftmost on ties, via counting sort.  Bit-identical to
  :meth:`repro.core.frontier.FrontierIndex.most_urgent`.

All functions take a ``settled`` boolean column as *the* liveness
input, so the Boolean model (settled = determined) and the pruning
process (settled = finished or pruned) share the kernels.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ...trees.canonical import CanonicalArrays

__all__ = [
    "select_width",
    "select_frontier",
    "most_urgent",
    "children_of_many",
]

_EMPTY = np.empty(0, dtype=np.int64)


def children_of_many(
    arrays: CanonicalArrays,
    parents_sel: np.ndarray,
    level: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """All children of ``parents_sel`` that lie on ``level``.

    ``parents_sel`` must be sorted ascending; ``level`` is the sorted
    preorder-index array of one depth.  Children of node ``v`` are
    exactly the next-depth nodes inside the preorder interval
    ``(v, v + spans[v])``, so one vectorised ``searchsorted`` pair per
    level replaces the per-node child walk.

    Returns ``(children, segment)`` where ``segment[j]`` indexes the
    parent of ``children[j]`` in ``parents_sel``; children appear in
    global preorder (parents are sorted and subtrees are disjoint).
    """
    starts = np.searchsorted(level, parents_sel + 1)
    ends = np.searchsorted(level, parents_sel + arrays.spans[parents_sel])
    lens = ends - starts
    total = int(lens.sum())
    if total == 0:
        return _EMPTY, _EMPTY
    segment = np.repeat(np.arange(parents_sel.shape[0]), lens)
    offsets = np.concatenate(
        (np.zeros(1, dtype=np.int64), np.cumsum(lens)[:-1])
    )
    positions = np.arange(total) - offsets[segment] + starts[segment]
    return level[positions], segment


def _live_index(segment: np.ndarray) -> np.ndarray:
    """Position of each entry within its (contiguous) segment run."""
    idx = np.arange(segment.shape[0])
    boundary = np.empty(segment.shape[0], dtype=bool)
    boundary[0] = True
    boundary[1:] = segment[1:] != segment[:-1]
    seg_start = np.maximum.accumulate(np.where(boundary, idx, 0))
    return idx - seg_start


def select_width(
    arrays: CanonicalArrays,
    settled: np.ndarray,
    width: int,
    budget: np.ndarray,
) -> np.ndarray:
    """Preorder indices of live leaves with pruning number <= ``width``.

    ``budget`` is a reusable per-node int64 scratch column; on return
    ``width - budget[leaf]`` is each selected leaf's exact pruning
    number (the walk writes budgets only for the nodes it keeps, and
    every read follows a same-call write, so no clearing is needed).
    """
    if settled[0]:
        return _EMPTY
    budget[0] = width
    if arrays.is_leaf[0]:
        return np.zeros(1, dtype=np.int64)
    frontier_levels = []
    kept = np.zeros(1, dtype=np.int64)
    for level in arrays.levels[1:]:
        children, segment = children_of_many(arrays, kept, level)
        if children.shape[0] == 0:
            break
        live = ~settled[children]
        children, segment = children[live], segment[live]
        if children.shape[0] == 0:
            break
        child_budget = budget[kept[segment]] - _live_index(segment)
        in_range = child_budget >= 0
        children = children[in_range]
        budget[children] = child_budget[in_range]
        leafy = arrays.is_leaf[children]
        leaves = children[leafy]
        if leaves.shape[0]:
            frontier_levels.append(leaves)
        kept = children[~leafy]
        if kept.shape[0] == 0:
            break
    if not frontier_levels:
        return _EMPTY
    return np.sort(np.concatenate(frontier_levels))


def select_frontier(
    arrays: CanonicalArrays, settled: np.ndarray
) -> np.ndarray:
    """Preorder indices of *all* live leaves (unbounded liveness walk).

    A leaf is live when neither it nor any ancestor is settled — the
    Team/Saturation frontier.
    """
    if settled[0]:
        return _EMPTY
    if arrays.is_leaf[0]:
        return np.zeros(1, dtype=np.int64)
    frontier_levels = []
    kept = np.zeros(1, dtype=np.int64)
    for level in arrays.levels[1:]:
        children, _segment = children_of_many(arrays, kept, level)
        if children.shape[0] == 0:
            break
        children = children[~settled[children]]
        if children.shape[0] == 0:
            break
        leafy = arrays.is_leaf[children]
        leaves = children[leafy]
        if leaves.shape[0]:
            frontier_levels.append(leaves)
        kept = children[~leafy]
        if kept.shape[0] == 0:
            break
    if not frontier_levels:
        return _EMPTY
    return np.sort(np.concatenate(frontier_levels))


def most_urgent(
    leaves: np.ndarray,
    scores: np.ndarray,
    width: int,
    processors: int,
) -> np.ndarray:
    """The ``processors`` lowest-score leaves, leftmost on ties.

    ``leaves`` must be in preorder; the result is too.  Counting sort
    over scores in ``[0, width]``, then the quota of cutoff-score
    holders is consumed left to right — the exact tie-break of
    :meth:`~repro.core.frontier.FrontierIndex.most_urgent` and
    :func:`~repro.core.policies.rank_by_urgency`.
    """
    if leaves.shape[0] <= processors:
        return leaves
    counts = np.bincount(scores, minlength=width + 1)
    cumulative = np.cumsum(counts)
    cutoff = int(np.searchsorted(cumulative, processors))
    quota = processors - (int(cumulative[cutoff - 1]) if cutoff else 0)
    at_cutoff = scores == cutoff
    take = (scores < cutoff) | (at_cutoff & (np.cumsum(at_cutoff) <= quota))
    return leaves[take]
