"""Arena engines for the Boolean leaf-evaluation model.

The same step loop as :func:`repro.core.solve_engine.run_boolean` —
select a batch of live leaves, evaluate all of them, cascade
determination for free — but over the struct-of-arrays columns: the
batch is a numpy index vector, leaf evaluation is one gather, and the
settle cascade is a level-batched bottom-up sweep.

Equivalence to the per-leaf cascade in
:class:`~repro.core.status.BooleanState`: within one step, a parent
settles to ``on_absorb`` iff some child settled with the gate's
absorbing value (whatever the order in which the batch's leaves are
evaluated — a counter can only reach zero once *every* child settled
non-absorbing, so the absorbing case always wins in the sequential
cascade too), and settles to ``otherwise`` iff its undetermined-child
counter reached zero.  Counters of already-settled parents are
garbage in both implementations (never observed).  Values, batches,
step counts and recorder calls are therefore bit-identical.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import numpy as np

from ...errors import ModelViolationError
from ...models.accounting import EvalResult, ExecutionTrace
from ...telemetry import Recorder, live
from ...trees.base import GameTree, NodeId
from ...trees.canonical import CanonicalArrays, canonical_arrays
from .selection import most_urgent, select_frontier, select_width

__all__ = [
    "arena_parallel_solve",
    "arena_saturation_solve",
    "arena_team_solve",
]


class _BooleanArena:
    """Mutable run state of one Boolean arena evaluation."""

    def __init__(self, arrays: CanonicalArrays) -> None:
        if arrays.gate_absorbing is None:
            raise ValueError("Boolean arena needs a Boolean tree")
        self.arrays = arrays
        n = arrays.n_nodes
        self.settled = np.zeros(n, dtype=bool)
        self.value = np.full(n, -1, dtype=np.int8)
        #: undetermined-children counters (garbage once a node settles).
        self.undetermined = arrays.arities.astype(np.int64)
        #: width-walk budget scratch (written before read each call).
        self.budget = np.zeros(n, dtype=np.int64)
        #: leaf values as int8 (internal entries are never read).
        self.leaf_values = np.where(
            arrays.is_leaf, arrays.values, 0.0
        ).astype(np.int8)

    def evaluate_batch(self, batch: np.ndarray) -> None:
        """Evaluate a batch of live leaves and cascade determination.

        ``batch`` holds distinct preorder leaf indices; the cascade
        runs one level at a time, deepest first, so parents always see
        their newly settled children in a single sweep.
        """
        arrays = self.arrays
        settled, value = self.settled, self.value
        parents, depths = arrays.parents, arrays.depths
        gate_abs = arrays.gate_absorbing
        gate_on = arrays.gate_on_absorb
        gate_other = arrays.gate_otherwise
        assert gate_abs is not None
        assert gate_on is not None
        assert gate_other is not None

        settled[batch] = True
        value[batch] = self.leaf_values[batch]

        # Bucket the newly settled nodes by depth and sweep upward;
        # parents settled at depth d-1 join that bucket.
        buckets: Dict[int, List[np.ndarray]] = {}
        batch_depths = depths[batch]
        for depth in np.unique(batch_depths).tolist():
            buckets[depth] = [batch[batch_depths == depth]]
        for depth in range(max(buckets), 0, -1):
            parts = buckets.get(depth)
            if not parts:
                continue
            nodes = parts[0] if len(parts) == 1 else np.concatenate(parts)
            up = parents[nodes]
            alive = ~settled[up]
            nodes, up = nodes[alive], up[alive]
            if nodes.shape[0] == 0:
                continue
            np.add.at(self.undetermined, up, -1)
            absorbed = np.unique(up[value[nodes] == gate_abs[up]])
            if absorbed.shape[0]:
                settled[absorbed] = True
                value[absorbed] = gate_on[absorbed]
            candidates = np.unique(up)
            exhausted = candidates[
                ~settled[candidates] & (self.undetermined[candidates] == 0)
            ]
            if exhausted.shape[0]:
                settled[exhausted] = True
                value[exhausted] = gate_other[exhausted]
            newly = (
                np.concatenate((absorbed, exhausted))
                if absorbed.shape[0] and exhausted.shape[0]
                else (absorbed if absorbed.shape[0] else exhausted)
            )
            if newly.shape[0]:
                buckets.setdefault(depth - 1, []).append(newly)


def _run(
    tree: GameTree,
    select: "Callable[[_BooleanArena], np.ndarray]",
    policy_name: str,
    *,
    keep_batches: bool,
    recorder: Optional[Recorder],
    max_steps: Optional[int] = None,
) -> EvalResult:
    """The arena step loop — mirrors ``run_boolean`` call for call."""
    rec = live(recorder)
    arrays = canonical_arrays(tree)
    arena = _BooleanArena(arrays)
    trace = ExecutionTrace(keep_batches=keep_batches)
    evaluated: List[NodeId] = []
    node_ids = arrays.node_ids

    step = 0
    while not arena.settled[0]:
        batch_idx = select(arena)
        if batch_idx.shape[0] == 0:
            raise ModelViolationError(
                f"policy {policy_name!r} selected no leaves while the "
                f"root is undetermined"
            )
        arena.evaluate_batch(batch_idx)
        batch: List[NodeId] = node_ids[batch_idx].tolist()
        trace.record(batch)
        evaluated.extend(batch)
        if rec is not None:
            rec.advance(step + 1)
            rec.add_span(
                "step", step, step + 1, track="solve", degree=len(batch)
            )
            rec.count("solve.leaves_evaluated", len(batch))
            rec.sample("solve.degree", len(batch), track="solve")
        step += 1
        if max_steps is not None and step > max_steps:
            raise ModelViolationError(f"exceeded {max_steps} steps")

    if rec is not None:
        rec.count("solve.steps", step)
        rec.gauge("solve.processors", trace.processors)
    return EvalResult(int(arena.value[0]), trace, evaluated)


def arena_parallel_solve(
    tree: GameTree,
    width: int = 1,
    *,
    max_processors: Optional[int] = None,
    keep_batches: bool = False,
    recorder: Optional[Recorder] = None,
    max_steps: Optional[int] = None,
) -> EvalResult:
    """Parallel SOLVE of width ``width`` on the arena backend.

    With ``max_processors`` the per-step batch is capped at the most
    urgent leaves, exactly like
    :class:`~repro.core.policies.BoundedWidthPolicy`.
    """
    if width < 0:
        raise ValueError("width must be >= 0")
    if max_processors is None:
        name = f"parallel-solve(w={width}, arena)"

        def select(arena: _BooleanArena) -> np.ndarray:
            return select_width(
                arena.arrays, arena.settled, width, arena.budget
            )

    else:
        if max_processors < 1:
            raise ValueError("need at least one processor")
        name = f"parallel-solve(w={width}, p={max_processors}, arena)"

        def select(arena: _BooleanArena) -> np.ndarray:
            leaves = select_width(
                arena.arrays, arena.settled, width, arena.budget
            )
            scores = width - arena.budget[leaves]
            return most_urgent(leaves, scores, width, max_processors)

    return _run(
        tree, select, name,
        keep_batches=keep_batches, recorder=recorder, max_steps=max_steps,
    )


def arena_team_solve(
    tree: GameTree,
    processors: int,
    *,
    keep_batches: bool = False,
    recorder: Optional[Recorder] = None,
    max_steps: Optional[int] = None,
) -> EvalResult:
    """Team SOLVE (leftmost ``processors`` live leaves) on the arena."""
    if processors < 1:
        raise ValueError("Team SOLVE needs at least one processor")

    def select(arena: _BooleanArena) -> np.ndarray:
        return select_frontier(arena.arrays, arena.settled)[:processors]

    return _run(
        tree, select, f"team-solve(p={processors}, arena)",
        keep_batches=keep_batches, recorder=recorder, max_steps=max_steps,
    )


def arena_saturation_solve(
    tree: GameTree,
    *,
    keep_batches: bool = False,
    recorder: Optional[Recorder] = None,
    max_steps: Optional[int] = None,
) -> EvalResult:
    """Saturation SOLVE (every live leaf each step) on the arena."""

    def select(arena: _BooleanArena) -> np.ndarray:
        return select_frontier(arena.arrays, arena.settled)

    return _run(
        tree, select, "saturation-solve(arena)",
        keep_batches=keep_batches, recorder=recorder, max_steps=max_steps,
    )
