"""Columnar array-arena engines: struct-of-arrays tree evaluation.

The object-graph engines (:mod:`repro.core.solve_engine`,
:mod:`repro.core.alphabeta.engine`) pay Python pointer-chasing for
every settle/cascade sweep.  This subsystem lowers a tree once into
:class:`~repro.trees.canonical.CanonicalArrays` — preorder-indexed
numpy columns — and runs the paper's step loops as vectorised
level-batched sweeps over those columns:

* selection (budgeted width-w walk, unbounded liveness walk and the
  counting-sort ``most_urgent(p)`` cap) in :mod:`.selection`;
* the Boolean leaf-evaluation engines (Parallel/Bounded/Team/
  Saturation SOLVE) in :mod:`.boolean`;
* the MIN/MAX pruning process (sequential and parallel alpha-beta)
  in :mod:`.alphabeta`;
* event-fed hybrid policies (used when callers pass ``on_step=``
  hooks that need the object-graph state) in :mod:`.policies`.

Everything here is step-for-step identical to the ``rescan`` and
``incremental`` backends: same per-step batches, same step/work
accounting, same ``recorder=`` call sequence.  The differential
property suite and the golden corpus pin that equivalence; the e27
benchmark gates the speed-up that justifies the subsystem.

Hot paths are vectorised — lint rule R12 (arena discipline) rejects
per-node Python loops over the arena columns in this package.
"""

from .alphabeta import arena_alpha_beta
from .boolean import (
    arena_parallel_solve,
    arena_saturation_solve,
    arena_team_solve,
)
from .policies import (
    ArenaAlphaBetaWidthPolicy,
    ArenaBoundedWidthPolicy,
    ArenaSaturationPolicy,
    ArenaTeamPolicy,
    ArenaWidthPolicy,
)
from .selection import most_urgent, select_frontier, select_width

__all__ = [
    "arena_parallel_solve",
    "arena_saturation_solve",
    "arena_team_solve",
    "arena_alpha_beta",
    "ArenaWidthPolicy",
    "ArenaBoundedWidthPolicy",
    "ArenaTeamPolicy",
    "ArenaSaturationPolicy",
    "ArenaAlphaBetaWidthPolicy",
    "select_width",
    "select_frontier",
    "most_urgent",
]
