"""Parallel SOLVE — the paper's main algorithm (Section 2, Theorem 1).

At each step, evaluate *all live leaves with pruning number at most w*.
The pruning number of a live leaf is the total number of live
left-siblings of its ancestors; leaves with small pruning number are the
ones Sequential SOLVE is "likely" to reach soon, so the width-w policy
is a cascade of left-to-right searches running ahead of the leftmost
one.

Width 0 coincides with Sequential SOLVE.  On a uniform tree of height
n, width 1 uses at most n + 1 processors and achieves a speed-up of
c(n+1) over Sequential SOLVE on *every* instance (Theorem 1).

Two step-for-step identical backends implement the selection: the
default ``"incremental"`` backend maintains the frontier in a priority
structure updated on each determination
(:mod:`repro.core.frontier`), while ``"rescan"`` recomputes it with a
budgeted DFS every step — the literal reading of the paper's
definition, kept as the reference implementation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..errors import BackendUnsupportedError
from ..models.accounting import EvalResult
from ..telemetry import Recorder
from ..trees.base import GameTree
from .arena import (
    ArenaBoundedWidthPolicy,
    ArenaWidthPolicy,
    arena_parallel_solve,
    arena_saturation_solve,
)
from .frontier import (
    IncrementalBoundedWidthPolicy,
    IncrementalSaturationPolicy,
    IncrementalWidthPolicy,
)
from .policies import BoundedWidthPolicy, SaturationPolicy, WidthPolicy
from .solve_engine import Policy, run_boolean

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .shm import ShmOptions

#: Selection backends accepted by the solver entry points.
BACKENDS = ("incremental", "rescan", "arena")

#: Leaf executors accepted by the solver entry points: ``"inline"``
#: evaluates leaves in-process (the model-step default), ``"shm"``
#: dispatches each step's batch to a shared-memory worker pool
#: (:mod:`repro.core.shm`; requires ``backend="arena"``).
EXECUTORS = ("inline", "shm")


def resolve_backend(backend: str) -> str:
    """Validate a ``backend=`` argument, returning it unchanged."""
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}"
        )
    return backend


def resolve_executor(executor: str) -> str:
    """Validate an ``executor=`` argument, returning it unchanged."""
    if executor not in EXECUTORS:
        raise ValueError(
            f"unknown executor {executor!r}; expected one of {EXECUTORS}"
        )
    return executor


def check_shm_support(
    engine: str,
    backend: str,
    *,
    on_step=None,
) -> None:
    """Reject engine configurations the shm executor cannot honour.

    The shared-memory pool maps the arena's flat columns, so only
    ``backend="arena"`` can feed it; ``on_step`` hooks observe the
    in-process object-graph state, which a cross-process run does not
    materialise.  Raises
    :class:`~repro.errors.BackendUnsupportedError` naming the engine
    and the rejected combination.
    """
    if backend != "arena":
        raise BackendUnsupportedError(
            f"engine {engine!r} supports executor='shm' only on the "
            f"arena backend (shared memory maps the lowered columns); "
            f"got backend={backend!r}",
            engine=engine, backend=backend, executor="shm",
        )
    if on_step is not None:
        raise BackendUnsupportedError(
            f"engine {engine!r} cannot combine executor='shm' with an "
            f"on_step hook (the hook observes in-process state)",
            engine=engine, backend=backend, executor="shm",
        )


def parallel_solve(
    tree: GameTree,
    width: int = 1,
    *,
    max_processors: Optional[int] = None,
    keep_batches: bool = False,
    on_step=None,
    backend: str = "incremental",
    executor: str = "inline",
    shm_options: "Optional[ShmOptions]" = None,
    recorder: Optional[Recorder] = None,
) -> EvalResult:
    """Run Parallel SOLVE of the given width on a Boolean tree.

    ``max_processors`` caps the per-step batch at the most urgent
    leaves (smallest pruning number, leftmost on ties) — the practical
    fixed-machine variant the paper's Section 7 closes with.

    ``backend`` selects the frontier engine: ``"incremental"``
    (default), ``"rescan"`` (the reference per-step recomputation) or
    ``"arena"`` (vectorised struct-of-arrays sweeps).  All produce
    identical per-step batches.

    ``executor`` selects where leaf batches are evaluated:
    ``"inline"`` (in-process, the default) or ``"shm"`` (a
    shared-memory worker pool over the arena columns, see
    :mod:`repro.core.shm`; requires ``backend="arena"`` and tuned via
    ``shm_options``).  Batches, steps and values are identical across
    executors for pure oracles.

    ``recorder`` attaches a telemetry sink (step spans, degree
    samples, frontier counters); the default records nothing.
    """
    policy: Policy
    backend = resolve_backend(backend)
    if resolve_executor(executor) == "shm":
        check_shm_support("parallel-solve", backend, on_step=on_step)
        from .shm import shm_parallel_solve

        return shm_parallel_solve(
            tree, width,
            max_processors=max_processors,
            keep_batches=keep_batches,
            recorder=recorder,
            options=shm_options,
        )
    if backend == "arena":
        if on_step is None:
            return arena_parallel_solve(
                tree, width,
                max_processors=max_processors,
                keep_batches=keep_batches,
                recorder=recorder,
            )
        # on_step hooks receive the real BooleanState, so the engine
        # loop stays object-graph with arena-backed selection.
        if max_processors is None:
            policy = ArenaWidthPolicy(width)
        else:
            policy = ArenaBoundedWidthPolicy(width, max_processors)
    elif backend == "incremental":
        if max_processors is None:
            policy = IncrementalWidthPolicy(width)
        else:
            policy = IncrementalBoundedWidthPolicy(width, max_processors)
        policy.recorder = recorder
    elif max_processors is None:
        policy = WidthPolicy(width)
    else:
        policy = BoundedWidthPolicy(width, max_processors)
    return run_boolean(
        tree,
        policy,
        keep_batches=keep_batches,
        on_step=on_step,
        recorder=recorder,
    )


def saturation_solve(
    tree: GameTree,
    *,
    keep_batches: bool = False,
    backend: str = "incremental",
    executor: str = "inline",
    shm_options: "Optional[ShmOptions]" = None,
    recorder: Optional[Recorder] = None,
) -> EvalResult:
    """Evaluate every live leaf at every step (unbounded parallelism)."""
    policy: Policy
    backend = resolve_backend(backend)
    if resolve_executor(executor) == "shm":
        check_shm_support("saturation-solve", backend)
        from .shm import shm_saturation_solve

        return shm_saturation_solve(
            tree,
            keep_batches=keep_batches,
            recorder=recorder,
            options=shm_options,
        )
    if backend == "arena":
        return arena_saturation_solve(
            tree, keep_batches=keep_batches, recorder=recorder
        )
    if backend == "incremental":
        policy = IncrementalSaturationPolicy()
        policy.recorder = recorder
    else:
        policy = SaturationPolicy()
    return run_boolean(
        tree, policy, keep_batches=keep_batches, recorder=recorder
    )


def span(tree: GameTree) -> int:
    """The instance's span: steps under unbounded parallelism.

    No live-leaf policy can finish in fewer steps, so the speed-up of
    any width/processor configuration is capped by S(T) / span(T).
    """
    return saturation_solve(tree).num_steps
