"""Parallel SOLVE — the paper's main algorithm (Section 2, Theorem 1).

At each step, evaluate *all live leaves with pruning number at most w*.
The pruning number of a live leaf is the total number of live
left-siblings of its ancestors; leaves with small pruning number are the
ones Sequential SOLVE is "likely" to reach soon, so the width-w policy
is a cascade of left-to-right searches running ahead of the leftmost
one.

Width 0 coincides with Sequential SOLVE.  On a uniform tree of height
n, width 1 uses at most n + 1 processors and achieves a speed-up of
c(n+1) over Sequential SOLVE on *every* instance (Theorem 1).

Two step-for-step identical backends implement the selection: the
default ``"incremental"`` backend maintains the frontier in a priority
structure updated on each determination
(:mod:`repro.core.frontier`), while ``"rescan"`` recomputes it with a
budgeted DFS every step — the literal reading of the paper's
definition, kept as the reference implementation.
"""

from __future__ import annotations

from typing import Optional

from ..models.accounting import EvalResult
from ..telemetry import Recorder
from ..trees.base import GameTree
from .arena import (
    ArenaBoundedWidthPolicy,
    ArenaWidthPolicy,
    arena_parallel_solve,
    arena_saturation_solve,
)
from .frontier import (
    IncrementalBoundedWidthPolicy,
    IncrementalSaturationPolicy,
    IncrementalWidthPolicy,
)
from .policies import BoundedWidthPolicy, SaturationPolicy, WidthPolicy
from .solve_engine import Policy, run_boolean

#: Selection backends accepted by the solver entry points.
BACKENDS = ("incremental", "rescan", "arena")


def resolve_backend(backend: str) -> str:
    """Validate a ``backend=`` argument, returning it unchanged."""
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}"
        )
    return backend


def parallel_solve(
    tree: GameTree,
    width: int = 1,
    *,
    max_processors: Optional[int] = None,
    keep_batches: bool = False,
    on_step=None,
    backend: str = "incremental",
    recorder: Optional[Recorder] = None,
) -> EvalResult:
    """Run Parallel SOLVE of the given width on a Boolean tree.

    ``max_processors`` caps the per-step batch at the most urgent
    leaves (smallest pruning number, leftmost on ties) — the practical
    fixed-machine variant the paper's Section 7 closes with.

    ``backend`` selects the frontier engine: ``"incremental"``
    (default), ``"rescan"`` (the reference per-step recomputation) or
    ``"arena"`` (vectorised struct-of-arrays sweeps).  All produce
    identical per-step batches.

    ``recorder`` attaches a telemetry sink (step spans, degree
    samples, frontier counters); the default records nothing.
    """
    policy: Policy
    backend = resolve_backend(backend)
    if backend == "arena":
        if on_step is None:
            return arena_parallel_solve(
                tree, width,
                max_processors=max_processors,
                keep_batches=keep_batches,
                recorder=recorder,
            )
        # on_step hooks receive the real BooleanState, so the engine
        # loop stays object-graph with arena-backed selection.
        if max_processors is None:
            policy = ArenaWidthPolicy(width)
        else:
            policy = ArenaBoundedWidthPolicy(width, max_processors)
    elif backend == "incremental":
        if max_processors is None:
            policy = IncrementalWidthPolicy(width)
        else:
            policy = IncrementalBoundedWidthPolicy(width, max_processors)
        policy.recorder = recorder
    elif max_processors is None:
        policy = WidthPolicy(width)
    else:
        policy = BoundedWidthPolicy(width, max_processors)
    return run_boolean(
        tree,
        policy,
        keep_batches=keep_batches,
        on_step=on_step,
        recorder=recorder,
    )


def saturation_solve(
    tree: GameTree,
    *,
    keep_batches: bool = False,
    backend: str = "incremental",
    recorder: Optional[Recorder] = None,
) -> EvalResult:
    """Evaluate every live leaf at every step (unbounded parallelism)."""
    policy: Policy
    backend = resolve_backend(backend)
    if backend == "arena":
        return arena_saturation_solve(
            tree, keep_batches=keep_batches, recorder=recorder
        )
    if backend == "incremental":
        policy = IncrementalSaturationPolicy()
        policy.recorder = recorder
    else:
        policy = SaturationPolicy()
    return run_boolean(
        tree, policy, keep_batches=keep_batches, recorder=recorder
    )


def span(tree: GameTree) -> int:
    """The instance's span: steps under unbounded parallelism.

    No live-leaf policy can finish in fewer steps, so the speed-up of
    any width/processor configuration is capped by S(T) / span(T).
    """
    return saturation_solve(tree).num_steps
