"""Vectorised evaluation of uniform trees (NumPy fast path).

The generic engines walk trees node by node — the right tool for
policy-driven step semantics, but needlessly slow for whole-tree
quantities on `UniformTree`, whose implicit layout makes every level a
contiguous array slice.  This module computes, level by level with
NumPy:

* the exact tree value (`uniform_value`),
* Sequential SOLVE's leaf-evaluation cost S(T)
  (`uniform_sequential_cost`),
* N-Sequential SOLVE's expansion cost S*(T) = |H_T|
  (`uniform_expansion_cost`), and
* the evaluated-leaf mask (which leaves are in L(T)).

This is what lets the benchmark suite measure Theorem 1 at heights
where the sequential baseline alone touches millions of leaves.  Every
function is cross-checked against the generic implementations in the
test suite.

How it works.  A short-circuit gate reads its children left to right
and stops at the first *absorbing* value.  Bottom-up, each level keeps
two arrays — value and cost — and folds d children at a time::

    has_abs   = any(child value == absorbing)        per node
    first_abs = index of the first absorbing child   per node
    cost      = sum of child costs up to and including first_abs,
                or of all d children when no child absorbs

The expansion count additionally needs which nodes Sequential SOLVE
*visits*; a second, top-down pass marks, for each visited node, its
first ``first_abs + 1`` (or d) children visited.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..errors import TreeStructureError
from ..trees.uniform import UniformTree
from ..types import TreeKind


def _level_fold(tree: UniformTree, values: np.ndarray,
                level: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Fold child values of one level into parent (value, visited-count).

    Returns (parent values, children-visited counts, first-absorb
    indices); the caller combines them with costs as needed.
    ``level`` is the parents' depth.
    """
    d = tree.branching
    gate = tree._scheme.gate_at(level)
    vals2d = values.reshape(-1, d)
    is_abs = vals2d == gate.absorbing
    has_abs = is_abs.any(axis=1)
    first_abs = np.argmax(is_abs, axis=1)
    visited = np.where(has_abs, first_abs + 1, d)
    parent_vals = np.where(has_abs, gate.on_absorb, gate.otherwise
                           ).astype(np.int8)
    return parent_vals, visited, first_abs


def uniform_value(tree: UniformTree) -> int:
    """Exact Boolean value by level-wise reduction."""
    _require_boolean(tree)
    values = tree.leaf_values_array.astype(np.int8)
    for level in range(tree.height() - 1, -1, -1):
        values, _, _ = _level_fold(tree, values, level)
    return int(values[0])


def uniform_sequential_cost(tree: UniformTree) -> Tuple[int, int]:
    """(value, S(T)): Sequential SOLVE's leaf-evaluation count."""
    _require_boolean(tree)
    d = tree.branching
    values = tree.leaf_values_array.astype(np.int8)
    costs = np.ones(len(values), dtype=np.int64)
    for level in range(tree.height() - 1, -1, -1):
        parent_vals, visited, _ = _level_fold(tree, values, level)
        cum = np.cumsum(costs.reshape(-1, d), axis=1)
        rows = np.arange(len(parent_vals))
        costs = cum[rows, visited - 1]
        values = parent_vals
    return int(values[0]), int(costs[0])


def uniform_expansion_cost(tree: UniformTree) -> Tuple[int, int]:
    """(value, S*(T)): N-Sequential SOLVE's expansion count = |H_T|."""
    value, _, visited_masks = _visitation(tree)
    total = 1  # the root
    for mask in visited_masks:
        total += int(mask.sum())
    return value, total


def uniform_evaluated_leaf_mask(tree: UniformTree) -> np.ndarray:
    """Boolean mask over the leaves: membership in L(T)."""
    _, leaf_mask, _ = _visitation(tree, want_leaves=True)
    return leaf_mask


def _visitation(tree: UniformTree, want_leaves: bool = False):
    """Bottom-up fold + top-down visited marks.

    Returns (root value, leaf mask or None, per-level visited masks
    for levels 1..n).
    """
    _require_boolean(tree)
    d = tree.branching
    n = tree.height()
    values = tree.leaf_values_array.astype(np.int8)
    per_level_visited_counts = []
    for level in range(n - 1, -1, -1):
        parent_vals, visited, _ = _level_fold(tree, values, level)
        per_level_visited_counts.append(visited)
        values = parent_vals
    per_level_visited_counts.reverse()  # index 0 = root's children

    # Top-down: which nodes of each level Sequential SOLVE visits.
    visited_mask = np.ones(1, dtype=bool)  # the root
    masks = []
    for level in range(n):
        counts = per_level_visited_counts[level]
        child_mask = (
            visited_mask[:, None]
            & (np.arange(d)[None, :] < counts[:, None])
        ).reshape(-1)
        masks.append(child_mask)
        visited_mask = child_mask
    leaf_mask = masks[-1] if (masks and want_leaves) else None
    if n == 0:
        leaf_mask = np.ones(1, dtype=bool) if want_leaves else None
    return int(values[0]), leaf_mask, masks


def _require_boolean(tree: UniformTree) -> None:
    if not isinstance(tree, UniformTree):
        raise TreeStructureError("the fast path needs a UniformTree")
    if tree.kind is not TreeKind.BOOLEAN:
        raise TreeStructureError("the fast path evaluates Boolean trees")
