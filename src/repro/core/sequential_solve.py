"""Sequential SOLVE — the "left-to-right" algorithm (Section 2).

Two implementations are provided:

* :func:`sequential_solve` — a fast non-recursive depth-first
  short-circuit evaluation, the direct analogue of the paper's
  ``S-SOLVE`` program.  This is the production path: it is what
  ``S(T)`` is measured with, and what skeleton construction replays.
* the engine route (``run_boolean`` with :class:`SequentialPolicy`) —
  one leaf per basic step.  Both must evaluate exactly the same leaves
  in exactly the same order; the test suite enforces this equivalence.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..models.accounting import EvalResult, ExecutionTrace
from ..telemetry import Recorder, record_execution_trace
from ..trees.base import GameTree, NodeId


def sequential_solve(
    tree: GameTree, *, recorder: Optional[Recorder] = None
) -> EvalResult:
    """Evaluate a Boolean tree left-to-right with short-circuiting.

    Returns an :class:`EvalResult` whose trace has one degree-1 step per
    evaluated leaf, matching the leaf-evaluation model's accounting of
    Sequential SOLVE.  The trace is built after the fact (the fast
    non-recursive walk has no per-step loop), so telemetry is bridged
    from it via the :mod:`repro.telemetry.adapters` path.
    """
    value, leaves = solve_subtree(tree, tree.root)
    trace = ExecutionTrace()
    for leaf in leaves:
        trace.record([leaf])
    record_execution_trace(recorder, trace, track="sequential")
    return EvalResult(value, trace, list(leaves))


def solve_subtree(
    tree: GameTree, node: NodeId
) -> Tuple[int, List[NodeId]]:
    """Left-to-right evaluation of the subtree at ``node``.

    Returns the subtree's value and the list of leaves evaluated, in
    evaluation order.  Iterative (explicit stack) so tall trees do not
    hit the recursion limit.
    """
    evaluated: List[NodeId] = []
    # Frame: [node, children tuple or None, index of child in progress].
    stack: List[list] = [[node, None, 0]]
    ret: int = -1
    while stack:
        frame = stack[-1]
        cur = frame[0]
        if tree.is_leaf(cur):
            ret = int(tree.leaf_value(cur))
            evaluated.append(cur)
            stack.pop()
            continue
        if frame[1] is None:
            frame[1] = tree.children(cur)
            stack.append([frame[1][0], None, 0])
            continue
        # A child just returned ``ret``.
        gate = tree.gate(cur)
        if ret == gate.absorbing:
            ret = gate.on_absorb
            stack.pop()
            continue
        frame[2] += 1
        if frame[2] == len(frame[1]):
            ret = gate.otherwise
            stack.pop()
            continue
        stack.append([frame[1][frame[2]], None, 0])
    return ret, evaluated


def sequential_leaf_set(tree: GameTree) -> List[NodeId]:
    """``L(T)``: the leaves Sequential SOLVE evaluates, in order."""
    _, leaves = solve_subtree(tree, tree.root)
    return leaves
