"""Leaf-selection policies for the leaf-evaluation model.

A policy maps the current :class:`~repro.core.status.BooleanState` to
the batch of live leaves to evaluate at the next basic step.  The
paper's three algorithms are three policies:

* :class:`SequentialPolicy` — the leftmost live leaf (Sequential SOLVE);
* :class:`TeamPolicy` — the leftmost ``p`` live leaves (Team SOLVE);
* :class:`WidthPolicy` — all live leaves with pruning number at most
  ``w`` (Parallel SOLVE of width w; width 0 coincides with Sequential
  SOLVE).

Both selections run as a single left-to-right DFS that descends only
through undetermined nodes.  For :class:`WidthPolicy` the DFS carries a
*budget*: stepping past ``c`` live left-siblings at a node costs ``c``,
and branches whose cumulative cost exceeds the width are cut — this
enumerates exactly the live leaves with pruning number <= w, touching
only their ancestors.
"""

from __future__ import annotations

from typing import List

from ..trees.base import GameTree, NodeId
from .status import BooleanState


def select_leftmost_live(
    tree: GameTree, state: BooleanState, limit: int
) -> List[NodeId]:
    """The leftmost ``limit`` live leaves, in left-to-right order."""
    out: List[NodeId] = []
    value = state.value
    stack = [tree.root]
    if tree.root in value:
        return out
    while stack and len(out) < limit:
        node = stack.pop()
        if tree.is_leaf(node):
            out.append(node)
            continue
        kids = [c for c in tree.children(node) if c not in value]
        stack.extend(reversed(kids))
    return out


def select_by_pruning_number(
    tree: GameTree, state: BooleanState, width: int
) -> List[NodeId]:
    """All live leaves with pruning number at most ``width``.

    Returned in left-to-right order.
    """
    return [
        leaf for leaf, _pn in
        select_with_pruning_numbers(tree, state, width)
    ]


def select_with_pruning_numbers(
    tree: GameTree, state: BooleanState, width: int
) -> List[tuple]:
    """Live leaves with pruning number <= ``width``, as (leaf, number).

    The budget consumed on the way down *is* the leaf's exact pruning
    number, so the numbers come free with the walk.  Left-to-right
    order.
    """
    out: List[tuple] = []
    value = state.value
    if tree.root in value:
        return out
    # Stack of (node, remaining budget); node is always undetermined.
    stack = [(tree.root, width)]
    while stack:
        node, budget = stack.pop()
        if tree.is_leaf(node):
            out.append((node, width - budget))
            continue
        frames = []
        live_seen = 0
        for child in tree.children(node):
            if child in value:
                continue  # dead: not a live sibling, never descended
            remaining = budget - live_seen
            if remaining < 0:
                break
            frames.append((child, remaining))
            live_seen += 1
        stack.extend(reversed(frames))
    return out


def rank_by_urgency(scored: List[tuple], processors: int) -> List[NodeId]:
    """The ``processors`` most urgent of ``(leaf, pruning_number)`` pairs.

    Most urgent = smallest pruning number, leftmost on ties; the
    selection is returned in left-to-right tree order (``scored`` must
    already be in that order).
    """
    ranked = sorted(
        range(len(scored)), key=lambda i: (scored[i][1], i)
    )[:processors]
    return [scored[i][0] for i in sorted(ranked)]


class SequentialPolicy:
    """Sequential SOLVE: evaluate the leftmost live leaf."""

    name = "sequential-solve"

    def __call__(self, tree: GameTree, state: BooleanState) -> List[NodeId]:
        return select_leftmost_live(tree, state, 1)


class TeamPolicy:
    """Team SOLVE with p processors: the leftmost p live leaves."""

    def __init__(self, processors: int):
        if processors < 1:
            raise ValueError("Team SOLVE needs at least one processor")
        self.processors = processors
        self.name = f"team-solve(p={processors})"

    def __call__(self, tree: GameTree, state: BooleanState) -> List[NodeId]:
        return select_leftmost_live(tree, state, self.processors)


class WidthPolicy:
    """Parallel SOLVE of width w: live leaves with pruning number <= w."""

    def __init__(self, width: int):
        if width < 0:
            raise ValueError("width must be >= 0")
        self.width = width
        self.name = f"parallel-solve(w={width})"

    def __call__(self, tree: GameTree, state: BooleanState) -> List[NodeId]:
        return select_by_pruning_number(tree, state, self.width)


class BoundedWidthPolicy:
    """Width-w selection capped at ``processors`` leaves per step.

    The practical fixed-machine variant: of the live leaves with
    pruning number <= w, evaluate the ``processors`` most urgent —
    smallest pruning number first, leftmost on ties (so the leaf
    Sequential SOLVE would take is always included, and with
    processors = 1 this *is* Sequential SOLVE for any width).
    """

    def __init__(self, width: int, processors: int):
        if width < 0:
            raise ValueError("width must be >= 0")
        if processors < 1:
            raise ValueError("need at least one processor")
        self.width = width
        self.processors = processors
        self.name = f"parallel-solve(w={width}, p={processors})"

    def __call__(self, tree: GameTree, state: BooleanState) -> List[NodeId]:
        scored = select_with_pruning_numbers(tree, state, self.width)
        if len(scored) <= self.processors:
            return [leaf for leaf, _ in scored]
        return rank_by_urgency(scored, self.processors)


class SaturationPolicy:
    """Evaluate *every* live leaf each step (unbounded parallelism).

    The number of steps this takes is the instance's *span* — the
    depth of the evaluation dependency structure — which lower-bounds
    every parallel schedule's step count (Brent's argument); speed-up
    of any policy is capped by S(T) / span(T).
    """

    name = "saturation-solve"

    def __call__(self, tree: GameTree, state: BooleanState) -> List[NodeId]:
        return select_leftmost_live(tree, state, float("inf"))
