"""Shared evaluation state for Boolean (gate) trees.

The state tracks, per node, whether its value is *determined* — i.e.
computable from the leaves evaluated so far (Section 2).  Determination
propagates upward incrementally:

* a child taking its parent gate's absorbing value determines the
  parent immediately;
* the last child determined non-absorbing determines the parent to the
  gate's "otherwise" output (tracked with a per-node undetermined-child
  counter, initialised lazily).

A node is *dead* when any ancestor (itself included) is determined,
*live* otherwise.  Selection policies only ever descend through
undetermined nodes, so deadness never needs to be stored.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set

from ..errors import ModelViolationError
from ..trees.base import GameTree, NodeId


class BooleanState:
    """Incremental determination state over a Boolean tree."""

    def __init__(self, tree: GameTree):
        self.tree = tree
        #: determined node values (absence means undetermined).
        self.value: Dict[NodeId, int] = {}
        #: leaves that have been evaluated.
        self.evaluated: Set[NodeId] = set()
        self._undetermined_children: Dict[NodeId, int] = {}
        self._observers: List[Callable[[NodeId], None]] = []

    def subscribe(self, on_determined: Callable[[NodeId], None]) -> None:
        """Call ``on_determined(node)`` on every determination.

        Events for one cascade are delivered after the whole cascade
        has been applied, in settlement order — observers always see
        children before their ancestors, against the final state.
        """
        self._observers.append(on_determined)

    # -- queries ----------------------------------------------------------
    def is_determined(self, node: NodeId) -> bool:
        return node in self.value

    def is_live(self, node: NodeId) -> bool:
        """No ancestor of ``node`` (itself included) is determined."""
        for anc in self.tree.ancestors(node):
            if anc in self.value:
                return False
        return True

    def root_value(self) -> Optional[int]:
        return self.value.get(self.tree.root)

    def pruning_number(self, leaf: NodeId) -> int:
        """Number of live left-siblings of the ancestors of ``leaf``.

        Only meaningful for live leaves (the paper defines it for them);
        this direct implementation is O(height * branching) and is used
        for cross-checking the budgeted-DFS selection.
        """
        count = 0
        for anc in self.tree.ancestors(leaf):
            for sib in self.tree.left_siblings(anc):
                # Siblings share all strict ancestors with ``anc``,
                # which are undetermined because ``leaf`` is live, so a
                # sibling is live iff its own value is undetermined.
                if sib not in self.value:
                    count += 1
        return count

    # -- updates -----------------------------------------------------------
    def evaluate_leaf(self, leaf: NodeId) -> int:
        """Evaluate ``leaf`` and propagate determinations upward."""
        if leaf in self.evaluated:
            raise ModelViolationError(f"leaf {leaf!r} evaluated twice")
        if not self.tree.is_leaf(leaf):
            raise ModelViolationError(f"{leaf!r} is not a leaf")
        self.evaluated.add(leaf)
        val = int(self.tree.leaf_value(leaf))
        self._determine(leaf, val)
        return val

    def _determine(self, node: NodeId, val: int) -> None:
        """Record ``node``'s value and cascade to ancestors."""
        tree = self.tree
        cascade: List[NodeId] = []
        while node is not None and node not in self.value:
            self.value[node] = val
            cascade.append(node)
            parent = tree.parent(node)
            if parent is None or parent in self.value:
                break
            gate = tree.gate(parent)
            if val == gate.absorbing:
                node, val = parent, gate.on_absorb
                continue
            remaining = self._undetermined_children.get(parent)
            if remaining is None:
                remaining = tree.arity(parent)
            remaining -= 1
            self._undetermined_children[parent] = remaining
            if remaining == 0:
                node, val = parent, gate.otherwise
                continue
            break
        for notify in self._observers:
            for settled in cascade:
                notify(settled)
