"""Exception hierarchy for the :mod:`repro` package.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything coming out of this package with a single ``except``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class TreeStructureError(ReproError):
    """A tree violates a structural requirement (arity, height, values)."""


class ModelViolationError(ReproError):
    """An algorithm broke an invariant of its cost model.

    Raised, for example, when a selection policy returns an empty batch
    while the root is still undetermined, or when a leaf is evaluated
    twice.
    """


class PruningInvariantError(ReproError):
    """The alpha-beta pruning process violated Theorem 2's invariant.

    The pruning rule of Karp & Zhang (Section 4) must preserve the root
    value of the pruned tree at every step; this error signals a bug in
    the engine (it is raised by the optional self-check machinery, never
    during normal unchecked operation).
    """


class SimulationError(ReproError):
    """The message-passing simulator reached an inconsistent state."""


class WorkloadError(ReproError):
    """A benchmark workload was mis-specified."""


class WorkerCrashError(ReproError):
    """An oracle worker kept failing after the runtime's retry budget.

    Raised by :class:`repro.models.executors.OracleRuntime` when a
    batch still has failing chunks after ``max_retries`` retry rounds —
    whether the workers died (broken process pool) or the oracle itself
    kept raising.  The last underlying exception is chained as
    ``__cause__``.
    """


class FaultPlanError(ReproError, ValueError):
    """A fault plan or schedule entry is mis-specified.

    Raised at *construction* time — negative ticks or sequence
    numbers, unknown fault kinds, non-positive durations, duplicate
    schedule entries — so a bad plan can never fail halfway through a
    chaos run.  The message always names the offending entry.

    Subclasses :class:`ValueError` for backward compatibility with
    callers that predate the typed hierarchy.
    """


class BackendUnsupportedError(ReproError, ValueError):
    """An engine was asked for a backend/executor pairing it cannot run.

    Raised at *entry-point* time — before any work happens — when a
    solver is handed a ``backend=`` or ``executor=`` combination that
    is syntactically valid but semantically impossible for that engine
    (the node-expansion model has no arena backend; the shared-memory
    executor needs the arena's flat columns; ``on_step`` hooks need
    the in-process object-graph loop).  The message always names the
    engine and the rejected combination.

    Subclasses :class:`ValueError` for backward compatibility with
    callers that predate the typed hierarchy.

    Attributes
    ----------
    engine / backend / executor:
        The engine name and the rejected ``backend=`` / ``executor=``
        arguments (``None`` when not part of the rejection).
    """

    def __init__(
        self,
        message: str,
        *,
        engine: "str | None" = None,
        backend: "str | None" = None,
        executor: "str | None" = None,
    ) -> None:
        super().__init__(message)
        self.engine = engine
        self.backend = backend
        self.executor = executor


class DegradedRunError(ReproError):
    """The oracle runtime's circuit breaker tripped.

    Raised by :class:`repro.models.executors.OracleRuntime` after
    ``max_consecutive_rebuilds`` worker pools in a row broke (crashes
    or chunk timeouts) without a single clean dispatch round in
    between: the environment is considered too unhealthy to keep
    hammering, and the partial results gathered so far are carried
    along instead of being thrown away.

    Attributes
    ----------
    partial:
        The batch's result slots; unfinished entries are ``None``.
    completed / pending:
        How many payloads finished / are still outstanding.
    steps_completed:
        Filled in by :func:`repro.models.oracle_runner.run_with_oracle`
        when the breaker trips mid-run: the number of basic steps that
        completed before the failing batch.
    """

    def __init__(
        self,
        message: str,
        *,
        partial: "list | None" = None,
        completed: int = 0,
        pending: int = 0,
    ) -> None:
        super().__init__(message)
        self.partial = partial if partial is not None else []
        self.completed = completed
        self.pending = pending
        self.steps_completed: "int | None" = None


class AllShardsDegradedError(DegradedRunError):
    """Every shard of a :class:`~repro.serve.service.ShardedBatchService`
    has degraded: there is nowhere left to fail work over to.

    Subclasses :class:`DegradedRunError` (the terminal-failure shape
    callers already handle) and additionally carries the service's
    :class:`~repro.serve.service.ServeStats` at the moment of
    collapse, so operators see how far the service got — requests
    served, failovers absorbed, which shards died in what order —
    without a traceback spelunk.  ``repro serve`` turns it into a
    clean non-zero exit.
    """

    def __init__(
        self,
        message: str,
        *,
        stats: "object | None" = None,
        pending: int = 0,
    ) -> None:
        super().__init__(message, pending=pending)
        self.stats = stats
