"""Exception hierarchy for the :mod:`repro` package.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything coming out of this package with a single ``except``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class TreeStructureError(ReproError):
    """A tree violates a structural requirement (arity, height, values)."""


class ModelViolationError(ReproError):
    """An algorithm broke an invariant of its cost model.

    Raised, for example, when a selection policy returns an empty batch
    while the root is still undetermined, or when a leaf is evaluated
    twice.
    """


class PruningInvariantError(ReproError):
    """The alpha-beta pruning process violated Theorem 2's invariant.

    The pruning rule of Karp & Zhang (Section 4) must preserve the root
    value of the pruned tree at every step; this error signals a bug in
    the engine (it is raised by the optional self-check machinery, never
    during normal unchecked operation).
    """


class SimulationError(ReproError):
    """The message-passing simulator reached an inconsistent state."""


class WorkloadError(ReproError):
    """A benchmark workload was mis-specified."""


class WorkerCrashError(ReproError):
    """An oracle worker kept failing after the runtime's retry budget.

    Raised by :class:`repro.models.executors.OracleRuntime` when a
    batch still has failing chunks after ``max_retries`` retry rounds —
    whether the workers died (broken process pool) or the oracle itself
    kept raising.  The last underlying exception is chained as
    ``__cause__``.
    """
