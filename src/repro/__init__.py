"""repro — a reproduction of Karp & Zhang (SPAA 1989),
"On Parallel Evaluation of Game Trees".

Public API overview
-------------------

Trees (:mod:`repro.trees`):
    :class:`UniformTree`, :class:`ExplicitTree`, :class:`LazyTree`,
    :class:`PermutedTree`, plus instance generators under
    :mod:`repro.trees.generators`.

Algorithms (:mod:`repro.core`):
    ``sequential_solve``, ``team_solve``, ``parallel_solve`` for Boolean
    (AND/OR / NOR) trees; ``alpha_beta``, ``sequential_alpha_beta``,
    ``parallel_alpha_beta``, ``minimax``, ``scout`` for MIN/MAX trees;
    node-expansion variants under :mod:`repro.core.nodeexpansion` and
    randomized variants under :mod:`repro.core.randomized`.

Analysis (:mod:`repro.analysis`):
    skeletons, proof trees, the paper's combinatorial bounds and
    speed-up measurement helpers.

Simulation (:mod:`repro.simulator`):
    the Section 7 message-passing multiprocessor implementation of
    N-Parallel SOLVE of width 1.
"""

from .types import GOLDEN_BIAS, Gate, NodeType, TreeKind
from .trees import (
    ExplicitTree,
    GameTree,
    LazyTree,
    PermutedTree,
    UniformTree,
    exact_value,
    lazy_view,
)
from .core import parallel_solve, sequential_solve, team_solve

__version__ = "1.0.0"

__all__ = [
    "Gate",
    "NodeType",
    "TreeKind",
    "GOLDEN_BIAS",
    "GameTree",
    "ExplicitTree",
    "UniformTree",
    "LazyTree",
    "PermutedTree",
    "exact_value",
    "lazy_view",
    "sequential_solve",
    "team_solve",
    "parallel_solve",
    "__version__",
]
