"""Optional OS-level parallel leaf evaluation.

The paper's models charge one unit per leaf evaluation and assume the
batch is evaluated simultaneously.  All measurements in this repository
are model-step counts (CPython's GIL makes wall-clock speed-up of pure
Python unobservable), but when the *leaf oracle itself* is expensive —
a game-position evaluator, a SAT call — evaluating a step's batch
across OS processes is real parallelism.  ``BatchEvaluator`` does that
with :mod:`concurrent.futures`; it exists to demonstrate that the
width-w batches are embarrassingly parallel, not to generate paper
numbers.
"""

from __future__ import annotations

from concurrent.futures import Executor, ProcessPoolExecutor
from typing import Callable, List, Optional, Sequence



class BatchEvaluator:
    """Evaluate per-step leaf batches through an executor.

    Parameters
    ----------
    oracle:
        Picklable function mapping a leaf payload to its value.
    executor:
        Any :class:`concurrent.futures.Executor`; defaults to a process
        pool sized by the OS.
    """

    def __init__(
        self,
        oracle: Callable,
        executor: Optional[Executor] = None,
    ):
        self.oracle = oracle
        self._executor = executor
        self._owned = executor is None

    def __enter__(self) -> "BatchEvaluator":
        if self._executor is None:
            self._executor = ProcessPoolExecutor()
        return self

    def __exit__(self, *exc) -> None:
        if self._owned and self._executor is not None:
            self._executor.shutdown()
            self._executor = None

    def evaluate(self, payloads: Sequence) -> List:
        """Evaluate one batch; order of results matches ``payloads``."""
        if self._executor is None:
            raise RuntimeError("use BatchEvaluator as a context manager")
        return list(self._executor.map(self.oracle, payloads))
