"""OS-level parallel leaf evaluation: batch evaluator and runtime.

The paper's models charge one unit per leaf evaluation and assume the
batch is evaluated simultaneously.  All measurements in this repository
are model-step counts (CPython's GIL makes wall-clock speed-up of pure
Python unobservable), but when the *leaf oracle itself* is expensive —
a game-position evaluator, a SAT call — evaluating a step's batch
across OS processes is real parallelism.

Two layers are provided:

* :class:`BatchEvaluator` — the thin original wrapper: one
  ``executor.map`` per batch, no failure handling.  Kept as the
  simplest demonstration that width-w batches are embarrassingly
  parallel.
* :class:`OracleRuntime` — a persistent process-pool runtime for whole
  runs: batches are split into chunks (one pickled task per chunk, not
  per leaf), failed chunks are retried with bounded exponential
  backoff, a broken pool is rebuilt between retry rounds, a hung chunk
  is cut off by ``chunk_timeout`` (the pool is rebuilt, since the
  stuck worker still occupies it), and :class:`RuntimeStats` counts
  batches/chunks/retries/timeouts/restarts and wall-clock spent.
  Exhausting the retry budget raises
  :class:`~repro.errors.WorkerCrashError`; breaking
  ``max_consecutive_rebuilds`` pools in a row without a clean round in
  between trips the circuit breaker, which raises
  :class:`~repro.errors.DegradedRunError` carrying the partial
  results instead of hammering a sick environment forever.

This module intentionally measures wall-clock time (it exists to
produce wall-clock numbers, see ``repro bench --wallclock``); it is
therefore exempt from the R2 determinism lint alongside
``models/oracle_runner.py``.
"""

from __future__ import annotations

import math
import os
import time
from concurrent.futures import (
    BrokenExecutor,
    Executor,
    Future,
    ProcessPoolExecutor,
)
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence, Tuple

from ..errors import DegradedRunError, WorkerCrashError
from ..telemetry import Recorder, live


class BatchEvaluator:
    """Evaluate per-step leaf batches through an executor.

    Parameters
    ----------
    oracle:
        Picklable function mapping a leaf payload to its value.
    executor:
        Any :class:`concurrent.futures.Executor`; defaults to a process
        pool sized by the OS.
    """

    def __init__(
        self,
        oracle: Callable,
        executor: Optional[Executor] = None,
    ):
        self.oracle = oracle
        self._executor = executor
        self._owned = executor is None

    def __enter__(self) -> "BatchEvaluator":
        if self._executor is None:
            self._executor = ProcessPoolExecutor()
        return self

    def __exit__(self, *exc) -> None:
        if self._owned and self._executor is not None:
            self._executor.shutdown()
            self._executor = None

    def evaluate(self, payloads: Sequence) -> List:
        """Evaluate one batch; order of results matches ``payloads``."""
        if self._executor is None:
            raise RuntimeError("use BatchEvaluator as a context manager")
        return list(self._executor.map(self.oracle, payloads))


def _eval_chunk(oracle: Callable[[Any], Any], chunk: List[Any]) -> List[Any]:
    """Worker-side task: evaluate one chunk serially (module-level so it
    pickles by reference)."""
    return [oracle(item) for item in chunk]


@dataclass
class RuntimeStats:
    """Counters accumulated by :class:`OracleRuntime` across batches."""

    #: batches completed through :meth:`OracleRuntime.evaluate`.
    batches: int = 0
    #: chunk tasks dispatched (including re-dispatches).
    chunks: int = 0
    #: payloads evaluated (each counted once even if its chunk retried).
    units: int = 0
    #: retry rounds actually run after a round with failed chunks
    #: (the final, exhausted round raises instead of counting).
    retries: int = 0
    #: chunk tasks abandoned because they exceeded ``chunk_timeout``.
    timeouts: int = 0
    #: process pools torn down and rebuilt after a worker crash.
    pool_restarts: int = 0
    #: wall-clock seconds spent inside ``evaluate`` calls.
    oracle_seconds: float = 0.0
    #: wall-clock seconds of the most recent batch.
    last_batch_seconds: float = 0.0
    #: size of the most recent batch.
    last_batch_size: int = 0


class OracleRuntime:
    """Persistent worker-pool runtime for per-step oracle batches.

    Parameters
    ----------
    oracle:
        Maps one payload to its value.  With the default process pool
        it must be picklable (module-level function).
    max_workers:
        Pool size (``None``: let the executor pick).
    chunk_size:
        Payloads per worker task; ``None`` splits each batch evenly
        across the workers (one task per worker when possible).
    max_retries:
        Retry *rounds* allowed per batch after a round with failures.
    backoff_seconds / max_backoff_seconds:
        Exponential backoff between retry rounds: the n-th retry waits
        ``min(backoff_seconds * 2**(n-1), max_backoff_seconds)``.
    chunk_timeout:
        Wall-clock seconds a dispatched chunk may take before it is
        abandoned (``None``: wait forever).  A timed-out chunk is
        retried like a crashed one, and the pool is rebuilt because
        the hung worker still occupies it (the worker itself may
        linger until its call returns; the runtime simply stops
        waiting for it).
    max_consecutive_rebuilds:
        Circuit breaker: after this many pool rebuilds in a row with
        no clean (unbroken) dispatch round in between, ``evaluate``
        raises :class:`~repro.errors.DegradedRunError` carrying the
        partial results instead of rebuilding again.  ``None``
        disables the breaker (retry budget still applies).
    executor_factory:
        Builds the pool; defaults to ``ProcessPoolExecutor``.  Tests
        inject thread pools here to exercise the retry machinery
        without process spawn cost.
    sleep:
        Injectable sleep (tests pass a recorder to assert on backoff).

    Use as a context manager, or call :meth:`close` when done; the pool
    persists across batches either way.
    """

    def __init__(
        self,
        oracle: Callable[[Any], Any],
        *,
        max_workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
        max_retries: int = 2,
        backoff_seconds: float = 0.05,
        max_backoff_seconds: float = 1.0,
        chunk_timeout: Optional[float] = None,
        max_consecutive_rebuilds: Optional[int] = None,
        executor_factory: Optional[Callable[[], Executor]] = None,
        sleep: Optional[Callable[[float], None]] = None,
        recorder: Optional[Recorder] = None,
    ):
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        if chunk_timeout is not None and chunk_timeout <= 0:
            raise ValueError("chunk_timeout must be positive")
        if max_consecutive_rebuilds is not None and (
            max_consecutive_rebuilds < 1
        ):
            raise ValueError("max_consecutive_rebuilds must be >= 1")
        self.oracle = oracle
        self.max_workers = max_workers
        self.chunk_size = chunk_size
        self.max_retries = max_retries
        self.backoff_seconds = backoff_seconds
        self.max_backoff_seconds = max_backoff_seconds
        self.chunk_timeout = chunk_timeout
        self.max_consecutive_rebuilds = max_consecutive_rebuilds
        self._consecutive_rebuilds = 0
        self._factory: Callable[[], Executor] = executor_factory or (
            lambda: ProcessPoolExecutor(max_workers=self.max_workers)
        )
        self._sleep = sleep if sleep is not None else time.sleep
        self._pool: Optional[Executor] = None
        self.stats = RuntimeStats()
        self._rec = live(recorder)

    # -- lifecycle ---------------------------------------------------------
    def __enter__(self) -> "OracleRuntime":
        self._ensure_pool()
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Shut the pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def _ensure_pool(self) -> Executor:
        if self._pool is None:
            self._pool = self._factory()
        return self._pool

    def restart_pool(self) -> None:
        """Tear down the (broken) pool and build a fresh one."""
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
        self.stats.pool_restarts += 1
        if self._rec is not None:
            self._rec.event("oracle.pool_restart", track="oracle")
        self._ensure_pool()

    # -- evaluation --------------------------------------------------------
    def evaluate(self, payloads: Sequence[Any]) -> List[Any]:
        """Evaluate one batch; order of results matches ``payloads``.

        Chunks that fail (worker exception, worker death, or
        ``chunk_timeout`` exceeded) are retried in bounded-backoff
        rounds; already-successful chunks are not recomputed.  Raises
        :class:`~repro.errors.WorkerCrashError` once ``max_retries``
        rounds have been exhausted, or
        :class:`~repro.errors.DegradedRunError` (with partial results)
        once ``max_consecutive_rebuilds`` pools broke back-to-back.
        """
        items = list(payloads)
        start = time.perf_counter()  # lint: disable=R7
        results: List[Any] = [None] * len(items)
        pending = self._split(items)
        attempt = 0
        self._consecutive_rebuilds = 0
        while pending:
            pending, error, broken = self._dispatch_round(pending, results)
            if broken:
                self._consecutive_rebuilds += 1
                if (
                    self.max_consecutive_rebuilds is not None
                    and self._consecutive_rebuilds
                    >= self.max_consecutive_rebuilds
                ):
                    outstanding = sum(len(c) for _, c in pending)
                    err = DegradedRunError(
                        f"circuit breaker tripped: "
                        f"{self._consecutive_rebuilds} consecutive pool "
                        f"rebuilds ({outstanding} payload(s) outstanding)",
                        partial=list(results),
                        completed=len(items) - outstanding,
                        pending=outstanding,
                    )
                    raise err from error
            else:
                self._consecutive_rebuilds = 0
            if pending:
                attempt += 1
                if attempt > self.max_retries:
                    raise WorkerCrashError(
                        f"oracle batch failed after {self.max_retries} "
                        f"retries ({len(pending)} chunk(s) outstanding)"
                    ) from error
                self.stats.retries += 1
                if self._rec is not None:
                    self._rec.event(
                        "oracle.retry", track="oracle",
                        attempt=attempt, outstanding=len(pending),
                    )
                self._sleep(
                    min(
                        self.backoff_seconds * 2 ** (attempt - 1),
                        self.max_backoff_seconds,
                    )
                )
        elapsed = time.perf_counter() - start  # lint: disable=R7
        stats = self.stats
        stats.batches += 1
        stats.units += len(items)
        stats.oracle_seconds += elapsed
        stats.last_batch_seconds = elapsed
        stats.last_batch_size = len(items)
        rec = self._rec
        if rec is not None:
            rec.count("oracle.batches")
            rec.count("oracle.units", len(items))
            if rec.wallclock:
                rec.observe("oracle.batch_seconds", elapsed)
        return results

    def _split(self, items: List[Any]) -> List[Tuple[int, List[Any]]]:
        """Cut a batch into ``(start_offset, chunk)`` tasks."""
        if not items:
            return []
        size = self.chunk_size
        if size is None:
            workers = self.max_workers or os.cpu_count() or 1
            size = max(1, math.ceil(len(items) / workers))
        return [
            (i, items[i : i + size]) for i in range(0, len(items), size)
        ]

    def _dispatch_round(
        self,
        chunks: List[Tuple[int, List[Any]]],
        results: List[Any],
    ) -> Tuple[
        List[Tuple[int, List[Any]]], Optional[BaseException], bool
    ]:
        """Run one round; return (failed chunks, last error, broken)."""
        submitted: List[Tuple[int, List[Any], Optional[Future]]] = []
        pool = self._ensure_pool()
        broken = False
        error: Optional[BaseException] = None
        for start, chunk in chunks:
            self.stats.chunks += 1
            if broken:
                submitted.append((start, chunk, None))
                continue
            try:
                fut = pool.submit(_eval_chunk, self.oracle, chunk)
            except (BrokenExecutor, RuntimeError) as exc:
                # Pool already broken/shut down: fail the rest of the
                # round fast and let the retry machinery rebuild it.
                broken = True
                error = exc
                submitted.append((start, chunk, None))
            else:
                submitted.append((start, chunk, fut))
        failed: List[Tuple[int, List[Any]]] = []
        rec = self._rec
        time_chunks = rec is not None and rec.wallclock
        for start, chunk, fut in submitted:
            if rec is not None:
                rec.observe("oracle.chunk_size", len(chunk))
            if fut is None:
                failed.append((start, chunk))
                continue
            wait_from = (
                time.perf_counter() if time_chunks else 0.0  # lint: disable=R7
            )
            try:
                values = fut.result(timeout=self.chunk_timeout)
            except FuturesTimeoutError as exc:
                # The worker is stuck; stop waiting and replace the
                # pool (the chunk is retried like a crashed one).
                broken = True
                error = exc
                self.stats.timeouts += 1
                fut.cancel()
                failed.append((start, chunk))
            except BrokenExecutor as exc:
                broken = True
                error = exc
                failed.append((start, chunk))
            except Exception as exc:
                error = exc
                failed.append((start, chunk))
            else:
                if time_chunks:
                    assert rec is not None
                    rec.observe(
                        "oracle.chunk_seconds",
                        time.perf_counter() - wait_from,  # lint: disable=R7
                    )
                results[start : start + len(values)] = values
        if broken:
            self.restart_pool()
        return failed, error, broken
