"""Real OS-level parallel evaluation of per-step leaf batches.

The model-step measurements elsewhere in this library are exactly what
the paper analyses; this module is the bridge to *wall-clock* parallel
speed-up, which in CPython requires the expensive part — the leaf
oracle — to run outside the GIL (in worker processes) or inside
C code.  Each basic step's batch is evaluated through an executor
before the (cheap, serial) determination bookkeeping runs, so the
parallel structure is exactly the width-w schedule: per-step wall time
~ max over the batch instead of the sum.

Usage::

    from concurrent.futures import ProcessPoolExecutor

    def oracle(payload):          # expensive; must be picklable
        ...

    with ProcessPoolExecutor() as pool:
        result = run_with_oracle(tree, oracle, WidthPolicy(1), pool)

``tree`` supplies structure and per-leaf payloads; oracle values are
cached so a leaf is never paid for twice.
"""

from __future__ import annotations

import time
from concurrent.futures import Executor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..core.solve_engine import Policy
from ..core.status import BooleanState
from ..errors import DegradedRunError, ModelViolationError
from ..models.accounting import ExecutionTrace
from ..models.executors import OracleRuntime
from ..telemetry import Recorder, live, record_runtime_stats
from ..trees.base import GameTree, NodeId


@dataclass
class OracleRunResult:
    """Outcome of an oracle-backed run, with wall-clock accounting."""

    value: int
    trace: ExecutionTrace
    #: wall-clock seconds spent inside oracle batches.
    oracle_seconds: float
    #: wall-clock seconds for the whole run.
    total_seconds: float
    evaluated: List[NodeId] = field(default_factory=list)

    @property
    def num_steps(self) -> int:
        return self.trace.num_steps

    @property
    def total_work(self) -> int:
        return self.trace.total_work


class _OracleLeafView:
    """Tree wrapper substituting oracle outputs for leaf values."""

    def __init__(self, tree: GameTree, cache: Dict[NodeId, int]):
        self._tree = tree
        self._cache = cache

    def __getattr__(self, name):
        return getattr(self._tree, name)

    def leaf_value(self, node: NodeId) -> int:
        try:
            return self._cache[node]
        except KeyError:
            raise ModelViolationError(
                f"leaf {node!r} evaluated before its oracle batch ran"
            )


def run_with_oracle(
    tree: GameTree,
    oracle: Callable[[Any], int],
    policy: Policy,
    executor: Optional[Executor] = None,
    *,
    payload: Callable[[GameTree, NodeId], Any] = None,
    max_steps: Optional[int] = None,
    runtime: Optional[OracleRuntime] = None,
    recorder: Optional[Recorder] = None,
) -> OracleRunResult:
    """Evaluate ``tree`` with leaf values produced by ``oracle``.

    Parameters
    ----------
    oracle:
        Maps a leaf payload to 0/1.  With an executor it must be
        picklable (module-level function).
    executor:
        Where batches run; ``None`` evaluates serially (the baseline
        for measuring real speed-up).
    payload:
        Maps (tree, leaf) to the oracle's input; defaults to the
        tree's own leaf value (useful when the oracle post-processes
        stored payloads, as game trees do).
    runtime:
        An :class:`~repro.models.executors.OracleRuntime` to dispatch
        batches through instead of ``executor`` — adds chunking,
        crash retries, per-chunk timeouts and runtime counters.  The
        runtime's own oracle is used, so ``oracle`` is ignored when
        this is given.  If the runtime's circuit breaker trips, the
        :class:`~repro.errors.DegradedRunError` is re-raised with
        ``steps_completed`` set to the number of basic steps that
        finished before the failing batch.

    Per-step wall-clock times are recorded in the trace's
    ``step_seconds``.  ``recorder`` attaches a telemetry sink (step
    spans keyed on the basic-step count, with wall-clock step
    durations as an opt-in histogram when the recorder was built with
    ``wallclock=True``).
    """
    if payload is None:
        payload = lambda t, leaf: t.leaf_value(leaf)  # noqa: E731
    if runtime is not None and executor is not None:
        raise ValueError("pass either executor or runtime, not both")

    rec = live(recorder)
    cache: Dict[NodeId, int] = {}
    view = _OracleLeafView(tree, cache)
    state = BooleanState(view)
    trace = ExecutionTrace()
    evaluated: List[NodeId] = []
    start = time.perf_counter()  # lint: disable=R7
    oracle_time = 0.0
    root = tree.root

    def eval_batch(batch: List[NodeId]) -> float:
        nonlocal oracle_time
        inputs = [payload(tree, leaf) for leaf in batch]
        t0 = time.perf_counter()  # lint: disable=R7
        if runtime is not None:
            try:
                outputs = runtime.evaluate(inputs)
            except DegradedRunError as exc:
                exc.steps_completed = trace.num_steps
                raise
        elif executor is None:
            outputs = [oracle(x) for x in inputs]
        else:
            outputs = list(executor.map(oracle, inputs))
        elapsed = time.perf_counter() - t0  # lint: disable=R7
        oracle_time += elapsed
        for leaf, out in zip(batch, outputs):
            cache[leaf] = int(out)
        return elapsed

    # Height-0 trees take the normal loop: every policy selects the
    # root leaf itself.
    step = 0
    while root not in state.value:
        batch = policy(view, state)
        if not batch:
            raise ModelViolationError("policy selected no leaves")
        seconds = eval_batch(batch)
        for leaf in batch:
            state.evaluate_leaf(leaf)
        trace.record(batch, seconds=seconds)
        evaluated.extend(batch)
        if rec is not None:
            rec.advance(step + 1)
            rec.add_span(
                "step", step, step + 1, track="oracle-run",
                degree=len(batch),
            )
            rec.count("oracle_run.leaves_evaluated", len(batch))
            if rec.wallclock:
                rec.observe("oracle_run.step_seconds", seconds)
        step += 1
        if max_steps is not None and step > max_steps:
            raise ModelViolationError(f"exceeded {max_steps} steps")

    if rec is not None and runtime is not None:
        record_runtime_stats(rec, runtime.stats)
    return OracleRunResult(
        value=state.value[root],
        trace=trace,
        oracle_seconds=oracle_time,
        total_seconds=time.perf_counter() - start,  # lint: disable=R7
        evaluated=evaluated,
    )
