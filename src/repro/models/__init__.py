"""Cost models: accounting primitives and optional executors."""

from .accounting import EvalResult, ExecutionTrace
from .executors import BatchEvaluator, OracleRuntime, RuntimeStats
from .oracle_runner import OracleRunResult, run_with_oracle

__all__ = [
    "EvalResult",
    "ExecutionTrace",
    "BatchEvaluator",
    "OracleRuntime",
    "RuntimeStats",
    "OracleRunResult",
    "run_with_oracle",
]
