"""Cost models: accounting primitives and optional executors."""

from .accounting import EvalResult, ExecutionTrace

__all__ = ["EvalResult", "ExecutionTrace"]
