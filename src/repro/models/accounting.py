"""Cost accounting for the paper's two models.

Both models charge one unit per *basic step*; the quantities the
theorems talk about are all derived from the per-step **parallel
degree** (number of leaves evaluated, or nodes expanded, at that step):

* running time  = number of steps,
* total work    = sum of degrees,
* processors    = maximum degree over the run,
* ``t_k``       = number of steps of degree exactly k (Propositions 3/6).

:class:`ExecutionTrace` records the degree sequence — and, optionally,
the full batches for instrumentation-heavy analyses such as the
base-path code checks of Proposition 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generic, List, Optional, Sequence, TypeVar

from ..errors import ModelViolationError

V = TypeVar("V")


class ExecutionTrace:
    """Per-step record of a model execution."""

    def __init__(self, keep_batches: bool = False):
        self.degrees: List[int] = []
        self.batches: Optional[List[tuple]] = [] if keep_batches else None
        #: wall-clock seconds per step, for runs driven by a real
        #: executor runtime (empty for pure model-step runs).
        self.step_seconds: List[float] = []

    def record(
        self, batch: Sequence, *, seconds: Optional[float] = None
    ) -> None:
        """Record one basic step that processed ``batch`` units.

        ``seconds`` optionally attaches the step's wall-clock cost
        (oracle-runtime runs); model-step runs leave it unset.
        """
        if not batch:
            raise ModelViolationError("a basic step must do some work")
        self.degrees.append(len(batch))
        if self.batches is not None:
            self.batches.append(tuple(batch))
        if seconds is not None:
            self.step_seconds.append(seconds)

    # -- derived quantities ---------------------------------------------
    @property
    def num_steps(self) -> int:
        """Running time in the model (number of basic steps)."""
        return len(self.degrees)

    @property
    def total_work(self) -> int:
        """Total units of work (leaves evaluated / nodes expanded)."""
        return sum(self.degrees)

    @property
    def processors(self) -> int:
        """Maximum parallel degree over the execution."""
        return max(self.degrees) if self.degrees else 0

    @property
    def wall_seconds(self) -> float:
        """Total recorded wall-clock seconds (0.0 for model-step runs)."""
        return sum(self.step_seconds)

    def degree_histogram(self) -> Dict[int, int]:
        """``{k: t_k}`` — the step counts by parallel degree."""
        hist: Dict[int, int] = {}
        for deg in self.degrees:
            hist[deg] = hist.get(deg, 0) + 1
        return hist

    def steps_of_degree(self, k: int) -> int:
        """``t_k``: number of steps of parallel degree exactly ``k``."""
        return sum(1 for deg in self.degrees if deg == k)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ExecutionTrace(steps={self.num_steps}, "
            f"work={self.total_work}, processors={self.processors})"
        )


@dataclass
class EvalResult(Generic[V]):
    """Outcome of running an evaluation algorithm on a tree.

    Attributes
    ----------
    value:
        The computed root value.
    trace:
        The per-step cost record.
    evaluated:
        Leaves evaluated (or nodes expanded), in completion order by
        step; within a step, in selection order.
    """

    value: V
    trace: ExecutionTrace
    evaluated: List = field(default_factory=list)

    @property
    def num_steps(self) -> int:
        return self.trace.num_steps

    @property
    def total_work(self) -> int:
        return self.trace.total_work

    @property
    def processors(self) -> int:
        return self.trace.processors
