"""Speed-up measurement helpers shared by tests and benchmarks.

The theorems all have the shape "steps(sequential) / steps(parallel)
>= c * (n + 1) for n large enough"; these helpers measure the ratio,
normalise it by the processor count, and fit the linearity of the
speed-up across a height sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..models.accounting import EvalResult
from ..trees.base import GameTree


@dataclass
class SpeedupSample:
    """Speed-up of one parallel run against one sequential run."""

    height: int
    sequential_steps: int
    parallel_steps: int
    parallel_work: int
    processors: int

    @property
    def speedup(self) -> float:
        return self.sequential_steps / self.parallel_steps

    @property
    def normalized_speedup(self) -> float:
        """Speed-up per processor — Theorem 1's constant c when the
        processor count is n + 1."""
        return self.speedup / self.processors

    @property
    def work_ratio(self) -> float:
        """W(T) / S(T) — Corollary 1's constant c'."""
        return self.parallel_work / self.sequential_steps


def measure_speedup(
    tree: GameTree,
    sequential: Callable[[GameTree], EvalResult],
    parallel: Callable[[GameTree], EvalResult],
) -> SpeedupSample:
    """Run both algorithms on ``tree`` and package the comparison."""
    seq = sequential(tree)
    par = parallel(tree)
    if seq.value != par.value:
        raise AssertionError(
            f"algorithms disagree: {seq.value!r} vs {par.value!r}"
        )
    return SpeedupSample(
        height=tree.height(),
        sequential_steps=seq.num_steps,
        parallel_steps=par.num_steps,
        parallel_work=par.total_work,
        processors=par.processors,
    )


@dataclass
class LinearFit:
    """Least-squares fit of speed-up against n + 1."""

    slope: float
    intercept: float
    r_squared: float


def fit_speedup_linearity(samples: Sequence[SpeedupSample]) -> LinearFit:
    """Fit speedup ~ slope * (n + 1) + intercept over a height sweep.

    The theorems predict slope > 0 (the achievable constant c) once n
    exceeds the instance-family threshold n0.
    """
    x = np.array([s.height + 1 for s in samples], dtype=float)
    y = np.array([s.speedup for s in samples], dtype=float)
    if len(x) < 2:
        raise ValueError("need at least two samples to fit")
    slope, intercept = np.polyfit(x, y, 1)
    pred = slope * x + intercept
    ss_res = float(np.sum((y - pred) ** 2))
    ss_tot = float(np.sum((y - y.mean()) ** 2))
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return LinearFit(slope=float(slope), intercept=float(intercept),
                     r_squared=r2)


def mean_samples(samples: Sequence[SpeedupSample]) -> SpeedupSample:
    """Average a set of same-height samples into one representative."""
    heights = {s.height for s in samples}
    if len(heights) != 1:
        raise ValueError("mean_samples expects samples of equal height")
    return SpeedupSample(
        height=samples[0].height,
        sequential_steps=round(
            float(np.mean([s.sequential_steps for s in samples]))
        ),
        parallel_steps=round(
            float(np.mean([s.parallel_steps for s in samples]))
        ),
        parallel_work=round(
            float(np.mean([s.parallel_work for s in samples]))
        ),
        processors=max(s.processors for s in samples),
    )
