"""Schedule statistics for execution traces.

Quantifies how well a parallel run used its processors, in the terms
the paper's analysis cares about:

* *efficiency* — work / (steps x processors): the fraction of
  processor-steps spent evaluating leaves;
* the *degree profile* — what share of steps (and of work) happened at
  each parallel degree, the quantity Propositions 3/4 bound;
* the *span decomposition* — speed-up achieved vs the instance's two
  ceilings: processors (Brent) and S(T)/span(T).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..core.parallel_solve import span as instance_span
from ..core.sequential_solve import sequential_solve
from ..models.accounting import EvalResult, ExecutionTrace
from ..trees.base import GameTree


@dataclass
class ScheduleStats:
    """Utilisation profile of one parallel execution."""

    steps: int
    work: int
    processors: int
    efficiency: float
    #: share of steps at each parallel degree.
    step_share_by_degree: Dict[int, float]
    #: share of total work contributed by each parallel degree.
    work_share_by_degree: Dict[int, float]
    #: mean parallel degree over the run.
    mean_degree: float


def schedule_stats(trace: ExecutionTrace) -> ScheduleStats:
    """Summarise a trace's processor utilisation."""
    steps = trace.num_steps
    work = trace.total_work
    procs = trace.processors
    if steps == 0:
        raise ValueError("empty trace has no schedule")
    hist = trace.degree_histogram()
    return ScheduleStats(
        steps=steps,
        work=work,
        processors=procs,
        efficiency=work / (steps * procs) if procs else 0.0,
        step_share_by_degree={
            k: count / steps for k, count in sorted(hist.items())
        },
        work_share_by_degree={
            k: k * count / work for k, count in sorted(hist.items())
        },
        mean_degree=work / steps,
    )


@dataclass
class SpeedupCeilings:
    """A run's speed-up against its two structural ceilings."""

    sequential_steps: int
    parallel_steps: int
    span: int
    processors: int
    speedup: float
    #: S(T) / span(T): no schedule can beat this.
    span_ceiling: float
    #: fraction of the span ceiling achieved.
    span_fraction: float
    #: fraction of the processor (Brent) ceiling achieved.
    processor_fraction: float


def speedup_ceilings(
    tree: GameTree,
    parallel_result: EvalResult,
    sequential_result: Optional[EvalResult] = None,
) -> SpeedupCeilings:
    """Relate a parallel run's speed-up to the instance's ceilings."""
    seq = sequential_result or sequential_solve(tree)
    sp = instance_span(tree)
    speedup = seq.num_steps / parallel_result.num_steps
    span_ceiling = seq.num_steps / sp
    procs = parallel_result.processors
    return SpeedupCeilings(
        sequential_steps=seq.num_steps,
        parallel_steps=parallel_result.num_steps,
        span=sp,
        processors=procs,
        speedup=speedup,
        span_ceiling=span_ceiling,
        span_fraction=speedup / span_ceiling if span_ceiling else 1.0,
        processor_fraction=speedup / procs if procs else 0.0,
    )
