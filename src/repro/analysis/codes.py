"""Base paths and codes — the counting argument behind Proposition 3.

At each step t of Parallel SOLVE of width 1 the *base path* P_t is the
root-leaf path ending at the leftmost live leaf w_t.  Its *code* C(t)
records, for every non-root node v_i on the path, the number of live
right-siblings of v_i prior to the step.  The proof of Proposition 3
rests on three facts this module makes checkable:

1. codes strictly decrease in lexicographic order step over step;
2. hence all codes are distinct, so the number of steps whose code has
   exactly k non-zero components is at most C(n, k) * (d-1)**k;
3. the parallel degree of step t equals 1 + (number of non-zero
   components of C(t)).

``trace_codes`` replays Parallel SOLVE of width 1 with an
instrumentation hook and returns the per-step records.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..core.policies import select_leftmost_live
from ..core.solve_engine import run_boolean
from ..core.status import BooleanState
from ..core.policies import WidthPolicy
from ..trees.base import GameTree, NodeId


@dataclass
class StepCode:
    """One step's base path, code and parallel degree."""

    step: int
    base_leaf: NodeId
    path: Tuple[NodeId, ...]
    code: Tuple[int, ...]
    degree: int

    @property
    def nonzero_components(self) -> int:
        return sum(1 for c in self.code if c > 0)


def _code_of_path(
    tree: GameTree, state: BooleanState, path: Tuple[NodeId, ...]
) -> Tuple[int, ...]:
    """c_i = live right-siblings of v_i (non-root path nodes) prior to
    the step; a sibling is live iff its own value is undetermined."""
    code = []
    for node in path[1:]:
        live = sum(
            1
            for sib in tree.right_siblings(node)
            if sib not in state.value
        )
        code.append(live)
    return tuple(code)


def trace_codes(tree: GameTree, width: int = 1) -> List[StepCode]:
    """Run Parallel SOLVE recording the base path and code of each step.

    The code is computed against the state *prior* to the step, exactly
    as in the paper's definition.
    """
    records: List[StepCode] = []
    pre_state = BooleanState(tree)  # shadow state, one step behind

    def on_step(state: BooleanState, step: int, batch) -> None:
        # Base leaf: leftmost live leaf prior to this step = first
        # selected leaf (selection is left-to-right).
        base = select_leftmost_live(tree, pre_state, 1)
        assert base and base[0] == batch[0], "selection lost left order"
        path = tree.path_from_root(base[0])
        code = _code_of_path(tree, pre_state, path)
        records.append(
            StepCode(
                step=step,
                base_leaf=base[0],
                path=path,
                code=code,
                degree=len(batch),
            )
        )
        # Advance the shadow state to match.
        for leaf in batch:
            pre_state.evaluate_leaf(leaf)

    run_boolean(tree, WidthPolicy(width), on_step=on_step)
    return records


def codes_lex_decreasing(records: List[StepCode]) -> bool:
    """Whether consecutive codes strictly decrease lexicographically.

    Codes of different base paths can have different lengths on
    non-uniform trees; the comparison pads with -1 (absent levels),
    matching the paper's fixed-length codes on uniform trees.
    """
    for prev, cur in zip(records, records[1:]):
        a, b = list(prev.code), list(cur.code)
        width = max(len(a), len(b))
        a += [-1] * (width - len(a))
        b += [-1] * (width - len(b))
        if not b < a:
            return False
    return True


def degree_matches_code(records: List[StepCode]) -> bool:
    """Whether every step's parallel degree equals 1 + #nonzero(code).

    This is the paper's "the code encodes the parallel degree" claim;
    it holds for width 1 on skeletons (and on uniform instances).
    """
    return all(
        rec.degree == 1 + rec.nonzero_components for rec in records
    )


def trace_expansion_codes(tree: GameTree, width: int = 1) -> List[StepCode]:
    """Proposition 6's instrumentation: base paths in the
    node-expansion model.

    At each step of N-Parallel SOLVE the base path runs from the root
    to the leftmost *frontier node* (so paths have varying lengths m
    <= n, which is where Prop 6's extra (n - k) factor comes from);
    the code again counts live right-siblings of the non-root path
    nodes prior to the step.
    """
    from ..core.nodeexpansion import (
        NWidthPolicy,
        run_expansion,
        select_leftmost_frontier,
    )
    from ..core.nodeexpansion.state import ExpansionState

    records: List[StepCode] = []
    pre_state = ExpansionState(tree)

    def on_step(state, step: int, batch) -> None:
        base = select_leftmost_frontier(tree, pre_state, 1)
        assert base and base[0] == batch[0], "selection lost left order"
        path = tree.path_from_root(base[0])
        code = []
        for node in path[1:]:
            live = sum(
                1
                for sib in tree.right_siblings(node)
                if sib not in pre_state.value
            )
            code.append(live)
        records.append(
            StepCode(
                step=step,
                base_leaf=base[0],
                path=path,
                code=tuple(code),
                degree=len(batch),
            )
        )
        for node in batch:
            pre_state.expand(node)

    run_expansion(tree, NWidthPolicy(width), on_step=on_step)
    return records
