"""Proof trees — the certificates behind Facts 1 and 2.

For a NOR tree, a proof tree is a smallest subtree certifying the root
value: a value-0 node is certified by any one child of value 1; a
value-1 node needs all children certified 0.  Any evaluation must have
evaluated every leaf of some proof tree, which is exactly Fact 1's
lower bound.

For a MIN/MAX tree with root value v, Fact 2 uses two Boolean-style
proof trees: one certifying ``val(r) > a`` (treating the tree as an
OR/AND tree over the predicate "leaf > a") and one certifying
``val(r) < b``; with a, b bracketing v tightly the two certificates
share exactly one leaf.
"""

from __future__ import annotations

from typing import List, Set

from ..trees.base import GameTree, NodeId, exact_value
from ..types import NodeType, TreeKind


def proof_tree_leaves(tree: GameTree, node: NodeId = None) -> List[NodeId]:
    """Leaves of the leftmost minimal proof tree of a Boolean tree."""
    if tree.kind is not TreeKind.BOOLEAN:
        raise ValueError("proof_tree_leaves expects a Boolean tree")
    if node is None:
        node = tree.root
    out: List[NodeId] = []
    stack = [node]
    while stack:
        cur = stack.pop()
        if tree.is_leaf(cur):
            out.append(cur)
            continue
        gate = tree.gate(cur)
        val = exact_value(tree, cur)
        kids = tree.children(cur)
        if val == gate.on_absorb:
            # Certified by one absorbing child: pick the leftmost.
            for c in kids:
                if exact_value(tree, c) == gate.absorbing:
                    stack.append(c)
                    break
            else:  # pragma: no cover - defensive
                raise AssertionError("absorb-valued node lacks a witness")
        else:
            # Certified only by all children being non-absorbing.
            stack.extend(reversed(kids))
    return out


def minmax_proof_leaves_gt(
    tree: GameTree, threshold: float, node: NodeId = None
) -> List[NodeId]:
    """Leaves certifying ``val(node) > threshold`` (must be true).

    A MAX node needs one child certified; a MIN node needs all.
    """
    if node is None:
        node = tree.root
    out: List[NodeId] = []
    stack = [node]
    while stack:
        cur = stack.pop()
        if tree.is_leaf(cur):
            if not tree.leaf_value(cur) > threshold:  # pragma: no cover
                raise AssertionError("certificate leaf fails predicate")
            out.append(cur)
            continue
        kids = tree.children(cur)
        if tree.node_type(cur) is NodeType.MAX:
            for c in kids:
                if exact_value(tree, c) > threshold:
                    stack.append(c)
                    break
            else:  # pragma: no cover - defensive
                raise AssertionError("MAX node fails predicate")
        else:
            stack.extend(reversed(kids))
    return out


def minmax_proof_leaves_lt(
    tree: GameTree, threshold: float, node: NodeId = None
) -> List[NodeId]:
    """Leaves certifying ``val(node) < threshold`` (must be true)."""
    if node is None:
        node = tree.root
    out: List[NodeId] = []
    stack = [node]
    while stack:
        cur = stack.pop()
        if tree.is_leaf(cur):
            if not tree.leaf_value(cur) < threshold:  # pragma: no cover
                raise AssertionError("certificate leaf fails predicate")
            out.append(cur)
            continue
        kids = tree.children(cur)
        if tree.node_type(cur) is NodeType.MIN:
            for c in kids:
                if exact_value(tree, c) < threshold:
                    stack.append(c)
                    break
            else:  # pragma: no cover - defensive
                raise AssertionError("MIN node fails predicate")
        else:
            stack.extend(reversed(kids))
    return out


def fact2_certificate_size(tree: GameTree) -> int:
    """|leaves certifying val > v-eps| + |leaves certifying val < v+eps|
    minus the overlap — the evaluation cost certified by Fact 2.

    Uses thresholds immediately straddling the exact root value, so the
    certificates are the tight ones Fact 2's argument needs.
    """
    import math

    v = exact_value(tree)
    gt: Set[NodeId] = set(
        minmax_proof_leaves_gt(tree, math.nextafter(v, -math.inf))
    )
    lt: Set[NodeId] = set(
        minmax_proof_leaves_lt(tree, math.nextafter(v, math.inf))
    )
    return len(gt | lt)
