"""The paper's combinatorial bounds and constants, computed exactly.

All quantities use exact integer arithmetic (``math.comb`` and Python
big ints), so the benchmark comparisons against measured step counts
are never polluted by floating-point error.

Contents:

* Fact 1 / Fact 2 — inherent lower bounds on total work;
* Proposition 3 / Proposition 6 — upper bounds on the number of steps
  of a given parallel degree for width-1 Parallel SOLVE on skeletons;
* Lemma 1 (k1), Lemma 2 (k2), the threshold x0(d), and the k0 of
  Proposition 4's optimisation, all as stated.
"""

from __future__ import annotations

import math


def fact1_lower_bound(branching: int, height: int) -> int:
    """Fact 1: any algorithm evaluating T in B(d, n) reads >= d**(n//2)
    leaves — the size of the smaller proof tree."""
    return branching ** (height // 2)


def fact2_lower_bound(branching: int, height: int) -> int:
    """Fact 2: for M(d, n), total work >= d**(n//2) + d**ceil(n/2) - 1
    (the two proof trees verifying a < val(r) < b share one leaf)."""
    d, n = branching, height
    return d ** (n // 2) + d ** ((n + 1) // 2) - 1


def proof_tree_leaf_count(branching: int, height: int, value: int) -> int:
    """Leaves of a proof tree of a uniform NOR tree with the given root
    value.

    A NOR node with value 0 is verified by one child with value 1; a
    value-1 node needs all children verified 0.  Degrees therefore
    alternate d (value 1) and 1 (value 0) down the tree.
    """
    if value not in (0, 1):
        raise ValueError("value must be 0 or 1")
    count = 1
    v = value
    for _ in range(height):
        if v == 1:
            count *= branching
        v = 1 - v
    return count


def prop3_bound(height: int, k: int, branching: int) -> int:
    """Proposition 3: t_{k+1}(H_T) <= C(n, k) * (d-1)**k."""
    if k < 0 or k > height:
        return 0
    return math.comb(height, k) * (branching - 1) ** k


def prop6_bound(height: int, k: int, branching: int) -> int:
    """Proposition 6 (node-expansion model):
    t*_{k+1}(H_T) <= (n - k) * C(n, k) * (d-1)**k.

    The paper's summation sum_{m=k..n} C(m, k)(d-1)**k is bounded by
    (n - k) C(n, k)(d-1)**k for k < n; we return the exact summation,
    which is what the measured histogram must respect.
    """
    if k < 0 or k > height:
        return 0
    total = sum(math.comb(m, k) for m in range(k, height + 1))
    return total * (branching - 1) ** k


def lemma1_k1(height: int, branching: int) -> int:
    """Lemma 1: k1 = max{k : C(n, k) * d**k <= d**(n//2)}."""
    n, d = height, branching
    budget = d ** (n // 2)
    best = 0
    for k in range(n + 1):
        if math.comb(n, k) * d ** k <= budget:
            best = k
        else:
            break
    return best


def lemma2_k2(height: int, branching: int) -> int:
    """Lemma 2: k2 = max{k : sum_{i<=k} (i+1) C(n,i) (d-1)**i <= d**(n//2)}."""
    n, d = height, branching
    budget = d ** (n // 2)
    running = 0
    best = -1
    for k in range(n + 1):
        running += (k + 1) * math.comb(n, k) * (d - 1) ** k
        if running <= budget:
            best = k
        else:
            break
    return best


def x0_threshold(branching: int) -> float:
    """x0(d) = inf{x : (x+1)**2 * (d-1)**x <= d**x} (Lemma 2's proof).

    Found by bisection on the decreasing function
    f(x) = log(x+1)/x - 0.5*log(d/(d-1)).
    """
    d = branching
    if d < 2:
        raise ValueError("x0 is defined for d >= 2")
    target = 0.5 * math.log(d / (d - 1))

    def f(x: float) -> float:
        return math.log(x + 1.0) / x - target

    lo, hi = 1e-9, 4.0
    while f(hi) > 0:
        hi *= 2.0
        if hi > 1e9:  # pragma: no cover - defensive
            raise ArithmeticError("x0 bisection failed to bracket")
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if f(mid) > 0:
            lo = mid
        else:
            hi = mid
    return hi


def prop4_k0(height: int, branching: int, sequential_work: int) -> int:
    """k0 = max{k : sum_{i<=k} (i+1) C(n,i) (d-1)**i <= S(T)} (eq. 12)."""
    n, d = height, branching
    running = 0
    best = -1
    for k in range(n + 1):
        running += (k + 1) * math.comb(n, k) * (d - 1) ** k
        if running <= sequential_work:
            best = k
        else:
            break
    return best


def prop4_step_upper_bound(
    height: int, branching: int, sequential_work: int
) -> int:
    """The explicit maximiser of Proposition 4 (eqs. 11-14): the largest
    number of steps width-1 Parallel SOLVE can take on a skeleton with
    S(T) = ``sequential_work``.

    Steps of degree i+1 saturate the Prop 3 bound for i = 0..k0, and
    one partial block of degree k0+2 absorbs the remaining work.
    """
    n, d = height, branching
    steps = 0
    work = 0
    k0 = prop4_k0(n, d, sequential_work)
    for i in range(k0 + 1):
        block = math.comb(n, i) * (d - 1) ** i
        steps += block
        work += (i + 1) * block
    remaining = sequential_work - work
    if remaining > 0:
        steps += -(-remaining // (k0 + 2))  # ceil division
    return steps
