"""Analysis: skeletons, proof trees, bounds and speed-up measurement."""

from .bounds import (
    fact1_lower_bound,
    fact2_lower_bound,
    lemma1_k1,
    lemma2_k2,
    proof_tree_leaf_count,
    prop3_bound,
    prop4_k0,
    prop4_step_upper_bound,
    prop6_bound,
    x0_threshold,
)
from .iid_theory import (
    SolveExpectation,
    empirical_growth_factor,
    pearl_branching_factor,
    pearl_xi,
    solve_expected_cost,
)
from .invariants import pruned_tree_value, theorem2_holds
from .schedule import (
    ScheduleStats,
    SpeedupCeilings,
    schedule_stats,
    speedup_ceilings,
)
from .codes import (
    StepCode,
    codes_lex_decreasing,
    degree_matches_code,
    trace_codes,
)
from .prooftree import (
    fact2_certificate_size,
    minmax_proof_leaves_gt,
    minmax_proof_leaves_lt,
    proof_tree_leaves,
)
from .skeleton import minmax_skeleton_of, skeleton_of
from .speedup import (
    LinearFit,
    SpeedupSample,
    fit_speedup_linearity,
    mean_samples,
    measure_speedup,
)

__all__ = [
    "pruned_tree_value",
    "theorem2_holds",
    "SolveExpectation",
    "solve_expected_cost",
    "pearl_xi",
    "pearl_branching_factor",
    "empirical_growth_factor",
    "ScheduleStats",
    "schedule_stats",
    "SpeedupCeilings",
    "speedup_ceilings",
    "fact1_lower_bound",
    "fact2_lower_bound",
    "proof_tree_leaf_count",
    "prop3_bound",
    "prop6_bound",
    "lemma1_k1",
    "lemma2_k2",
    "x0_threshold",
    "prop4_k0",
    "prop4_step_upper_bound",
    "skeleton_of",
    "minmax_skeleton_of",
    "proof_tree_leaves",
    "minmax_proof_leaves_gt",
    "minmax_proof_leaves_lt",
    "fact2_certificate_size",
    "trace_codes",
    "StepCode",
    "codes_lex_decreasing",
    "degree_matches_code",
    "SpeedupSample",
    "LinearFit",
    "measure_speedup",
    "fit_speedup_linearity",
    "mean_samples",
]
