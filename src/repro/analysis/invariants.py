"""Runtime invariant checks used by tests and experiment E8.

``pruned_tree_value`` computes the minimax value of the *current pruned
tree* T-tilde with the true leaf values — Theorem 2 asserts this equals
the original root value at every step of the pruning process, whatever
the evaluation policy.
"""

from __future__ import annotations

from typing import Dict

from ..core.alphabeta.state import AlphaBetaState
from ..trees.base import NodeId
from ..types import NodeType


def pruned_tree_value(state: AlphaBetaState) -> float:
    """Minimax value of T-tilde under the true leaf values."""
    tree = state.tree
    values: Dict[NodeId, float] = {}
    stack = [tree.root]
    while stack:
        node = stack[-1]
        if tree.is_leaf(node):
            values[node] = float(tree.leaf_value(node))
            stack.pop()
            continue
        kids = [c for c in tree.children(node) if c not in state.pruned]
        pending = [c for c in kids if c not in values]
        if pending:
            stack.extend(reversed(pending))
            continue
        child_vals = [values[c] for c in kids]
        if tree.node_type(node) is NodeType.MAX:
            values[node] = max(child_vals)
        else:
            values[node] = min(child_vals)
        stack.pop()
    return values[tree.root]


def theorem2_holds(state: AlphaBetaState, true_value: float) -> bool:
    """Whether the pruning process preserved the root value so far."""
    return abs(pruned_tree_value(state) - true_value) < 1e-12
