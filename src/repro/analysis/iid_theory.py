"""Closed-form expectations for the i.i.d. model (Section 6's context).

Two classical results anchor the paper's choice of sequential
baselines, and this module computes both so the benchmarks can compare
measured costs against theory:

* the exact expected cost of Sequential SOLVE on a uniform d-ary NOR
  tree with i.i.d. Bernoulli(p) leaves, by conditional recurrence
  (Tarsi 1983 proves this left-to-right procedure optimal in that
  model);
* Pearl's (1982) branching factor of alpha-beta on continuous i.i.d.
  MIN/MAX trees: xi_d / (1 - xi_d), with xi_d the positive root of
  x**d + x - 1 — expected leaf counts grow as that factor per level,
  i.e. like d**(3n/4) rather than minimax's d**n.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple


@dataclass
class SolveExpectation:
    """Expected Sequential SOLVE cost on B(d, n) with Bernoulli(p) leaves."""

    branching: int
    height: int
    leaf_bias: float
    #: q[h] = probability a height-h subtree evaluates to 1.
    level_one_probs: List[float]
    #: expected leaf evaluations conditioned on the subtree value.
    expected_cost_given_one: float
    expected_cost_given_zero: float
    #: unconditional expected leaf evaluations at the root.
    expected_cost: float


def solve_expected_cost(
    branching: int, height: int, p: float
) -> SolveExpectation:
    """Exact expectation recurrence for Sequential SOLVE on NOR trees.

    With q the children's one-probability, a height-h node is 1 iff
    all d children are 0 (cost: all d children, each conditioned on
    being 0), and 0 iff some child is 1 (cost: the geometric prefix of
    0-children, then one 1-child, nothing after — the short-circuit).
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError("p must be in [0, 1]")
    d = branching
    q = p
    c1, c0 = 1.0, 1.0  # leaf: one evaluation whatever the value
    probs = [q]
    for _h in range(height):
        q_child = q
        new_c1 = d * c0  # all children are 0 and all are read
        if q_child <= 0.0:
            new_c0 = float("nan")  # a 0-valued node cannot occur
        else:
            zero = 1.0 - q_child
            denom = 1.0 - zero ** d
            # E[# leading 0-children | at least one 1-child]
            expected_prefix = sum(
                k * (zero ** k) * q_child for k in range(d)
            ) / denom
            # Guard 0 * nan: with a zero prefix the (possibly
            # undefined) conditional cost of a 0-child is never paid.
            prefix_cost = expected_prefix * c0 if expected_prefix else 0.0
            new_c0 = prefix_cost + c1
        q = (1.0 - q_child) ** d
        c1, c0 = new_c1, new_c0
        probs.append(q)
    if q >= 1.0:
        expected = c1
    elif q <= 0.0:
        expected = c0
    else:
        expected = q * c1 + (1.0 - q) * c0
    return SolveExpectation(
        branching=d,
        height=height,
        leaf_bias=p,
        level_one_probs=probs,
        expected_cost_given_one=c1,
        expected_cost_given_zero=c0,
        expected_cost=expected,
    )


def pearl_xi(branching: int) -> float:
    """The positive root xi_d of x**d + x - 1 = 0."""
    d = branching
    if d < 1:
        raise ValueError("branching must be >= 1")
    lo, hi = 0.0, 1.0
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if mid ** d + mid - 1.0 < 0.0:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


def pearl_branching_factor(branching: int) -> float:
    """Pearl's alpha-beta branching factor xi_d / (1 - xi_d).

    Expected leaves of left-to-right alpha-beta on a continuous i.i.d.
    uniform MIN/MAX tree of height n grow as this factor per level;
    it lies strictly between d**(1/2) (the theoretical floor, Fact 2)
    and d (minimax).
    """
    xi = pearl_xi(branching)
    return xi / (1.0 - xi)


def empirical_growth_factor(costs: List[Tuple[int, float]]) -> float:
    """Per-level growth factor fitted from (height, mean cost) pairs.

    Least-squares slope of log(cost) against height, exponentiated.
    """
    import numpy as np

    heights = np.array([h for h, _ in costs], dtype=float)
    logs = np.array([np.log(c) for _, c in costs], dtype=float)
    if len(heights) < 2:
        raise ValueError("need at least two (height, cost) pairs")
    slope, _ = np.polyfit(heights, logs, 1)
    return float(np.exp(slope))
