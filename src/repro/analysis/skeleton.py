"""Skeleton construction (Section 3).

The skeleton H_T of a NOR tree T is obtained by deleting every node
that is not an ancestor of a leaf in L(T) — the set of leaves
Sequential SOLVE evaluates.  Key facts the experiments use:

* Sequential SOLVE behaves identically on T and H_T (same leaves, same
  order, same result);
* Proposition 2: Parallel SOLVE of any width is at least as fast on T
  as on H_T, so worst-case analysis may focus on skeletons;
* in the node-expansion model, H_T is exactly the set of nodes
  N-Sequential SOLVE expands.

``minmax_skeleton_of`` is the H-tilde analogue for MIN/MAX trees using
Sequential alpha-beta's leaf set (Proposition 5).
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..core.alphabeta.sequential import alpha_beta_leaf_set
from ..core.sequential_solve import sequential_leaf_set
from ..trees.base import GameTree, NodeId
from ..trees.explicit import ExplicitTree
from ..types import Gate, TreeKind


def _ancestor_closure(
    tree: GameTree, leaves: List[NodeId]
) -> Set[NodeId]:
    keep: Set[NodeId] = set()
    for leaf in leaves:
        for anc in tree.ancestors(leaf):
            if anc in keep:
                break
            keep.add(anc)
    return keep


def _build_restriction(
    tree: GameTree, keep: Set[NodeId]
) -> Tuple[ExplicitTree, Dict[NodeId, int]]:
    """Materialise the restriction of ``tree`` to ``keep`` as an
    ExplicitTree, preserving child order, leaf values and (for Boolean
    trees) per-node gates.  Returns the new tree and the node mapping.
    """
    mapping: Dict[NodeId, int] = {}
    children: List[Tuple[int, ...]] = []
    leaf_values: Dict[int, float] = {}
    gates: Dict[int, Gate] = {}

    def alloc(node: NodeId) -> int:
        mapping[node] = len(children)
        children.append(())
        return mapping[node]

    root_id = alloc(tree.root)
    stack = [(tree.root, root_id)]
    while stack:
        node, new_id = stack.pop()
        if tree.is_leaf(node):
            leaf_values[new_id] = tree.leaf_value(node)
            continue
        kept_kids = [c for c in tree.children(node) if c in keep]
        if not kept_kids:
            # An internal node of T kept only because it is itself an
            # ancestor of an evaluated leaf must have a kept child; a
            # bare internal node cannot appear.
            raise AssertionError(
                f"skeleton node {node!r} lost all its children"
            )
        ids = [alloc(c) for c in kept_kids]
        children[mapping[node]] = tuple(ids)
        if tree.kind is TreeKind.BOOLEAN:
            gates[new_id] = tree.gate(node)
        stack.extend(zip(kept_kids, ids))

    if tree.kind is TreeKind.BOOLEAN:
        out = ExplicitTree(children, leaf_values, kind=TreeKind.BOOLEAN,
                           gates=gates)
    else:
        out = ExplicitTree(children, leaf_values, kind=TreeKind.MINMAX)
    return out, mapping


def skeleton_of(tree: GameTree) -> ExplicitTree:
    """H_T: the restriction of a Boolean tree to the ancestors of L(T)."""
    if tree.kind is not TreeKind.BOOLEAN:
        raise ValueError("skeleton_of expects a Boolean tree; "
                         "use minmax_skeleton_of for MIN/MAX trees")
    leaves = sequential_leaf_set(tree)
    keep = _ancestor_closure(tree, leaves)
    skeleton, _ = _build_restriction(tree, keep)
    return skeleton


def minmax_skeleton_of(tree: GameTree) -> ExplicitTree:
    """H-tilde_T: the restriction of a MIN/MAX tree to the ancestors of
    the leaves evaluated by Sequential alpha-beta."""
    if tree.kind is not TreeKind.MINMAX:
        raise ValueError("minmax_skeleton_of expects a MIN/MAX tree")
    leaves = alpha_beta_leaf_set(tree)
    keep = _ancestor_closure(tree, leaves)
    skeleton, _ = _build_restriction(tree, keep)
    return skeleton
