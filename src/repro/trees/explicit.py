"""Pointer-backed explicit trees for arbitrary (non-uniform) shapes.

Nodes are dense integers ``0 .. N-1`` with the root at 0.  This is the
representation used for skeletons (H_T), near-uniform Corollary-2
instances and hand-built test fixtures.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..errors import TreeStructureError
from ..types import Gate, LeafValue, TreeKind
from .base import GameTree
from .gates import GateScheme, GateSpec, all_nor, coerce_scheme

Nested = Union[LeafValue, bool, Sequence]


class ExplicitTree(GameTree):
    """A fully materialised ordered tree.

    Parameters
    ----------
    children:
        ``children[i]`` is the tuple of child ids of node ``i`` (empty
        for leaves).  Node 0 is the root and every non-root node must
        appear in exactly one child tuple.
    leaf_values:
        Mapping from leaf id to its value.
    kind:
        Boolean or MIN/MAX semantics.
    gates:
        For Boolean trees: a :class:`Gate`, a depth-cycled gate sequence,
        a :class:`GateScheme`, or a per-node ``{node: Gate}`` dict.
    """

    def __init__(
        self,
        children: Sequence[Sequence[int]],
        leaf_values: Dict[int, LeafValue],
        kind: TreeKind = TreeKind.BOOLEAN,
        gates: Union[GateSpec, Dict[int, Gate], None] = None,
    ):
        self.kind = kind
        self._children: List[Tuple[int, ...]] = [tuple(c) for c in children]
        n = len(self._children)
        self._parent: List[Optional[int]] = [None] * n
        self._depth: List[int] = [0] * n
        seen = [False] * n
        seen[0] = True
        order = [0]
        for i in order:
            for c in self._children[i]:
                if not (0 <= c < n):
                    raise TreeStructureError(f"child id {c} out of range")
                if seen[c]:
                    raise TreeStructureError(f"node {c} has two parents")
                seen[c] = True
                self._parent[c] = i
                self._depth[c] = self._depth[i] + 1
                order.append(c)
        if not all(seen):
            missing = [i for i, s in enumerate(seen) if not s]
            raise TreeStructureError(f"unreachable nodes: {missing[:5]}...")
        self._leaf_values = dict(leaf_values)
        for i in range(n):
            if not self._children[i] and i not in self._leaf_values:
                raise TreeStructureError(f"leaf {i} has no value")

        self._node_gates: Optional[Dict[int, Gate]] = None
        self._scheme: GateScheme
        if isinstance(gates, dict):
            self._node_gates = dict(gates)
            self._scheme = all_nor()
        elif gates is None:
            self._scheme = all_nor()
        else:
            self._scheme = coerce_scheme(gates)

    # -- structure -----------------------------------------------------
    @property
    def root(self) -> int:
        return 0

    def children(self, node: int) -> Tuple[int, ...]:
        return self._children[node]

    def is_leaf(self, node: int) -> bool:
        return not self._children[node]

    def leaf_value(self, node: int) -> LeafValue:
        return self._leaf_values[node]

    def depth(self, node: int) -> int:
        return self._depth[node]

    def parent(self, node: int) -> Optional[int]:
        return self._parent[node]

    def gate(self, node: int) -> Gate:
        if self.kind is not TreeKind.BOOLEAN:
            raise TreeStructureError("MIN/MAX trees have no gates")
        if self._node_gates is not None:
            return self._node_gates[node]
        return self._scheme.gate_at(self._depth[node])

    # -- convenience ---------------------------------------------------
    def num_nodes(self) -> int:
        return len(self._children)

    def __len__(self) -> int:
        return len(self._children)

    @classmethod
    def from_nested(
        cls,
        nested: Nested,
        kind: TreeKind = TreeKind.BOOLEAN,
        gates: Union[GateSpec, None] = None,
    ) -> "ExplicitTree":
        """Build a tree from nested lists.

        A list denotes an internal node whose items are the subtrees; a
        bare number (or bool) denotes a leaf.

        Nodes are numbered in preorder (root = 0, then each subtree
        left to right), so hand-written tests can rely on the ids.

        >>> t = ExplicitTree.from_nested([[0, 1], [1, 1]])
        >>> t.num_leaves()
        4
        """
        child_lists: List[List[int]] = []
        leaf_values: Dict[int, LeafValue] = {}

        def alloc() -> int:
            child_lists.append([])
            return len(child_lists) - 1

        # LIFO with reversed pushes yields preorder allocation.
        stack: List[Tuple[Nested, Optional[int]]] = [(nested, None)]
        while stack:
            spec, parent = stack.pop()
            node = alloc()
            if parent is not None:
                child_lists[parent].append(node)
            if isinstance(spec, (list, tuple)):
                if len(spec) == 0:
                    raise TreeStructureError("internal node with no children")
                for kid_spec in reversed(spec):
                    stack.append((kid_spec, node))
            else:
                if isinstance(spec, bool):
                    spec = int(spec)
                leaf_values[node] = spec
        return cls(
            [tuple(kids) for kids in child_lists],
            leaf_values,
            kind=kind,
            gates=gates,
        )

    def to_nested(self) -> Nested:
        """Inverse of :meth:`from_nested` (values only, gates dropped)."""

        def build(node: int) -> Nested:
            if self.is_leaf(node):
                return self._leaf_values[node]
            return [build(c) for c in self._children[node]]

        return build(self.root)
