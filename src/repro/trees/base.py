"""Abstract game-tree interface.

Every tree exposes opaque hashable node identifiers.  Algorithms never
assume anything about identifiers beyond hashability and the accessor
methods below, so the same engines run on dense array-backed uniform
trees, pointer-backed explicit trees, lazily expanded trees and permuted
views alike.

The MIN/MAX polarity of a node is derived from its depth (the root is a
MAX node, per the paper's definition), so :meth:`GameTree.node_type`
has a default implementation.
"""

from __future__ import annotations

import abc
from collections import deque
from typing import Hashable, Iterator, Optional, Tuple

from ..errors import TreeStructureError
from ..types import Gate, LeafValue, NodeType, TreeKind

NodeId = Hashable


class GameTree(abc.ABC):
    """A finite rooted ordered tree with valued leaves.

    Subclasses must provide structure accessors; evaluation semantics
    (Boolean gates vs MIN/MAX) are selected by :attr:`kind`.
    """

    #: Evaluation semantics of this tree.
    kind: TreeKind

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    @property
    @abc.abstractmethod
    def root(self) -> NodeId:
        """Identifier of the root node."""

    @abc.abstractmethod
    def children(self, node: NodeId) -> Tuple[NodeId, ...]:
        """Ordered children of ``node`` (empty tuple for a leaf)."""

    @abc.abstractmethod
    def is_leaf(self, node: NodeId) -> bool:
        """Whether ``node`` is a leaf."""

    @abc.abstractmethod
    def leaf_value(self, node: NodeId) -> LeafValue:
        """The value attached to leaf ``node``."""

    @abc.abstractmethod
    def depth(self, node: NodeId) -> int:
        """Distance from the root (the root has depth 0)."""

    @abc.abstractmethod
    def parent(self, node: NodeId) -> Optional[NodeId]:
        """Parent of ``node``; ``None`` for the root."""

    # ------------------------------------------------------------------
    # semantics
    # ------------------------------------------------------------------
    def gate(self, node: NodeId) -> Gate:
        """Boolean gate of internal node ``node`` (Boolean trees only)."""
        raise TreeStructureError(f"{type(self).__name__} has no Boolean gates")

    def node_type(self, node: NodeId) -> NodeType:
        """MIN/MAX polarity of ``node`` — MAX at even depth."""
        return NodeType.MAX if self.depth(node) % 2 == 0 else NodeType.MIN

    # ------------------------------------------------------------------
    # derived helpers
    # ------------------------------------------------------------------
    def arity(self, node: NodeId) -> int:
        """Number of children of ``node``."""
        return len(self.children(node))

    def iter_nodes(self) -> Iterator[NodeId]:
        """Breadth-first iteration over all nodes.

        Forces full materialisation of lazy trees; use with care.
        """
        queue = deque([self.root])
        while queue:
            node = queue.popleft()
            yield node
            if not self.is_leaf(node):
                queue.extend(self.children(node))

    def iter_leaves(self) -> Iterator[NodeId]:
        """Left-to-right iteration over all leaves (depth-first order)."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            if self.is_leaf(node):
                yield node
            else:
                stack.extend(reversed(self.children(node)))

    def num_nodes(self) -> int:
        """Total node count (materialises lazy trees)."""
        return sum(1 for _ in self.iter_nodes())

    def num_leaves(self) -> int:
        """Total leaf count (materialises lazy trees)."""
        return sum(1 for _ in self.iter_leaves())

    def height(self) -> int:
        """Length (in edges) of the longest root-leaf path."""
        best = 0
        stack = [(self.root, 0)]
        while stack:
            node, d = stack.pop()
            if self.is_leaf(node):
                best = max(best, d)
            else:
                stack.extend((c, d + 1) for c in self.children(node))
        return best

    def ancestors(self, node: NodeId) -> Iterator[NodeId]:
        """Ancestors of ``node`` from the node itself up to the root.

        Per the paper's convention, a node is an ancestor of itself.
        """
        cur: Optional[NodeId] = node
        while cur is not None:
            yield cur
            cur = self.parent(cur)

    def path_from_root(self, node: NodeId) -> Tuple[NodeId, ...]:
        """The root-to-``node`` path, inclusive on both ends."""
        return tuple(reversed(list(self.ancestors(node))))

    def left_siblings(self, node: NodeId) -> Tuple[NodeId, ...]:
        """Siblings of ``node`` that precede it in their parent's order."""
        p = self.parent(node)
        if p is None:
            return ()
        sibs = self.children(p)
        idx = sibs.index(node)
        return sibs[:idx]

    def right_siblings(self, node: NodeId) -> Tuple[NodeId, ...]:
        """Siblings of ``node`` that follow it in their parent's order."""
        p = self.parent(node)
        if p is None:
            return ()
        sibs = self.children(p)
        idx = sibs.index(node)
        return sibs[idx + 1:]

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Consistency-check the tree structure; raises on problems.

        Materialises lazy trees.  Checks parent/child symmetry, depth
        bookkeeping and leaf-value accessibility.
        """
        for node in self.iter_nodes():
            if self.is_leaf(node):
                self.leaf_value(node)  # must not raise
                if self.children(node):
                    raise TreeStructureError(f"leaf {node!r} has children")
            else:
                kids = self.children(node)
                if not kids:
                    raise TreeStructureError(
                        f"internal node {node!r} has no children"
                    )
                for kid in kids:
                    if self.parent(kid) != node:
                        raise TreeStructureError(
                            f"parent({kid!r}) != {node!r}"
                        )
                    if self.depth(kid) != self.depth(node) + 1:
                        raise TreeStructureError(
                            f"depth({kid!r}) != depth({node!r}) + 1"
                        )
        if self.parent(self.root) is not None:
            raise TreeStructureError("root has a parent")
        if self.depth(self.root) != 0:
            raise TreeStructureError("root depth is not 0")


def exact_value(tree: GameTree, node: NodeId = None) -> LeafValue:
    """Ground-truth value of ``node`` (default: the root) by full evaluation.

    Evaluates *every* leaf in the subtree; used as the oracle against
    which all pruning algorithms are checked.  Iterative post-order so
    arbitrarily tall trees do not hit the recursion limit.
    """
    if node is None:
        node = tree.root
    # Post-order with an explicit stack: (node, next-child-index, acc).
    values: dict = {}
    stack = [node]
    while stack:
        cur = stack[-1]
        if tree.is_leaf(cur):
            values[cur] = tree.leaf_value(cur)
            stack.pop()
            continue
        kids = tree.children(cur)
        pending = [k for k in kids if k not in values]
        if pending:
            stack.extend(reversed(pending))
            continue
        child_vals = [values[k] for k in kids]
        if tree.kind is TreeKind.BOOLEAN:
            values[cur] = tree.gate(cur).output(child_vals)
        else:
            if tree.node_type(cur) is NodeType.MAX:
                values[cur] = max(child_vals)
            else:
                values[cur] = min(child_vals)
        stack.pop()
    return values[node]


def subtree_leaves(tree: GameTree, node: NodeId) -> Iterator[NodeId]:
    """Left-to-right leaves of the subtree rooted at ``node``."""
    stack = [node]
    while stack:
        cur = stack.pop()
        if tree.is_leaf(cur):
            yield cur
        else:
            stack.extend(reversed(tree.children(cur)))
