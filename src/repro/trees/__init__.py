"""Tree substrate: representations, views and instance generators."""

from .base import GameTree, NodeId, exact_value, subtree_leaves
from .canonical import (
    CanonicalArrays,
    canonical_arrays,
    canonical_encoding,
    canonical_hash,
    trees_equal,
)
from .explicit import ExplicitTree
from .gates import GateScheme, all_nor, alternating
from .lazy import LazyTree, lazy_view
from .permuted import PermutedTree
from .uniform import UniformTree

__all__ = [
    "GameTree",
    "NodeId",
    "exact_value",
    "subtree_leaves",
    "CanonicalArrays",
    "canonical_arrays",
    "canonical_encoding",
    "canonical_hash",
    "trees_equal",
    "ExplicitTree",
    "UniformTree",
    "LazyTree",
    "lazy_view",
    "PermutedTree",
    "GateScheme",
    "all_nor",
    "alternating",
]
