"""Gate-assignment schemes for Boolean trees.

A :class:`GateScheme` maps a node's depth to the Boolean gate it
computes.  The two schemes used by the paper are:

* all-NOR (Section 2's presentation), and
* alternating OR/AND (the native AND/OR tree presentation).

Schemes are depth-based because the paper's trees assign gates by level;
per-node assignment is supported by :class:`repro.trees.ExplicitTree`
directly.
"""

from __future__ import annotations

from typing import Sequence, Union

from ..types import Gate

GateSpec = Union[Gate, Sequence[Gate], "GateScheme"]


class GateScheme:
    """Maps depth -> gate by cycling through a finite gate sequence."""

    def __init__(self, cycle: Sequence[Gate]):
        if not cycle:
            raise ValueError("gate cycle must be non-empty")
        self._cycle = tuple(cycle)

    def gate_at(self, depth: int) -> Gate:
        return self._cycle[depth % len(self._cycle)]

    @property
    def cycle(self) -> tuple:
        return self._cycle

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GateScheme({[g.label for g in self._cycle]})"


def all_nor() -> GateScheme:
    """Every internal node is a NOR gate (the paper's presentation)."""
    return GateScheme([Gate.NOR])


def alternating(top: Gate = Gate.OR) -> GateScheme:
    """OR/AND (or AND/OR) alternating by level, starting with ``top``."""
    if top not in (Gate.OR, Gate.AND):
        raise ValueError("alternating scheme starts with OR or AND")
    other = Gate.AND if top is Gate.OR else Gate.OR
    return GateScheme([top, other])


def coerce_scheme(spec: GateSpec) -> GateScheme:
    """Accept a Gate, a gate sequence or a scheme; return a scheme."""
    if isinstance(spec, GateScheme):
        return spec
    if isinstance(spec, Gate):
        return GateScheme([spec])
    return GateScheme(list(spec))
