"""ASCII rendering of trees and execution schedules.

Debugging and teaching aids used by the examples: ``render_tree``
draws a tree with gates/polarities and leaf values; ``render_schedule``
draws the per-step parallel degrees of a trace as a bar timeline, which
makes the difference between Team SOLVE's ragged schedule and Parallel
SOLVE's pruning-number cascade visible at a glance;
``render_span_timeline`` draws an
:class:`~repro.telemetry.InMemoryRecorder` trace as one bar row per
track in the same style.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from ..models.accounting import ExecutionTrace
from ..telemetry import InMemoryRecorder, TraceEvent
from ..types import TreeKind
from .base import GameTree, NodeId


def render_tree(
    tree: GameTree,
    node: Optional[NodeId] = None,
    max_depth: Optional[int] = None,
) -> str:
    """Draw the (sub)tree rooted at ``node`` as indented ASCII art.

    Materialises lazy subtrees down to ``max_depth``.
    """
    if node is None:
        node = tree.root
    lines: List[str] = []

    def label(n: NodeId) -> str:
        if tree.is_leaf(n):
            value = tree.leaf_value(n)
            if tree.kind is TreeKind.MINMAX:
                return f"leaf {value:g}"
            return f"leaf {value}"
        if tree.kind is TreeKind.BOOLEAN:
            return tree.gate(n).label.upper()
        return tree.node_type(n).value.upper()

    def walk(n: NodeId, prefix: str, tail: str, depth: int) -> None:
        lines.append(prefix + tail + label(n))
        if tree.is_leaf(n):
            return
        if max_depth is not None and depth >= max_depth:
            lines.append(
                prefix + ("   " if tail in ("", "`- ") else "|  ")
                + "`- ..."
            )
            return
        kids = tree.children(n)
        child_prefix = prefix + (
            "" if tail == "" else ("   " if tail == "`- " else "|  ")
        )
        for i, kid in enumerate(kids):
            walk(
                kid,
                child_prefix,
                "`- " if i == len(kids) - 1 else "|- ",
                depth + 1,
            )

    walk(node, "", "", 0)
    return "\n".join(lines)


def render_schedule(
    trace: ExecutionTrace,
    width: int = 50,
    label: str = "",
) -> str:
    """Draw per-step parallel degrees as a horizontal bar chart.

    Zero-degree steps (possible for tick-based degree sequences such
    as the Section-7 machine's, where a tick may deliver messages but
    expand nothing) render a distinct ``idle`` marker rather than a
    one-unit bar that would be indistinguishable from degree 1.
    """
    if not trace.degrees:
        return "(empty trace)"
    peak = max(trace.degrees)
    scale = max(1.0, peak / width)
    lines = []
    if label:
        lines.append(label)
    lines.append(
        f"steps={trace.num_steps} work={trace.total_work} "
        f"processors={peak}"
    )
    for step, degree in enumerate(trace.degrees):
        if degree == 0:
            lines.append(f"{step:>4} |. idle")
            continue
        bar = "#" * max(1, round(degree / scale))
        lines.append(f"{step:>4} |{bar} {degree}")
    return "\n".join(lines)


def render_span_timeline(
    recorder: InMemoryRecorder,
    width: int = 50,
    label: str = "",
) -> str:
    """Draw a recorded trace as one bar row per track.

    Each row spans the recording's logical clock, scaled to at most
    ``width`` columns: ``#`` marks time covered by an active span,
    ``.`` time covered only by ``idle`` spans, and space time no span
    covers.  The per-level rows of a Section-7 machine recording read
    like :func:`render_schedule` bars laid side by side.
    """
    spans = [e for e in recorder.events if e.kind == "span"]
    if not spans:
        return "(empty trace)"
    horizon = max(recorder.clock, max(e.end for e in spans), 1)
    cols = min(width, horizon)
    scale = horizon / cols
    by_track: Dict[str, List[TraceEvent]] = {}
    for event in spans:
        by_track.setdefault(event.track, []).append(event)
    lines = []
    if label:
        lines.append(label)
    lines.append(
        f"clock={recorder.clock} spans={len(spans)} "
        f"(1 column ~ {scale:g} ticks)"
    )
    name_width = max(len(track) for track in by_track)
    for track, events in by_track.items():
        cells = [" "] * cols
        for event in events:
            lo = min(cols - 1, int(event.start / scale))
            hi = min(cols, max(lo + 1, math.ceil(event.end / scale)))
            mark = "." if event.name == "idle" else "#"
            for i in range(lo, hi):
                if mark == "#" or cells[i] == " ":
                    cells[i] = mark
        lines.append(f"{track:>{name_width}} |{''.join(cells)}|")
    return "\n".join(lines)
