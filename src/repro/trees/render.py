"""ASCII rendering of trees and execution schedules.

Debugging and teaching aids used by the examples: ``render_tree``
draws a tree with gates/polarities and leaf values; ``render_schedule``
draws the per-step parallel degrees of a trace as a bar timeline, which
makes the difference between Team SOLVE's ragged schedule and Parallel
SOLVE's pruning-number cascade visible at a glance.
"""

from __future__ import annotations

from typing import List, Optional

from ..models.accounting import ExecutionTrace
from ..types import TreeKind
from .base import GameTree, NodeId


def render_tree(
    tree: GameTree,
    node: Optional[NodeId] = None,
    max_depth: Optional[int] = None,
) -> str:
    """Draw the (sub)tree rooted at ``node`` as indented ASCII art.

    Materialises lazy subtrees down to ``max_depth``.
    """
    if node is None:
        node = tree.root
    lines: List[str] = []

    def label(n: NodeId) -> str:
        if tree.is_leaf(n):
            value = tree.leaf_value(n)
            if tree.kind is TreeKind.MINMAX:
                return f"leaf {value:g}"
            return f"leaf {value}"
        if tree.kind is TreeKind.BOOLEAN:
            return tree.gate(n).label.upper()
        return tree.node_type(n).value.upper()

    def walk(n: NodeId, prefix: str, tail: str, depth: int) -> None:
        lines.append(prefix + tail + label(n))
        if tree.is_leaf(n):
            return
        if max_depth is not None and depth >= max_depth:
            lines.append(
                prefix + ("   " if tail in ("", "`- ") else "|  ")
                + "`- ..."
            )
            return
        kids = tree.children(n)
        child_prefix = prefix + (
            "" if tail == "" else ("   " if tail == "`- " else "|  ")
        )
        for i, kid in enumerate(kids):
            walk(
                kid,
                child_prefix,
                "`- " if i == len(kids) - 1 else "|- ",
                depth + 1,
            )

    walk(node, "", "", 0)
    return "\n".join(lines)


def render_schedule(
    trace: ExecutionTrace,
    width: int = 50,
    label: str = "",
) -> str:
    """Draw per-step parallel degrees as a horizontal bar chart."""
    if not trace.degrees:
        return "(empty trace)"
    peak = max(trace.degrees)
    scale = max(1.0, peak / width)
    lines = []
    if label:
        lines.append(label)
    lines.append(
        f"steps={trace.num_steps} work={trace.total_work} "
        f"processors={peak}"
    )
    for step, degree in enumerate(trace.degrees):
        bar = "#" * max(1, round(degree / scale))
        lines.append(f"{step:>4} |{bar} {degree}")
    return "\n".join(lines)
