"""Lazily expanded trees for the node-expansion model (Section 5).

In the node-expansion model the algorithm is given only the root and
discovers the tree by applying the *node expansion* operation, which
either evaluates a leaf or produces its children.  :class:`LazyTree`
captures this: a user-supplied ``expand`` callback maps an application
payload (a game position, a proof goal, ...) to either a leaf value or a
list of child payloads.  Expansions are memoised, so the portion of the
tree generated so far (the paper's ``T*``) is exactly the set of nodes
this object has materialised.

Node identifiers are dense integers assigned in expansion order; id 0 is
the root.  Identifiers are stable for the lifetime of the instance, so
several algorithms may share one ``LazyTree`` (and its cache).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from ..errors import TreeStructureError
from ..types import Gate, LeafValue, TreeKind
from .base import GameTree
from .gates import GateScheme, GateSpec, all_nor, coerce_scheme

#: ``expand(payload, depth)`` returns either ``("leaf", value)`` or
#: ``("internal", [child payloads])``.
ExpandFn = Callable[[Any, int], Tuple[str, Any]]


class LazyTree(GameTree):
    """A tree generated on demand by an expansion callback."""

    def __init__(
        self,
        root_payload: Any,
        expand: ExpandFn,
        kind: TreeKind = TreeKind.BOOLEAN,
        gates: Optional[GateSpec] = None,
        root_is_max: bool = True,
    ):
        self.kind = kind
        self.root_is_max = root_is_max
        self._expand_fn = expand
        self._payload: List[Any] = [root_payload]
        self._parent: List[Optional[int]] = [None]
        self._depth: List[int] = [0]
        self._children: Dict[int, Tuple[int, ...]] = {}
        self._leaf_value: Dict[int, LeafValue] = {}
        self._scheme: GateScheme = (
            coerce_scheme(gates) if gates is not None else all_nor()
        )
        #: number of times the expansion callback has run (model work).
        self.expansions = 0

    # -- expansion ------------------------------------------------------
    def is_expanded(self, node: int) -> bool:
        """Whether ``node`` has been expanded already."""
        return node in self._children or node in self._leaf_value

    def expand(self, node: int) -> None:
        """Apply the node-expansion operation to ``node`` (memoised).

        After this call either ``is_leaf(node)`` is true and
        ``leaf_value(node)`` is available, or ``children(node)`` is
        non-empty.
        """
        if self.is_expanded(node):
            return
        self.expansions += 1
        tag, data = self._expand_fn(self._payload[node], self._depth[node])
        if tag == "leaf":
            if isinstance(data, bool):
                data = int(data)
            if self.kind is TreeKind.BOOLEAN and data not in (0, 1):
                raise TreeStructureError(
                    f"Boolean leaf value must be 0/1, got {data!r}"
                )
            self._leaf_value[node] = data
        elif tag == "internal":
            payloads = list(data)
            if not payloads:
                raise TreeStructureError(
                    "expansion produced an internal node with no children"
                )
            ids = []
            for payload in payloads:
                self._payload.append(payload)
                self._parent.append(node)
                self._depth.append(self._depth[node] + 1)
                ids.append(len(self._payload) - 1)
            self._children[node] = tuple(ids)
        else:  # pragma: no cover - defensive
            raise TreeStructureError(f"unknown expansion tag {tag!r}")

    def payload(self, node: int) -> Any:
        """The application payload carried by ``node``."""
        return self._payload[node]

    def generated_nodes(self) -> int:
        """Number of nodes generated so far (the size of ``T*``)."""
        return len(self._payload)

    # -- GameTree interface (auto-expands where necessary) ---------------
    @property
    def root(self) -> int:
        return 0

    def children(self, node: int) -> Tuple[int, ...]:
        self.expand(node)
        return self._children.get(node, ())

    def is_leaf(self, node: int) -> bool:
        self.expand(node)
        return node in self._leaf_value

    def leaf_value(self, node: int) -> LeafValue:
        self.expand(node)
        if node not in self._leaf_value:
            raise TreeStructureError(f"{node} is not a leaf")
        return self._leaf_value[node]

    def depth(self, node: int) -> int:
        return self._depth[node]

    def parent(self, node: int) -> Optional[int]:
        return self._parent[node]

    def gate(self, node: int) -> Gate:
        if self.kind is not TreeKind.BOOLEAN:
            raise TreeStructureError("MIN/MAX trees have no gates")
        return self._scheme.gate_at(self._depth[node])

    def node_type(self, node: int):
        """MIN/MAX polarity, honouring ``root_is_max``.

        Game trees rooted at a position where the *minimising* player
        moves set ``root_is_max=False``; polarity still alternates by
        depth.
        """
        from ..types import NodeType

        even = self._depth[node] % 2 == 0
        if even == self.root_is_max:
            return NodeType.MAX
        return NodeType.MIN


class _WrappedLazyTree(LazyTree):
    """Lazy view over a materialised tree; payloads are base-tree node ids."""

    def __init__(self, base: GameTree):
        self._base = base

        def expand(payload, depth):
            node = payload
            if base.is_leaf(node):
                return ("leaf", base.leaf_value(node))
            return ("internal", list(base.children(node)))

        super().__init__(base.root, expand, kind=base.kind)

    def gate(self, node: int) -> Gate:
        return self._base.gate(self.payload(node))

    def node_type(self, node: int):
        return self._base.node_type(self.payload(node))


def lazy_view(tree: GameTree) -> LazyTree:
    """Wrap any materialised tree as a :class:`LazyTree`.

    The wrapper's expansion counter then measures how much of ``tree`` a
    node-expansion algorithm actually generates.  Gates delegate to the
    wrapped tree, so per-node gate assignments are preserved.
    """
    return _WrappedLazyTree(tree)
