"""Randomly child-permuted views of trees (Section 6).

The randomized algorithms R-Sequential SOLVE, R-Parallel SOLVE and the
R-alpha-beta variants are, conceptually, the deterministic algorithms
run on a tree whose children have been randomly permuted at every node.
:class:`PermutedTree` implements exactly that view: node identifiers
pass through unchanged, only the *order* returned by ``children`` is
permuted.

Permutations are derived deterministically from ``(seed, node id)`` via
``numpy.random.Generator``, so they are stable across visits and across
algorithms sharing one view — and, as the paper notes, they are computed
"only to the extent necessary", i.e. lazily per node.
"""

from __future__ import annotations

import zlib
from typing import Dict, Optional, Tuple

import numpy as np

from ..types import Gate, LeafValue
from .base import GameTree, NodeId


class PermutedTree(GameTree):
    """A view of ``base`` with each node's children randomly permuted."""

    def __init__(self, base: GameTree, seed: int):
        self._base = base
        self._seed = int(seed)
        self.kind = base.kind
        self._perm_cache: Dict[NodeId, Tuple[NodeId, ...]] = {}

    @property
    def base(self) -> GameTree:
        return self._base

    @property
    def seed(self) -> int:
        return self._seed

    # -- structure -------------------------------------------------------
    @property
    def root(self) -> NodeId:
        return self._base.root

    def children(self, node: NodeId) -> Tuple[NodeId, ...]:
        cached = self._perm_cache.get(node)
        if cached is not None:
            return cached
        kids = self._base.children(node)
        if len(kids) > 1:
            rng = np.random.default_rng(
                (self._seed, _node_entropy(node))
            )
            order = rng.permutation(len(kids))
            kids = tuple(kids[i] for i in order)
        self._perm_cache[node] = kids
        return kids

    def is_leaf(self, node: NodeId) -> bool:
        return self._base.is_leaf(node)

    def leaf_value(self, node: NodeId) -> LeafValue:
        return self._base.leaf_value(node)

    def depth(self, node: NodeId) -> int:
        return self._base.depth(node)

    def parent(self, node: NodeId) -> Optional[NodeId]:
        return self._base.parent(node)

    def gate(self, node: NodeId) -> Gate:
        return self._base.gate(node)

    def node_type(self, node: NodeId):
        return self._base.node_type(node)


def _node_entropy(node: NodeId) -> int:
    """A stable non-negative integer derived from a node id.

    Must be identical across processes and interpreter runs: it seeds
    the per-node permutation, so any instability would make the same
    ``(tree, seed)`` pair produce different child orders in different
    workers.  The builtin ``hash`` is PYTHONHASHSEED-randomized for
    strings, so non-integer ids go through a canonical-repr digest.
    """
    if isinstance(node, (int, np.integer)):
        return int(node)
    return zlib.crc32(repr(node).encode("utf-8")) & 0x7FFFFFFF
