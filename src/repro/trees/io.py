"""Serialization of tree instances.

Benchmark ensembles are regenerable from seeds, but a library user who
finds an interesting instance (a Prop-5 counterexample, a hard game
position) needs to save it.  Uniform trees serialise to ``.npz``
(parameters + the leaf array); explicit trees to JSON-compatible dicts.
Round-trips preserve structure, values, kind and gate assignment.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Union

import numpy as np

from ..errors import TreeStructureError
from ..types import Gate, TreeKind
from .explicit import ExplicitTree
from .gates import GateScheme
from .uniform import UniformTree


def save_uniform(tree: UniformTree, path: str) -> None:
    """Write a uniform tree to an ``.npz`` file."""
    gates = [g.name for g in tree._scheme.cycle]
    np.savez_compressed(
        path,
        branching=tree.branching,
        height=tree.height(),
        kind=tree.kind.value,
        gates=np.array(gates),
        leaves=tree.leaf_values_array,
    )


def load_uniform(path: str) -> UniformTree:
    """Read a uniform tree written by :func:`save_uniform`."""
    with np.load(path, allow_pickle=False) as data:
        kind = TreeKind(str(data["kind"]))
        gates = GateScheme([Gate[str(g)] for g in data["gates"]])
        return UniformTree(
            int(data["branching"]),
            int(data["height"]),
            data["leaves"],
            kind=kind,
            gates=gates if kind is TreeKind.BOOLEAN else None,
        )


def uniform_to_dict(tree: UniformTree) -> Dict[str, Any]:
    """JSON-compatible representation of a uniform tree."""
    return {
        "repr": "uniform",
        "kind": tree.kind.value,
        "branching": tree.branching,
        "height": tree.height(),
        "gates": [g.name for g in tree._scheme.cycle],
        "leaves": tree.leaf_values_array.tolist(),
    }


def uniform_from_dict(data: Dict[str, Any]) -> UniformTree:
    """Inverse of :func:`uniform_to_dict`."""
    kind = TreeKind(data["kind"])
    gates = GateScheme([Gate[name] for name in data["gates"]])
    return UniformTree(
        int(data["branching"]),
        int(data["height"]),
        np.asarray(data["leaves"]),
        kind=kind,
        gates=gates if kind is TreeKind.BOOLEAN else None,
    )


def explicit_to_dict(tree: ExplicitTree) -> Dict[str, Any]:
    """JSON-compatible representation of an explicit tree."""
    n = tree.num_nodes()
    gates = None
    if tree.kind is TreeKind.BOOLEAN:
        gates = [
            None if tree.is_leaf(i) else tree.gate(i).name
            for i in range(n)
        ]
    return {
        "kind": tree.kind.value,
        "children": [list(tree.children(i)) for i in range(n)],
        "leaf_values": {
            str(i): tree.leaf_value(i)
            for i in range(n)
            if tree.is_leaf(i)
        },
        "gates": gates,
    }


def explicit_from_dict(data: Dict[str, Any]) -> ExplicitTree:
    """Inverse of :func:`explicit_to_dict`."""
    kind = TreeKind(data["kind"])
    leaf_values = {int(k): v for k, v in data["leaf_values"].items()}
    gates = None
    if kind is TreeKind.BOOLEAN:
        raw = data.get("gates")
        if raw is None:
            raise TreeStructureError("Boolean tree dict must carry gates")
        gates = {
            i: Gate[name] for i, name in enumerate(raw) if name is not None
        }
    return ExplicitTree(
        data["children"], leaf_values, kind=kind, gates=gates
    )


def save_explicit(tree: ExplicitTree, path: str) -> None:
    """Write an explicit tree to a JSON file."""
    with open(path, "w") as fh:
        json.dump(explicit_to_dict(tree), fh)


def load_explicit(path: str) -> ExplicitTree:
    """Read an explicit tree written by :func:`save_explicit`."""
    with open(path) as fh:
        return explicit_from_dict(json.load(fh))


def tree_to_dict(tree: Union[UniformTree, ExplicitTree]) -> Dict[str, Any]:
    """Representation-tagged dict for either concrete tree type.

    The ``"repr"`` key selects the decoder in :func:`tree_from_dict`;
    explicit-tree dicts from older callers (no tag) still decode.  The
    dict is JSON- *and* pickle-friendly, which is what lets the serve
    layer ship whole evaluation requests to worker processes.
    """
    if isinstance(tree, UniformTree):
        return uniform_to_dict(tree)
    if isinstance(tree, ExplicitTree):
        return {"repr": "explicit", **explicit_to_dict(tree)}
    raise TreeStructureError(
        f"cannot serialise {type(tree).__name__}; materialise lazy "
        f"trees first"
    )


def tree_from_dict(data: Dict[str, Any]) -> Union[UniformTree, ExplicitTree]:
    """Inverse of :func:`tree_to_dict` (dispatch on the ``repr`` tag)."""
    tag = data.get("repr", "explicit")
    if tag == "uniform":
        return uniform_from_dict(data)
    if tag == "explicit":
        return explicit_from_dict(data)
    raise TreeStructureError(f"unknown tree representation {tag!r}")


def save_tree(tree: Union[UniformTree, ExplicitTree], path: str) -> None:
    """Dispatch on tree type: ``.npz`` for uniform, JSON otherwise."""
    if isinstance(tree, UniformTree):
        save_uniform(tree, path)
    elif isinstance(tree, ExplicitTree):
        save_explicit(tree, path)
    else:
        raise TreeStructureError(
            f"cannot serialise {type(tree).__name__}; materialise lazy "
            f"trees first"
        )
