"""Implicit array-backed uniform d-ary trees.

A uniform tree of branching factor ``d`` and height ``n`` — the class
``B(d, n)`` / ``M(d, n)`` of the paper — is stored without any pointer
structure: node ``i``'s children are ``d*i + 1 .. d*i + d`` (the d-ary
heap layout), and only the ``d**n`` leaf values are stored, in a NumPy
array.  This keeps instances with millions of leaves cheap and makes
i.i.d. instance generation a single vectorised draw.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from ..errors import TreeStructureError
from ..types import Gate, LeafValue, TreeKind
from .base import GameTree
from .gates import GateScheme, GateSpec, all_nor, coerce_scheme


class UniformTree(GameTree):
    """A complete d-ary tree of height n with array-backed leaf values.

    Parameters
    ----------
    branching:
        Branching factor ``d >= 1``.
    height:
        Height ``n >= 0`` (number of edges on every root-leaf path).
    leaf_values:
        Array of ``d**n`` values, left-to-right.  Integer dtype for
        Boolean trees, float for MIN/MAX trees.
    kind:
        Boolean or MIN/MAX semantics.
    gates:
        Gate scheme for Boolean trees (default: all NOR).
    """

    def __init__(
        self,
        branching: int,
        height: int,
        leaf_values: Union[np.ndarray, list],
        kind: TreeKind = TreeKind.BOOLEAN,
        gates: Optional[GateSpec] = None,
    ):
        if branching < 1:
            raise TreeStructureError("branching factor must be >= 1")
        if height < 0:
            raise TreeStructureError("height must be >= 0")
        self.kind = kind
        self.branching = branching
        self._height = height
        values = np.asarray(leaf_values)
        expected = branching ** height
        if values.shape != (expected,):
            raise TreeStructureError(
                f"need {expected} leaf values for B({branching},{height}), "
                f"got shape {values.shape}"
            )
        if kind is TreeKind.BOOLEAN:
            if not np.all((values == 0) | (values == 1)):
                raise TreeStructureError("Boolean leaves must be 0/1")
            values = values.astype(np.int8)
        else:
            values = values.astype(np.float64)
        self.leaf_values_array = values
        # _offset[L] = index of the first node at level L.
        self._offset = [0] * (height + 2)
        for level in range(1, height + 2):
            self._offset[level] = (
                self._offset[level - 1] * branching + 1
            )
        # The formula above gives offset[L] = (d^L - 1) / (d - 1) for
        # d >= 2 and offset[L] = L for d == 1.
        self._first_leaf = self._offset[height]
        self._num_nodes = self._offset[height + 1]
        self._scheme: GateScheme = (
            coerce_scheme(gates) if gates is not None else all_nor()
        )

    # -- structure -----------------------------------------------------
    @property
    def root(self) -> int:
        return 0

    def children(self, node: int) -> Tuple[int, ...]:
        if node >= self._first_leaf:
            return ()
        base = node * self.branching + 1
        return tuple(range(base, base + self.branching))

    def is_leaf(self, node: int) -> bool:
        return node >= self._first_leaf

    def leaf_value(self, node: int) -> LeafValue:
        idx = node - self._first_leaf
        if idx < 0 or node >= self._num_nodes:
            raise TreeStructureError(f"{node} is not a leaf")
        value = self.leaf_values_array[idx]
        return float(value) if self.kind is TreeKind.MINMAX else int(value)

    def depth(self, node: int) -> int:
        # binary search over the level offsets (height+2 entries).
        lo, hi = 0, self._height
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self._offset[mid] <= node:
                lo = mid
            else:
                hi = mid - 1
        return lo

    def parent(self, node: int) -> Optional[int]:
        if node == 0:
            return None
        return (node - 1) // self.branching

    def gate(self, node: int) -> Gate:
        if self.kind is not TreeKind.BOOLEAN:
            raise TreeStructureError("MIN/MAX trees have no gates")
        # Single-gate schemes (the common NOR case) skip the O(log n)
        # depth lookup — gate() sits on the propagation hot path.
        cycle = self._scheme.cycle
        if len(cycle) == 1:
            return cycle[0]
        return self._scheme.gate_at(self.depth(node))

    def arity(self, node: int) -> int:
        return 0 if node >= self._first_leaf else self.branching

    # -- fast paths (avoid generic traversal) ---------------------------
    def height(self) -> int:
        return self._height

    def num_nodes(self) -> int:
        return self._num_nodes

    def num_leaves(self) -> int:
        return len(self.leaf_values_array)

    def first_leaf_id(self) -> int:
        """Node id of the leftmost leaf."""
        return self._first_leaf

    def leaf_index(self, node: int) -> int:
        """Position of leaf ``node`` in left-to-right leaf order."""
        return node - self._first_leaf

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"UniformTree(d={self.branching}, n={self._height}, "
            f"kind={self.kind.value})"
        )
