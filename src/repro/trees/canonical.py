"""Canonical forms for game trees: stable hashing and equality.

Two trees are *semantically equal* when they have the same shape, the
same evaluation semantics (kind and, for Boolean trees, per-node
gates) and the same leaf values in the same left-to-right order.  The
node identifiers themselves are representation detail — a
:class:`~repro.trees.uniform.UniformTree` and an
:class:`~repro.trees.explicit.ExplicitTree` of the same instance are
equal, and hash equal, under the functions here.

:func:`canonical_encoding` walks a tree in preorder through the
abstract :class:`~repro.trees.base.GameTree` interface only and emits
a deterministic byte string; :func:`canonical_hash` is its SHA-256
digest, the content address the ``repro.serve`` result cache keys on.
Float leaf values are encoded via ``repr``, which round-trips IEEE-754
doubles exactly, so value-distinct trees get distinct encodings.

Lazy trees are materialised by the walk (every reachable node is
expanded), exactly as :meth:`GameTree.iter_nodes` would.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from ..types import Gate, LeafValue, TreeKind
from .base import GameTree, NodeId

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .explicit import ExplicitTree

__all__ = [
    "CanonicalArrays",
    "canonical_arrays",
    "canonical_encoding",
    "canonical_hash",
    "trees_equal",
]


def _leaf_token(tree: GameTree, node: NodeId) -> str:
    value = tree.leaf_value(node)
    if tree.kind is TreeKind.BOOLEAN:
        return str(int(value))
    return repr(float(value))


def canonical_encoding(tree: GameTree) -> bytes:
    """Deterministic byte encoding of a tree's semantic content.

    Preorder traversal; each internal node contributes its arity (and
    gate name for Boolean trees), each leaf its value.  Identifiers
    never appear, so the encoding is representation-invariant.
    """
    parts: List[str] = [tree.kind.value]
    stack: List[NodeId] = [tree.root]
    while stack:
        node = stack.pop()
        if tree.is_leaf(node):
            parts.append(f"L{_leaf_token(tree, node)}")
        else:
            kids = tree.children(node)
            if tree.kind is TreeKind.BOOLEAN:
                parts.append(f"N{len(kids)}:{tree.gate(node).name}")
            else:
                parts.append(f"N{len(kids)}")
            stack.extend(reversed(kids))
    return "|".join(parts).encode("utf-8")


#: instance-attribute memo slot; trees are immutable once built, so a
#: computed digest stays valid for the object's lifetime.
_HASH_ATTR = "_repro_canonical_hash"


def canonical_hash(tree: GameTree) -> str:
    """SHA-256 hex digest of :func:`canonical_encoding`.

    Stable across processes and Python versions (no ``hash()``
    involvement, so ``PYTHONHASHSEED`` is irrelevant) — the property
    the sharded serving layer relies on to route equal requests to
    the same shard and cache slot.

    The digest is memoised on the tree instance (an O(n) walk per
    *object*, not per call): a serving stream hits the same pool trees
    thousands of times, and re-hashing them would dominate the
    warm-cache path.
    """
    cached = getattr(tree, _HASH_ATTR, None)
    if cached is not None:
        return str(cached)
    digest = hashlib.sha256(canonical_encoding(tree)).hexdigest()
    # Slotted/frozen tree types reject the memo attribute; the digest
    # is simply recomputed on demand for them.
    try:
        setattr(tree, _HASH_ATTR, digest)
    except AttributeError:  # lint: disable=R6
        pass
    return digest


#: Reverse lookup from a gate's semantic triple back to the enum
#: member; the four gates have pairwise-distinct triples.
_TRIPLE_TO_GATE: Dict[Tuple[int, int, int], Gate] = {
    (g.absorbing, g.on_absorb, g.otherwise): g for g in Gate
}


@dataclass
class CanonicalArrays:
    """The preorder encoding of a tree as struct-of-arrays columns.

    This is the same left-to-right preorder :func:`canonical_encoding`
    walks, materialised once as numpy columns indexed by preorder
    position ``0 .. n_nodes-1`` (root at 0).  The subtree of node ``i``
    occupies the contiguous index range ``[i, i + spans[i])``, so the
    next preorder sibling of ``i`` is ``i + spans[i]`` and the children
    of ``i`` are exactly the depth-``depths[i]+1`` nodes inside that
    range.  ``repro.core.arena`` lowers trees through this dataclass
    and never touches the object graph again.

    Instances are immutable by convention: the arena engines read the
    columns but never write them (all mutable run state lives in the
    engine's own arrays).
    """

    kind: TreeKind
    #: Original node identifiers in preorder (``int64`` when every id
    #: is a Python int — the dense-tree fast path — else ``object``).
    node_ids: np.ndarray
    #: Preorder index of each node's parent; -1 at the root.
    parents: np.ndarray
    #: Subtree size including the node itself (1 at leaves).
    spans: np.ndarray
    depths: np.ndarray
    #: Number of children (0 at leaves).
    arities: np.ndarray
    #: Index among the parent's children (0 at the root).
    child_pos: np.ndarray
    is_leaf: np.ndarray
    #: Leaf values as float64 (0/1 for Boolean trees); NaN at internal
    #: nodes.
    values: np.ndarray
    #: Per-node gate semantics for Boolean trees (``int8``, -1 at
    #: leaves); ``None`` for MIN/MAX trees.
    gate_absorbing: Optional[np.ndarray]
    gate_on_absorb: Optional[np.ndarray]
    gate_otherwise: Optional[np.ndarray]
    #: ``levels[d]`` is the sorted preorder-index array of depth-``d``
    #: nodes; within a level, nodes sharing a parent form contiguous
    #: runs (a preorder invariant the vectorised sweeps rely on).
    levels: Tuple[np.ndarray, ...]

    _index: Optional[Dict[NodeId, int]] = field(
        default=None, repr=False, compare=False
    )

    @property
    def n_nodes(self) -> int:
        return int(self.parents.shape[0])

    @property
    def height(self) -> int:
        return len(self.levels) - 1

    def index_map(self) -> Dict[NodeId, int]:
        """``NodeId -> preorder index`` (built lazily, then cached)."""
        if self._index is None:
            self._index = {
                node: i for i, node in enumerate(self.node_ids.tolist())
            }
        return self._index

    def children_of(self, i: int) -> List[int]:
        """Preorder indices of node ``i``'s children, left to right."""
        kids: List[int] = []
        j = i + 1
        end = i + int(self.spans[i])
        while j < end:
            kids.append(j)
            j += int(self.spans[j])
        return kids

    def to_explicit(self) -> "ExplicitTree":
        """Rebuild an explicit tree over dense preorder ids.

        Semantically equal to the lowered tree (same shape, gates and
        leaf values); the round-trip tests pin this against
        ``tree_to_dict`` of the original.
        """
        from .explicit import ExplicitTree

        n = self.n_nodes
        children = [self.children_of(i) for i in range(n)]
        leaf_values: Dict[int, LeafValue] = {}
        for i in np.flatnonzero(self.is_leaf).tolist():
            raw = float(self.values[i])
            leaf_values[i] = (
                int(raw) if self.kind is TreeKind.BOOLEAN else raw
            )
        gates: Optional[Dict[int, Gate]] = None
        if self.kind is TreeKind.BOOLEAN:
            assert self.gate_absorbing is not None
            assert self.gate_on_absorb is not None
            assert self.gate_otherwise is not None
            gates = {
                i: _TRIPLE_TO_GATE[
                    (
                        int(self.gate_absorbing[i]),
                        int(self.gate_on_absorb[i]),
                        int(self.gate_otherwise[i]),
                    )
                ]
                for i in range(n)
                if not self.is_leaf[i]
            }
        return ExplicitTree(
            children, leaf_values, kind=self.kind, gates=gates
        )


#: instance-attribute memo slot for the lowered arrays (same contract
#: as ``_HASH_ATTR``: trees are immutable once built).
_ARRAYS_ATTR = "_repro_canonical_arrays"


def canonical_arrays(tree: GameTree) -> CanonicalArrays:
    """Lower a tree to its :class:`CanonicalArrays` preorder columns.

    One O(n) object-graph walk per tree *object* (memoised like
    :func:`canonical_hash`); every subsequent arena run reuses the
    columns without touching the tree again.
    """
    cached = getattr(tree, _ARRAYS_ATTR, None)
    if isinstance(cached, CanonicalArrays):
        return cached

    boolean = tree.kind is TreeKind.BOOLEAN
    ids: List[NodeId] = []
    parents: List[int] = []
    depths: List[int] = []
    child_pos: List[int] = []
    arities: List[int] = []
    values: List[float] = []
    gate_abs: List[int] = []
    gate_on: List[int] = []
    gate_other: List[int] = []

    # Preorder via LIFO with reversed pushes — identical visit order to
    # canonical_encoding.
    stack: List[Tuple[NodeId, int, int, int]] = [(tree.root, -1, 0, 0)]
    while stack:
        node, parent_idx, depth, pos = stack.pop()
        idx = len(ids)
        ids.append(node)
        parents.append(parent_idx)
        depths.append(depth)
        child_pos.append(pos)
        if tree.is_leaf(node):
            arities.append(0)
            values.append(float(tree.leaf_value(node)))
            if boolean:
                gate_abs.append(-1)
                gate_on.append(-1)
                gate_other.append(-1)
        else:
            kids = tree.children(node)
            arities.append(len(kids))
            values.append(float("nan"))
            if boolean:
                gate = tree.gate(node)
                gate_abs.append(gate.absorbing)
                gate_on.append(gate.on_absorb)
                gate_other.append(gate.otherwise)
            for k_pos, kid in reversed(list(enumerate(kids))):
                stack.append((kid, idx, depth + 1, k_pos))

    n = len(ids)
    parents_a = np.asarray(parents, dtype=np.int64)
    depths_a = np.asarray(depths, dtype=np.int64)
    arities_a = np.asarray(arities, dtype=np.int64)
    child_pos_a = np.asarray(child_pos, dtype=np.int64)
    is_leaf_a = arities_a == 0
    values_a = np.asarray(values, dtype=np.float64)
    if all(type(x) is int for x in ids):
        node_ids_a = np.asarray(ids, dtype=np.int64)
    else:
        node_ids_a = np.empty(n, dtype=object)
        for i, node in enumerate(ids):
            node_ids_a[i] = node

    height = int(depths_a.max()) if n else 0
    levels = tuple(
        np.flatnonzero(depths_a == d) for d in range(height + 1)
    )

    # Subtree spans by one bottom-up pass: each node contributes its
    # (already summed) span to its parent, deepest level first.
    spans_a = np.ones(n, dtype=np.int64)
    for d in range(height, 0, -1):
        level = levels[d]
        np.add.at(spans_a, parents_a[level], spans_a[level])

    arrays = CanonicalArrays(
        kind=tree.kind,
        node_ids=node_ids_a,
        parents=parents_a,
        spans=spans_a,
        depths=depths_a,
        arities=arities_a,
        child_pos=child_pos_a,
        is_leaf=is_leaf_a,
        values=values_a,
        gate_absorbing=(
            np.asarray(gate_abs, dtype=np.int8) if boolean else None
        ),
        gate_on_absorb=(
            np.asarray(gate_on, dtype=np.int8) if boolean else None
        ),
        gate_otherwise=(
            np.asarray(gate_other, dtype=np.int8) if boolean else None
        ),
        levels=levels,
    )
    # Slotted/frozen tree types reject the memo attribute; the arrays
    # are simply recomputed on demand for them.
    try:
        setattr(tree, _ARRAYS_ATTR, arrays)
    except AttributeError:  # lint: disable=R6
        pass
    return arrays


def trees_equal(a: GameTree, b: GameTree) -> bool:
    """Structural/semantic equality (see module docstring).

    Walks both trees in lockstep; cheap early exits on kind, arity and
    leaf-value mismatches.  Used by the collision property tests to
    certify that hash-equal trees really are the same instance.
    """
    if a.kind is not b.kind:
        return False
    stack: List[tuple] = [(a.root, b.root)]
    while stack:
        na, nb = stack.pop()
        leaf_a, leaf_b = a.is_leaf(na), b.is_leaf(nb)
        if leaf_a != leaf_b:
            return False
        if leaf_a:
            va, vb = a.leaf_value(na), b.leaf_value(nb)
            if a.kind is TreeKind.BOOLEAN:
                if int(va) != int(vb):
                    return False
            elif float(va) != float(vb):
                return False
            continue
        kids_a, kids_b = a.children(na), b.children(nb)
        if len(kids_a) != len(kids_b):
            return False
        if a.kind is TreeKind.BOOLEAN and a.gate(na) is not b.gate(nb):
            return False
        stack.extend(zip(kids_a, kids_b))
    return True
