"""Canonical forms for game trees: stable hashing and equality.

Two trees are *semantically equal* when they have the same shape, the
same evaluation semantics (kind and, for Boolean trees, per-node
gates) and the same leaf values in the same left-to-right order.  The
node identifiers themselves are representation detail — a
:class:`~repro.trees.uniform.UniformTree` and an
:class:`~repro.trees.explicit.ExplicitTree` of the same instance are
equal, and hash equal, under the functions here.

:func:`canonical_encoding` walks a tree in preorder through the
abstract :class:`~repro.trees.base.GameTree` interface only and emits
a deterministic byte string; :func:`canonical_hash` is its SHA-256
digest, the content address the ``repro.serve`` result cache keys on.
Float leaf values are encoded via ``repr``, which round-trips IEEE-754
doubles exactly, so value-distinct trees get distinct encodings.

Lazy trees are materialised by the walk (every reachable node is
expanded), exactly as :meth:`GameTree.iter_nodes` would.
"""

from __future__ import annotations

import hashlib
from typing import List

from ..types import TreeKind
from .base import GameTree, NodeId

__all__ = ["canonical_encoding", "canonical_hash", "trees_equal"]


def _leaf_token(tree: GameTree, node: NodeId) -> str:
    value = tree.leaf_value(node)
    if tree.kind is TreeKind.BOOLEAN:
        return str(int(value))
    return repr(float(value))


def canonical_encoding(tree: GameTree) -> bytes:
    """Deterministic byte encoding of a tree's semantic content.

    Preorder traversal; each internal node contributes its arity (and
    gate name for Boolean trees), each leaf its value.  Identifiers
    never appear, so the encoding is representation-invariant.
    """
    parts: List[str] = [tree.kind.value]
    stack: List[NodeId] = [tree.root]
    while stack:
        node = stack.pop()
        if tree.is_leaf(node):
            parts.append(f"L{_leaf_token(tree, node)}")
        else:
            kids = tree.children(node)
            if tree.kind is TreeKind.BOOLEAN:
                parts.append(f"N{len(kids)}:{tree.gate(node).name}")
            else:
                parts.append(f"N{len(kids)}")
            stack.extend(reversed(kids))
    return "|".join(parts).encode("utf-8")


#: instance-attribute memo slot; trees are immutable once built, so a
#: computed digest stays valid for the object's lifetime.
_HASH_ATTR = "_repro_canonical_hash"


def canonical_hash(tree: GameTree) -> str:
    """SHA-256 hex digest of :func:`canonical_encoding`.

    Stable across processes and Python versions (no ``hash()``
    involvement, so ``PYTHONHASHSEED`` is irrelevant) — the property
    the sharded serving layer relies on to route equal requests to
    the same shard and cache slot.

    The digest is memoised on the tree instance (an O(n) walk per
    *object*, not per call): a serving stream hits the same pool trees
    thousands of times, and re-hashing them would dominate the
    warm-cache path.
    """
    cached = getattr(tree, _HASH_ATTR, None)
    if cached is not None:
        return str(cached)
    digest = hashlib.sha256(canonical_encoding(tree)).hexdigest()
    # Slotted/frozen tree types reject the memo attribute; the digest
    # is simply recomputed on demand for them.
    try:
        setattr(tree, _HASH_ATTR, digest)
    except AttributeError:  # lint: disable=R6
        pass
    return digest


def trees_equal(a: GameTree, b: GameTree) -> bool:
    """Structural/semantic equality (see module docstring).

    Walks both trees in lockstep; cheap early exits on kind, arity and
    leaf-value mismatches.  Used by the collision property tests to
    certify that hash-equal trees really are the same instance.
    """
    if a.kind is not b.kind:
        return False
    stack: List[tuple] = [(a.root, b.root)]
    while stack:
        na, nb = stack.pop()
        leaf_a, leaf_b = a.is_leaf(na), b.is_leaf(nb)
        if leaf_a != leaf_b:
            return False
        if leaf_a:
            va, vb = a.leaf_value(na), b.leaf_value(nb)
            if a.kind is TreeKind.BOOLEAN:
                if int(va) != int(vb):
                    return False
            elif float(va) != float(vb):
                return False
            continue
        kids_a, kids_b = a.children(na), b.children(nb)
        if len(kids_a) != len(kids_b):
            return False
        if a.kind is TreeKind.BOOLEAN and a.gate(na) is not b.gate(nb):
            return False
        stack.extend(zip(kids_a, kids_b))
    return True
