"""I.i.d. random instances (the probabilistic model of Section 6).

In the i.i.d. model each Boolean leaf is an independent coin flip with
bias ``p`` (probability of a 1), and each MIN/MAX leaf is an independent
draw from a common distribution.  Under this model the sequential
procedures the paper parallelizes are known to be asymptotically optimal
(Pearl 1982; Tarsi 1983), which is why they are the right baselines.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ...types import GOLDEN_BIAS, TreeKind
from ..gates import GateSpec
from ..uniform import UniformTree


def iid_boolean(
    branching: int,
    height: int,
    p: float,
    seed: int,
    gates: Optional[GateSpec] = None,
) -> UniformTree:
    """A uniform Boolean tree with i.i.d. Bernoulli(p) leaves.

    Parameters
    ----------
    p:
        Probability that a leaf is 1.
    gates:
        Gate scheme (default all-NOR, the paper's presentation).
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"bias p must be in [0, 1], got {p}")
    rng = np.random.default_rng(seed)
    leaves = (rng.random(branching ** height) < p).astype(np.int8)
    return UniformTree(
        branching, height, leaves, kind=TreeKind.BOOLEAN, gates=gates
    )


def level_invariant_bias(branching: int) -> float:
    """The bias p* with p = (1 - p)**d — the NOR-tree fixed point.

    With leaves i.i.d. Bernoulli(p*), every level of a uniform d-ary
    NOR tree is again i.i.d. Bernoulli(p*), so no level's value is
    forced as the tree grows; these are the hardest i.i.d. instances.
    For d = 2 this is the golden-ratio bias (sqrt(5) - 1) / 2.
    """
    if branching < 1:
        raise ValueError("branching must be >= 1")
    # Bisection on f(p) = (1 - p)**d - p, decreasing in p on [0, 1].
    lo, hi = 0.0, 1.0
    for _ in range(80):
        mid = 0.5 * (lo + hi)
        if (1.0 - mid) ** branching - mid > 0:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


def golden_ratio_instance(height: int, seed: int) -> UniformTree:
    """A uniform binary AND/OR tree at the golden-ratio bias.

    This is the setting of Althofer's probabilistic analysis discussed
    in Section 6: d = 2 and p = (sqrt(5) - 1) / 2.  Since
    p**2 = 1 - p, the leaf bias reproduces itself every two levels of
    the alternating OR/AND structure, so no level's value is
    asymptotically forced — the hardest i.i.d. family.  (For the NOR
    presentation the analogous single-level fixed point is
    :func:`level_invariant_bias`: p* = (3 - sqrt(5)) / 2.)
    """
    from ..gates import alternating

    return iid_boolean(2, height, GOLDEN_BIAS, seed, gates=alternating())


def iid_minmax(
    branching: int,
    height: int,
    seed: int,
) -> UniformTree:
    """A uniform MIN/MAX tree with i.i.d. Uniform[0, 1) leaves.

    Continuous values make ties almost surely absent, which is the
    cleanest setting for comparing alpha-beta variants.
    """
    rng = np.random.default_rng(seed)
    leaves = rng.random(branching ** height)
    return UniformTree(branching, height, leaves, kind=TreeKind.MINMAX)


def iid_minmax_integers(
    branching: int,
    height: int,
    seed: int,
    num_values: int = 8,
) -> UniformTree:
    """A uniform MIN/MAX tree with i.i.d. integer leaves.

    Few distinct values produce many ties, exercising the non-strict
    (alpha >= beta) pruning rule and the tie-handling paths that
    continuous leaves never reach.
    """
    if num_values < 1:
        raise ValueError("num_values must be >= 1")
    rng = np.random.default_rng(seed)
    leaves = rng.integers(0, num_values, size=branching ** height)
    return UniformTree(
        branching, height, leaves.astype(np.float64), kind=TreeKind.MINMAX
    )
