"""Structured extreme instances used by lower-bound experiments.

``forced_value_instance`` builds the *cheapest* instance with a given
root value: Sequential SOLVE evaluates exactly one minimal proof tree
of it (Fact 1's d**floor(n/2) bound is tight on this family, which is
how benchmark E1 demonstrates tightness).
"""

from __future__ import annotations

import numpy as np

from ...errors import WorkloadError
from ...types import Gate, TreeKind
from ..gates import GateSpec
from ..uniform import UniformTree


def all_ones(
    branching: int, height: int, gates: GateSpec = Gate.NOR
) -> UniformTree:
    """Uniform Boolean tree with every leaf equal to 1."""
    leaves = np.ones(branching ** height, dtype=np.int8)
    return UniformTree(branching, height, leaves, kind=TreeKind.BOOLEAN,
                       gates=gates)


def all_zeros(
    branching: int, height: int, gates: GateSpec = Gate.NOR
) -> UniformTree:
    """Uniform Boolean tree with every leaf equal to 0."""
    leaves = np.zeros(branching ** height, dtype=np.int8)
    return UniformTree(branching, height, leaves, kind=TreeKind.BOOLEAN,
                       gates=gates)


def forced_value_instance(
    branching: int,
    height: int,
    root_value: int = 1,
) -> UniformTree:
    """A NOR instance whose root takes ``root_value`` at minimal cost.

    Requirement propagation (vectorised level by level):

    * a node required to be 1 requires all its children to be 0;
    * a node required to be 0 requires only its *first* child to be 1 —
      Sequential SOLVE then short-circuits, so the remaining children
      are filled with the cheap "required 0" pattern.

    On this instance Sequential SOLVE evaluates exactly one proof tree.
    """
    if root_value not in (0, 1):
        raise WorkloadError("root_value must be 0 or 1")
    d = branching
    required = np.array([root_value], dtype=np.int8)
    for _level in range(height):
        child = np.zeros((len(required), d), dtype=np.int8)
        # required == 0 rows get a leading 1; required == 1 rows stay 0.
        child[:, 0] = 1 - required
        required = child.reshape(-1)
    return UniformTree(d, height, required, kind=TreeKind.BOOLEAN,
                       gates=Gate.NOR)
