"""Workload instance generators for every experiment family.

* :mod:`repro.trees.generators.iid` — the i.i.d. random models of
  Section 6 (Bernoulli-p Boolean leaves, continuous MIN/MAX leaves,
  including the golden-ratio bias used by Althofer's analysis).
* :mod:`repro.trees.generators.adversarial` — deterministic hard
  instances (Sequential SOLVE forced to read every leaf; Team SOLVE
  capped at a square-root speed-up).
* :mod:`repro.trees.generators.structured` — extreme/minimal instances
  (constant leaves, single-proof-tree instances).
* :mod:`repro.trees.generators.near_uniform` — the (alpha, beta)
  near-uniform trees of Corollary 2.
"""

from .adversarial import (
    alpha_beta_worst_case,
    sequential_worst_case,
    team_solve_hard_instance,
)
from .iid import (
    golden_ratio_instance,
    iid_boolean,
    iid_minmax,
    iid_minmax_integers,
)
from .near_uniform import near_uniform_boolean
from .structured import (
    all_ones,
    all_zeros,
    forced_value_instance,
)

__all__ = [
    "iid_boolean",
    "iid_minmax",
    "iid_minmax_integers",
    "golden_ratio_instance",
    "sequential_worst_case",
    "alpha_beta_worst_case",
    "team_solve_hard_instance",
    "all_ones",
    "all_zeros",
    "forced_value_instance",
    "near_uniform_boolean",
]
