"""Near-uniform trees for Corollary 2.

Corollary 2 extends Theorem 1 to trees that are only *close* to uniform:
every internal node has between ``alpha * d`` and ``d`` children and
every root-leaf path has length between ``beta * n`` and ``n``.  This
generator samples such trees uniformly at random (degree per node, leaf
cut-off depth per path) with i.i.d. Bernoulli leaf values.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

import numpy as np

from ...errors import WorkloadError
from ...types import TreeKind
from ..explicit import ExplicitTree
from ..gates import GateSpec


def near_uniform_boolean(
    branching: int,
    height: int,
    alpha: float,
    beta: float,
    p: float,
    seed: int,
    gates: GateSpec = None,
    leaf_prob: float = 0.25,
) -> ExplicitTree:
    """Sample an (alpha, beta)-near-uniform Boolean tree.

    Parameters
    ----------
    alpha:
        Lower bound on relative degree: each internal node has between
        ``ceil(alpha * branching)`` and ``branching`` children.
    beta:
        Lower bound on relative depth: no leaf occurs above depth
        ``ceil(beta * height)``.
    p:
        Bernoulli bias of the leaf values.
    leaf_prob:
        Probability that a node in the "free" depth band
        [ceil(beta*n), n) becomes a leaf.
    """
    if not 0 < alpha <= 1 or not 0 < beta <= 1:
        raise WorkloadError("alpha and beta must be in (0, 1]")
    if not 0 <= leaf_prob < 1:
        raise WorkloadError("leaf_prob must be in [0, 1)")
    rng = np.random.default_rng(seed)
    d_min = max(1, math.ceil(alpha * branching))
    min_depth = math.ceil(beta * height)

    children: List[Tuple[int, ...]] = []
    leaf_values: Dict[int, int] = {}

    def alloc() -> int:
        children.append(())
        return len(children) - 1

    root = alloc()
    stack = [(root, 0)]
    while stack:
        node, depth = stack.pop()
        is_leaf = depth >= height or (
            depth >= min_depth and rng.random() < leaf_prob
        )
        if is_leaf:
            leaf_values[node] = int(rng.random() < p)
            continue
        degree = int(rng.integers(d_min, branching + 1))
        kid_ids = [alloc() for _ in range(degree)]
        children[node] = tuple(kid_ids)
        for kid in kid_ids:
            stack.append((kid, depth + 1))

    return ExplicitTree(children, leaf_values, kind=TreeKind.BOOLEAN,
                        gates=gates)
