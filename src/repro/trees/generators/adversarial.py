"""Deterministic hard instances.

``sequential_worst_case`` realises the Section 6 remark that "it is easy
to construct instances of uniform AND/OR trees such that Sequential
SOLVE would have to evaluate all the leaves": in a NOR tree, a node's
evaluation visits all of its children exactly when its first d-1
children evaluate to 0 (no early absorption), so we force every
internal node's first d-1 children to 0 and steer the last child to
whatever value the parent requires.  The construction is vectorised
level by level.

``team_solve_hard_instance`` is the family on which Team SOLVE's
speed-up caps at O(sqrt(p)) (the converse direction of Proposition 1):
with every leaf equal to 1, the levels of a NOR tree alternate between
"one child suffices" (where a team of p wastes a factor of d) and "all
children needed" (where it gains its full parallelism), which compounds
to a sqrt(p) effective speed-up when p = d**k.
"""

from __future__ import annotations

import numpy as np

from ...errors import WorkloadError
from ...types import Gate, TreeKind
from ..uniform import UniformTree


def sequential_worst_case(
    branching: int,
    height: int,
    root_value: int = 1,
) -> UniformTree:
    """A uniform NOR instance on which Sequential SOLVE reads every leaf.

    Parameters
    ----------
    root_value:
        The value the root should take (0 or 1); both are achievable.

    Notes
    -----
    Requirement propagation: a NOR node required to be 1 needs all
    children 0; required to be 0, it needs its *last* child to be 1 and
    — to avoid early absorption — its first d-1 children to be 0.
    Either way the first d-1 children are 0 and the last child is
    ``1 - required``.
    """
    if root_value not in (0, 1):
        raise WorkloadError("root_value must be 0 or 1")
    d = branching
    required = np.array([root_value], dtype=np.int8)
    for _level in range(height):
        child = np.zeros((len(required), d), dtype=np.int8)
        child[:, d - 1] = 1 - required
        required = child.reshape(-1)
    return UniformTree(d, height, required, kind=TreeKind.BOOLEAN,
                       gates=Gate.NOR)


def alpha_beta_worst_case(branching: int, height: int) -> UniformTree:
    """A uniform MIN/MAX instance on which alpha-beta reads every leaf.

    Section 6: "One can also construct such worst-case instances for
    the alpha-beta pruning procedure."  The classical construction
    (Knuth & Moore): order every MAX node's children by increasing
    value and every MIN node's children by decreasing value — each new
    child then strictly improves the running bound, so no cutoff ever
    fires.  Realised by nested value intervals, vectorised level by
    level: a MAX node with interval (lo, hi) gives child i the i-th
    ascending sub-interval, a MIN node the i-th descending one; leaves
    take their interval midpoint.
    """
    d = branching
    lo = np.array([0.0])
    hi = np.array([1.0])
    for level in range(height):
        width = (hi - lo) / d
        # shape (nodes, d) sub-interval starts
        steps = np.arange(d, dtype=np.float64)
        if level % 2 == 0:  # MAX level: ascending children
            starts = lo[:, None] + steps[None, :] * width[:, None]
        else:  # MIN level: descending children
            starts = hi[:, None] - (steps[None, :] + 1.0) * width[:, None]
        ends = starts + width[:, None]
        lo = starts.reshape(-1)
        hi = ends.reshape(-1)
    leaves = (lo + hi) / 2.0
    return UniformTree(d, height, leaves, kind=TreeKind.MINMAX)


def team_solve_hard_instance(branching: int, height: int) -> UniformTree:
    """The all-ones NOR instance capping Team SOLVE at ~sqrt(p) speed-up.

    With all leaves 1 the sequential algorithm evaluates exactly one
    proof tree (d**ceil(n/2) leaves, alternating degree 1 and d), while
    a team of p leftmost processors burns d-fold redundant work on every
    "degree-1" level.
    """
    d = branching
    leaves = np.ones(d ** height, dtype=np.int8)
    return UniformTree(d, height, leaves, kind=TreeKind.BOOLEAN,
                       gates=Gate.NOR)
