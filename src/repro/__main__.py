"""Command-line interface: ``python -m repro <command>``.

Commands
--------
list
    List the registered experiments.
run EXPID [EXPID ...]
    Run experiments and print their tables (also saved under
    ``benchmarks/results/``).
report
    Regenerate EXPERIMENTS.md from the saved result tables.
demo
    A 30-second tour: evaluate one instance with every algorithm.
bench --wallclock
    Wall-clock measurements: incremental vs rescan frontier backend,
    and (with ``--workers``) the process-pool oracle runtime.
lint
    Static-analysis pass enforcing the model invariants (R1-R12).
chaos
    Fault-injection sweep: convergence and overhead under seeded
    message/processor faults, plus oracle-runtime fault drills.
trace
    Record an instrumented run under the deterministic telemetry
    recorder and export it as a Chrome ``trace_event`` file or JSONL.
serve
    Batch-evaluation service: canonical-tree result cache in front of
    hash-sharded oracle-runtime pools, with deterministic response
    logs and an optional chaos (crashing-shard) mode.
gateway
    Overload-safe request gateway in front of the sharded service:
    bounded admission queues, priority classes, deadlines, a retry
    budget and shard self-healing, driven by a deterministic
    logical-clock loop (asyncio wall-clock mode opt-in).
shm
    Shared-memory leaf evaluation over the arena: identity check
    against the serial arena engines and a wall-clock speedup curve
    over worker counts with a calibrated leaf oracle.
"""

from __future__ import annotations

import argparse
import sys
from typing import TYPE_CHECKING, Optional, Sequence, Tuple

if TYPE_CHECKING:
    from .models.accounting import EvalResult


def _cmd_list(args: argparse.Namespace) -> int:
    from .bench import list_experiments

    for name in list_experiments():
        print(name)
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from .bench import run_experiment

    for name in args.experiments:
        table = run_experiment(name, save=not args.no_save)
        print(table.render())
        print()
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .bench.report import generate_experiments_md

    generate_experiments_md()
    print("wrote EXPERIMENTS.md")
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    """Fast cross-validation of every algorithm family."""
    import numpy as np

    from .core import parallel_solve, sequential_solve, team_solve
    from .core.alphabeta import (
        alpha_beta,
        parallel_alpha_beta,
        scout,
        sequential_alpha_beta,
        sss_star,
    )
    from .core.nodeexpansion import (
        n_parallel_alpha_beta,
        n_parallel_solve,
        n_sequential_alpha_beta,
        n_sequential_solve,
    )
    from .simulator import simulate
    from .trees import exact_value
    from .trees.generators import iid_boolean, iid_minmax

    rng = np.random.default_rng(args.seed)
    checks = 0
    for trial in range(args.trials):
        n = int(rng.integers(2, 8))
        tree = iid_boolean(2, n, float(rng.random()), seed=trial)
        truth = exact_value(tree)
        for result in (
            sequential_solve(tree),
            team_solve(tree, 4),
            parallel_solve(tree, 1),
            n_sequential_solve(tree),
            n_parallel_solve(tree, 1),
            simulate(tree),
        ):
            assert result.value == truth, "Boolean disagreement!"
            checks += 1
        mtree = iid_minmax(2, int(rng.integers(2, 6)), seed=trial)
        mtruth = exact_value(mtree)
        for result in (
            alpha_beta(mtree),
            sequential_alpha_beta(mtree),
            parallel_alpha_beta(mtree, 1),
            scout(mtree),
            sss_star(mtree),
            n_sequential_alpha_beta(mtree),
            n_parallel_alpha_beta(mtree, 1),
        ):
            assert result.value == mtruth, "MIN/MAX disagreement!"
            checks += 1
    print(f"ok — {checks} algorithm runs agreed with ground truth "
          f"on {args.trials} Boolean + {args.trials} MIN/MAX instances")
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    from .core import parallel_solve, sequential_solve, team_solve
    from .core.nodeexpansion import n_parallel_solve, n_sequential_solve
    from .simulator import simulate
    from .trees.generators import iid_boolean
    from .trees.generators.iid import level_invariant_bias

    n = args.height
    tree = iid_boolean(2, n, level_invariant_bias(2), seed=args.seed)
    print(f"uniform binary NOR tree: height {n}, "
          f"{tree.num_leaves()} leaves, seed {args.seed}\n")
    seq = sequential_solve(tree)
    rows = [
        ("Sequential SOLVE", seq.num_steps, seq.total_work, 1),
        ("Team SOLVE (p=16)", *_tw(team_solve(tree, 16))),
        ("Parallel SOLVE (w=1)", *_tw(parallel_solve(tree, 1))),
        ("Parallel SOLVE (w=2)", *_tw(parallel_solve(tree, 2))),
        ("N-Sequential SOLVE", *_tw(n_sequential_solve(tree))),
        ("N-Parallel SOLVE (w=1)", *_tw(n_parallel_solve(tree, 1))),
    ]
    sim = simulate(tree)
    rows.append(("Section-7 machine", sim.ticks, sim.expansions,
                 sim.max_degree))
    print(f"{'algorithm':>24} {'steps':>7} {'work':>7} {'procs':>6}")
    for name, steps, work, procs in rows:
        print(f"{name:>24} {steps:>7} {work:>7} {procs:>6}")
    print(f"\nroot value: {seq.value}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    if args.diff:
        from .bench.diff import diff_snapshots, render_report
        from .bench.snapshot import load_snapshot

        report = diff_snapshots(
            load_snapshot(args.diff[0]),
            load_snapshot(args.diff[1]),
            allow_removed=args.allow_removed,
        )
        print(render_report(report))
        return report.exit_code
    if args.list:
        from .bench.registry import get_spec, list_specs

        for name in list_specs():
            spec = get_spec(name)
            gates = ", ".join(g.name for g in spec.gates) or "-"
            print(f"{name:6} {spec.suite:13} gates: {gates}")
        return 0
    if args.all or args.spec or args.suite:
        from .bench.runner import failed_gates, run_benchmarks
        from .bench.snapshot import snapshot_path, write_snapshot
        from .errors import WorkloadError

        profile = "quick" if args.quick else "full"
        try:
            doc = run_benchmarks(
                names=args.spec or None,
                suites=args.suite or None,
                profile=profile,
                wallclock=args.wallclock,
                date=args.date,
            )
        except WorkloadError as exc:
            print(f"bench: {exc}", file=sys.stderr)
            return 2
        out = args.out or snapshot_path(doc["date"])
        write_snapshot(doc, out)
        print(f"wrote {out} ({len(doc['specs'])} specs, "
              f"profile {profile})")
        failures = failed_gates(doc)
        if failures:
            print("FAILED gates: " + ", ".join(failures),
                  file=sys.stderr)
            return 1
        return 0
    if not args.wallclock:
        print("nothing to do: pass --all, --spec, --suite, --diff, "
              "--list or --wallclock", file=sys.stderr)
        return 2
    from .bench.wallclock import run_wallclock

    widths = tuple(int(w) for w in args.widths.split(","))
    return run_wallclock(
        branching=args.branching,
        height=args.height,
        widths=widths,
        seed=args.seed,
        workers=args.workers,
        oracle_iters=args.oracle_iters,
        trace_out=args.trace_out,
        backend=args.backend,
    )


def _cmd_lint(args: argparse.Namespace) -> int:
    from .lint.cli import run_lint

    return run_lint(args)


def _cmd_chaos(args: argparse.Namespace) -> int:
    from .faults import run_chaos

    return run_chaos(
        height=args.height,
        num_seeds=args.seeds,
        rates=tuple(float(r) for r in args.rates.split(",")),
        kinds=tuple(args.kinds.split(",")),
        max_faults=args.max_faults,
        quick=args.quick,
        runtime=args.runtime,
        trace_out=args.trace_out,
    )


def _cmd_trace(args: argparse.Namespace) -> int:
    from .telemetry.cli import run_trace

    return run_trace(args)


def _cmd_serve(args: argparse.Namespace) -> int:
    from .serve.cli import run_serve

    return run_serve(args)


def _cmd_gateway(args: argparse.Namespace) -> int:
    from .gateway.cli import run_gateway

    return run_gateway(args)


def _cmd_shm(args: argparse.Namespace) -> int:
    from .core.shm.cli import run_shm

    return run_shm(args)


def _tw(res: EvalResult) -> Tuple[int, int, int]:
    return res.num_steps, res.total_work, res.processors


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Karp & Zhang (SPAA 1989) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiments").set_defaults(
        fn=_cmd_list
    )

    run = sub.add_parser("run", help="run experiments")
    run.add_argument("experiments", nargs="+")
    run.add_argument("--no-save", action="store_true")
    run.set_defaults(fn=_cmd_run)

    sub.add_parser(
        "report", help="regenerate EXPERIMENTS.md"
    ).set_defaults(fn=_cmd_report)

    demo = sub.add_parser("demo", help="evaluate one instance")
    demo.add_argument("--height", type=int, default=12)
    demo.add_argument("--seed", type=int, default=2026)
    demo.set_defaults(fn=_cmd_demo)

    verify = sub.add_parser(
        "verify", help="cross-validate all algorithm families"
    )
    verify.add_argument("--trials", type=int, default=10)
    verify.add_argument("--seed", type=int, default=0)
    verify.set_defaults(fn=_cmd_verify)

    bench = sub.add_parser(
        "bench",
        help="benchmark registry: run specs, snapshot, diff",
    )
    bench.add_argument(
        "--all", action="store_true",
        help="run every registered benchmark spec",
    )
    bench.add_argument(
        "--spec", action="append", metavar="NAME",
        help="run one spec (repeatable)",
    )
    bench.add_argument(
        "--suite", action="append", metavar="SUITE",
        help="restrict to one suite (repeatable)",
    )
    bench.add_argument(
        "--quick", action="store_true",
        help="quick profile: reduced parameters for CI smoke runs",
    )
    bench.add_argument(
        "--out", type=str, default=None, metavar="PATH",
        help="snapshot output path (default benchmarks/history/)",
    )
    bench.add_argument(
        "--date", type=str, default=None, metavar="YYYY-MM-DD",
        help="snapshot date stamp (default today)",
    )
    bench.add_argument(
        "--diff", nargs=2, metavar=("OLD", "NEW"), default=None,
        help="compare two BENCH_*.json snapshots and exit",
    )
    bench.add_argument(
        "--allow-removed", action="store_true",
        help="removed specs/metrics are notes, not regressions",
    )
    bench.add_argument(
        "--list", action="store_true",
        help="list registered specs with suites and gates",
    )
    bench.add_argument(
        "--wallclock", action="store_true",
        help="also measure wall-clock (with --all/--spec/--suite); "
        "alone: the legacy frontier-backend timing table",
    )
    bench.add_argument(
        "--backend", choices=("rescan", "incremental", "arena"),
        default=None,
        help="time a single frontier backend in the wall-clock table "
        "instead of the incremental-vs-rescan comparison",
    )
    bench.add_argument("--branching", type=int, default=4)
    bench.add_argument("--height", type=int, default=8)
    bench.add_argument("--widths", type=str, default="1,2,4")
    bench.add_argument("--seed", type=int, default=2026)
    bench.add_argument(
        "--workers", type=int, default=None,
        help="also run the process-pool oracle benchmark",
    )
    bench.add_argument("--oracle-iters", type=int, default=20000)
    bench.add_argument(
        "--trace-out", type=str, default=None, metavar="PATH",
        help="also write a JSONL telemetry trace of one bench run",
    )
    bench.set_defaults(fn=_cmd_bench)

    from .lint.cli import add_lint_arguments

    lint = sub.add_parser(
        "lint", help="run the invariant static-analysis pass (R1-R12)"
    )
    add_lint_arguments(lint)
    lint.set_defaults(fn=_cmd_lint)

    chaos = sub.add_parser(
        "chaos", help="fault-injection sweep (convergence + overhead)"
    )
    chaos.add_argument(
        "--quick", action="store_true",
        help="small fixed grid for CI smoke runs",
    )
    chaos.add_argument("--height", type=int, default=6)
    chaos.add_argument("--seeds", type=int, default=5)
    chaos.add_argument(
        "--rates", type=str, default="0.01,0.05,0.2",
        help="comma-separated fault rates",
    )
    chaos.add_argument(
        "--kinds", type=str,
        default="drop,duplicate,delay,reorder,crash,stall",
        help="comma-separated fault kinds to sweep",
    )
    chaos.add_argument(
        "--max-faults", type=int, default=64,
        help="cap on injected faults per run (guarantees progress)",
    )
    chaos.add_argument(
        "--runtime", action="store_true",
        help="also chaos-test the oracle runtime (FaultyExecutor)",
    )
    chaos.add_argument(
        "--trace-out", type=str, default=None, metavar="PATH",
        help="also write a JSONL telemetry trace of one faulty run",
    )
    chaos.set_defaults(fn=_cmd_chaos)

    from .telemetry.cli import add_trace_arguments

    trace = sub.add_parser(
        "trace", help="record and export a deterministic telemetry trace"
    )
    add_trace_arguments(trace)
    trace.set_defaults(fn=_cmd_trace)

    from .serve.cli import add_serve_arguments

    serve = sub.add_parser(
        "serve", help="sharded batch-evaluation service with caching"
    )
    add_serve_arguments(serve)
    serve.set_defaults(fn=_cmd_serve)

    from .gateway.cli import add_gateway_arguments

    gateway = sub.add_parser(
        "gateway",
        help="overload-safe request gateway (admission, deadlines, "
        "retry budget, shard self-healing)",
    )
    add_gateway_arguments(gateway)
    gateway.set_defaults(fn=_cmd_gateway)

    from .core.shm.cli import add_shm_arguments

    shm = sub.add_parser(
        "shm",
        help="shared-memory leaf evaluation: identity check and "
        "hardware speedup curve",
    )
    add_shm_arguments(shm)
    shm.set_defaults(fn=_cmd_shm)

    args = parser.parse_args(argv)
    return int(args.fn(args))


if __name__ == "__main__":
    sys.exit(main())
