"""Algorithm dispatch for the batch-evaluation service.

Maps the wire-level algorithm names onto the repository's engines and
normalises their heterogeneous result types to one ``(value, steps,
work)`` triple.  :func:`evaluate_payload` is the module-level worker
function the per-shard :class:`~repro.models.executors.OracleRuntime`
pools execute — it takes a plain dict (picklable across process
boundaries), rebuilds the tree, runs the engine and returns a plain
dict, so a shard worker needs nothing but this module importable.

Every engine here is deterministic given the request content, which
is what makes cached and freshly computed responses
indistinguishable.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Mapping, Tuple

from ..trees.base import GameTree
from ..trees.io import tree_from_dict

__all__ = [
    "ALGORITHMS",
    "BOOLEAN_ALGORITHMS",
    "MINMAX_ALGORITHMS",
    "run_algorithm",
    "evaluate_payload",
]

#: value, model steps (ticks for the machine), total work.
EngineOutcome = Tuple[float, int, int]
#: Params are wire-level: widths/processor counts plus an optional
#: ``backend`` string for the frontier-backend-capable engines.
EngineFn = Callable[[GameTree, Mapping[str, Any]], EngineOutcome]


def _backend(params: Mapping[str, Any]) -> str:
    backend: str = params.get("backend", "incremental")
    return backend


def _executor(params: Mapping[str, Any]) -> str:
    executor: str = params.get("executor", "inline")
    return executor


def _sequential(tree: GameTree, params: Mapping[str, Any]) -> EngineOutcome:
    from ..core import sequential_solve

    res = sequential_solve(tree)
    return float(res.value), res.num_steps, res.total_work


def _team(tree: GameTree, params: Mapping[str, Any]) -> EngineOutcome:
    from ..core import team_solve

    res = team_solve(
        tree, params.get("processors", 4), backend=_backend(params),
        executor=_executor(params),
    )
    return float(res.value), res.num_steps, res.total_work


def _parallel(tree: GameTree, params: Mapping[str, Any]) -> EngineOutcome:
    from ..core import parallel_solve

    res = parallel_solve(
        tree, params.get("width", 1), backend=_backend(params),
        executor=_executor(params),
    )
    return float(res.value), res.num_steps, res.total_work


def _nsequential(
    tree: GameTree, params: Mapping[str, Any]
) -> EngineOutcome:
    from ..core.nodeexpansion import n_sequential_solve

    res = n_sequential_solve(tree)
    return float(res.value), res.num_steps, res.total_work


def _nparallel(tree: GameTree, params: Mapping[str, Any]) -> EngineOutcome:
    from ..core.nodeexpansion import n_parallel_solve

    res = n_parallel_solve(tree, params.get("width", 1))
    return float(res.value), res.num_steps, res.total_work


def _machine(tree: GameTree, params: Mapping[str, Any]) -> EngineOutcome:
    from ..simulator import simulate

    res = simulate(tree, physical_processors=params.get("processors"))
    return float(res.value), res.ticks, res.expansions


def _alphabeta(tree: GameTree, params: Mapping[str, Any]) -> EngineOutcome:
    from ..core.alphabeta import alpha_beta

    res = alpha_beta(tree)
    return float(res.value), res.num_steps, res.total_work


def _sequential_ab(
    tree: GameTree, params: Mapping[str, Any]
) -> EngineOutcome:
    from ..core.alphabeta import sequential_alpha_beta

    res = sequential_alpha_beta(
        tree, backend=_backend(params), executor=_executor(params)
    )
    return float(res.value), res.num_steps, res.total_work


def _nsequential_ab(
    tree: GameTree, params: Mapping[str, Any]
) -> EngineOutcome:
    from ..core.nodeexpansion import n_sequential_alpha_beta

    res = n_sequential_alpha_beta(tree)
    return float(res.value), res.num_steps, res.total_work


def _nparallel_ab(
    tree: GameTree, params: Mapping[str, Any]
) -> EngineOutcome:
    from ..core.nodeexpansion import n_parallel_alpha_beta

    res = n_parallel_alpha_beta(tree, params.get("width", 1))
    return float(res.value), res.num_steps, res.total_work


def _parallel_ab(tree: GameTree, params: Mapping[str, Any]) -> EngineOutcome:
    from ..core.alphabeta import parallel_alpha_beta

    res = parallel_alpha_beta(
        tree, params.get("width", 1), backend=_backend(params),
        executor=_executor(params),
    )
    return float(res.value), res.num_steps, res.total_work


def _scout(tree: GameTree, params: Mapping[str, Any]) -> EngineOutcome:
    from ..core.alphabeta import scout

    res = scout(tree)
    return float(res.value), res.num_steps, res.total_work


def _sss(tree: GameTree, params: Mapping[str, Any]) -> EngineOutcome:
    from ..core.alphabeta import sss_star

    res = sss_star(tree)
    return float(res.value), res.num_steps, res.total_work


def _minimax(tree: GameTree, params: Mapping[str, Any]) -> EngineOutcome:
    from ..core.alphabeta import minimax

    res = minimax(tree)
    return float(res.value), res.num_steps, res.total_work


#: Wire names -> engine adapters.  Boolean-tree algorithms first,
#: then the MIN/MAX family.
ALGORITHMS: Dict[str, EngineFn] = {
    "sequential": _sequential,
    "team": _team,
    "parallel": _parallel,
    "nsequential": _nsequential,
    "nparallel": _nparallel,
    "machine": _machine,
    "alphabeta": _alphabeta,
    "sequential_ab": _sequential_ab,
    "parallel_ab": _parallel_ab,
    "nsequential_ab": _nsequential_ab,
    "nparallel_ab": _nparallel_ab,
    "scout": _scout,
    "sss": _sss,
    "minimax": _minimax,
}

#: Algorithms applicable per tree kind (used by the stream generator).
BOOLEAN_ALGORITHMS = (
    "sequential", "team", "parallel", "nsequential", "nparallel",
    "machine",
)
MINMAX_ALGORITHMS = (
    "alphabeta", "sequential_ab", "parallel_ab", "nsequential_ab",
    "nparallel_ab", "scout", "sss", "minimax",
)


def run_algorithm(
    algo: str, tree: GameTree, params: Mapping[str, Any]
) -> EngineOutcome:
    """Dispatch one evaluation; raises ``KeyError`` on unknown names."""
    try:
        fn = ALGORITHMS[algo]
    except KeyError:
        raise KeyError(
            f"unknown algorithm {algo!r}; expected one of "
            f"{sorted(ALGORITHMS)}"
        ) from None
    return fn(tree, params)


def evaluate_payload(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Worker-side entry point: dict in, dict out (pickle-safe).

    ``payload`` carries ``algo``, ``params`` and the tree dict from
    :func:`repro.trees.io.tree_to_dict`.
    """
    tree = tree_from_dict(payload["tree"])
    value, steps, work = run_algorithm(
        payload["algo"], tree, payload.get("params", {})
    )
    return {"value": value, "steps": steps, "work": work}
