"""Canonical-form LRU result cache with hit/miss/eviction metrics.

Keys are the canonical request hashes of
:func:`repro.serve.request.request_key`; values are the deterministic
``(value, steps, work)`` outcome dicts.  Because a key identifies the
*content* of a request, the cache doubles as the deduplicator: any two
requests over semantically equal trees with the same algorithm and
parameters share one entry.

Capacity semantics:

* ``capacity=None`` — unbounded (never evicts);
* ``capacity=0`` — disabled (every lookup misses, nothing is stored);
* ``capacity=k > 0`` — LRU: inserting beyond ``k`` evicts the least
  recently *used* entry (lookups refresh recency).

The cache never influences response content — only whether a request
is recomputed — which the cache-correctness property tests pin down
by serving identical streams at capacities 0, k and ∞.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Optional

__all__ = ["CacheStats", "ResultCache"]


@dataclass
class CacheStats:
    """Counters accumulated over a cache's lifetime."""

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits per lookup (0.0 when nothing was looked up)."""
        return self.hits / self.lookups if self.lookups else 0.0


class ResultCache:
    """LRU mapping from canonical request key to outcome dict."""

    def __init__(self, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity < 0:
            raise ValueError("capacity must be >= 0 (or None for unbounded)")
        self.capacity = capacity
        self.stats = CacheStats()
        self._entries: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """Look one key up, refreshing its recency on a hit."""
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return entry

    def put(self, key: str, outcome: Dict[str, Any]) -> None:
        """Insert (or refresh) one entry, evicting LRU beyond capacity."""
        if self.capacity == 0:
            return
        if key in self._entries:
            self._entries.move_to_end(key)
            self._entries[key] = outcome
            return
        self._entries[key] = outcome
        self.stats.insertions += 1
        if self.capacity is not None and len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def clear(self) -> None:
        """Drop all entries (stats are preserved)."""
        self._entries.clear()
