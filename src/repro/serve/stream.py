"""Seeded synthetic request streams for benchmarks and soak tests.

Real serving traffic is dominated by a small set of hot positions —
the empirical justification for a result cache — so the generator
draws trees from a finite pool under a zipf-like skew: the rank-``r``
tree is drawn with probability proportional to ``1 / r**s``.  With
``s = 0`` the stream is uniform (worst case for the cache); ``s``
around 1.1-1.5 models heavy-traffic skew.

Everything is derived from one ``numpy`` generator seeded explicitly,
so a stream is reproducible from ``(seed, knobs)`` alone.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..trees.generators import iid_boolean, iid_minmax_integers
from ..trees.uniform import UniformTree
from ..types import TreeKind
from .engines import BOOLEAN_ALGORITHMS, MINMAX_ALGORITHMS
from .request import ConcreteTree, EvalRequest

__all__ = ["make_tree_pool", "synthetic_stream", "zipf_weights"]


def zipf_weights(n: int, s: float) -> np.ndarray:
    """Normalised zipf(s) probabilities over ranks ``1..n``."""
    if n < 1:
        raise ValueError("need at least one rank")
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks ** (-float(s))
    return weights / weights.sum()


def make_tree_pool(
    num_trees: int,
    *,
    seed: int,
    branching: int = 2,
    height: int = 4,
    minmax_fraction: float = 0.5,
) -> List[ConcreteTree]:
    """A pool of distinct uniform instances (Boolean and MIN/MAX mix).

    Tree ``i`` is generated from sub-seed ``seed + i`` so pools of
    different sizes share a prefix — handy when scaling a benchmark.
    """
    if num_trees < 1:
        raise ValueError("need at least one tree")
    pool: List[ConcreteTree] = []
    for i in range(num_trees):
        sub_seed = seed + i
        if (i + 1) / num_trees <= minmax_fraction:
            pool.append(iid_minmax_integers(
                branching, height, seed=sub_seed, num_values=8
            ))
        else:
            rng = np.random.default_rng(sub_seed)
            pool.append(iid_boolean(
                branching, height, float(rng.uniform(0.3, 0.7)),
                seed=sub_seed,
            ))
    return pool


def _algo_for(
    tree: ConcreteTree, rng: np.random.Generator
) -> Tuple[str, Tuple[Tuple[str, int], ...]]:
    """Draw an applicable algorithm (+ params) for one tree."""
    if tree.kind is TreeKind.BOOLEAN:
        candidates = [a for a in BOOLEAN_ALGORITHMS if a != "machine"]
        # The Section-7 machine implementation is binary-NOR only.
        if isinstance(tree, UniformTree) and tree.branching == 2:
            candidates.append("machine")
        algo = candidates[int(rng.integers(len(candidates)))]
    else:
        algo = MINMAX_ALGORITHMS[int(rng.integers(len(MINMAX_ALGORITHMS)))]
    params: Tuple[Tuple[str, int], ...] = ()
    if algo in ("parallel", "nparallel", "parallel_ab"):
        params = (("width", int(rng.integers(1, 4))),)
    elif algo == "team":
        params = (("processors", int(rng.integers(2, 6))),)
    return algo, params


def synthetic_stream(
    num_requests: int,
    *,
    seed: int,
    num_trees: int = 12,
    zipf_s: float = 1.2,
    branching: int = 2,
    height: int = 4,
    pool: Optional[Sequence[ConcreteTree]] = None,
    algos: Optional[Sequence[str]] = None,
) -> List[EvalRequest]:
    """Generate a zipf-skewed request stream over a finite tree pool.

    ``pool`` overrides the generated tree pool; ``algos`` restricts
    algorithm choice to the given names (they must all apply to every
    tree kind present in the pool).
    """
    rng = np.random.default_rng(seed)
    trees: Sequence[ConcreteTree] = (
        pool if pool is not None
        else make_tree_pool(
            num_trees, seed=seed, branching=branching, height=height
        )
    )
    weights = zipf_weights(len(trees), zipf_s)
    picks = rng.choice(len(trees), size=num_requests, p=weights)
    requests: List[EvalRequest] = []
    for rid, idx in enumerate(picks):
        tree = trees[int(idx)]
        if algos is not None:
            algo = str(algos[int(rng.integers(len(algos)))])
            params: Tuple[Tuple[str, int], ...] = ()
        else:
            algo, params = _algo_for(tree, rng)
        requests.append(EvalRequest(rid, algo, tree, params))
    return requests
