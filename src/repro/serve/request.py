"""Evaluation requests, responses and their wire forms.

A request names a tree, an algorithm and its parameters; a response
carries the deterministic outcome (root value, model steps, total
work).  Everything timing- or placement-dependent (which shard ran
it, whether the cache hit, wall-clock) is *excluded* from the
response by construction — that is the determinism contract: the
response log for a request stream is a pure function of the stream,
regardless of shard count, cache size or fault history.

Requests serialise to JSONL (one request per line) so streams can be
checked in, replayed and diffed; trees travel as the
representation-tagged dicts of :mod:`repro.trees.io`.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, List, Sequence, Tuple, Union

from ..trees.canonical import canonical_hash
from ..trees.explicit import ExplicitTree
from ..trees.io import tree_from_dict, tree_to_dict
from ..trees.uniform import UniformTree

__all__ = [
    "EvalRequest",
    "EvalResponse",
    "request_key",
    "shard_of",
    "request_to_dict",
    "request_from_dict",
    "load_requests",
    "save_requests",
    "response_record",
    "response_log",
]

#: Concrete tree types a request may carry (lazy trees must be
#: materialised before they can be shipped or hashed into a key).
ConcreteTree = Union[UniformTree, ExplicitTree]


@dataclass(frozen=True)
class EvalRequest:
    """One unit of work for the batch-evaluation service."""

    request_id: int
    algo: str
    tree: ConcreteTree
    #: algorithm parameters (width, processors, ...), order-free.
    params: Tuple[Tuple[str, int], ...] = ()

    @classmethod
    def make(
        cls,
        request_id: int,
        algo: str,
        tree: ConcreteTree,
        **params: int,
    ) -> "EvalRequest":
        """Build a request from keyword parameters (sorted for keys)."""
        return cls(request_id, algo, tree, tuple(sorted(params.items())))

    def params_dict(self) -> Dict[str, int]:
        return dict(self.params)


@dataclass(frozen=True)
class EvalResponse:
    """Deterministic outcome of one request.

    ``value``/``steps``/``work`` depend only on the request content;
    ``key`` is the canonical cache key so equal requests are visibly
    equal in the log.
    """

    request_id: int
    key: str
    algo: str
    value: float
    steps: int
    work: int


def request_key(req: EvalRequest) -> str:
    """Canonical-form cache key: content hash of tree + algo + params.

    Two requests with semantically equal trees (any representation),
    the same algorithm and the same parameters collide on purpose —
    that collision *is* the cache's deduplication.
    """
    tag = json.dumps(
        {"algo": req.algo, "params": list(req.params)},
        sort_keys=True,
        separators=(",", ":"),
    )
    blob = f"{canonical_hash(req.tree)}:{tag}".encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


def shard_of(key: str, num_shards: int) -> int:
    """Stable shard assignment from a canonical key."""
    return int(key[:16], 16) % num_shards


# ---------------------------------------------------------------------------
# wire forms
# ---------------------------------------------------------------------------
def request_to_dict(req: EvalRequest) -> Dict[str, Any]:
    return {
        "id": req.request_id,
        "algo": req.algo,
        "params": dict(req.params),
        "tree": tree_to_dict(req.tree),
    }


def request_from_dict(data: Dict[str, Any]) -> EvalRequest:
    return EvalRequest(
        request_id=int(data["id"]),
        algo=str(data["algo"]),
        tree=tree_from_dict(data["tree"]),
        params=tuple(sorted(
            (str(k), int(v)) for k, v in data.get("params", {}).items()
        )),
    )


def save_requests(path: str, requests: Sequence[EvalRequest]) -> None:
    """Write a request stream as JSONL (one request per line)."""
    with open(path, "w", encoding="utf-8") as fh:
        for req in requests:
            fh.write(json.dumps(
                request_to_dict(req), sort_keys=True,
                separators=(",", ":"),
            ))
            fh.write("\n")


def load_requests(path: str) -> List[EvalRequest]:
    """Read a JSONL request stream written by :func:`save_requests`."""
    requests: List[EvalRequest] = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                requests.append(request_from_dict(json.loads(line)))
    return requests


def response_record(resp: EvalResponse) -> str:
    """One compact, sorted-key JSON line for a response."""
    return json.dumps(
        {
            "id": resp.request_id,
            "key": resp.key,
            "algo": resp.algo,
            "value": resp.value,
            "steps": resp.steps,
            "work": resp.work,
        },
        sort_keys=True,
        separators=(",", ":"),
    )


def response_log(responses: Sequence[EvalResponse]) -> str:
    """The newline-terminated response log (the determinism artifact)."""
    return "".join(response_record(r) + "\n" for r in responses)

