"""``repro serve`` — batch evaluation with sharding and caching.

Serves a request stream (from ``--requests FILE`` or synthesized on
the fly) through :class:`~repro.serve.service.ShardedBatchService`
and prints a serving report.  ``--log-out`` writes the deterministic
response log — the artifact the acceptance tests byte-compare across
shard counts and cache sizes — and ``--trace-out`` writes a JSONL
telemetry trace through the same emitter as ``repro chaos`` and
``repro bench``.

``--chaos`` turns one shard (``--chaos-shard``, default 0) into a
crashing shard via :class:`~repro.faults.FaultyOracle`; the service
must still answer the whole batch (failover), which ``--verify``
checks against inline re-evaluation.
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Callable, Dict, List, Optional

from ..errors import AllShardsDegradedError
from .engines import evaluate_payload
from .request import EvalRequest, EvalResponse, load_requests
from .request import response_log as render_response_log
from .request import save_requests
from .service import POOLS, ShardedBatchService
from .stream import synthetic_stream

__all__ = ["add_serve_arguments", "run_serve"]


def add_serve_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--requests", type=str, default=None, metavar="FILE",
        help="JSONL request stream (default: synthesize one)",
    )
    parser.add_argument(
        "--num-requests", type=int, default=100,
        help="synthetic stream length (ignored with --requests)",
    )
    parser.add_argument("--seed", type=int, default=2026)
    parser.add_argument(
        "--zipf", type=float, default=1.2,
        help="synthetic stream skew exponent (0 = uniform)",
    )
    parser.add_argument("--num-trees", type=int, default=12)
    parser.add_argument("--branching", type=int, default=2)
    parser.add_argument("--height", type=int, default=4)
    parser.add_argument("--shards", type=int, default=1)
    parser.add_argument(
        "--cache-size", type=str, default="inf", metavar="K",
        help="result-cache capacity: an integer, 0 (off) or 'inf'",
    )
    parser.add_argument(
        "--pool", type=str, default="serial", choices=POOLS,
        help="executor flavour behind each shard",
    )
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument(
        "--chaos", action="store_true",
        help="crash one shard's oracle (exercises failover)",
    )
    parser.add_argument("--chaos-shard", type=int, default=0)
    parser.add_argument(
        "--verify", action="store_true",
        help="re-evaluate every unique request inline and compare",
    )
    parser.add_argument(
        "--save-requests", type=str, default=None, metavar="PATH",
        help="also write the served request stream as JSONL",
    )
    parser.add_argument(
        "--log-out", type=str, default=None, metavar="PATH",
        help="write the deterministic response log",
    )
    parser.add_argument(
        "--trace-out", type=str, default=None, metavar="PATH",
        help="write a JSONL telemetry trace of the run",
    )


def _parse_cache_size(text: str) -> Optional[int]:
    if text.lower() in ("inf", "none", "unbounded"):
        return None
    size = int(text)
    if size < 0:
        raise ValueError("--cache-size must be >= 0 or 'inf'")
    return size


def _chaos_oracle_for_shard(
    crash_shard: int, seed: int
) -> Callable[[int], Callable[[Dict[str, Any]], Dict[str, Any]]]:
    from ..faults import FaultyOracle, OracleFaultSpec

    def for_shard(
        shard: int,
    ) -> Callable[[Dict[str, Any]], Dict[str, Any]]:
        if shard != crash_shard:
            return evaluate_payload
        return FaultyOracle(
            evaluate_payload,
            OracleFaultSpec(seed=seed, error_rate=1.0),
        )

    return for_shard


def _verify_responses(
    requests: List[EvalRequest], responses: List[EvalResponse]
) -> int:
    """Inline re-evaluation cross-check; returns mismatch count."""
    from .engines import run_algorithm

    wrong = 0
    for req, resp in zip(requests, responses):
        value, steps, work = run_algorithm(
            req.algo, req.tree, req.params_dict()
        )
        if (
            float(value) != resp.value
            or steps != resp.steps
            or work != resp.work
        ):
            wrong += 1
            print(
                f"MISMATCH id={req.request_id} algo={req.algo}: "
                f"served ({resp.value}, {resp.steps}, {resp.work}) "
                f"!= direct ({value}, {steps}, {work})",
                file=sys.stderr,
            )
    return wrong


def _report_collapse(exc: AllShardsDegradedError) -> None:
    """Human-readable summary of a total-degradation failure."""
    print(f"serve: {exc}", file=sys.stderr)
    stats = exc.stats
    if stats is not None:
        print(
            f"serve: progress before collapse: {stats.requests} "
            f"request(s) accepted, {stats.evaluated} evaluated, "
            f"{stats.failovers} failover(s); degradation order "
            f"{stats.degraded_shards}",
            file=sys.stderr,
        )


def run_serve(args: argparse.Namespace) -> int:
    cache_size = _parse_cache_size(args.cache_size)

    if args.requests is not None:
        requests = load_requests(args.requests)
    else:
        requests = synthetic_stream(
            args.num_requests,
            seed=args.seed,
            num_trees=args.num_trees,
            zipf_s=args.zipf,
            branching=args.branching,
            height=args.height,
        )
    if args.save_requests:
        save_requests(args.save_requests, requests)

    recorder = None
    if args.trace_out is not None:
        from ..telemetry import InMemoryRecorder

        recorder = InMemoryRecorder()

    oracle_for_shard = None
    if args.chaos:
        if not 0 <= args.chaos_shard < args.shards:
            print(
                f"--chaos-shard must be in [0, {args.shards})",
                file=sys.stderr,
            )
            return 2
        oracle_for_shard = _chaos_oracle_for_shard(
            args.chaos_shard, args.seed
        )

    with ShardedBatchService(
        args.shards,
        cache_size=cache_size,
        pool=args.pool,
        max_workers=args.workers,
        oracle_for_shard=oracle_for_shard,
        recorder=recorder,
    ) as service:
        try:
            responses = service.serve(requests)
        except AllShardsDegradedError as exc:
            _report_collapse(exc)
            return 3
        stats = service.stats

    if args.log_out is not None:
        with open(args.log_out, "w", encoding="utf-8") as fh:
            fh.write(render_response_log(responses))

    if recorder is not None:
        from ..telemetry.cli import emit_jsonl_trace

        emit_jsonl_trace(recorder, args.trace_out)

    cache_label = "inf" if cache_size is None else str(cache_size)
    print(
        f"served {stats.requests} request(s) over {args.shards} "
        f"shard(s), cache={cache_label}, pool={args.pool}"
    )
    print(
        f"  unique evaluated {stats.evaluated}, deduplicated "
        f"{stats.deduplicated}, cache hits {stats.cache.hits} / "
        f"misses {stats.cache.misses} / evictions "
        f"{stats.cache.evictions}"
    )
    for shard, rstats in enumerate(stats.shard_stats):
        tag = " DEGRADED" if shard in stats.degraded_shards else ""
        print(
            f"  shard {shard}: units {rstats.units}, batches "
            f"{rstats.batches}, retries {rstats.retries}{tag}"
        )
    if stats.failovers:
        print(f"  failover re-dispatched {stats.failovers} request(s)")

    if args.verify:
        wrong = _verify_responses(requests, responses)
        if wrong:
            print(f"verify: {wrong} mismatch(es)", file=sys.stderr)
            return 1
        print(f"verify: all {len(responses)} response(s) correct")
    return 0
