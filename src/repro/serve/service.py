"""The sharded batch-evaluation service.

``ShardedBatchService`` accepts a stream of
:class:`~repro.serve.request.EvalRequest` and produces one
:class:`~repro.serve.request.EvalResponse` per request, in request
order.  Internally each batch flows through three stages:

1. **dedup/cache** — every request is reduced to its canonical key;
   keys already in the :class:`~repro.serve.cache.ResultCache` are
   answered immediately, and duplicate keys within the batch are
   evaluated once;
2. **shard** — cache-miss keys are partitioned by key hash across
   ``num_shards`` independent
   :class:`~repro.models.executors.OracleRuntime` pools, inheriting
   the runtime's chunking, retry, timeout and circuit-breaker
   machinery;
3. **failover** — a shard whose runtime fails terminally
   (:class:`~repro.errors.WorkerCrashError` or
   :class:`~repro.errors.DegradedRunError`) is marked degraded and its
   work is re-dispatched to the surviving shards in deterministic
   order; only when *every* shard has degraded does the batch raise
   :class:`~repro.errors.AllShardsDegradedError` (carrying the
   service's stats).

Degradation is no longer one-way: :meth:`ShardedBatchService.probe_shard`
runs a half-open health check against a degraded shard's runtime and
:meth:`ShardedBatchService.readmit` returns it to rotation — the
hooks :class:`repro.gateway.Gateway`'s supervisor drives to self-heal
recovered shards.

The determinism contract: response content is a pure function of the
request stream.  Shard count, cache capacity, pool flavour and fault
history may change *where and whether* work is recomputed, never what
is answered — `repro serve`'s response logs are byte-identical across
all of them.
"""

from __future__ import annotations

from concurrent.futures import Executor, Future, ProcessPoolExecutor
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import (
    AllShardsDegradedError,
    DegradedRunError,
    WorkerCrashError,
)
from ..models.executors import OracleRuntime, RuntimeStats
from ..telemetry import Recorder, live
from .cache import CacheStats, ResultCache
from .engines import evaluate_payload
from .request import (
    EvalRequest,
    EvalResponse,
    request_key,
    request_to_dict,
    shard_of,
)

__all__ = ["ServeStats", "ShardedBatchService", "SerialExecutor"]


class SerialExecutor(Executor):
    """An in-process executor: ``submit`` runs the task inline.

    Gives the shard runtimes their full retry/circuit-breaker
    semantics without process-spawn cost — the default for tests, the
    determinism suite and small CLI runs.
    """

    def submit(self, fn: Callable, /, *args: Any, **kwargs: Any) -> Future:
        future: Future = Future()
        try:
            future.set_result(fn(*args, **kwargs))
        except BaseException as exc:  # propagated via future.result()
            future.set_exception(exc)
        return future


#: Pool flavours for the per-shard runtimes.
POOLS = ("serial", "thread", "process")


def _pool_factory(
    pool: str, max_workers: Optional[int]
) -> Callable[[], Executor]:
    if pool == "serial":
        return SerialExecutor
    if pool == "thread":
        return lambda: ThreadPoolExecutor(max_workers=max_workers)
    if pool == "process":
        return lambda: ProcessPoolExecutor(max_workers=max_workers)
    raise ValueError(f"unknown pool {pool!r}; expected one of {POOLS}")


@dataclass
class ServeStats:
    """Aggregate accounting for one service instance."""

    requests: int = 0
    batches: int = 0
    #: unique cache-miss keys actually evaluated.
    evaluated: int = 0
    #: requests answered by batch-local deduplication.
    deduplicated: int = 0
    #: payload evaluations re-dispatched off a degraded shard.
    failovers: int = 0
    #: degraded shards returned to rotation after a successful probe.
    readmissions: int = 0
    cache: CacheStats = field(default_factory=CacheStats)
    #: runtime counters per shard, index-aligned with the pools.
    shard_stats: List[RuntimeStats] = field(default_factory=list)
    #: shards whose runtime failed terminally (degraded, not serving).
    degraded_shards: List[int] = field(default_factory=list)


class ShardedBatchService:
    """Batch evaluation over per-shard oracle runtimes with caching.

    Parameters
    ----------
    num_shards:
        Independent worker pools; requests are routed by canonical-key
        hash, so equal requests always land on the same shard.
    cache_size:
        Result-cache capacity (``None`` unbounded, ``0`` disabled).
    pool:
        ``"serial"`` (inline), ``"thread"`` or ``"process"`` — the
        executor flavour behind every shard.
    oracle:
        Worker function for cache-miss payloads; defaults to
        :func:`repro.serve.engines.evaluate_payload`.  Chaos mode
        wraps this per shard via ``oracle_for_shard``.
    oracle_for_shard:
        Optional per-shard override: maps a shard index to that
        shard's worker function (used to fault-inject one shard).
    max_retries / chunk_timeout / max_consecutive_rebuilds /
    backoff_seconds:
        Forwarded to each shard's :class:`OracleRuntime`.
    recorder:
        Telemetry sink: per-shard ``serve-shard-{i}`` tracks, cache
        counters, queue-depth samples and degradation events.
    """

    def __init__(
        self,
        num_shards: int = 1,
        *,
        cache_size: Optional[int] = None,
        pool: str = "serial",
        oracle: Optional[Callable[[Dict[str, Any]], Dict[str, Any]]] = None,
        oracle_for_shard: Optional[
            Callable[[int], Callable[[Dict[str, Any]], Dict[str, Any]]]
        ] = None,
        max_workers: Optional[int] = None,
        max_retries: int = 1,
        backoff_seconds: float = 0.0,
        chunk_timeout: Optional[float] = None,
        max_consecutive_rebuilds: Optional[int] = 3,
        recorder: Optional[Recorder] = None,
    ) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        self.num_shards = num_shards
        base_oracle = oracle if oracle is not None else evaluate_payload
        factory = _pool_factory(pool, max_workers)
        self._runtimes: List[OracleRuntime] = []
        for shard in range(num_shards):
            shard_oracle = (
                oracle_for_shard(shard)
                if oracle_for_shard is not None
                else base_oracle
            )
            self._runtimes.append(OracleRuntime(
                shard_oracle,
                max_workers=max_workers,
                max_retries=max_retries,
                backoff_seconds=backoff_seconds,
                chunk_timeout=chunk_timeout,
                max_consecutive_rebuilds=max_consecutive_rebuilds,
                executor_factory=factory,
            ))
        self.cache = ResultCache(cache_size)
        self._degraded: List[bool] = [False] * num_shards
        self._rec = live(recorder)
        self.stats = ServeStats(
            cache=self.cache.stats,
            shard_stats=[rt.stats for rt in self._runtimes],
        )

    # -- lifecycle ---------------------------------------------------------
    def __enter__(self) -> "ShardedBatchService":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def close(self) -> None:
        """Shut every shard's pool down (idempotent)."""
        for runtime in self._runtimes:
            runtime.close()

    # -- serving -----------------------------------------------------------
    def serve(
        self, requests: Sequence[EvalRequest]
    ) -> List[EvalResponse]:
        """Answer one batch; responses align with ``requests`` order."""
        reqs = list(requests)
        rec = self._rec
        self.stats.requests += len(reqs)
        self.stats.batches += 1

        # Stage 1 — canonical keys, cache lookups, in-batch dedup.
        keys: List[str] = [request_key(req) for req in reqs]
        outcomes: Dict[str, Dict[str, Any]] = {}
        to_evaluate: List[Tuple[str, EvalRequest]] = []
        for req, key in zip(reqs, keys):
            if key in outcomes:
                self.stats.deduplicated += 1
                continue
            cached = self.cache.get(key)
            if cached is not None:
                outcomes[key] = cached
                if rec is not None:
                    rec.count("serve.cache.hits")
            else:
                if rec is not None:
                    rec.count("serve.cache.misses")
                outcomes[key] = {}  # reserved; filled by evaluation
                to_evaluate.append((key, req))
        self.stats.evaluated += len(to_evaluate)

        # Stage 2 — shard the unique misses by key hash.
        by_shard: List[List[Tuple[str, EvalRequest]]] = [
            [] for _ in range(self.num_shards)
        ]
        for key, req in to_evaluate:
            by_shard[shard_of(key, self.num_shards)].append((key, req))

        # Stage 3 — evaluate shard by shard with failover.
        pending = sum(len(work) for work in by_shard)
        for shard, work in enumerate(by_shard):
            if not work:
                continue
            if rec is not None:
                rec.sample(
                    "serve.queue_depth", pending, track="serve",
                )
            self._evaluate_on(shard, work, outcomes)
            pending -= len(work)
        if rec is not None and to_evaluate:
            rec.sample("serve.queue_depth", 0, track="serve")

        # Assemble responses in request order.
        responses: List[EvalResponse] = []
        for req, key in zip(reqs, keys):
            outcome = outcomes[key]
            responses.append(EvalResponse(
                request_id=req.request_id,
                key=key,
                algo=req.algo,
                value=float(outcome["value"]),
                steps=int(outcome["steps"]),
                work=int(outcome["work"]),
            ))
            if rec is not None:
                rec.count("serve.responses")
        if rec is not None:
            rec.advance(self.stats.requests)
        return responses

    # -- health ------------------------------------------------------------
    def is_degraded(self, shard: int) -> bool:
        """Whether ``shard`` is currently out of rotation."""
        self._check_shard(shard)
        return self._degraded[shard]

    def probe_shard(self, shard: int, payload: Dict[str, Any]) -> bool:
        """Half-open health check: run one payload on ``shard``.

        Bypasses the cache and routing — the payload goes straight to
        the shard's runtime — and absorbs terminal runtime errors into
        a ``False`` verdict.  Safe to call on healthy and degraded
        shards alike; the gateway's supervisor uses it to decide when
        a degraded shard may rejoin the rotation.
        """
        self._check_shard(shard)
        try:
            self._runtimes[shard].evaluate([payload])
        except (WorkerCrashError, DegradedRunError):
            return False
        return True

    def readmit(self, shard: int) -> None:
        """Return a degraded shard to rotation (no-op when healthy).

        The inverse of the one-way degradation ``_mark_degraded``
        applies: the shard serves its key range again from the next
        batch on.  Callers are expected to have verified recovery via
        :meth:`probe_shard` first — readmitting a still-broken shard
        just means the next batch re-degrades it.
        """
        self._check_shard(shard)
        if not self._degraded[shard]:
            return
        self._degraded[shard] = False
        self.stats.degraded_shards.remove(shard)
        self.stats.readmissions += 1
        if self._rec is not None:
            self._rec.event(
                "serve.shard_readmitted",
                track=f"serve-shard-{shard}",
                shard=shard,
            )

    def _check_shard(self, shard: int) -> None:
        if not 0 <= shard < self.num_shards:
            raise ValueError(
                f"shard {shard} out of range [0, {self.num_shards})"
            )

    # -- internals ---------------------------------------------------------
    def _healthy_shards(self) -> List[int]:
        return [s for s in range(self.num_shards) if not self._degraded[s]]

    def _evaluate_on(
        self,
        shard: int,
        work: List[Tuple[str, EvalRequest]],
        outcomes: Dict[str, Dict[str, Any]],
        *,
        is_failover: bool = False,
    ) -> None:
        """Run one shard's share, failing over on terminal errors."""
        if self._degraded[shard]:
            self._failover(shard, work, outcomes)
            return
        rec = self._rec
        payloads = [self._payload(req) for _, req in work]
        if rec is not None:
            rec.count(f"serve.shard.{shard}.requests", len(work))
        try:
            results = self._runtimes[shard].evaluate(payloads)
        except (WorkerCrashError, DegradedRunError) as exc:
            self._mark_degraded(shard, exc)
            self._failover(shard, work, outcomes)
            return
        for (key, _req), outcome in zip(work, results):
            self.cache.put(key, outcome)
            outcomes[key] = outcome
        if rec is not None and is_failover:
            rec.count("serve.failover.recovered", len(work))

    def _failover(
        self,
        shard: int,
        work: List[Tuple[str, EvalRequest]],
        outcomes: Dict[str, Dict[str, Any]],
    ) -> None:
        """Re-dispatch a degraded shard's work to the next healthy one."""
        healthy = self._healthy_shards()
        if not healthy:
            raise AllShardsDegradedError(
                f"all {self.num_shards} shards degraded; "
                f"{len(work)} request(s) unserved",
                stats=self.stats,
                pending=len(work),
            )
        # Deterministic choice: first healthy shard after the dead one.
        target = next(
            (s for s in healthy if s > shard), healthy[0]
        )
        self.stats.failovers += len(work)
        if self._rec is not None:
            self._rec.count("serve.failover.requests", len(work))
        self._evaluate_on(target, work, outcomes, is_failover=True)

    def _mark_degraded(self, shard: int, exc: Exception) -> None:
        if not self._degraded[shard]:
            self._degraded[shard] = True
            self.stats.degraded_shards.append(shard)
        if self._rec is not None:
            self._rec.event(
                "serve.shard_degraded",
                track=f"serve-shard-{shard}",
                shard=shard,
                error=type(exc).__name__,
            )

    @staticmethod
    def _payload(req: EvalRequest) -> Dict[str, Any]:
        data = request_to_dict(req)
        # The worker does not need the request id; dropping it keeps
        # payloads for equal requests identical (FaultyOracle hashes
        # payload reprs, so identity matters for deterministic chaos).
        del data["id"]
        return data

    @property
    def degraded_shards(self) -> List[int]:
        return list(self.stats.degraded_shards)
