"""Sharded batch-evaluation service with canonical-tree caching.

The first layer that composes the repository's subsystems into one
serving workload: request streams (:mod:`repro.serve.request`,
:mod:`repro.serve.stream`) are deduplicated through a canonical-form
result cache (:mod:`repro.serve.cache` over
:mod:`repro.trees.canonical`), sharded by content hash across
per-shard :class:`~repro.models.executors.OracleRuntime` pools, and
answered deterministically (:mod:`repro.serve.service`) — the same
stream produces byte-identical response logs regardless of shard
count, cache capacity or fault history.  ``python -m repro serve``
drives it from the command line; see ``docs/serving.md``.
"""

from .cache import CacheStats, ResultCache
from .engines import (
    ALGORITHMS,
    BOOLEAN_ALGORITHMS,
    MINMAX_ALGORITHMS,
    evaluate_payload,
    run_algorithm,
)
from .request import (
    EvalRequest,
    EvalResponse,
    load_requests,
    request_key,
    response_log,
    response_record,
    save_requests,
    shard_of,
)
from .service import SerialExecutor, ServeStats, ShardedBatchService
from .stream import make_tree_pool, synthetic_stream, zipf_weights

__all__ = [
    "ALGORITHMS",
    "BOOLEAN_ALGORITHMS",
    "MINMAX_ALGORITHMS",
    "CacheStats",
    "EvalRequest",
    "EvalResponse",
    "ResultCache",
    "SerialExecutor",
    "ServeStats",
    "ShardedBatchService",
    "evaluate_payload",
    "load_requests",
    "make_tree_pool",
    "request_key",
    "response_log",
    "response_record",
    "run_algorithm",
    "save_requests",
    "shard_of",
    "synthetic_stream",
    "zipf_weights",
]
