"""Suppression comments: opting one line (or one file) out of a rule.

Two forms are recognised, both as real ``#`` comments (string literals
that merely look like directives are ignored):

``# lint: disable=R1,R3``
    Suppresses the listed rules on that line only.  A finding is
    suppressed when its reported line carries the comment — put it on
    the line the linter names, not on the statement's first line.

``# lint: file-disable=R2``
    Anywhere in a file, suppresses the listed rules for the whole file.

``disable=all`` (or ``file-disable=all``) suppresses every rule.  The
syntax is deliberately exact: an unparseable suppression comment is
itself reported (pseudo-rule ``R0``) rather than silently ignored, so a
typo cannot disable enforcement.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Set, Tuple

#: A comment token that is (or claims to be) a lint directive.
_MARKER = re.compile(r"^#\s*lint\s*:")

#: The full well-formed directive.
_DIRECTIVE = re.compile(
    r"^#\s*lint\s*:\s*(?P<scope>file-disable|disable)\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)\s*$"
)

_RULE_NAME = re.compile(r"^(?:all|[A-Z][A-Za-z0-9_]*)$")


@dataclass
class SuppressionTable:
    """Which rules are switched off where, for one file."""

    #: line number -> rule names suppressed on that line ("all" wildcard).
    by_line: Dict[int, Set[str]] = field(default_factory=dict)
    #: rules suppressed for the entire file.
    file_wide: Set[str] = field(default_factory=set)
    #: (line, bad_comment) pairs for malformed directives.
    malformed: List[Tuple[int, str]] = field(default_factory=list)

    def is_suppressed(self, rule: str, line: int) -> bool:
        if "all" in self.file_wide or rule in self.file_wide:
            return True
        on_line = self.by_line.get(line, frozenset())
        return "all" in on_line or rule in on_line


def _comments(source: str) -> Iterator[Tuple[int, str]]:
    """(line, text) of every comment token; robust to tokenize errors."""
    reader = io.StringIO(source).readline
    try:
        for tok in tokenize.generate_tokens(reader):
            if tok.type == tokenize.COMMENT:
                yield tok.start[0], tok.string
    except (tokenize.TokenError, IndentationError):  # pragma: no cover
        return


def parse_suppressions(source: str) -> SuppressionTable:
    """Scan the comment tokens of ``source`` for ``# lint:`` directives."""
    table = SuppressionTable()
    for lineno, comment in _comments(source):
        if not _MARKER.match(comment):
            continue
        match = _DIRECTIVE.match(comment)
        if match is None:
            # A "# lint:" comment that does not parse is a typo trap.
            table.malformed.append((lineno, comment.strip()))
            continue
        rules = {tok.strip() for tok in match.group("rules").split(",")}
        bad = [tok for tok in rules if not _RULE_NAME.match(tok)]
        if bad:
            table.malformed.append((lineno, comment.strip()))
            continue
        if match.group("scope") == "file-disable":
            table.file_wide |= rules
        else:
            table.by_line.setdefault(lineno, set()).update(rules)
    return table
