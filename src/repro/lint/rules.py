"""The paper-specific rules R1–R7.

Each rule protects one discipline the reproduction's correctness
arguments lean on; ``docs/static_analysis.md`` maps every rule to the
theorem or section it defends.  Rules are pure AST analyses — they
never import or execute the code under inspection.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, List, Optional, Sequence, Set, Tuple

from .base import ModuleContext, Rule, register
from .findings import Finding, Severity

# ---------------------------------------------------------------------------
# R1 — accounting discipline
# ---------------------------------------------------------------------------

#: Names that look like hand-rolled work/time accounting.  Matched
#: against the full identifier (leading underscores stripped).
_COUNTER = re.compile(
    r"(?:num_|total_)?"
    r"(?:steps?|work|expansions?|evals?|evaluated|leaves(?:_evaluated)?)"
    r"(?:_this_\w+)?$"
)

#: Functions allowed to contain raw counter arithmetic: the accounting
#: chokepoints themselves.
_CHOKEPOINTS = frozenset({"record", "count_expansion"})


def _target_name(node: ast.AST) -> str:
    """The bare identifier being assigned: ``x`` or ``self.x`` -> ``x``."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return ""


def _imports_execution_trace(tree: ast.Module) -> bool:
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom):
            if any(a.name == "ExecutionTrace" for a in node.names):
                return True
            if node.module and node.module.endswith("models.accounting"):
                return True
        elif isinstance(node, ast.Attribute):
            if node.attr == "ExecutionTrace":
                return True
    return False


@register
class AccountingRule(Rule):
    """R1: work must be charged through ``ExecutionTrace``.

    In ``core/`` and ``simulator/`` — the modules whose step counts the
    theorems quantify — incrementing a counter named like work/steps/
    expansions is hand-rolled accounting unless the module charges its
    work through :class:`repro.models.accounting.ExecutionTrace` or the
    increment *is* an accounting chokepoint (``record`` /
    ``count_expansion``).
    """

    name = "R1"
    title = "accounting discipline (charge work via ExecutionTrace)"
    severity = Severity.ERROR

    SCOPES = ("core/", "simulator/")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.logical_path.startswith(self.SCOPES):
            return
        if _imports_execution_trace(ctx.tree):
            return
        owner = self.enclosing_functions(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.AugAssign)
                and isinstance(node.op, ast.Add)
            ):
                continue
            name = _target_name(node.target).lstrip("_")
            if not _COUNTER.match(name):
                continue
            if owner.get(node.lineno, "") in _CHOKEPOINTS:
                continue
            yield ctx.finding(
                self,
                node,
                f"hand-rolled work counter {name!r}; charge basic steps "
                "through models.accounting.ExecutionTrace.record (or a "
                "count_expansion/record chokepoint)",
            )


# ---------------------------------------------------------------------------
# R2 — determinism
# ---------------------------------------------------------------------------

#: numpy.random names that are seedable / type-only and therefore fine.
_NP_RANDOM_OK = frozenset(
    {"default_rng", "Generator", "SeedSequence", "BitGenerator",
     "PCG64", "Philox"}
)

#: Wall-clock attribute chains (suffix match on the dotted name).
_WALL_CLOCK_SUFFIXES = (
    "datetime.now", "datetime.utcnow", "date.today",
)


@register
class DeterminismRule(Rule):
    """R2: counted model paths must be deterministic and seeded.

    Forbids the stdlib ``random`` and ``time`` modules, the legacy
    global ``numpy.random.*`` API, unseeded ``default_rng()``, and
    wall-clock ``datetime`` calls — everywhere except the oracle
    runner, the executor runtime, the hang-injecting fault oracle and
    the bench harness, which deal in real elapsed time on purpose.
    """

    name = "R2"
    title = "determinism (seeded RNG only, no wall-clock)"
    severity = Severity.ERROR

    ALLOWED_PATHS = (
        "models/oracle_runner.py",
        "models/executors.py",
        "faults/oracle.py",
        "gateway/aio.py",
    )
    # core/shm/ exists to produce wall-clock numbers (like the bench
    # harness); its batches/values stay pinned to the serial arena by
    # the shm differential and golden suites.
    ALLOWED_PREFIXES = ("bench/", "core/shm/")

    def _exempt(self, ctx: ModuleContext) -> bool:
        return (
            ctx.logical_path in self.ALLOWED_PATHS
            or ctx.logical_path.startswith(self.ALLOWED_PREFIXES)
        )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if self._exempt(ctx):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                yield from self._check_import(ctx, node)
            elif isinstance(node, ast.ImportFrom):
                yield from self._check_import_from(ctx, node)
            elif isinstance(node, ast.Call):
                yield from self._check_call(ctx, node)
            elif isinstance(node, ast.Attribute):
                yield from self._check_attribute(ctx, node)

    def _check_import(
        self, ctx: ModuleContext, node: ast.Import
    ) -> Iterator[Finding]:
        for alias in node.names:
            root = alias.name.split(".")[0]
            if root == "random":
                yield ctx.finding(
                    self, node,
                    "stdlib 'random' is forbidden in counted model "
                    "paths; use a seeded np.random.default_rng",
                )
            elif root == "time":
                yield ctx.finding(
                    self, node,
                    "wall-clock 'time' is only allowed in "
                    "models/oracle_runner.py and bench/",
                )

    def _check_import_from(
        self, ctx: ModuleContext, node: ast.ImportFrom
    ) -> Iterator[Finding]:
        module = node.module or ""
        root = module.split(".")[0]
        if node.level == 0 and root == "random":
            yield ctx.finding(
                self, node,
                "stdlib 'random' is forbidden in counted model paths; "
                "use a seeded np.random.default_rng",
            )
        elif node.level == 0 and root == "time":
            yield ctx.finding(
                self, node,
                "wall-clock 'time' is only allowed in "
                "models/oracle_runner.py and bench/",
            )
        elif module in ("numpy.random", "np.random"):
            for alias in node.names:
                if alias.name not in _NP_RANDOM_OK:
                    yield ctx.finding(
                        self, node,
                        f"legacy numpy.random.{alias.name} is "
                        "stateful/global; use a seeded default_rng",
                    )

    def _check_call(
        self, ctx: ModuleContext, node: ast.Call
    ) -> Iterator[Finding]:
        func = node.func
        callee = (
            func.id if isinstance(func, ast.Name)
            else func.attr if isinstance(func, ast.Attribute)
            else ""
        )
        if callee != "default_rng":
            return
        unseeded = not node.args and not node.keywords
        none_seed = (
            len(node.args) == 1
            and isinstance(node.args[0], ast.Constant)
            and node.args[0].value is None
        )
        if unseeded or none_seed:
            yield ctx.finding(
                self, node,
                "unseeded default_rng(); every RNG must be constructed "
                "from an explicit seed",
            )

    def _check_attribute(
        self, ctx: ModuleContext, node: ast.Attribute
    ) -> Iterator[Finding]:
        dotted = self.dotted(node)
        if not dotted:
            return
        for prefix in ("np.random.", "numpy.random."):
            if dotted.startswith(prefix):
                leaf = dotted[len(prefix):].split(".")[0]
                if leaf not in _NP_RANDOM_OK:
                    yield ctx.finding(
                        self, node,
                        f"legacy numpy.random.{leaf} is stateful/"
                        "global; use a seeded default_rng",
                    )
                return
        if dotted.endswith(_WALL_CLOCK_SUFFIXES):
            yield ctx.finding(
                self, node,
                f"wall-clock call {dotted}() in a counted model path",
            )


# ---------------------------------------------------------------------------
# R3 — MsgKind dispatch exhaustiveness
# ---------------------------------------------------------------------------


def _msgkind_member(expr: ast.AST) -> Optional[str]:
    """``MsgKind.X`` (or ``messages.MsgKind.X``) -> ``"X"``."""
    if isinstance(expr, ast.Attribute):
        base = Rule.dotted(expr.value)
        if base == "MsgKind" or base.endswith(".MsgKind"):
            return expr.attr
    return None


def _positive_kind_test(test: ast.AST) -> Optional[Tuple[str, str]]:
    """``subj is/== MsgKind.X`` -> ``(subject_repr, "X")``."""
    if not (isinstance(test, ast.Compare) and len(test.ops) == 1):
        return None
    if not isinstance(test.ops[0], (ast.Is, ast.Eq)):
        return None
    member = _msgkind_member(test.comparators[0])
    if member is None:
        return None
    subject = Rule.dotted(test.left) or ast.dump(test.left)
    return subject, member


@register
class ExhaustiveDispatchRule(Rule):
    """R3: MsgKind dispatches in ``simulator/`` must be exhaustive.

    An ``if``/``elif`` chain (or ``match``) that dispatches on message
    kind must either cover every :class:`MsgKind` member or end in an
    explicit ``else`` / ``case _`` reject branch, so adding a message
    type can never fall through silently.
    """

    name = "R3"
    title = "MsgKind dispatch exhaustiveness"
    severity = Severity.ERROR

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.logical_path.startswith("simulator/"):
            return
        members = set(ctx.config.msgkind_members)
        elif_nodes = self._elif_children(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.If) and id(node) not in elif_nodes:
                yield from self._check_chain(ctx, node, members)
            elif isinstance(node, ast.Match):
                yield from self._check_match(ctx, node, members)

    @staticmethod
    def _is_elif(outer: ast.If) -> bool:
        """Is ``outer``'s orelse an ``elif`` (vs ``else:`` + nested if)?

        The AST represents both as ``orelse=[If]``; a real ``elif``
        keeps the outer statement's indentation, a nested ``if`` under
        ``else:`` is indented deeper.
        """
        return (
            len(outer.orelse) == 1
            and isinstance(outer.orelse[0], ast.If)
            and outer.orelse[0].col_offset == outer.col_offset
        )

    @classmethod
    def _elif_children(cls, tree: ast.Module) -> Set[int]:
        """ids of If nodes that are the elif-continuation of another If."""
        out: Set[int] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.If) and cls._is_elif(node):
                out.add(id(node.orelse[0]))
        return out

    def _check_chain(
        self, ctx: ModuleContext, head: ast.If, members: Set[str]
    ) -> Iterator[Finding]:
        covered: List[str] = []
        subjects: Set[str] = set()
        node: ast.stmt = head
        has_else = False
        while True:
            assert isinstance(node, ast.If)
            hit = _positive_kind_test(node.test)
            if hit is not None:
                subjects.add(hit[0])
                covered.append(hit[1])
            if self._is_elif(node):
                node = node.orelse[0]
                continue
            has_else = bool(node.orelse)
            break
        # Only chains genuinely dispatching on kind are in scope: at
        # least two positive MsgKind arms over a single subject.
        if len(covered) < 2 or len(subjects) != 1:
            return
        if has_else:
            return
        missing = members - set(covered)
        if missing:
            yield ctx.finding(
                self, head,
                "MsgKind dispatch is not exhaustive: missing "
                f"{', '.join(sorted(missing))} and no else branch "
                "(add the arms or an explicit reject)",
            )

    def _check_match(
        self, ctx: ModuleContext, node: ast.Match, members: Set[str]
    ) -> Iterator[Finding]:
        covered: Set[str] = set()
        kind_cases = 0
        for case in node.cases:
            pattern = case.pattern
            if isinstance(pattern, ast.MatchAs) and pattern.pattern is None:
                return  # wildcard `case _:` — explicit reject present
            if isinstance(pattern, ast.MatchValue):
                member = _msgkind_member(pattern.value)
                if member is not None:
                    kind_cases += 1
                    covered.add(member)
        if kind_cases < 2:
            return
        missing = members - covered
        if missing:
            yield ctx.finding(
                self, node,
                "MsgKind match is not exhaustive: missing "
                f"{', '.join(sorted(missing))} and no `case _` arm",
            )


# ---------------------------------------------------------------------------
# R4 — frozen payload dataclasses
# ---------------------------------------------------------------------------

_PAYLOAD_NAME = re.compile(r"(?:Message|Msg|Payload)$")
_MUTABLE_ANNOTATIONS = frozenset(
    {"List", "Dict", "Set", "list", "dict", "set", "bytearray"}
)


def _dataclass_decorator(node: ast.ClassDef) -> Optional[ast.AST]:
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        dotted = Rule.dotted(target)
        if dotted in ("dataclass", "dataclasses.dataclass"):
            return dec
    return None


@register
class FrozenPayloadRule(Rule):
    """R4: message/state payload dataclasses must be frozen.

    Messages are shared between virtual processors by reference; a
    mutable payload would let one processor rewrite history another
    already acted on.  Any dataclass named ``*Message``/``*Msg``/
    ``*Payload`` must be declared ``frozen=True`` (with ``eq`` left
    enabled) and must not carry mutable-typed fields.
    """

    name = "R4"
    title = "frozen payload dataclasses"
    severity = Severity.ERROR

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not _PAYLOAD_NAME.search(node.name):
                continue
            dec = _dataclass_decorator(node)
            if dec is None:
                continue
            if not self._is_frozen(dec):
                yield ctx.finding(
                    self, node,
                    f"payload dataclass {node.name!r} must be declared "
                    "@dataclass(frozen=True)",
                )
            yield from self._check_fields(ctx, node)

    @staticmethod
    def _is_frozen(dec: ast.AST) -> bool:
        if not isinstance(dec, ast.Call):
            return False
        for kw in dec.keywords:
            if kw.arg == "frozen":
                return (
                    isinstance(kw.value, ast.Constant)
                    and kw.value.value is True
                )
        return False

    def _check_fields(
        self, ctx: ModuleContext, node: ast.ClassDef
    ) -> Iterator[Finding]:
        for stmt in node.body:
            if not isinstance(stmt, ast.AnnAssign):
                continue
            ann = stmt.annotation
            base = (
                ann.value if isinstance(ann, ast.Subscript) else ann
            )
            name = (
                base.id if isinstance(base, ast.Name)
                else base.attr if isinstance(base, ast.Attribute)
                else ""
            )
            if name in _MUTABLE_ANNOTATIONS:
                field = _target_name(stmt.target)
                yield ctx.finding(
                    self, stmt,
                    f"payload field {field!r} has mutable type "
                    f"{name}; use a tuple/frozenset/Mapping view",
                )


# ---------------------------------------------------------------------------
# R5 — public-API hygiene
# ---------------------------------------------------------------------------


def _module_bindings(tree: ast.Module) -> Tuple[Set[str], bool]:
    """Names bound at module level, and whether a star-import occurs.

    Recurses through module-level ``if``/``try``/``with``/loop blocks
    but not into function or class bodies (their names are the binding).
    """
    bound: Set[str] = set()
    star = False

    def collect_target(node: ast.AST) -> None:
        if isinstance(node, ast.Name):
            bound.add(node.id)
        elif isinstance(node, (ast.Tuple, ast.List)):
            for elt in node.elts:
                collect_target(elt)
        elif isinstance(node, ast.Starred):
            collect_target(node.value)

    def visit(stmts: Sequence[ast.stmt]) -> None:
        nonlocal star
        for stmt in stmts:
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                bound.add(stmt.name)
            elif isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    bound.add(alias.asname or alias.name.split(".")[0])
            elif isinstance(stmt, ast.ImportFrom):
                for alias in stmt.names:
                    if alias.name == "*":
                        star = True
                    else:
                        bound.add(alias.asname or alias.name)
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    collect_target(target)
            elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
                collect_target(stmt.target)
            elif isinstance(stmt, (ast.If,)):
                visit(stmt.body)
                visit(stmt.orelse)
            elif isinstance(stmt, ast.Try):
                visit(stmt.body)
                for handler in stmt.handlers:
                    visit(handler.body)
                visit(stmt.orelse)
                visit(stmt.finalbody)
            elif isinstance(stmt, (ast.With, ast.For, ast.While)):
                visit(stmt.body)
                if hasattr(stmt, "orelse"):
                    visit(stmt.orelse)

    visit(tree.body)
    return bound, star


def _find_all_assignment(
    tree: ast.Module,
) -> Optional[Tuple[ast.stmt, List[ast.expr]]]:
    for stmt in tree.body:
        targets: List[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets = [stmt.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__all__":
                value = stmt.value
                if isinstance(value, (ast.List, ast.Tuple)):
                    return stmt, list(value.elts)
                return stmt, []
    return None


@register
class PublicApiRule(Rule):
    """R5: ``__all__`` must exist in package inits and stay truthful.

    Every ``repro.*`` package ``__init__`` that binds public names must
    declare ``__all__``; every ``__all__`` entry (in any module) must
    be a string naming something actually bound at module level, with
    no duplicates.
    """

    name = "R5"
    title = "public-API hygiene (__all__ consistency)"
    severity = Severity.WARNING

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        bound, star = _module_bindings(ctx.tree)
        found = _find_all_assignment(ctx.tree)
        is_init = ctx.logical_path.endswith("__init__.py")
        public = {name for name in bound if not name.startswith("_")}
        if found is None:
            if is_init and public:
                yield ctx.finding(
                    self, ctx.tree.body[0] if ctx.tree.body else ctx.tree,
                    "package __init__ binds public names but defines "
                    "no __all__",
                )
            return
        stmt, elements = found
        seen: Set[str] = set()
        for element in elements:
            if not (
                isinstance(element, ast.Constant)
                and isinstance(element.value, str)
            ):
                yield ctx.finding(
                    self, element, "__all__ entries must be string literals"
                )
                continue
            name = element.value
            if name in seen:
                yield ctx.finding(
                    self, element, f"duplicate __all__ entry {name!r}"
                )
            seen.add(name)
            if not star and name not in bound:
                yield ctx.finding(
                    self, element,
                    f"__all__ names {name!r} which is not bound in "
                    "the module",
                )


# ---------------------------------------------------------------------------
# R6 — no swallowed exceptions
# ---------------------------------------------------------------------------


@register
class SwallowedExceptionRule(Rule):
    """R6: exceptions must not be silently swallowed.

    A fault-injection suite is only trustworthy if failures surface:
    a ``try``/``except`` that catches everything (bare ``except:``) or
    whose handler body does nothing (only ``pass``, ``...`` or a bare
    string) converts an injected fault — or a real bug — into silence.
    Handle the exception, re-raise it, or narrow the catch to the
    types the code genuinely recovers from.
    """

    name = "R6"
    title = "swallowed exceptions (bare except / except-pass)"
    severity = Severity.ERROR

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield ctx.finding(
                    self, node,
                    "bare 'except:' catches everything (including "
                    "KeyboardInterrupt/SystemExit); name the exception "
                    "types",
                )
            if self._body_is_noop(node.body):
                yield ctx.finding(
                    self, node,
                    "exception handler swallows the error (body does "
                    "nothing); handle it, re-raise, or narrow the catch",
                )

    @staticmethod
    def _body_is_noop(body: Sequence[ast.stmt]) -> bool:
        """True when every handler statement is pass/Ellipsis/a string."""
        for stmt in body:
            if isinstance(stmt, ast.Pass):
                continue
            if isinstance(stmt, ast.Expr) and isinstance(
                stmt.value, ast.Constant
            ):
                continue
            return False
        return True


# ---------------------------------------------------------------------------
# R7 — clock discipline
# ---------------------------------------------------------------------------

#: ``time`` module functions that read a wall/monotonic clock.
_CLOCK_FUNCS = frozenset({
    "time", "time_ns", "monotonic", "monotonic_ns",
    "perf_counter", "perf_counter_ns", "process_time",
    "process_time_ns",
})


@register
class ClockDisciplineRule(Rule):
    """R7: raw clock reads belong to telemetry and the wallclock bench.

    Extends R2's determinism story to the *allowed* wall-clock
    modules: even where ``import time`` is legitimate (the oracle
    runtime measures real latencies), each raw ``time.time()`` /
    ``time.monotonic()`` / ``perf_counter()`` call site must be
    individually acknowledged with ``# lint: disable=R7``, so new
    timing code is pushed toward the telemetry recorder (logical
    clocks, replay-deterministic) instead of scattering ad-hoc clock
    reads.  ``repro.telemetry`` and ``repro.bench.wallclock`` — the
    two modules whose *job* is real time — are exempt wholesale.
    """

    name = "R7"
    title = "clock discipline (no raw clock reads outside telemetry)"
    severity = Severity.ERROR

    ALLOWED_PATHS = ("bench/wallclock.py",)
    ALLOWED_PREFIXES = ("telemetry/",)

    def _exempt(self, ctx: ModuleContext) -> bool:
        return (
            ctx.logical_path in self.ALLOWED_PATHS
            or ctx.logical_path.startswith(self.ALLOWED_PREFIXES)
        )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if self._exempt(ctx):
            return
        clock_aliases = self._clock_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute):
                dotted = self.dotted(func)
                root, _, rest = dotted.partition(".")
                if root == "time" and rest in _CLOCK_FUNCS:
                    yield ctx.finding(
                        self, node,
                        f"raw clock read '{dotted}()'; route timing "
                        f"through repro.telemetry (or acknowledge with "
                        f"'# lint: disable=R7')",
                    )
            elif isinstance(func, ast.Name) and func.id in clock_aliases:
                yield ctx.finding(
                    self, node,
                    f"raw clock read '{func.id}()' (imported from "
                    f"'time'); route timing through repro.telemetry "
                    f"(or acknowledge with '# lint: disable=R7')",
                )

    @staticmethod
    def _clock_aliases(tree: ast.Module) -> Set[str]:
        """Local names bound to clock functions by ``from time import``."""
        aliases: Set[str] = set()
        for node in ast.walk(tree):
            if not isinstance(node, ast.ImportFrom):
                continue
            if (node.module or "").split(".")[0] != "time":
                continue
            for alias in node.names:
                if alias.name in _CLOCK_FUNCS:
                    aliases.add(alias.asname or alias.name)
        return aliases


# ---------------------------------------------------------------------------
# R12 — arena vectorisation discipline
# ---------------------------------------------------------------------------

#: Loop-variable / iterable name fragments that mark per-node iteration.
_PER_NODE_NAMES = re.compile(r"(?:^|_)(?:node|leaf|leaves|nodes)(?:_|$|s$)")


def _names_in(node: ast.AST) -> Iterator[str]:
    for child in ast.walk(node):
        if isinstance(child, ast.Name):
            yield child.id
        elif isinstance(child, ast.Attribute):
            yield child.attr


def _target_names(target: ast.AST) -> Iterator[str]:
    for child in ast.walk(target):
        if isinstance(child, ast.Name):
            yield child.id


@register
class ArenaVectorisationRule(Rule):
    """R12: arena hot paths must not loop over nodes in Python.

    ``repro.core.arena`` exists because level-batched numpy sweeps beat
    per-node Python loops by an order of magnitude; a ``for node in
    ...`` (or a ``range(len(...))`` / ``range(..n_nodes..)`` walk, or
    the comprehension equivalents) inside that package silently erodes
    the speed-up the e27 gate pins.  Structural loops — over the
    per-depth ``levels`` tuple, over depth buckets, the engine's step
    loop — stay clean.  A deliberate per-node loop off the hot path
    (e.g. seeding a binding from a pre-settled state at subscribe
    time) must be individually acknowledged with
    ``# lint: disable=R12``.
    """

    name = "R12"
    title = "arena vectorisation (no per-node Python loops)"
    severity = Severity.ERROR

    SCOPES = ("core/arena/",)

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.logical_path.startswith(self.SCOPES):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                yield from self._check_loop(
                    ctx, node, node.target, node.iter, "for loop"
                )
            elif isinstance(
                node,
                (ast.ListComp, ast.SetComp, ast.DictComp,
                 ast.GeneratorExp),
            ):
                for gen in node.generators:
                    yield from self._check_loop(
                        ctx, node, gen.target, gen.iter, "comprehension"
                    )

    def _check_loop(
        self,
        ctx: ModuleContext,
        node: ast.AST,
        target: ast.AST,
        iterable: ast.AST,
        kind: str,
    ) -> Iterator[Finding]:
        reason = self._per_node_reason(target, iterable)
        if reason is None:
            return
        yield ctx.finding(
            self, node,
            f"per-node Python {kind} in an arena hot path ({reason}); "
            f"use a vectorised level sweep, or acknowledge an off-path "
            f"loop with '# lint: disable=R12'",
        )

    def _per_node_reason(
        self, target: ast.AST, iterable: ast.AST
    ) -> Optional[str]:
        for name in _target_names(target):
            if _PER_NODE_NAMES.search(name):
                return f"loop variable {name!r}"
        if (
            isinstance(iterable, ast.Call)
            and isinstance(iterable.func, ast.Name)
            and iterable.func.id == "range"
        ):
            for arg in iterable.args:
                for sub in ast.walk(arg):
                    if (
                        isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Name)
                        and sub.func.id == "len"
                    ):
                        return "range over len(...)"
                    if (
                        isinstance(sub, ast.Attribute)
                        and sub.attr == "n_nodes"
                    ):
                        return "range over n_nodes"
            return None
        for name in _names_in(iterable):
            if _PER_NODE_NAMES.search(name):
                return f"iterating {name!r}"
        return None
