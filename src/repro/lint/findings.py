"""Findings: what a lint rule reports, and how it is rendered.

A :class:`Finding` is an immutable record pointing at one
``file:line:col`` location.  The two renderers (text and JSON) are the
only output formats the CLI exposes; keeping them here means every
consumer — the CLI, the test suite, future editor integrations —
renders findings identically.
"""

from __future__ import annotations

import enum
import json
from dataclasses import asdict, dataclass
from typing import Iterable, List


class Severity(enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings break a paper-level invariant (accounting,
    determinism, exhaustiveness); ``WARNING`` findings break API or
    style discipline.  Both fail the lint gate by default — severity is
    a triage hint, not a pass/fail distinction.
    """

    WARNING = "warning"
    ERROR = "error"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    severity: Severity
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        """``path:line:col: SEVERITY [rule] message`` — one line."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{str(self.severity).upper()} [{self.rule}] {self.message}"
        )

    def to_dict(self) -> dict:
        data = asdict(self)
        data["severity"] = str(self.severity)
        return data


def render_text(findings: Iterable[Finding]) -> str:
    """The human-readable report: one line per finding plus a summary."""
    lines: List[str] = [f.render() for f in findings]
    n = len(lines)
    if n == 0:
        lines.append("lint: clean (0 findings)")
    else:
        lines.append(f"lint: {n} finding{'s' if n != 1 else ''}")
    return "\n".join(lines)


def render_json(findings: Iterable[Finding]) -> str:
    """Machine-readable report: a JSON array of finding objects."""
    return json.dumps([f.to_dict() for f in findings], indent=2)


def sort_findings(findings: Iterable[Finding]) -> List[Finding]:
    """Stable report order: by path, then line, then column, then rule."""
    return sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule))
