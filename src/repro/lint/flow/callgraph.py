"""The project call graph and its fixpoint property propagation.

Edges link a :class:`~repro.lint.flow.summaries.CallSite` to every
linted function with the same terminal name whose module the caller
can see (same module, or transitively imported per the
:class:`~repro.lint.flow.modgraph.ModuleGraph`).  This is a sound
over-approximation for the rules built on it: ``runtime.evaluate(...)``
links to every visible ``evaluate``, so a property that holds for any
candidate propagates.

Two queries drive the rules:

* :meth:`CallGraph.transitive` — the set of functions for which a
  predicate holds directly *or in any transitive callee* (fixpoint
  iteration, so call cycles and recursion converge);
* :meth:`CallGraph.reachable` — BFS from a root set, optionally
  restricted to a module predicate (R11 walks only ``serve/``).
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
)

from .modgraph import ModuleGraph
from .summaries import FunctionInfo


class CallGraph:
    """Name-resolved call graph over function summaries."""

    def __init__(
        self,
        functions: Sequence[FunctionInfo],
        modgraph: Optional[ModuleGraph] = None,
    ) -> None:
        self.functions: List[FunctionInfo] = list(functions)
        self._modgraph = modgraph
        self._by_name: Dict[str, List[FunctionInfo]] = {}
        for fn in self.functions:
            self._by_name.setdefault(fn.name, []).append(fn)
        self._callee_cache: Dict[str, List[FunctionInfo]] = {}

    def _visible(self, caller: FunctionInfo, cand: FunctionInfo) -> bool:
        """May a call in ``caller`` bind to ``cand``?"""
        if cand.module == caller.module:
            return True
        if self._modgraph is None:
            return True
        return self._modgraph.imports_transitively(
            caller.module, cand.module
        )

    def candidates(self, name: str) -> List[FunctionInfo]:
        """Every linted function with terminal name ``name``."""
        return list(self._by_name.get(name, ()))

    def callees(self, fn: FunctionInfo) -> List[FunctionInfo]:
        """Resolved callees of ``fn``, de-duplicated, call-site order."""
        cached = self._callee_cache.get(fn.key)
        if cached is not None:
            return cached
        out: List[FunctionInfo] = []
        seen: Set[str] = set()
        for site in fn.calls:
            for cand in self._by_name.get(site.name, ()):
                if cand.key not in seen and self._visible(fn, cand):
                    seen.add(cand.key)
                    out.append(cand)
        self._callee_cache[fn.key] = out
        return out

    def transitive(
        self, pred: Callable[[FunctionInfo], bool]
    ) -> FrozenSet[str]:
        """Keys of functions where ``pred`` holds directly or in any
        (transitive) callee.  Fixpoint iteration: recursion and mutual
        call cycles converge because the marked set only grows."""
        marked: Set[str] = {
            fn.key for fn in self.functions if pred(fn)
        }
        changed = True
        while changed:
            changed = False
            for fn in self.functions:
                if fn.key in marked:
                    continue
                if any(c.key in marked for c in self.callees(fn)):
                    marked.add(fn.key)
                    changed = True
        return frozenset(marked)

    def reachable(
        self,
        roots: Iterable[FunctionInfo],
        within: Optional[Callable[[FunctionInfo], bool]] = None,
    ) -> List[FunctionInfo]:
        """Functions reachable from ``roots`` along call edges.

        ``within`` restricts the *traversal*: a function failing the
        predicate is neither reported nor expanded.  Roots are always
        included (when they pass ``within``).  Result is in BFS order.
        """
        out: List[FunctionInfo] = []
        seen: Set[str] = set()
        frontier: List[FunctionInfo] = [
            fn for fn in roots if within is None or within(fn)
        ]
        for fn in frontier:
            if fn.key not in seen:
                seen.add(fn.key)
                out.append(fn)
        index = 0
        while index < len(out):
            current = out[index]
            index += 1
            for callee in self.callees(current):
                if callee.key in seen:
                    continue
                if within is not None and not within(callee):
                    continue
                seen.add(callee.key)
                out.append(callee)
        return out
