"""The module import graph over the linted tree.

Nodes are logical paths (``core/frontier.py``); a directed edge
``A -> B`` means module A imports module B.  Both spellings used in
this repository resolve: ``repro.``-absolute (``from repro.telemetry
import Recorder``), package-absolute (``from telemetry import x`` in a
fixture tree), and relative (``from ..models.executors import
OracleRuntime``).  Imports of modules outside the linted set (numpy,
the stdlib) are ignored — the graph describes the project, not its
environment.

The call graph uses the *transitive closure* of this graph to restrict
callee-name resolution: a call site in module A may only bind to a
same-named function in module B when A imports B (directly or through
re-exporting packages).  That keeps suffix-matching from linking
unrelated same-named helpers across disconnected subsystems.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..base import ModuleContext

import ast


def module_dotted(logical_path: str) -> str:
    """``serve/cache.py`` -> ``serve.cache``; ``serve/__init__.py`` ->
    ``serve``; ``__init__.py`` (the package root) -> ``""``."""
    parts = logical_path[:-3].split("/")  # strip ".py"
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _package_parts(logical_path: str) -> List[str]:
    """Dotted parts of the *package* containing the module."""
    parts = logical_path[:-3].split("/")
    return parts[:-1]


class ModuleGraph:
    """Directed import graph over a set of linted modules."""

    def __init__(self, modules: Sequence[ModuleContext]) -> None:
        self._paths: Tuple[str, ...] = tuple(
            ctx.logical_path for ctx in modules
        )
        #: dotted module name -> logical path, for resolution.
        self._by_dotted: Dict[str, str] = {
            module_dotted(path): path for path in self._paths
        }
        self._edges: Dict[str, Tuple[str, ...]] = {}
        for ctx in modules:
            self._edges[ctx.logical_path] = self._resolve_imports(ctx)
        self._closure: Dict[str, FrozenSet[str]] = {}

    # -- construction ------------------------------------------------------
    def _resolve_imports(self, ctx: ModuleContext) -> Tuple[str, ...]:
        found: List[str] = []
        seen: Set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                candidates = [alias.name for alias in node.names]
            elif isinstance(node, ast.ImportFrom):
                base_mod = self._absolute_module(ctx, node)
                # ``from pkg import sub`` imports the submodule
                # ``pkg.sub`` when it exists; try the extended
                # spelling first so it wins over the bare package.
                candidates = [
                    f"{base_mod}.{alias.name}" if base_mod
                    else alias.name
                    for alias in node.names
                ]
                candidates.append(base_mod)
            else:
                continue
            for dotted in candidates:
                if dotted is None:
                    continue
                target = self._lookup(dotted)
                if target is not None and target not in seen:
                    if target != ctx.logical_path:
                        seen.add(target)
                        found.append(target)
        return tuple(found)

    @staticmethod
    def _absolute_module(
        ctx: ModuleContext, node: ast.ImportFrom
    ) -> str:
        """Resolve an ImportFrom to a package-root-relative dotted name."""
        if node.level == 0:
            return node.module or ""
        base = _package_parts(ctx.logical_path)
        # level 1 = the containing package, each extra level = one up.
        up = node.level - 1
        base = base[: len(base) - up] if up else base
        if node.module:
            base = base + node.module.split(".")
        return ".".join(base)

    def _lookup(self, dotted: str) -> Optional[str]:
        """Map a dotted module name to a linted logical path, or None.

        Tries the name as given, then with the leading ``repro.``
        stripped (absolute imports of the package under lint), then
        progressively shorter prefixes (``from pkg.mod import name``
        where ``name`` is an attribute, not a module).
        """
        spellings = [dotted]
        if dotted.startswith("repro."):
            spellings.append(dotted[len("repro."):])
        for spelling in spellings:
            parts = spelling.split(".")
            while parts:
                hit = self._by_dotted.get(".".join(parts))
                if hit is not None:
                    return hit
                parts = parts[:-1]
        return None

    # -- queries -----------------------------------------------------------
    @property
    def modules(self) -> Tuple[str, ...]:
        """All node logical paths, in linted order."""
        return self._paths

    def imports_of(self, path: str) -> Tuple[str, ...]:
        """Modules directly imported by ``path``."""
        return self._edges.get(path, ())

    def importers_of(self, path: str) -> Tuple[str, ...]:
        """Modules that directly import ``path``."""
        return tuple(
            src for src in self._paths
            if path in self._edges.get(src, ())
        )

    def transitive_imports(self, path: str) -> FrozenSet[str]:
        """Every module reachable from ``path`` along import edges.

        Cached; cycles (mutually importing modules) are handled by the
        visited set.
        """
        cached = self._closure.get(path)
        if cached is not None:
            return cached
        seen: Set[str] = set()
        stack: List[str] = [path]
        while stack:
            current = stack.pop()
            for target in self._edges.get(current, ()):
                if target not in seen:
                    seen.add(target)
                    stack.append(target)
        result = frozenset(seen)
        self._closure[path] = result
        return result

    def imports_transitively(self, src: str, dst: str) -> bool:
        """True when ``src`` (transitively) imports ``dst``."""
        return dst in self.transitive_imports(src)
