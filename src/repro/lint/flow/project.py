"""The project context handed to interprocedural rules.

A :class:`ProjectContext` bundles everything ``repro.lint.flow`` knows
about one lint run: every parsed module, every function summary, the
import graph and the call graph.  The runner builds it once per run
(after all modules parsed cleanly) and hands it to each registered
:class:`~repro.lint.base.ProjectRule`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..base import ModuleContext
from .callgraph import CallGraph
from .modgraph import ModuleGraph
from .summaries import FunctionInfo, collect_functions


@dataclass
class ProjectContext:
    """Everything a project-wide rule may inspect."""

    modules: List[ModuleContext]
    functions: List[FunctionInfo]
    modgraph: ModuleGraph
    callgraph: CallGraph
    #: logical path -> module context, for cross-module lookups.
    by_module: Dict[str, ModuleContext] = field(default_factory=dict)

    def functions_in(self, prefix: str) -> List[FunctionInfo]:
        """Summaries of functions whose module starts with ``prefix``."""
        return [
            fn for fn in self.functions
            if fn.module.startswith(prefix)
        ]


def build_project(modules: Sequence[ModuleContext]) -> ProjectContext:
    """Assemble the full project context from parsed modules."""
    mods = list(modules)
    functions: List[FunctionInfo] = []
    for ctx in mods:
        functions.extend(collect_functions(ctx))
    modgraph = ModuleGraph(mods)
    callgraph = CallGraph(functions, modgraph)
    return ProjectContext(
        modules=mods,
        functions=functions,
        modgraph=modgraph,
        callgraph=callgraph,
        by_module={ctx.logical_path: ctx for ctx in mods},
    )
