"""The interprocedural rules R8–R11.

Each rule defends the byte-identical-replay contract from a failure
mode that per-file AST rules cannot see; ``docs/static_analysis.md``
gives the full rationale and examples.  All four run on the
:class:`~repro.lint.flow.project.ProjectContext` built by the runner.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from ..base import ModuleContext, ProjectRule, Rule, register
from ..findings import Finding, Severity
from .project import ProjectContext
from .summaries import (
    FunctionInfo,
    FunctionNode,
    ORDER_SINK_NAMES,
    receiver_base,
    walk_shallow,
)

# ---------------------------------------------------------------------------
# shared helpers
# ---------------------------------------------------------------------------


def _terminal_name(func: ast.expr) -> str:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


def _loop_ancestry(node: FunctionNode) -> Dict[int, List[ast.AST]]:
    """Map ``id(child)`` -> ancestor chain (shallow, loops and ifs).

    The chain is innermost-last and stops at nested function/class
    boundaries, so guard lookups stay within one function body.
    """
    chains: Dict[int, List[ast.AST]] = {}

    def visit(parent: ast.AST, chain: List[ast.AST]) -> None:
        for child in ast.iter_child_nodes(parent):
            # AST nodes are unhashable by value; object identity is
            # the only usable memo key, and it never leaves this
            # process or this lint run.
            chains[id(child)] = chain  # lint: disable=R8
            if isinstance(
                child,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
            ):
                continue
            if isinstance(
                child, (ast.For, ast.AsyncFor, ast.While, ast.If)
            ):
                visit(child, chain + [child])
            else:
                visit(child, chain)

    visit(node, [])
    return chains


def _statements_in_order(node: FunctionNode) -> List[ast.stmt]:
    """Every (shallow) statement of a function, in source order."""
    out: List[ast.stmt] = []

    def visit(parent: ast.AST) -> None:
        for child in ast.iter_child_nodes(parent):
            if isinstance(
                child,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
            ):
                continue
            if isinstance(child, ast.stmt):
                out.append(child)
            visit(child)

    visit(node)
    out.sort(key=lambda s: (s.lineno, s.col_offset))
    return out


# ---------------------------------------------------------------------------
# R8 — determinism taint
# ---------------------------------------------------------------------------

#: Set-producing method names (called on anything, these return sets).
_SET_METHODS = frozenset({
    "union", "intersection", "difference", "symmetric_difference",
})

#: Nondeterministic value sources that may never appear in replayed
#: paths: process-unique, boot-unique, or OS-entropy-backed.
_NONDET_CALLS = frozenset({
    "os.urandom", "uuid.uuid1", "uuid.uuid4", "secrets.token_bytes",
    "secrets.token_hex", "secrets.token_urlsafe", "secrets.randbelow",
    "secrets.choice",
})

#: Substrings marking a callee as a keying/sharding chokepoint.
_KEYING_MARKERS = ("key", "shard", "bucket", "route")


def _is_sorted_wrapper(node: ast.expr) -> bool:
    """``sorted(...)`` / ``min`` / ``max`` imposing a total order."""
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("sorted", "min", "max")
    )


def _set_typed_names(node: FunctionNode) -> Set[str]:
    """Local names whose every visible assignment is a set expression."""
    set_assigned: Set[str] = set()
    other_assigned: Set[str] = set()
    for child in walk_shallow(node):
        if isinstance(child, ast.Assign) and len(child.targets) == 1:
            target = child.targets[0]
            if isinstance(target, ast.Name):
                if _is_set_expr(child.value, frozenset()):
                    set_assigned.add(target.id)
                else:
                    other_assigned.add(target.id)
        elif isinstance(child, ast.AnnAssign) and isinstance(
            child.target, ast.Name
        ):
            ann = child.target
            if child.value is not None:
                if _is_set_expr(child.value, frozenset()):
                    set_assigned.add(ann.id)
                else:
                    other_assigned.add(ann.id)
    return set_assigned - other_assigned


def _is_set_expr(node: ast.expr, set_names: FrozenSet[str]) -> bool:
    """Is ``node`` statically a ``set``/``frozenset`` value?"""
    if isinstance(node, ast.Set) or isinstance(node, ast.SetComp):
        return True
    if isinstance(node, ast.Call):
        callee = node.func
        if isinstance(callee, ast.Name) and callee.id in (
            "set", "frozenset"
        ):
            return True
        if (
            isinstance(callee, ast.Attribute)
            and callee.attr in _SET_METHODS
        ):
            return True
    if isinstance(node, ast.Name) and node.id in set_names:
        return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _is_set_expr(node.left, set_names) or _is_set_expr(
            node.right, set_names
        )
    return False


@register
class DeterminismTaintRule(ProjectRule):
    """R8: unordered data and nondeterministic values must not reach
    ordering-sensitive sinks.

    Three checks, all feeding the replay contract:

    1. a ``for`` loop over a ``set`` expression whose body feeds an
       ordering-sensitive sink — directly (``q.put``, ``frontier
       .append``, executor ``submit``), through a ``yield``, or
       through a call to any function that transitively does — is
       flagged unless the iterable passes through ``sorted()``;
    2. process-/entropy-unique value sources (``uuid.uuid4``,
       ``os.urandom``, ``secrets.*``) are flagged everywhere;
    3. ``id()`` / builtin ``hash()`` used where a *stable* key is
       required: as a subscript-store or dict-literal key, as an
       argument to a keying/sharding callee, or in the return value of
       a function named like a key derivation.
    """

    name = "R8"
    title = "determinism taint (unordered/unstable data at ordered sinks)"
    severity = Severity.ERROR

    EXEMPT_PREFIXES = ("bench/",)

    def check_project(
        self, project: ProjectContext
    ) -> Iterator[Finding]:
        # Seed on real order sinks only.  A callee merely *being* a
        # generator is not a sink: consuming it inside the loop keeps
        # the iteration order local.  Order escapes through a yield in
        # the loop body itself, which _loop_body_sink checks directly.
        sink_keys = project.callgraph.transitive(
            lambda fn: bool(fn.order_sinks)
        )
        for fn in project.functions:
            if fn.module.startswith(self.EXEMPT_PREFIXES):
                continue
            yield from self._check_set_loops(project, fn, sink_keys)
            yield from self._check_unstable_keys(fn)
        for ctx in project.modules:
            if ctx.logical_path.startswith(self.EXEMPT_PREFIXES):
                continue
            yield from self._check_nondet_sources(ctx)

    # -- check 1: set iteration into ordered sinks -------------------------
    def _check_set_loops(
        self,
        project: ProjectContext,
        fn: FunctionInfo,
        sink_keys: FrozenSet[str],
    ) -> Iterator[Finding]:
        set_names = frozenset(_set_typed_names(fn.node))
        for child in walk_shallow(fn.node):
            if not isinstance(child, (ast.For, ast.AsyncFor)):
                continue
            iterable = child.iter
            if _is_sorted_wrapper(iterable):
                continue
            if not _is_set_expr(iterable, set_names):
                continue
            sink = self._loop_body_sink(
                project, fn, child, sink_keys
            )
            if sink is not None:
                yield fn.ctx.finding(
                    self, child,
                    "iteration over an unordered set feeds the "
                    f"ordering-sensitive sink {sink!r}; iterate "
                    "sorted(...) (or justify with a disable comment)",
                )

    def _loop_body_sink(
        self,
        project: ProjectContext,
        fn: FunctionInfo,
        loop: ast.AST,
        sink_keys: FrozenSet[str],
    ) -> Optional[str]:
        """Name of the first ordering-sensitive sink the loop body
        reaches (directly, via yield, or via a tainted callee)."""
        for node in walk_shallow(loop):
            if isinstance(node, (ast.Yield, ast.YieldFrom)):
                return "yield"
            if not isinstance(node, ast.Call):
                continue
            name = _terminal_name(node.func)
            if name in ORDER_SINK_NAMES and isinstance(
                node.func, ast.Attribute
            ):
                base = receiver_base(node.func.value)
                local_only = (
                    base is not None
                    and base in fn.local_names
                    and base not in fn.param_names
                )
                if not local_only:
                    return name
                continue
            for cand in project.callgraph.candidates(name):
                if cand.key in sink_keys and (
                    cand.module == fn.module
                    or project.modgraph.imports_transitively(
                        fn.module, cand.module
                    )
                ):
                    return name
        return None

    # -- check 2: entropy sources ------------------------------------------
    def _check_nondet_sources(
        self, ctx: ModuleContext
    ) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = (
                Rule.dotted(node.func)
                if isinstance(node.func, ast.Attribute)
                else ""
            )
            if dotted in _NONDET_CALLS or dotted.startswith("secrets."):
                yield ctx.finding(
                    self, node,
                    f"{dotted}() draws process-unique entropy; replayed "
                    "paths must derive every value from explicit seeds",
                )

    # -- check 3: id()/hash() as keys --------------------------------------
    @staticmethod
    def _unstable_calls(expr: ast.expr) -> List[ast.Call]:
        """``id(...)`` / ``hash(...)`` builtin calls inside ``expr``."""
        return [
            node for node in ast.walk(expr)
            if isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("id", "hash")
        ]

    def _check_unstable_keys(
        self, fn: FunctionInfo
    ) -> Iterator[Finding]:
        name_is_keying = any(
            marker in fn.name.lower() for marker in _KEYING_MARKERS
        ) or "entropy" in fn.name.lower()
        for node in walk_shallow(fn.node):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if isinstance(target, ast.Subscript):
                        for call in self._unstable_calls(target.slice):
                            yield from self._key_finding(fn, call)
            elif isinstance(node, ast.Dict):
                for key in node.keys:
                    if key is None:
                        continue
                    for call in self._unstable_calls(key):
                        yield from self._key_finding(fn, call)
            elif isinstance(node, ast.Call):
                callee = _terminal_name(node.func).lower()
                if any(m in callee for m in _KEYING_MARKERS):
                    for arg in node.args:
                        for call in self._unstable_calls(arg):
                            yield from self._key_finding(fn, call)
            elif isinstance(node, ast.Return) and node.value is not None:
                if name_is_keying:
                    for call in self._unstable_calls(node.value):
                        yield from self._key_finding(fn, call)

    def _key_finding(
        self, fn: FunctionInfo, call: ast.Call
    ) -> Iterator[Finding]:
        func = call.func
        assert isinstance(func, ast.Name)
        yield fn.ctx.finding(
            self, call,
            f"builtin {func.id}() is process-unique (id) or hash-"
            "randomized (str hash) and must not derive keys; use a "
            "stable digest (e.g. zlib.crc32 over a canonical repr)",
        )


# ---------------------------------------------------------------------------
# R9 — cross-process race / pickle safety
# ---------------------------------------------------------------------------

#: Method calls that mutate their receiver in place.
_MUTATORS = frozenset({
    "append", "appendleft", "extend", "insert", "remove", "pop",
    "popleft", "popitem", "clear", "update", "add", "discard",
    "setdefault", "sort", "reverse", "write",
})

#: Receiver-name substrings marking an executor-like object, used to
#: treat ``.map`` as a submission (plain ``.map`` is too common).
_EXECUTOR_HINTS = ("executor", "pool", "runtime")


def _submit_args(call: ast.Call) -> List[ast.expr]:
    """Positional + keyword argument expressions of a submit call."""
    out = list(call.args)
    out.extend(kw.value for kw in call.keywords)
    return out


def _tracked_token(expr: ast.expr) -> Optional[str]:
    """A mutation-trackable spelling of an argument: a bare name
    (``chunk``) or a ``self`` attribute (``self.oracle``)."""
    if isinstance(expr, ast.Starred):
        expr = expr.value
    if isinstance(expr, ast.Name):
        return expr.id
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
    ):
        return f"self.{expr.attr}"
    return None


def _expr_token(expr: ast.AST) -> Optional[str]:
    """Token of an expression being mutated (mirror of above)."""
    if isinstance(expr, ast.Name):
        return expr.id
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
    ):
        return f"self.{expr.attr}"
    return None


@register
class SubmitSafetyRule(ProjectRule):
    """R9: objects handed to an executor must be picklable and must
    not be mutated after the submission point.

    ``OracleRuntime`` (and every raw executor) pickles the task and its
    arguments *eventually* — a process pool serialises on a worker
    thread, so a mutation racing the pickle is a nondeterministic
    payload, and an unpicklable callable (lambda, locally-defined
    function or class) fails only at run time, on the fault path the
    corpus never exercises.  Both are statically visible:

    * a ``lambda`` or locally-defined function/class passed to
      ``.submit(...)`` / executor ``.map(...)`` is flagged;
    * an argument submitted at line L and mutated later in the same
      function (mutating method call, subscript/attribute store,
      augmented assignment) is flagged — rebinding the name to a fresh
      object clears the taint.
    """

    name = "R9"
    title = "cross-process submission safety (pickling, post-submit mutation)"
    severity = Severity.ERROR

    def check_project(
        self, project: ProjectContext
    ) -> Iterator[Finding]:
        for fn in project.functions:
            yield from self._check_function(fn)

    # -- submission-site discovery -----------------------------------------
    @staticmethod
    def _is_submit(call: ast.Call) -> bool:
        func = call.func
        if not isinstance(func, ast.Attribute):
            return False
        if func.attr == "submit":
            return True
        if func.attr == "map":
            base = Rule.dotted(func.value) or (
                receiver_base(func.value) or ""
            )
            return any(
                hint in base.lower() for hint in _EXECUTOR_HINTS
            )
        return False

    def _check_function(self, fn: FunctionInfo) -> Iterator[Finding]:
        submits: List[Tuple[ast.Call, List[str]]] = []
        for node in walk_shallow(fn.node):
            if isinstance(node, ast.Call) and self._is_submit(node):
                tokens = []
                for arg in _submit_args(node):
                    yield from self._check_picklable(fn, node, arg)
                    token = _tracked_token(arg)
                    if token is not None:
                        tokens.append(token)
                submits.append((node, tokens))
        if submits:
            yield from self._check_post_submit(fn, submits)

    def _check_picklable(
        self, fn: FunctionInfo, call: ast.Call, arg: ast.expr
    ) -> Iterator[Finding]:
        if isinstance(arg, ast.Starred):
            arg = arg.value
        if isinstance(arg, ast.Lambda):
            yield fn.ctx.finding(
                self, arg,
                "lambda submitted to an executor is not picklable by a "
                "process pool; use a module-level function",
            )
        elif isinstance(arg, ast.Name) and arg.id in fn.local_defs:
            yield fn.ctx.finding(
                self, call,
                f"locally-defined {arg.id!r} submitted to an executor "
                "is not picklable by a process pool; define it at "
                "module level",
            )

    # -- post-submit mutation ----------------------------------------------
    def _check_post_submit(
        self,
        fn: FunctionInfo,
        submits: List[Tuple[ast.Call, List[str]]],
    ) -> Iterator[Finding]:
        statements = _statements_in_order(fn.node)
        # token -> line of the earliest live submission capturing it.
        captured: Dict[str, int] = {}
        submit_lines = {
            id(call): (call, tokens) for call, tokens in submits
        }
        for stmt in statements:
            # Activate captures whose submit call sits in this stmt.
            for node in ast.walk(stmt):
                entry = submit_lines.get(id(node))
                if entry is not None:
                    call, tokens = entry
                    for token in tokens:
                        captured.setdefault(token, call.lineno)
            if not captured:
                continue
            # Rebinding a plain name frees the captured object.
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    token = _expr_token(target)
                    if (
                        token is not None
                        and token in captured
                        and isinstance(target, ast.Name)
                        and stmt.lineno > captured[token]
                    ):
                        del captured[token]
            yield from self._mutations_in(fn, stmt, captured)

    def _mutations_in(
        self,
        fn: FunctionInfo,
        stmt: ast.stmt,
        captured: Dict[str, int],
    ) -> Iterator[Finding]:
        def hit(token: Optional[str], node: ast.AST) -> Iterator[Finding]:
            if token is None or token not in captured:
                return
            if getattr(node, "lineno", 0) <= captured[token]:
                return
            yield fn.ctx.finding(
                self, node,
                f"{token!r} was submitted to an executor at line "
                f"{captured[token]} and is mutated afterwards; the "
                "worker may pickle either state — copy before "
                "submitting or mutate a fresh object",
            )

        if isinstance(stmt, ast.AugAssign):
            target = stmt.target
            if isinstance(target, ast.Name):
                yield from hit(target.id, stmt)
            elif isinstance(target, (ast.Subscript, ast.Attribute)):
                yield from hit(_expr_token(_container_of(target)), stmt)
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, (ast.Subscript, ast.Attribute)):
                    yield from hit(
                        _expr_token(_container_of(target)), stmt
                    )
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, (ast.Subscript, ast.Attribute)):
                    yield from hit(
                        _expr_token(_container_of(target)), stmt
                    )
        elif isinstance(stmt, ast.Expr) and isinstance(
            stmt.value, ast.Call
        ):
            call = stmt.value
            func = call.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _MUTATORS
            ):
                yield from hit(_expr_token(func.value), call)


def _container_of(target: ast.expr) -> ast.expr:
    """``x[i]`` / ``x.attr`` -> ``x`` (the object actually mutated)."""
    assert isinstance(target, (ast.Subscript, ast.Attribute))
    return target.value


# ---------------------------------------------------------------------------
# R10 — recorder hot-path discipline
# ---------------------------------------------------------------------------

#: Methods of the Recorder protocol.
_REC_METHODS = frozenset({
    "advance", "span", "add_span", "event", "count", "gauge",
    "observe", "sample",
})


def _is_recorder_name(terminal: str) -> bool:
    return terminal in ("rec", "_rec", "recorder", "_recorder")


def _guards(test: ast.expr) -> Set[str]:
    """Dotted receivers proven live by an ``if`` test.

    Recognises ``X is not None``, plain truthiness ``X``, and either
    of those inside an ``and`` chain.
    """
    out: Set[str] = set()
    if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
        for value in test.values:
            out |= _guards(value)
        return out
    if (
        isinstance(test, ast.Compare)
        and len(test.ops) == 1
        and isinstance(test.ops[0], ast.IsNot)
        and isinstance(test.comparators[0], ast.Constant)
        and test.comparators[0].value is None
    ):
        dotted = Rule.dotted(test.left)
        if dotted:
            out.add(dotted)
    elif isinstance(test, (ast.Name, ast.Attribute)):
        dotted = Rule.dotted(test)
        if dotted:
            out.add(dotted)
    return out


@register
class RecorderDisciplineRule(ProjectRule):
    """R10: telemetry in step loops must follow the ``live()`` pattern.

    The zero-overhead telemetry story (gated ≤1.05× by e24) relies on
    two conventions at every instrumentation site:

    * a recorder held on an engine is normalised **once** via
      :func:`repro.telemetry.live` (``self._rec = live(recorder)``),
      never stored raw — a raw disabled recorder silently turns every
      hot-loop call into a live dispatch;
    * inside a loop, every call on a recorder-named receiver
      (``rec`` / ``_rec`` / ``recorder``) must sit under an ``if X is
      not None`` (or truthiness) guard of that same receiver.
    """

    name = "R10"
    title = "recorder hot-path discipline (live() + None-guard in loops)"
    severity = Severity.ERROR

    EXEMPT_PREFIXES = ("telemetry/",)

    def check_project(
        self, project: ProjectContext
    ) -> Iterator[Finding]:
        for fn in project.functions:
            if fn.module.startswith(self.EXEMPT_PREFIXES):
                continue
            yield from self._check_loop_guards(fn)
            yield from self._check_raw_store(fn)

    def _check_loop_guards(self, fn: FunctionInfo) -> Iterator[Finding]:
        chains = _loop_ancestry(fn.node)
        # ``assert rec is not None`` is the accepted narrowing idiom
        # when liveness is established through a derived flag (e.g.
        # ``time_chunks = rec is not None and ...``); the assert
        # blesses the name for calls after it.
        asserted: List[Tuple[str, int]] = []
        for node in walk_shallow(fn.node):
            if isinstance(node, ast.Assert):
                for dotted in _guards(node.test):
                    asserted.append((dotted, node.lineno))
        for node in walk_shallow(fn.node):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute)
                and func.attr in _REC_METHODS
            ):
                continue
            receiver = func.value
            terminal = (
                receiver.id if isinstance(receiver, ast.Name)
                else receiver.attr
                if isinstance(receiver, ast.Attribute)
                else ""
            )
            if not _is_recorder_name(terminal):
                continue
            chain = chains.get(id(node), [])
            in_loop = any(
                isinstance(a, (ast.For, ast.AsyncFor, ast.While))
                for a in chain
            )
            if not in_loop:
                continue
            dotted = Rule.dotted(receiver)
            guarded = any(
                isinstance(a, ast.If) and dotted in _guards(a.test)
                for a in chain
            ) or any(
                name == dotted and lineno <= node.lineno
                for name, lineno in asserted
            )
            if not guarded:
                yield fn.ctx.finding(
                    self, node,
                    f"recorder call {dotted}.{func.attr}() inside a "
                    "loop without an "
                    f"'if {dotted} is not None' guard; normalise with "
                    "telemetry.live() and guard the hot path",
                )

    def _check_raw_store(self, fn: FunctionInfo) -> Iterator[Finding]:
        if "recorder" not in fn.param_names:
            return
        for node in walk_shallow(fn.node):
            if not isinstance(node, ast.Assign):
                continue
            if not (
                isinstance(node.value, ast.Name)
                and node.value.id == "recorder"
            ):
                continue
            for target in node.targets:
                # Only the consuming object's own cache must be
                # normalised: a bare local or ``self.<attr>``.  A
                # store onto another object's declared slot
                # (``policy.recorder = recorder``) is a handoff; the
                # consumer normalises at bind time.
                if isinstance(target, ast.Name):
                    terminal = target.id
                elif (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    terminal = target.attr
                else:
                    continue
                if _is_recorder_name(terminal):
                    yield fn.ctx.finding(
                        self, node,
                        "recorder stored raw; normalise once with "
                        "'= live(recorder)' so disabled recorders cost "
                        "nothing on the hot path",
                    )


# ---------------------------------------------------------------------------
# R11 — blocking-call hygiene in serve paths
# ---------------------------------------------------------------------------

#: Dotted call prefixes that block on the OS or the network.
_BLOCKING_PREFIXES = ("subprocess.", "socket.", "urllib.")

#: Attribute calls that perform file I/O wherever they appear.
_FILE_IO_ATTRS = frozenset({
    "read_text", "write_text", "read_bytes", "write_bytes",
})


@register
class ServeBlockingRule(ProjectRule):
    """R11: request handling in ``repro.serve`` must never block.

    The serving path (`ShardedBatchService.serve` and everything it
    reaches inside ``serve/``) is called per batch under latency
    accounting; a ``time.sleep``, an unbounded ``Queue.get()``, file
    I/O or a subprocess call there stalls every request behind it.
    Blocking work belongs in the CLI driver, the runtimes (which own
    their retry backoff via injectable sleeps), or outside the request
    path entirely.
    """

    name = "R11"
    title = "no blocking calls in serve request paths"
    severity = Severity.ERROR

    SCOPE_PREFIX = "serve/"

    def check_project(
        self, project: ProjectContext
    ) -> Iterator[Finding]:
        roots = [
            fn for fn in project.functions_in(self.SCOPE_PREFIX)
            if fn.name == "serve" or fn.name.startswith("handle")
        ]
        if not roots:
            return
        reachable = project.callgraph.reachable(
            roots,
            within=lambda fn: fn.module.startswith(self.SCOPE_PREFIX),
        )
        for fn in reachable:
            yield from self._check_function(fn)

    def _check_function(self, fn: FunctionInfo) -> Iterator[Finding]:
        sleep_aliases = self._time_aliases(fn.ctx.tree)
        for node in walk_shallow(fn.node):
            if not isinstance(node, ast.Call):
                continue
            label = self._blocking_label(node, sleep_aliases)
            if label is not None:
                yield fn.ctx.finding(
                    self, node,
                    f"blocking call {label} inside the serve request "
                    f"path ({fn.qualname}); move it out of request "
                    "handling or make it bounded",
                )

    @staticmethod
    def _time_aliases(tree: ast.Module) -> Set[str]:
        aliases: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and (
                (node.module or "").split(".")[0] == "time"
            ):
                for alias in node.names:
                    if alias.name == "sleep":
                        aliases.add(alias.asname or alias.name)
        return aliases

    def _blocking_label(
        self, call: ast.Call, sleep_aliases: Set[str]
    ) -> Optional[str]:
        func = call.func
        if isinstance(func, ast.Name):
            if func.id == "open":
                return "open()"
            if func.id == "input":
                return "input()"
            if func.id in sleep_aliases:
                return f"{func.id}() (time.sleep)"
            return None
        if not isinstance(func, ast.Attribute):
            return None
        dotted = Rule.dotted(func)
        if dotted == "time.sleep":
            return "time.sleep()"
        if dotted.startswith(_BLOCKING_PREFIXES):
            return f"{dotted}()"
        if func.attr in _FILE_IO_ATTRS:
            return f".{func.attr}() file I/O"
        if func.attr == "get":
            base = (receiver_base(func.value) or "").lower()
            queueish = "queue" in base or base == "q"
            timed = any(kw.arg == "timeout" for kw in call.keywords)
            if queueish and not call.args and not timed:
                return f"{dotted or func.attr}() (unbounded Queue.get)"
        return None
