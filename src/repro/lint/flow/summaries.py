"""Per-function summaries: the unit the call graph is built from.

A :class:`FunctionInfo` captures, for one function / method / nested
def, everything the interprocedural rules need without re-walking the
whole module: the calls it makes (:class:`CallSite`), the
ordering-sensitive sink calls it contains, which names it binds
locally (parameters, assignments, nested defs), and whether it is a
generator.  Summaries are *shallow*: a nested def's statements belong
to the nested def's own summary, not to its parent's.

"Ordering-sensitive sink" means a call that appends/enqueues/sends
into state that outlives the function — frontier insertion, message
enqueue, executor submission.  A sink on a purely local variable is
not counted (building a local list in arbitrary order is harmless
until it escapes, which the ``yield``-in-loop check covers).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Set, Tuple, Union

from ..base import ModuleContext, Rule

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Call names that insert into an ordered, order-preserving container
#: or hand work to another execution context: list/deque append,
#: queue put, message send, executor submit.
ORDER_SINK_NAMES = frozenset({
    "append", "appendleft", "push", "put", "put_nowait", "enqueue",
    "send", "send_message", "submit", "emit", "publish", "extend",
})


@dataclass(frozen=True)
class CallSite:
    """One call expression inside a function body."""

    #: full dotted form when renderable (``self._pool.submit``), else
    #: the terminal name.
    dotted: str
    #: terminal callee name (``submit``); the call-graph link key.
    name: str
    lineno: int
    col: int


@dataclass(eq=False)
class FunctionInfo:
    """Summary of one function as the call graph sees it.

    ``eq=False`` keeps identity semantics: two same-named functions in
    different modules are distinct nodes.
    """

    ctx: ModuleContext
    qualname: str
    node: FunctionNode
    calls: List[CallSite] = field(default_factory=list)
    #: ordering-sensitive sink calls on non-local receivers.
    order_sinks: List[CallSite] = field(default_factory=list)
    #: names bound by nested ``def`` / ``class`` statements.
    local_defs: Set[str] = field(default_factory=set)
    #: parameter names.
    param_names: Set[str] = field(default_factory=set)
    #: names assigned anywhere in the body (loop targets included).
    local_names: Set[str] = field(default_factory=set)
    is_generator: bool = False

    @property
    def module(self) -> str:
        """Logical path of the defining module."""
        return self.ctx.logical_path

    @property
    def name(self) -> str:
        """Bare function name (last qualname segment)."""
        return self.qualname.rsplit(".", 1)[-1]

    @property
    def key(self) -> str:
        """Project-unique identifier, e.g. ``serve/service.py::C.m``."""
        return f"{self.module}::{self.qualname}"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FunctionInfo({self.key})"


def walk_shallow(node: ast.AST) -> Iterator[ast.AST]:
    """``ast.walk`` that does not descend into nested function/class
    definitions (their bodies belong to their own summaries)."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        yield child
        if not isinstance(
            child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            stack.extend(ast.iter_child_nodes(child))


def receiver_base(node: ast.AST) -> Optional[str]:
    """Leftmost name of a receiver chain: ``self.q[0].x`` -> ``self``.

    Returns ``None`` when the chain does not start at a plain name
    (e.g. a call result receiver).
    """
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def call_site(node: ast.Call) -> Optional[CallSite]:
    """Build a :class:`CallSite` for ``node`` (None for opaque callees)."""
    func = node.func
    if isinstance(func, ast.Name):
        return CallSite(func.id, func.id, node.lineno, node.col_offset)
    if isinstance(func, ast.Attribute):
        dotted = Rule.dotted(func) or func.attr
        return CallSite(dotted, func.attr, node.lineno, node.col_offset)
    return None


def _collect_assigned_names(node: FunctionNode) -> Set[str]:
    """Names bound by assignments/loops/withs in the shallow body."""
    bound: Set[str] = set()

    def targets(t: ast.AST) -> None:
        if isinstance(t, ast.Name):
            bound.add(t.id)
        elif isinstance(t, (ast.Tuple, ast.List)):
            for elt in t.elts:
                targets(elt)
        elif isinstance(t, ast.Starred):
            targets(t.value)

    for child in walk_shallow(node):
        if isinstance(child, ast.Assign):
            for t in child.targets:
                targets(t)
        elif isinstance(child, (ast.AnnAssign, ast.AugAssign)):
            targets(child.target)
        elif isinstance(child, (ast.For, ast.AsyncFor)):
            targets(child.target)
        elif isinstance(child, (ast.With, ast.AsyncWith)):
            for item in child.items:
                if item.optional_vars is not None:
                    targets(item.optional_vars)
        elif isinstance(child, ast.comprehension):
            targets(child.target)
        elif isinstance(child, ast.NamedExpr):
            targets(child.target)
    return bound


def _param_names(node: FunctionNode) -> Set[str]:
    args = node.args
    names = [a.arg for a in args.posonlyargs]
    names += [a.arg for a in args.args]
    names += [a.arg for a in args.kwonlyargs]
    if args.vararg is not None:
        names.append(args.vararg.arg)
    if args.kwarg is not None:
        names.append(args.kwarg.arg)
    return set(names)


def summarize_function(
    ctx: ModuleContext, qualname: str, node: FunctionNode
) -> FunctionInfo:
    """Build the summary for one function definition."""
    info = FunctionInfo(ctx=ctx, qualname=qualname, node=node)
    info.param_names = _param_names(node)
    info.local_names = _collect_assigned_names(node)
    for child in walk_shallow(node):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                              ast.ClassDef)):
            info.local_defs.add(child.name)
        elif isinstance(child, ast.Call):
            site = call_site(child)
            if site is None:
                continue
            info.calls.append(site)
            if site.name in ORDER_SINK_NAMES and isinstance(
                child.func, ast.Attribute
            ):
                base = receiver_base(child.func.value)
                # A sink on a purely function-local object does not
                # leak ordering; parameters and attributes do.
                local_only = (
                    base is not None
                    and base in info.local_names
                    and base not in info.param_names
                )
                if not local_only:
                    info.order_sinks.append(site)
        elif isinstance(child, (ast.Yield, ast.YieldFrom)):
            info.is_generator = True
    info.calls.sort(key=lambda s: (s.lineno, s.col))
    return info


def collect_functions(ctx: ModuleContext) -> List[FunctionInfo]:
    """All function summaries of one module, nested defs included.

    Qualified names join the enclosing class/function names with dots:
    ``Machine._work_phase``, ``outer.inner``.
    """
    out: List[FunctionInfo] = []

    def visit(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{child.name}"
                out.append(summarize_function(ctx, qual, child))
                visit(child, f"{qual}.")
            elif isinstance(child, ast.ClassDef):
                visit(child, f"{prefix}{child.name}.")
            else:
                visit(child, prefix)

    visit(ctx.tree, "")
    return out
