"""SARIF 2.1.0 export: the CI code-scanning interchange format.

:func:`sarif_report` renders a lint run as one SARIF ``run`` — tool
metadata (every registered rule, plus the R0 pseudo-rule), one
``result`` per finding with a physical location — and
:func:`validate_sarif` structurally checks a document against the
parts of the 2.1.0 schema the exporter exercises, mirroring the
``validate_chrome_trace`` precedent in :mod:`repro.telemetry`: CI can
assert validity without a network fetch of the schema, and the test
suite additionally cross-checks against the real schema when the
``jsonschema`` package is available.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Sequence

from ..base import all_rules
from ..findings import Finding, Severity

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://docs.oasis-open.org/sarif/sarif/v2.1.0/errata01/os/schemas/"
    "sarif-schema-2.1.0.json"
)

#: Descriptor for the infrastructure pseudo-rule (not in the registry).
_R0_DESCRIPTOR = {
    "id": "R0",
    "name": "infrastructure",
    "shortDescription": {
        "text": "unparsable file or malformed lint directive",
    },
    "defaultConfiguration": {"level": "error"},
}


def _level(severity: Severity) -> str:
    return "error" if severity is Severity.ERROR else "warning"


def _rule_descriptors() -> List[Dict[str, object]]:
    descriptors: List[Dict[str, object]] = [dict(_R0_DESCRIPTOR)]
    for cls in all_rules():
        descriptors.append({
            "id": cls.name,
            "name": cls.title or cls.name,
            "shortDescription": {"text": cls.title or cls.name},
            "defaultConfiguration": {"level": _level(cls.severity)},
        })
    return descriptors


def sarif_report(findings: Sequence[Finding]) -> Dict[str, object]:
    """Build the SARIF document for one lint run."""
    descriptors = _rule_descriptors()
    index = {
        str(desc["id"]): i for i, desc in enumerate(descriptors)
    }
    results: List[Dict[str, object]] = []
    for finding in findings:
        result: Dict[str, object] = {
            "ruleId": finding.rule,
            "level": _level(finding.severity),
            "message": {"text": finding.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path.replace("\\", "/"),
                        "uriBaseId": "%SRCROOT%",
                    },
                    "region": {
                        "startLine": max(finding.line, 1),
                        "startColumn": max(finding.col, 1),
                    },
                },
            }],
        }
        rule_index = index.get(finding.rule)
        if rule_index is not None:
            result["ruleIndex"] = rule_index
        results.append(result)
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro-lint",
                    "informationUri": (
                        "https://example.invalid/repro/docs/"
                        "static_analysis.md"
                    ),
                    "version": "1.0.0",
                    "rules": descriptors,
                },
            },
            "columnKind": "utf16CodeUnits",
            "results": results,
        }],
    }


def render_sarif(findings: Sequence[Finding]) -> str:
    """The SARIF document as pretty-printed JSON."""
    return json.dumps(sarif_report(findings), indent=2, sort_keys=True)


def validate_sarif(document: object) -> List[str]:
    """Structural 2.1.0 validation; returns a list of problems.

    Checks every constraint the exporter relies on: required
    top-level keys, the version literal, run/tool/driver shape, rule
    descriptors, and each result's ruleId/level/message/location
    shape with 1-based region coordinates.
    """
    problems: List[str] = []

    def need(cond: bool, message: str) -> bool:
        if not cond:
            problems.append(message)
        return cond

    if not need(isinstance(document, dict), "document must be an object"):
        return problems
    assert isinstance(document, dict)
    need(
        document.get("version") == SARIF_VERSION,
        f"version must be the literal {SARIF_VERSION!r}",
    )
    runs = document.get("runs")
    if not need(
        isinstance(runs, list) and len(runs) >= 1,
        "runs must be a non-empty array",
    ):
        return problems
    assert isinstance(runs, list)
    for r, run in enumerate(runs):
        where = f"runs[{r}]"
        if not need(isinstance(run, dict), f"{where} must be an object"):
            continue
        assert isinstance(run, dict)
        driver = run.get("tool", {})
        driver = (
            driver.get("driver", {}) if isinstance(driver, dict) else {}
        )
        if need(
            isinstance(driver, dict) and bool(driver),
            f"{where}.tool.driver is required",
        ):
            assert isinstance(driver, dict)
            need(
                isinstance(driver.get("name"), str)
                and bool(driver.get("name")),
                f"{where}.tool.driver.name must be a non-empty string",
            )
            rules = driver.get("rules", [])
            rule_ids: List[str] = []
            if need(
                isinstance(rules, list),
                f"{where}.tool.driver.rules must be an array",
            ):
                assert isinstance(rules, list)
                for d, desc in enumerate(rules):
                    dw = f"{where}.tool.driver.rules[{d}]"
                    if need(
                        isinstance(desc, dict)
                        and isinstance(desc.get("id"), str),
                        f"{dw} must have a string id",
                    ):
                        assert isinstance(desc, dict)
                        rule_ids.append(str(desc["id"]))
        results = run.get("results", [])
        if not need(
            isinstance(results, list),
            f"{where}.results must be an array",
        ):
            continue
        assert isinstance(results, list)
        for i, result in enumerate(results):
            rw = f"{where}.results[{i}]"
            if not need(
                isinstance(result, dict), f"{rw} must be an object"
            ):
                continue
            assert isinstance(result, dict)
            message = result.get("message")
            need(
                isinstance(message, dict)
                and isinstance(message.get("text"), str),
                f"{rw}.message.text is required",
            )
            level = result.get("level")
            need(
                level in ("none", "note", "warning", "error"),
                f"{rw}.level must be a valid SARIF level",
            )
            rule_index = result.get("ruleIndex")
            if rule_index is not None:
                need(
                    isinstance(rule_index, int)
                    and 0 <= rule_index < len(rule_ids)
                    and rule_ids[rule_index] == result.get("ruleId"),
                    f"{rw}.ruleIndex must point at its ruleId",
                )
            for j, loc in enumerate(result.get("locations", [])):
                lw = f"{rw}.locations[{j}]"
                if not need(
                    isinstance(loc, dict), f"{lw} must be an object"
                ):
                    continue
                assert isinstance(loc, dict)
                phys = loc.get("physicalLocation")
                if not need(
                    isinstance(phys, dict),
                    f"{lw}.physicalLocation is required",
                ):
                    continue
                assert isinstance(phys, dict)
                artifact = phys.get("artifactLocation", {})
                need(
                    isinstance(artifact, dict)
                    and isinstance(artifact.get("uri"), str),
                    f"{lw}.physicalLocation.artifactLocation.uri "
                    "must be a string",
                )
                region = phys.get("region", {})
                if need(
                    isinstance(region, dict),
                    f"{lw}.physicalLocation.region must be an object",
                ):
                    assert isinstance(region, dict)
                    for key in ("startLine", "startColumn"):
                        value = region.get(key)
                        if value is not None:
                            need(
                                isinstance(value, int) and value >= 1,
                                f"{lw}.physicalLocation.region.{key} "
                                "must be a positive integer",
                            )
    return problems
