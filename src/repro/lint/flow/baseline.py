"""Findings baseline: incremental adoption of new rules.

A baseline is a committed JSON snapshot of known findings.  Linting
with ``--baseline FILE`` subtracts them: only *new* findings fail the
gate, so a rule can land before every historical violation is fixed
(the pattern used for ``tests/`` and ``benchmarks/``).

Fingerprints are ``(rule, path, message)`` — deliberately without the
line number, so unrelated edits that shift a known finding up or down
do not break the gate.  Duplicate fingerprints are counted: a file
with three identical findings baselines three, and introducing a
fourth fails.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Tuple

from ..findings import Finding

#: Matching key for one finding.
Fingerprint = Tuple[str, str, str]

_VERSION = 1


def fingerprint(finding: Finding) -> Fingerprint:
    return (finding.rule, finding.path, finding.message)


def write_baseline(findings: Iterable[Finding], path: Path) -> int:
    """Write the baseline snapshot; returns the entry count."""
    entries = [
        {"rule": f.rule, "path": f.path, "message": f.message}
        for f in findings
    ]
    document = {
        "version": _VERSION,
        "tool": "repro-lint",
        "findings": entries,
    }
    path.write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return len(entries)


def load_baseline(path: Path) -> Dict[Fingerprint, int]:
    """Load a baseline into fingerprint -> allowed-count.

    Raises ``ValueError`` on a malformed or wrong-version document so
    a corrupted baseline can never silently allow everything.
    """
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ValueError(f"baseline {path}: invalid JSON: {exc}") from exc
    if not isinstance(document, dict) or document.get(
        "version"
    ) != _VERSION:
        raise ValueError(
            f"baseline {path}: expected a version-{_VERSION} document"
        )
    entries = document.get("findings")
    if not isinstance(entries, list):
        raise ValueError(f"baseline {path}: missing findings list")
    counts: Dict[Fingerprint, int] = {}
    for entry in entries:
        if not isinstance(entry, dict):
            raise ValueError(f"baseline {path}: malformed entry {entry!r}")
        try:
            key = (
                str(entry["rule"]),
                str(entry["path"]),
                str(entry["message"]),
            )
        except KeyError as exc:
            raise ValueError(
                f"baseline {path}: entry missing {exc.args[0]!r}"
            ) from exc
        counts[key] = counts.get(key, 0) + 1
    return counts


def subtract_baseline(
    findings: Iterable[Finding],
    baseline: Dict[Fingerprint, int],
) -> Tuple[List[Finding], int]:
    """Split findings into (new, suppressed-count).

    Each baseline entry absorbs at most its recorded count of matching
    findings, in report order.
    """
    remaining = dict(baseline)
    new: List[Finding] = []
    suppressed = 0
    for finding in findings:
        key = fingerprint(finding)
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            suppressed += 1
        else:
            new.append(finding)
    return new, suppressed
