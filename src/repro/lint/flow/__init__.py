"""Project-wide dataflow analysis for the lint pass.

``repro.lint.flow`` grows the per-file AST rules (R1–R7) into an
interprocedural analysis.  It builds, over the whole linted tree:

* a **module import graph** (:mod:`.modgraph`) — which linted module
  imports which, resolved for both ``repro.``-absolute and relative
  imports;
* **per-function summaries** (:mod:`.summaries`) — for every function,
  method, and nested def: the calls it makes, the ordering-sensitive
  sinks it feeds, the names it binds locally;
* a **call graph** (:mod:`.callgraph`) — summaries linked by callee
  name, with resolution restricted to imported modules, plus the
  fixpoint machinery that propagates properties (``feeds an ordering
  sink``) through arbitrarily deep call chains and cycles;
* the **interprocedural rules** R8–R11 (:mod:`.rules`), which run on a
  :class:`~repro.lint.flow.project.ProjectContext` assembled from all
  of the above;
* the **adoption tooling**: a findings :mod:`.baseline` for
  incremental rollout and a SARIF 2.1.0 exporter (:mod:`.sarif`) for
  the CI code-scanning gate.
"""

from __future__ import annotations

from .baseline import load_baseline, subtract_baseline, write_baseline
from .callgraph import CallGraph
from .modgraph import ModuleGraph
from .project import ProjectContext, build_project
from .sarif import render_sarif, sarif_report, validate_sarif
from .summaries import CallSite, FunctionInfo, collect_functions

__all__ = [
    "CallGraph",
    "CallSite",
    "FunctionInfo",
    "ModuleGraph",
    "ProjectContext",
    "build_project",
    "collect_functions",
    "load_baseline",
    "render_sarif",
    "sarif_report",
    "subtract_baseline",
    "validate_sarif",
    "write_baseline",
]
