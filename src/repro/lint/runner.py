"""File discovery, parsing, rule execution, suppression filtering.

The runner owns everything rule-agnostic: walking the target paths,
computing each file's *logical path* (its location relative to the
package root, which is what scope checks use), parsing, building the
suppression table, and discovering the ``MsgKind`` member list that R3
checks coverage against.

Infrastructure problems — syntax errors in a linted file, malformed
suppression comments — are reported under the pseudo-rule ``R0`` and
can never be suppressed.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple

from .base import LintConfig, ModuleContext, Rule, all_rules, get_rule
from .findings import Finding, Severity, sort_findings
from .suppress import parse_suppressions

#: Fallback MsgKind member list, used only when the linted tree does
#: not itself define the enum and the installed package is unavailable.
_MSGKIND_FALLBACK = (
    "S_SOLVE", "P_SOLVE", "P_SOLVE2", "P_SOLVE3", "VAL",
    "ACK", "HEARTBEAT",
)


def iter_python_files(paths: Iterable[Path]) -> List[Tuple[Path, Path]]:
    """Expand ``paths`` to ``(file, supplied_root)`` pairs, sorted."""
    out: List[Tuple[Path, Path]] = []
    for path in paths:
        if path.is_dir():
            out.extend(
                (file, path) for file in sorted(path.rglob("*.py"))
            )
        else:
            # For a bare file, keep its immediate directory in the
            # logical path so scope checks (core/, simulator/) hold.
            out.append((path, path.parent.parent))
    return out


def logical_path(file: Path, root: Path) -> str:
    """Path of ``file`` relative to the package root, posix-style.

    If the file sits inside a directory named ``repro`` (the installed
    or in-tree package), the part after the innermost such directory
    wins — so ``src/repro/core/x.py`` is ``core/x.py`` no matter which
    ancestor was passed on the command line.  Otherwise the supplied
    root is used, which is what fixture trees in the test suite rely on.
    """
    resolved = file.resolve()
    parts = resolved.parts
    if "repro" in parts[:-1]:
        idx = len(parts) - 1 - parts[::-1].index("repro")
        sub = parts[idx + 1:]
        if sub:
            return "/".join(sub)
    try:
        return resolved.relative_to(root.resolve()).as_posix()
    except ValueError:
        return file.name


def _discover_msgkind(trees: Sequence[ast.Module]) -> Tuple[str, ...]:
    """Member names of a ``class MsgKind(...)`` found in the linted set."""
    for tree in trees:
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef) and node.name == "MsgKind":
                members = [
                    target.id
                    for stmt in node.body
                    if isinstance(stmt, ast.Assign)
                    for target in stmt.targets
                    if isinstance(target, ast.Name)
                    and not target.id.startswith("_")
                ]
                if members:
                    return tuple(members)
    try:
        from ..simulator.messages import MsgKind
        return tuple(member.name for member in MsgKind)
    except Exception:  # pragma: no cover - import cycle / partial tree
        return _MSGKIND_FALLBACK


def _display_path(file: Path) -> str:
    """Path as printed in findings: relative to cwd when possible."""
    try:
        return file.resolve().relative_to(Path.cwd()).as_posix()
    except ValueError:
        return file.as_posix()


def resolve_rules(names: Optional[Sequence[str]]) -> List[Rule]:
    """Instantiate the requested rules (all registered rules if None)."""
    if names is None:
        return [cls() for cls in all_rules()]
    return [get_rule(name)() for name in names]


def lint_paths(
    paths: Sequence[Path],
    rule_names: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Lint every ``.py`` file under ``paths``; return sorted findings."""
    rules = resolve_rules(rule_names)
    files = iter_python_files([Path(p) for p in paths])
    parsed: List[Tuple[Path, str, str, ast.Module]] = []
    findings: List[Finding] = []
    for file, root in files:
        source = file.read_text(encoding="utf-8")
        display = _display_path(file)
        try:
            tree = ast.parse(source, filename=str(file))
        except SyntaxError as exc:
            findings.append(Finding(
                rule="R0",
                severity=Severity.ERROR,
                path=display,
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                message=f"syntax error: {exc.msg}",
            ))
            continue
        parsed.append((file, display, logical_path(file, root), tree))

    config = LintConfig(
        msgkind_members=_discover_msgkind([tree for *_, tree in parsed]),
    )
    for file, display, logical, tree in parsed:
        source = file.read_text(encoding="utf-8")
        findings.extend(
            _lint_module(display, logical, tree, source, rules, config)
        )
    # A path supplied twice (or once as a file and once via its
    # directory) must not double-report.
    return sort_findings(dict.fromkeys(findings))


def lint_source(
    source: str,
    logical: str = "module.py",
    rule_names: Optional[Sequence[str]] = None,
    config: Optional[LintConfig] = None,
) -> List[Finding]:
    """Lint one in-memory module — the test suite's workhorse."""
    rules = resolve_rules(rule_names)
    tree = ast.parse(source)
    if config is None:
        config = LintConfig(msgkind_members=_discover_msgkind([tree]))
    return sort_findings(
        _lint_module(logical, logical, tree, source, rules, config)
    )


def _lint_module(
    display: str,
    logical: str,
    tree: ast.Module,
    source: str,
    rules: Sequence[Rule],
    config: LintConfig,
) -> List[Finding]:
    table = parse_suppressions(source)
    ctx = ModuleContext(
        path=display, logical_path=logical, tree=tree, source=source,
        config=config,
    )
    out: List[Finding] = []
    for lineno, text in table.malformed:
        out.append(Finding(
            rule="R0",
            severity=Severity.ERROR,
            path=display,
            line=lineno,
            col=1,
            message=f"malformed lint suppression comment: {text!r}",
        ))
    for rule in rules:
        for finding in rule.check(ctx):
            if not table.is_suppressed(finding.rule, finding.line):
                out.append(finding)
    return out
