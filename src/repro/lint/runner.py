"""File discovery, parsing, rule execution, suppression filtering.

The runner owns everything rule-agnostic: walking the target paths,
computing each file's *logical path* (its location relative to the
package root, which is what scope checks use), parsing, building the
suppression table, discovering the ``MsgKind`` member list that R3
checks coverage against, and assembling the project-wide context
(import graph, call graph, function summaries) that the
interprocedural rules R8–R11 run on.

Infrastructure problems — syntax errors or undecodable bytes in a
linted file, malformed suppression comments — are reported under the
pseudo-rule ``R0`` and can never be suppressed.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .base import (
    LintConfig,
    ModuleContext,
    ProjectRule,
    Rule,
    all_rules,
    get_rule,
)
from .findings import Finding, Severity, sort_findings
from .suppress import SuppressionTable, parse_suppressions

#: Fallback MsgKind member list, used only when the linted tree does
#: not itself define the enum and the installed package is unavailable.
_MSGKIND_FALLBACK = (
    "S_SOLVE", "P_SOLVE", "P_SOLVE2", "P_SOLVE3", "VAL",
    "ACK", "HEARTBEAT",
)


def iter_python_files(paths: Iterable[Path]) -> List[Tuple[Path, Path]]:
    """Expand ``paths`` to ``(file, supplied_root)`` pairs, sorted."""
    out: List[Tuple[Path, Path]] = []
    for path in paths:
        if path.is_dir():
            out.extend(
                (file, path) for file in sorted(path.rglob("*.py"))
            )
        else:
            # For a bare file, keep its immediate directory in the
            # logical path so scope checks (core/, simulator/) hold.
            out.append((path, path.parent.parent))
    return out


def logical_path(file: Path, root: Path) -> str:
    """Path of ``file`` relative to the package root, posix-style.

    If the file sits inside a directory named ``repro`` (the installed
    or in-tree package), the part after the innermost such directory
    wins — so ``src/repro/core/x.py`` is ``core/x.py`` no matter which
    ancestor was passed on the command line.  Otherwise the supplied
    root is used, which is what fixture trees in the test suite rely on.
    """
    resolved = file.resolve()
    parts = resolved.parts
    if "repro" in parts[:-1]:
        idx = len(parts) - 1 - parts[::-1].index("repro")
        sub = parts[idx + 1:]
        if sub:
            return "/".join(sub)
    try:
        return resolved.relative_to(root.resolve()).as_posix()
    except ValueError:
        return file.name


def _discover_msgkind(trees: Sequence[ast.Module]) -> Tuple[str, ...]:
    """Member names of a ``class MsgKind(...)`` found in the linted set."""
    for tree in trees:
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef) and node.name == "MsgKind":
                members = [
                    target.id
                    for stmt in node.body
                    if isinstance(stmt, ast.Assign)
                    for target in stmt.targets
                    if isinstance(target, ast.Name)
                    and not target.id.startswith("_")
                ]
                if members:
                    return tuple(members)
    try:
        from ..simulator.messages import MsgKind
        return tuple(member.name for member in MsgKind)
    except Exception:  # pragma: no cover - import cycle / partial tree
        return _MSGKIND_FALLBACK


def _display_path(file: Path) -> str:
    """Path as printed in findings: relative to cwd when possible."""
    try:
        return file.resolve().relative_to(Path.cwd()).as_posix()
    except ValueError:
        return file.as_posix()


def resolve_rules(names: Optional[Sequence[str]]) -> List[Rule]:
    """Instantiate the requested rules (all registered rules if None)."""
    if names is None:
        return [cls() for cls in all_rules()]
    return [get_rule(name)() for name in names]


def _read_source(file: Path, display: str) -> Tuple[str, Optional[Finding]]:
    """Decode one file; an R0 finding (not an exception) on bad bytes."""
    try:
        return file.read_text(encoding="utf-8"), None
    except UnicodeDecodeError as exc:
        return "", Finding(
            rule="R0",
            severity=Severity.ERROR,
            path=display,
            line=1,
            col=1,
            message=(
                f"file is not valid UTF-8 ({exc.reason} at byte "
                f"{exc.start}); lint cannot parse it"
            ),
        )
    except OSError as exc:
        return "", Finding(
            rule="R0",
            severity=Severity.ERROR,
            path=display,
            line=1,
            col=1,
            message=f"file is unreadable: {exc}",
        )


def lint_paths(
    paths: Sequence[Path],
    rule_names: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Lint every ``.py`` file under ``paths``; return sorted findings."""
    rules = resolve_rules(rule_names)
    files = iter_python_files([Path(p) for p in paths])
    parsed: List[Tuple[str, str, ast.Module, str]] = []
    findings: List[Finding] = []
    for file, root in files:
        display = _display_path(file)
        source, problem = _read_source(file, display)
        if problem is not None:
            findings.append(problem)
            continue
        try:
            tree = ast.parse(source, filename=str(file))
        except (SyntaxError, ValueError) as exc:
            lineno = getattr(exc, "lineno", None) or 1
            offset = getattr(exc, "offset", None) or 0
            message = getattr(exc, "msg", None) or str(exc)
            findings.append(Finding(
                rule="R0",
                severity=Severity.ERROR,
                path=display,
                line=lineno,
                col=offset + 1,
                message=f"syntax error: {message}",
            ))
            continue
        parsed.append((display, logical_path(file, root), tree, source))

    config = LintConfig(
        msgkind_members=_discover_msgkind(
            [tree for _, _, tree, _ in parsed]
        ),
    )
    contexts: List[ModuleContext] = []
    tables: Dict[str, SuppressionTable] = {}
    for display, logical, tree, source in parsed:
        ctx = ModuleContext(
            path=display, logical_path=logical, tree=tree,
            source=source, config=config,
        )
        contexts.append(ctx)
        tables[display] = parse_suppressions(source)

    module_rules = [r for r in rules if not isinstance(r, ProjectRule)]
    project_rules = [r for r in rules if isinstance(r, ProjectRule)]
    for ctx in contexts:
        findings.extend(
            _lint_module(ctx, tables[ctx.path], module_rules)
        )
    if project_rules:
        findings.extend(
            _lint_project(contexts, tables, project_rules)
        )
    # A path supplied twice (or once as a file and once via its
    # directory) must not double-report.
    return sort_findings(dict.fromkeys(findings))


def lint_source(
    source: str,
    logical: str = "module.py",
    rule_names: Optional[Sequence[str]] = None,
    config: Optional[LintConfig] = None,
) -> List[Finding]:
    """Lint one in-memory module — the test suite's workhorse.

    Project-wide rules run over a single-module project, so their
    intraprocedural checks (and same-module call chains) are testable
    without fixture trees on disk.
    """
    rules = resolve_rules(rule_names)
    tree = ast.parse(source)
    if config is None:
        config = LintConfig(msgkind_members=_discover_msgkind([tree]))
    ctx = ModuleContext(
        path=logical, logical_path=logical, tree=tree, source=source,
        config=config,
    )
    table = parse_suppressions(source)
    module_rules = [r for r in rules if not isinstance(r, ProjectRule)]
    project_rules = [r for r in rules if isinstance(r, ProjectRule)]
    out = _lint_module(ctx, table, module_rules)
    if project_rules:
        out.extend(
            _lint_project([ctx], {ctx.path: table}, project_rules)
        )
    return sort_findings(out)


def _lint_module(
    ctx: ModuleContext,
    table: SuppressionTable,
    rules: Sequence[Rule],
) -> List[Finding]:
    out: List[Finding] = []
    for lineno, text in table.malformed:
        out.append(Finding(
            rule="R0",
            severity=Severity.ERROR,
            path=ctx.path,
            line=lineno,
            col=1,
            message=f"malformed lint suppression comment: {text!r}",
        ))
    for rule in rules:
        for finding in rule.check(ctx):
            if not table.is_suppressed(finding.rule, finding.line):
                out.append(finding)
    return out


def _lint_project(
    contexts: Sequence[ModuleContext],
    tables: Dict[str, SuppressionTable],
    rules: Sequence[ProjectRule],
) -> List[Finding]:
    """Run the interprocedural rules once over the whole linted set."""
    from .flow.project import build_project

    project = build_project(contexts)
    out: List[Finding] = []
    for rule in rules:
        for finding in rule.check_project(project):
            table = tables.get(finding.path)
            if table is not None and table.is_suppressed(
                finding.rule, finding.line
            ):
                continue
            out.append(finding)
    return out
