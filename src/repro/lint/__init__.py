"""Static analysis enforcing the reproduction's model invariants.

The per-file rules (R1–R7 and R12, see ``docs/static_analysis.md``)
mechanically check the conventions the paper's theorems rely on: all
work is charged through
:class:`~repro.models.accounting.ExecutionTrace`, all randomness is
explicitly seeded, the Section 7 simulator dispatches on every message
kind, message payloads are immutable, the public API surface stays
truthful, no exception is silently swallowed, and the columnar arena
hot paths stay vectorised (no per-node Python loops).

The project-wide rules (R8–R11, built on the :mod:`repro.lint.flow`
import/call-graph framework) defend the byte-identical-replay contract
interprocedurally: unordered data and unstable keys must not reach
ordering-sensitive sinks, executor submissions must be picklable and
race-free, telemetry in step loops must follow the ``live()`` pattern,
and serve request paths must never block.

Run it as ``python -m repro lint [paths]`` or programmatically::

    from repro.lint import lint_paths
    findings = lint_paths(["src/repro"])
"""

from .base import (
    LintConfig,
    ModuleContext,
    ProjectRule,
    Rule,
    all_rules,
    get_rule,
    register,
)
from .findings import Finding, Severity, render_json, render_text
from .runner import lint_paths, lint_source
from .suppress import SuppressionTable, parse_suppressions
from . import rules  # noqa: F401  (registers R1-R7, R12)
from .flow import rules as flow_rules  # noqa: F401  (registers R8-R11)

__all__ = [
    "Finding",
    "Severity",
    "LintConfig",
    "ModuleContext",
    "ProjectRule",
    "Rule",
    "SuppressionTable",
    "all_rules",
    "flow_rules",
    "get_rule",
    "register",
    "lint_paths",
    "lint_source",
    "parse_suppressions",
    "render_json",
    "render_text",
    "rules",
]
