"""Static analysis enforcing the reproduction's model invariants.

The rules (R1–R7, see ``docs/static_analysis.md``) mechanically check
the conventions the paper's theorems rely on: all work is charged
through :class:`~repro.models.accounting.ExecutionTrace`, all
randomness is explicitly seeded, the Section 7 simulator dispatches on
every message kind, message payloads are immutable, the public API
surface stays truthful, and no exception is silently swallowed.

Run it as ``python -m repro lint [paths]`` or programmatically::

    from repro.lint import lint_paths
    findings = lint_paths(["src/repro"])
"""

from .base import (
    LintConfig,
    ModuleContext,
    Rule,
    all_rules,
    get_rule,
    register,
)
from .findings import Finding, Severity, render_json, render_text
from .runner import lint_paths, lint_source
from .suppress import SuppressionTable, parse_suppressions
from . import rules  # noqa: F401  (importing registers R1-R7)

__all__ = [
    "Finding",
    "Severity",
    "LintConfig",
    "ModuleContext",
    "Rule",
    "SuppressionTable",
    "all_rules",
    "get_rule",
    "register",
    "lint_paths",
    "lint_source",
    "parse_suppressions",
    "render_json",
    "render_text",
    "rules",
]
