"""Rule interface, per-file context, and the rule registry.

A rule is a class with a ``name`` (``"R1"``...), a human ``title``, a
:class:`~repro.lint.findings.Severity`, and a ``check`` method that
yields findings for one parsed module.  Rules register themselves with
the :func:`register` decorator; the runner instantiates every
registered rule once per run.

Rules never see raw file paths for scoping decisions — they see the
*logical path*, the path relative to the linted package root (e.g.
``core/alphabeta/engine.py``).  That keeps scope checks identical for
the real tree and for test fixture trees laid out the same way.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterator, List, Tuple, Type

from .findings import Finding, Severity

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .flow.project import ProjectContext


@dataclass
class LintConfig:
    """Run-wide knobs shared by all rules.

    Attributes
    ----------
    msgkind_members:
        The member names of :class:`repro.simulator.messages.MsgKind`
        that an exhaustive dispatch must cover.  The runner fills this
        from the linted tree itself when it contains the enum (so the
        rule can never drift from the code); otherwise it falls back to
        the installed package's enum.
    """

    msgkind_members: tuple = ()


@dataclass
class ModuleContext:
    """Everything a rule may inspect about one file."""

    path: str  # path as reported in findings (relative to cwd if possible)
    logical_path: str  # posix path relative to the package root
    tree: ast.Module
    source: str
    config: LintConfig = field(default_factory=LintConfig)

    def finding(
        self,
        rule: "Rule",
        node: ast.AST,
        message: str,
    ) -> Finding:
        """Build a finding anchored at ``node``'s source position."""
        return Finding(
            rule=rule.name,
            severity=rule.severity,
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


class Rule:
    """Base class for all lint rules."""

    name: str = "R?"
    title: str = ""
    severity: Severity = Severity.ERROR

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Yield findings for one module.  Override in subclasses."""
        raise NotImplementedError
        yield  # pragma: no cover - makes this a generator for type checkers

    # -- shared AST helpers -------------------------------------------------
    @staticmethod
    def dotted(node: ast.AST) -> str:
        """Render ``a.b.c`` attribute chains; '' for anything else."""
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if isinstance(node, ast.Name):
            parts.append(node.id)
            return ".".join(reversed(parts))
        return ""

    @staticmethod
    def enclosing_functions(tree: ast.Module) -> Dict[int, str]:
        """Map every statement line to its innermost enclosing def name."""
        owner: Dict[int, str] = {}

        def visit(node: ast.AST, current: str) -> None:
            for child in ast.iter_child_nodes(node):
                name = current
                if isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    name = child.name
                if hasattr(child, "lineno"):
                    owner.setdefault(child.lineno, name)
                visit(child, name)

        visit(tree, "")
        return owner


class ProjectRule(Rule):
    """Base class for project-wide (interprocedural) rules.

    A :class:`ProjectRule` sees the whole linted tree at once through a
    :class:`~repro.lint.flow.project.ProjectContext` — every parsed
    module plus the import graph, the call graph and per-function
    summaries built by ``repro.lint.flow``.  Its per-module ``check``
    is a no-op; the runner calls :meth:`check_project` exactly once per
    run, after all modules have been parsed.
    """

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        return iter(())

    def check_project(
        self, project: "ProjectContext"
    ) -> Iterator[Finding]:
        """Yield findings for the whole linted tree.  Override."""
        raise NotImplementedError
        yield  # pragma: no cover - generator for type checkers


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: add a rule to the global registry."""
    if cls.name in _REGISTRY:
        raise ValueError(f"duplicate rule name {cls.name!r}")
    _REGISTRY[cls.name] = cls
    return cls


def _natural(name: str) -> Tuple[int, str]:
    """Sort key putting R2 before R10 (length, then lexicographic)."""
    return (len(name), name)


def all_rules() -> List[Type[Rule]]:
    """Registered rule classes, in natural name order (R1..R12)."""
    return [_REGISTRY[name] for name in sorted(_REGISTRY, key=_natural)]


def get_rule(name: str) -> Type[Rule]:
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown rule {name!r} (known: {known})") from None
