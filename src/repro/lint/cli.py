"""The ``repro lint`` subcommand.

Exit status: 0 when every linted file is clean, 1 when any finding is
reported (suppressed findings do not count), 2 on usage errors.
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import Optional, Sequence

from .base import all_rules
from .findings import render_json, render_text
from .runner import lint_paths


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options to an (sub)parser."""
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--rules",
        help="comma-separated subset of rules to run (e.g. R2,R3)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the registered rules and exit",
    )


def run_lint(args: argparse.Namespace) -> int:
    """Execute the lint subcommand; returns the process exit status."""
    if args.list_rules:
        for cls in all_rules():
            print(f"{cls.name}  [{cls.severity}]  {cls.title}")
        return 0
    rule_names: Optional[Sequence[str]] = None
    if args.rules:
        rule_names = [tok.strip() for tok in args.rules.split(",") if
                      tok.strip()]
    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        for path in missing:
            print(f"lint: no such path: {path}")
        return 2
    try:
        findings = lint_paths(paths, rule_names)
    except KeyError as exc:
        print(f"lint: {exc.args[0]}")
        return 2
    if args.format == "json":
        print(render_json(findings))
    else:
        print(render_text(findings))
    return 1 if findings else 0
