"""The ``repro lint`` subcommand.

Exit status: 0 when every linted file is clean (or every finding is
absorbed by the ``--baseline`` snapshot), 1 when any new finding is
reported, 2 on usage errors (unknown rule, missing path, unreadable
baseline).

``--write-baseline FILE`` records the current findings as the
snapshot and exits 0 — the adoption path for linting a tree that is
not yet clean.  ``--format=sarif`` emits a SARIF 2.1.0 document for
CI code-scanning upload; with a baseline, only new findings appear
in it.
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import Optional, Sequence

from .base import all_rules
from .findings import render_json, render_text
from .runner import lint_paths


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options to an (sub)parser."""
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--rules",
        help="comma-separated subset of rules to run (e.g. R2,R3)",
    )
    parser.add_argument(
        "--baseline", metavar="FILE",
        help="subtract the findings recorded in this snapshot; only "
             "new findings fail the run",
    )
    parser.add_argument(
        "--write-baseline", metavar="FILE",
        help="record the current findings as the baseline snapshot "
             "and exit 0",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the registered rules and exit",
    )


def run_lint(args: argparse.Namespace) -> int:
    """Execute the lint subcommand; returns the process exit status."""
    if args.list_rules:
        for cls in all_rules():
            print(f"{cls.name}  [{cls.severity}]  {cls.title}")
        return 0
    rule_names: Optional[Sequence[str]] = None
    if args.rules:
        rule_names = [tok.strip() for tok in args.rules.split(",") if
                      tok.strip()]
    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        for path in missing:
            print(f"lint: no such path: {path}")
        return 2
    try:
        findings = lint_paths(paths, rule_names)
    except KeyError as exc:
        print(f"lint: {exc.args[0]}")
        return 2

    if args.write_baseline:
        from .flow.baseline import write_baseline

        count = write_baseline(findings, Path(args.write_baseline))
        print(
            f"lint: wrote baseline with {count} finding(s) to "
            f"{args.write_baseline}"
        )
        return 0

    suppressed = 0
    if args.baseline:
        from .flow.baseline import load_baseline, subtract_baseline

        try:
            baseline = load_baseline(Path(args.baseline))
        except (OSError, ValueError) as exc:
            print(f"lint: {exc}")
            return 2
        findings, suppressed = subtract_baseline(findings, baseline)

    if args.format == "sarif":
        from .flow.sarif import render_sarif

        print(render_sarif(findings))
    elif args.format == "json":
        print(render_json(findings))
    else:
        print(render_text(findings))
        if suppressed:
            print(f"({suppressed} finding(s) matched the baseline)")
    return 1 if findings else 0
