"""Deterministic tracing + metrics for every engine in the repo.

Logical-clock spans, counters/gauges/histograms, JSONL and Chrome
``trace_event`` exporters, and adapters bridging the pre-existing
stats dialects (``ExecutionTrace``, ``FaultStats``, ``RuntimeStats``).
See ``docs/telemetry.md``.
"""

from .adapters import (
    record_execution_trace,
    record_fault_stats,
    record_runtime_stats,
)
from .export import (
    SCHEMA_VERSION,
    chrome_json,
    summarize,
    to_chrome,
    to_jsonl,
    validate_chrome_trace,
    write_chrome,
    write_jsonl,
)
from .metrics import HistogramSummary, MetricsRegistry
from .recorder import (
    NULL_RECORDER,
    ActivityCoalescer,
    InMemoryRecorder,
    NullRecorder,
    Recorder,
    TraceEvent,
    live,
)

__all__ = [
    "ActivityCoalescer",
    "HistogramSummary",
    "InMemoryRecorder",
    "MetricsRegistry",
    "NULL_RECORDER",
    "NullRecorder",
    "Recorder",
    "SCHEMA_VERSION",
    "TraceEvent",
    "chrome_json",
    "live",
    "record_execution_trace",
    "record_fault_stats",
    "record_runtime_stats",
    "summarize",
    "to_chrome",
    "to_jsonl",
    "validate_chrome_trace",
    "write_chrome",
    "write_jsonl",
]
