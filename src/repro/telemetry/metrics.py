"""Counters, gauges and histograms with deterministic summaries.

The registry is a plain accumulator: it never reads a clock, never
allocates per-update, and its exported form is fully determined by the
sequence of updates — so two replays of the same seeded run export
byte-identical metric blocks.

Histograms keep every observation.  That is deliberate: the quantities
observed here are small (per-step degrees, per-chunk latencies on
bench-sized workloads), exact quantiles beat approximate sketches for
reproduction work, and the memory cost is bounded by the run the user
asked to trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class HistogramSummary:
    """Deterministic summary of one histogram's observations."""

    count: int
    total: float
    min: float
    max: float
    p50: float
    p90: float
    p99: float

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


def _quantile(sorted_values: List[float], q: float) -> float:
    """Nearest-rank quantile on a pre-sorted list (deterministic)."""
    if not sorted_values:
        raise ValueError("quantile of empty histogram")
    idx = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[idx]


@dataclass
class MetricsRegistry:
    """Named counters, gauges and histograms.

    Update methods are the hot path (dict get + add), summary methods
    are called once at export time.
    """

    counters: Dict[str, float] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    histograms: Dict[str, List[float]] = field(default_factory=dict)

    # -- updates -----------------------------------------------------------
    def count(self, name: str, value: float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        bucket = self.histograms.get(name)
        if bucket is None:
            bucket = self.histograms[name] = []
        bucket.append(value)

    # -- summaries ---------------------------------------------------------
    def histogram_summary(self, name: str) -> Optional[HistogramSummary]:
        values = self.histograms.get(name)
        if not values:
            return None
        ordered = sorted(values)
        return HistogramSummary(
            count=len(ordered),
            total=sum(ordered),
            min=ordered[0],
            max=ordered[-1],
            p50=_quantile(ordered, 0.50),
            p90=_quantile(ordered, 0.90),
            p99=_quantile(ordered, 0.99),
        )

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready view with deterministically sorted keys."""
        hists: Dict[str, object] = {}
        for name in sorted(self.histograms):
            summary = self.histogram_summary(name)
            if summary is None:
                continue
            hists[name] = {
                "count": summary.count,
                "total": summary.total,
                "min": summary.min,
                "max": summary.max,
                "mean": summary.mean,
                "p50": summary.p50,
                "p90": summary.p90,
                "p99": summary.p99,
            }
        return {
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "gauges": {k: self.gauges[k] for k in sorted(self.gauges)},
            "histograms": hists,
        }
