"""``repro trace``: run one instance under a recorder, export the trace.

The default instance is the acceptance-criterion one — the Section-7
machine on a uniform d=2, n=6 Boolean tree — whose Chrome export shows
one track per level processor with coalesced busy/idle spans.  All
timestamps are logical ticks/steps, so re-running with the same seed
rewrites the identical artifact byte for byte.
"""

from __future__ import annotations

import argparse
import json
import sys

from .export import (
    chrome_json,
    summarize,
    to_chrome,
    to_jsonl,
    validate_chrome_trace,
)
from .recorder import InMemoryRecorder

ALGOS = ("machine", "solve", "alphabeta", "nodeexpansion")


def add_trace_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "action", nargs="?", choices=("export", "summary"),
        default="export",
        help="'export' writes the trace file; 'summary' prints a digest",
    )
    parser.add_argument(
        "--algo", choices=ALGOS, default="machine",
        help="which instrumented run to trace (default: Section-7 machine)",
    )
    parser.add_argument(
        "--format", choices=("chrome", "jsonl"), default="chrome",
        help="chrome: Perfetto-loadable trace_event JSON; jsonl: event stream",
    )
    parser.add_argument(
        "--out", type=str, default=None,
        help="output path (default trace.json / trace.jsonl)",
    )
    parser.add_argument("--branching", type=int, default=2)
    parser.add_argument("--height", type=int, default=6)
    parser.add_argument("--seed", type=int, default=2026)
    parser.add_argument(
        "--width", type=int, default=2,
        help="frontier width for the solve/alphabeta/nodeexpansion algos",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke: small instance, self-validate the Chrome export",
    )


def record_run(
    algo: str,
    *,
    branching: int,
    height: int,
    seed: int,
    width: int,
) -> InMemoryRecorder:
    """Run one instance of ``algo`` under a fresh ``InMemoryRecorder``."""
    from ..trees.generators import iid_boolean, iid_minmax
    from ..trees.generators.iid import level_invariant_bias

    recorder = InMemoryRecorder()
    if algo == "machine":
        from ..simulator import simulate

        tree = iid_boolean(
            branching, height, level_invariant_bias(branching), seed=seed
        )
        simulate(tree, recorder=recorder)
    elif algo == "solve":
        from ..core import parallel_solve

        tree = iid_boolean(
            branching, height, level_invariant_bias(branching), seed=seed
        )
        parallel_solve(tree, width, recorder=recorder)
    elif algo == "alphabeta":
        from ..core.alphabeta import parallel_alpha_beta

        mtree = iid_minmax(branching, height, seed=seed)
        parallel_alpha_beta(mtree, width, recorder=recorder)
    elif algo == "nodeexpansion":
        from ..core.nodeexpansion import n_parallel_solve

        tree = iid_boolean(
            branching, height, level_invariant_bias(branching), seed=seed
        )
        n_parallel_solve(tree, width, recorder=recorder)
    else:  # pragma: no cover - argparse restricts choices
        raise ValueError(f"unknown algo {algo!r}")
    return recorder


def run_trace(args: argparse.Namespace) -> int:
    height = min(args.height, 4) if args.quick else args.height
    recorder = record_run(
        args.algo,
        branching=args.branching,
        height=height,
        seed=args.seed,
        width=args.width,
    )

    if args.quick:
        problems = validate_chrome_trace(to_chrome(recorder))
        if problems:
            for problem in problems:
                print(f"invalid chrome trace: {problem}", file=sys.stderr)
            return 1

    if args.action == "summary":
        print(summarize(recorder))
        return 0

    if args.format == "chrome":
        payload = chrome_json(recorder)
        out = args.out or "trace.json"
    else:
        payload = to_jsonl(recorder)
        out = args.out or "trace.jsonl"
    if out == "-":
        sys.stdout.write(payload)
    else:
        with open(out, "w", encoding="utf-8") as fh:
            fh.write(payload)
        n_events = len(recorder.events)
        print(f"wrote {out} ({args.format}, {n_events} events, "
              f"clock={recorder.clock})")
    return 0


def emit_jsonl_trace(recorder: InMemoryRecorder, path: str) -> None:
    """Shared ``--trace-out`` helper for ``repro chaos`` / ``repro bench``.

    Both commands funnel through this one function so their JSONL
    records are schema-identical by construction (pinned by
    ``tests/telemetry/test_trace_out.py``).
    """
    payload = to_jsonl(recorder)
    json.loads(payload.splitlines()[0])  # sanity: header parses
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(payload)
