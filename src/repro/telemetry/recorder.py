"""The recorder protocol and its two built-in implementations.

A *recorder* is the single sink every instrumented code path talks to.
Instrumentation records three shapes of data:

* **spans** — named intervals ``[start, end)`` on a *track* (one track
  per algorithm stage, or per Section-7 level processor), the unit the
  Chrome/Perfetto exporter turns into timeline bars;
* **instant events** — point-in-time markers on a track;
* **metrics** — counters, gauges and histograms accumulated in a
  :class:`~repro.telemetry.metrics.MetricsRegistry` (cheap enough for
  per-transition hot paths; they do not append trace events).  The
  :meth:`Recorder.sample` call additionally appends a counter *event*
  for quantities worth a Perfetto time series (per-tick degree).

All timestamps are **logical**: basic-step or tick counts advanced
explicitly via :meth:`Recorder.advance`.  Nothing in this module reads
a wall clock, so a recording is bit-identical across replays of the
same seeded run (the R2/R7 determinism story).  Wall-clock *values*
(chunk latencies, step seconds) are an opt-in enrichment layer: they
are only recorded when the recorder was constructed with
``wallclock=True``, which only ``repro bench --wallclock`` does.

The default :class:`NullRecorder` is zero-overhead by construction:
engines normalise a ``None``/disabled recorder to ``None`` once (see
:func:`live`) and skip every instrumentation branch with a single
``is not None`` test — the tier-1 behaviour of an uninstrumented run
is provably unchanged, which ``bench_e24_telemetry_overhead.py``
gates.
"""

from __future__ import annotations

from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field
from typing import (
    ContextManager,
    Dict,
    Iterator,
    List,
    Optional,
    Protocol,
    Tuple,
    runtime_checkable,
)

from .metrics import MetricsRegistry

#: Deterministically ordered span/event attributes.
AttrItems = Tuple[Tuple[str, object], ...]


@dataclass(frozen=True)
class TraceEvent:
    """One recorded fact: a span, an instant, or a metric sample.

    ``kind`` is one of ``"span"``, ``"instant"`` or ``"counter"``
    (sampled time series); the registry's final counter/gauge/histogram
    states are appended by the exporters, not stored as events.
    ``start == end`` for instants and samples.
    """

    kind: str
    name: str
    track: str
    start: int
    end: int
    value: Optional[float] = None
    attrs: AttrItems = ()


def _freeze(attrs: Dict[str, object]) -> AttrItems:
    """Attribute dict -> sorted item tuple (deterministic order)."""
    return tuple(sorted(attrs.items()))


@runtime_checkable
class Recorder(Protocol):
    """What every instrumented code path may call.

    Implementations must be cheap when ``enabled`` is ``False`` —
    engines use :func:`live` to skip instrumentation entirely in that
    case, so a disabled recorder's methods are never on a hot path.
    """

    #: ``False`` means "drop everything" (engines skip instrumentation).
    enabled: bool
    #: opt-in: wall-clock-derived values may be recorded.
    wallclock: bool

    def advance(self, t: int) -> None:
        """Move the logical clock to ``t`` (monotonically)."""
        ...

    def span(
        self, name: str, *, track: str = "main", **attrs: object
    ) -> ContextManager[None]:
        """Span from the clock at entry to the clock at exit."""
        ...

    def add_span(
        self,
        name: str,
        start: int,
        end: int,
        *,
        track: str = "main",
        **attrs: object,
    ) -> None:
        """Record a completed span ``[start, end)`` explicitly."""
        ...

    def event(
        self, name: str, *, track: str = "main", **attrs: object
    ) -> None:
        """Record an instant event at the current clock."""
        ...

    def count(
        self, name: str, value: float = 1, **attrs: object
    ) -> None:
        """Add ``value`` to a monotonic counter (registry only)."""
        ...

    def gauge(self, name: str, value: float, **attrs: object) -> None:
        """Set a gauge to its latest value (registry only)."""
        ...

    def observe(self, name: str, value: float, **attrs: object) -> None:
        """Record one histogram observation (registry only)."""
        ...

    def sample(
        self, name: str, value: float, *, track: str = "metrics"
    ) -> None:
        """Counter time-series point: registry *and* a trace event."""
        ...


class NullRecorder:
    """The default recorder: drops everything, costs nothing.

    Engines treat any recorder with ``enabled = False`` as "no
    instrumentation at all" (:func:`live` normalises it to ``None``),
    so a run with the default recorder executes the exact pre-telemetry
    code path.
    """

    enabled: bool = False
    wallclock: bool = False

    def advance(self, t: int) -> None:
        return None

    def span(
        self, name: str, *, track: str = "main", **attrs: object
    ) -> ContextManager[None]:
        return nullcontext()

    def add_span(
        self,
        name: str,
        start: int,
        end: int,
        *,
        track: str = "main",
        **attrs: object,
    ) -> None:
        return None

    def event(
        self, name: str, *, track: str = "main", **attrs: object
    ) -> None:
        return None

    def count(self, name: str, value: float = 1, **attrs: object) -> None:
        return None

    def gauge(self, name: str, value: float, **attrs: object) -> None:
        return None

    def observe(self, name: str, value: float, **attrs: object) -> None:
        return None

    def sample(
        self, name: str, value: float, *, track: str = "metrics"
    ) -> None:
        return None


#: Shared default instance (stateless, safe to reuse everywhere).
NULL_RECORDER = NullRecorder()


def live(recorder: Optional[Recorder]) -> Optional[Recorder]:
    """Normalise a recorder argument for hot-path use.

    Returns the recorder when it will actually keep data, else
    ``None`` — so engines pay one ``is not None`` test per
    instrumentation site instead of a dynamic no-op dispatch.
    """
    if recorder is None or not recorder.enabled:
        return None
    return recorder


class InMemoryRecorder:
    """Keeps every span/event in order plus a metrics registry.

    Timestamps are logical (advanced by the instrumented run), so two
    replays of the same seeded run produce identical event lists and
    identical registry states — the exporters turn that into
    byte-identical artifacts.
    """

    enabled: bool = True

    def __init__(self, *, wallclock: bool = False) -> None:
        self.wallclock = wallclock
        self.clock: int = 0
        self.events: List[TraceEvent] = []
        self.metrics = MetricsRegistry()

    # -- clock -------------------------------------------------------------
    def advance(self, t: int) -> None:
        if t > self.clock:
            self.clock = t

    # -- spans / events ----------------------------------------------------
    @contextmanager
    def _span_cm(
        self, name: str, track: str, attrs: Dict[str, object]
    ) -> Iterator[None]:
        start = self.clock
        try:
            yield
        finally:
            self.events.append(TraceEvent(
                "span", name, track, start, self.clock,
                attrs=_freeze(attrs),
            ))

    def span(
        self, name: str, *, track: str = "main", **attrs: object
    ) -> ContextManager[None]:
        return self._span_cm(name, track, attrs)

    def add_span(
        self,
        name: str,
        start: int,
        end: int,
        *,
        track: str = "main",
        **attrs: object,
    ) -> None:
        self.events.append(TraceEvent(
            "span", name, track, start, end, attrs=_freeze(attrs)
        ))

    def event(
        self, name: str, *, track: str = "main", **attrs: object
    ) -> None:
        t = self.clock
        self.events.append(TraceEvent(
            "instant", name, track, t, t, attrs=_freeze(attrs)
        ))

    # -- metrics -----------------------------------------------------------
    def count(self, name: str, value: float = 1, **attrs: object) -> None:
        self.metrics.count(name, value)

    def gauge(self, name: str, value: float, **attrs: object) -> None:
        self.metrics.gauge(name, value)

    def observe(self, name: str, value: float, **attrs: object) -> None:
        self.metrics.observe(name, value)

    def sample(
        self, name: str, value: float, *, track: str = "metrics"
    ) -> None:
        self.metrics.gauge(name, value)
        t = self.clock
        self.events.append(TraceEvent(
            "counter", name, track, t, t, value=float(value)
        ))

    # -- introspection -----------------------------------------------------
    def spans(self, track: Optional[str] = None) -> List[TraceEvent]:
        """All span events, optionally restricted to one track."""
        return [
            e for e in self.events
            if e.kind == "span" and (track is None or e.track == track)
        ]

    def tracks(self) -> List[str]:
        """Track names in first-appearance order."""
        seen: Dict[str, None] = {}
        for e in self.events:
            seen.setdefault(e.track, None)
        return list(seen)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"InMemoryRecorder(clock={self.clock}, "
            f"events={len(self.events)})"
        )


@dataclass
class ActivityCoalescer:
    """Turns per-tick busy/idle observations into alternating spans.

    The Section-7 machine observes every level every tick; emitting one
    span per tick would bloat the trace and render as confetti.  The
    coalescer keeps the current run (busy or idle) open and emits one
    ``"busy"`` / ``"idle"`` span per maximal run on :meth:`finish` or
    when the state flips.
    """

    recorder: Recorder
    track: str
    _state: Optional[bool] = None
    _since: int = 0
    _busy_ticks: int = field(default=0)

    def observe(self, t: int, busy: bool) -> None:
        """Record that the tick starting at ``t`` was busy/idle."""
        if busy:
            self._busy_ticks += 1
        if self._state is None:
            self._state, self._since = busy, t
            return
        if busy != self._state:
            self._emit(t)
            self._state, self._since = busy, t

    def finish(self, t_end: int) -> None:
        """Close the open run at ``t_end`` (idempotent)."""
        if self._state is not None and t_end > self._since:
            self._emit(t_end)
        self._state = None

    @property
    def busy_ticks(self) -> int:
        return self._busy_ticks

    def _emit(self, until: int) -> None:
        self.recorder.add_span(
            "busy" if self._state else "idle",
            self._since,
            until,
            track=self.track,
        )
