"""Bridges from the repo's three pre-existing stats dialects.

``ExecutionTrace`` (idealized-model engines), ``FaultStats`` (Section-7
machine) and ``RuntimeStats`` (process-pool oracle runtime) each predate
the telemetry subsystem and keep their own accumulators.  These
adapters translate each into recorder calls *after the fact* — the
dialects stay authoritative for their callers, and telemetry composes
them into one trace without import cycles (everything here is
duck-typed on the attributes the classes actually expose; nothing from
``repro.core`` / ``repro.simulator`` / ``repro.models`` is imported).
"""

from __future__ import annotations

from typing import Optional

from .recorder import Recorder, live


def record_execution_trace(
    recorder: Optional[Recorder],
    trace: object,
    *,
    track: str = "solve",
) -> None:
    """Replay an ``ExecutionTrace`` degree sequence into a recorder.

    One ``"step"`` span per basic step (degree attached), plus the
    derived totals as counters/gauges.  Wall-clock ``step_seconds``
    are bridged only when the recorder opted into wall time.
    """
    rec = live(recorder)
    if rec is None:
        return
    degrees = getattr(trace, "degrees", ())
    for step, degree in enumerate(degrees):
        rec.advance(step + 1)
        rec.add_span("step", step, step + 1, track=track, degree=degree)
        rec.sample("degree", degree, track=track)
    rec.count("steps", len(degrees))
    rec.count("work", sum(degrees))
    rec.gauge("processors", max(degrees) if degrees else 0)
    if rec.wallclock:
        for seconds in getattr(trace, "step_seconds", ()):
            rec.observe("step_seconds", seconds)


def record_fault_stats(
    recorder: Optional[Recorder],
    stats: object,
    *,
    track: str = "faults",
) -> None:
    """Bridge a machine run's ``FaultStats`` into counters + one event."""
    rec = live(recorder)
    if rec is None or stats is None:
        return
    fields = (
        "dropped", "duplicated", "delayed", "reordered", "crashes",
        "stalls", "lost_in_outage", "retransmissions", "reissues",
        "heartbeats", "acks",
    )
    attrs = {}
    for name in fields:
        value = getattr(stats, name, 0)
        attrs[name] = value
        if value:
            rec.count(f"fault.{name}", value)
    rec.event("fault_stats", track=track, **attrs)


def record_runtime_stats(
    recorder: Optional[Recorder],
    stats: object,
    *,
    track: str = "oracle",
) -> None:
    """Bridge ``OracleRuntime.stats`` totals into counters + one event."""
    rec = live(recorder)
    if rec is None or stats is None:
        return
    fields = ("batches", "chunks", "units", "retries", "timeouts",
              "pool_restarts")
    attrs = {}
    for name in fields:
        value = getattr(stats, name, 0)
        attrs[name] = value
        if value:
            rec.count(f"oracle.{name}", value)
    if rec.wallclock:
        seconds = getattr(stats, "oracle_seconds", 0.0)
        if seconds:
            rec.observe("oracle.batch_seconds", seconds)
        attrs["oracle_seconds"] = seconds
    rec.event("runtime_stats", track=track, **attrs)
