"""Exporters: JSONL event stream and Chrome ``trace_event`` JSON.

Both exports are pure functions of the recorder's state and emit keys
in sorted order with fixed separators, so the same recording always
produces byte-identical artifacts — the property the `repro trace`
replay acceptance test pins down.

JSONL: one JSON object per line.  Line 1 is a ``{"kind": "meta", ...}``
header carrying the schema version; span/instant/counter events follow
in recording order; the final line is a ``{"kind": "metrics", ...}``
snapshot of the registry.

Chrome: the ``{"traceEvents": [...]}`` wrapper loadable in Perfetto or
``chrome://tracing``.  Each recorder *track* becomes a Chrome "process"
(one per algorithm stage or Section-7 level processor) named via a
``process_name`` metadata event; logical timestamps are scaled by
×1000 so one step/tick reads as 1ms on the Perfetto timeline rather
than sub-microsecond noise.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from .metrics import MetricsRegistry
from .recorder import InMemoryRecorder, TraceEvent

#: Bumped when the JSONL record shapes change.
SCHEMA_VERSION = 1

#: Perfetto display scale: one logical step/tick = 1000 "microseconds".
CHROME_TICK_US = 1000


def _dump(obj: object) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def event_record(event: TraceEvent) -> Dict[str, object]:
    """The JSONL dict for one trace event (schema shared by all emitters)."""
    record: Dict[str, object] = {
        "kind": event.kind,
        "name": event.name,
        "track": event.track,
        "start": event.start,
        "end": event.end,
    }
    if event.value is not None:
        record["value"] = event.value
    if event.attrs:
        record["attrs"] = dict(event.attrs)
    return record


def to_jsonl(recorder: InMemoryRecorder) -> str:
    """Serialise a recording as newline-terminated JSONL."""
    lines = [_dump({
        "kind": "meta",
        "schema": SCHEMA_VERSION,
        "clock": recorder.clock,
        "events": len(recorder.events),
    })]
    lines.extend(_dump(event_record(e)) for e in recorder.events)
    lines.append(_dump({
        "kind": "metrics",
        **recorder.metrics.snapshot(),
    }))
    return "\n".join(lines) + "\n"


def write_jsonl(recorder: InMemoryRecorder, path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(to_jsonl(recorder))


def _track_pids(events: List[TraceEvent]) -> Dict[str, int]:
    """Track name -> Chrome pid, in first-appearance order from 1."""
    pids: Dict[str, int] = {}
    for event in events:
        if event.track not in pids:
            pids[event.track] = len(pids) + 1
    return pids


def to_chrome(recorder: InMemoryRecorder) -> Dict[str, object]:
    """Build the Chrome ``trace_event`` document for a recording."""
    pids = _track_pids(recorder.events)
    trace_events: List[Dict[str, object]] = []
    for track, pid in pids.items():
        trace_events.append({
            "ph": "M",
            "name": "process_name",
            "pid": pid,
            "tid": 0,
            "args": {"name": track},
        })
    for event in recorder.events:
        pid = pids[event.track]
        ts = event.start * CHROME_TICK_US
        args: Dict[str, object] = dict(event.attrs)
        if event.kind == "span":
            trace_events.append({
                "ph": "X",
                "name": event.name,
                "pid": pid,
                "tid": 0,
                "ts": ts,
                "dur": max(event.end - event.start, 0) * CHROME_TICK_US,
                "args": args,
            })
        elif event.kind == "counter":
            trace_events.append({
                "ph": "C",
                "name": event.name,
                "pid": pid,
                "tid": 0,
                "ts": ts,
                "args": {event.name: event.value},
            })
        else:
            trace_events.append({
                "ph": "i",
                "name": event.name,
                "pid": pid,
                "tid": 0,
                "ts": ts,
                "s": "t",
                "args": args,
            })
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "schema": SCHEMA_VERSION,
            "clock": recorder.clock,
            "metrics": recorder.metrics.snapshot(),
        },
    }


def chrome_json(recorder: InMemoryRecorder) -> str:
    return _dump(to_chrome(recorder)) + "\n"


def write_chrome(recorder: InMemoryRecorder, path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(chrome_json(recorder))


def validate_chrome_trace(document: object) -> List[str]:
    """Check a parsed Chrome trace document against our schema.

    Returns a list of problems (empty means valid).  Hand-rolled
    because the toolchain has no ``jsonschema``; covers exactly the
    invariants the telemetry-smoke CI job needs.
    """
    problems: List[str] = []
    if not isinstance(document, dict):
        return ["top level is not an object"]
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents is missing or not a list"]
    named_pids = set()
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = event.get("ph")
        if ph not in ("M", "X", "i", "C"):
            problems.append(f"{where}: unknown ph {ph!r}")
            continue
        if not isinstance(event.get("name"), str):
            problems.append(f"{where}: name is not a string")
        if not isinstance(event.get("pid"), int):
            problems.append(f"{where}: pid is not an int")
        if ph == "M":
            args = event.get("args")
            if (
                event.get("name") == "process_name"
                and isinstance(args, dict)
                and isinstance(args.get("name"), str)
            ):
                named_pids.add(event.get("pid"))
            else:
                problems.append(f"{where}: malformed process_name metadata")
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"{where}: bad ts {ts!r}")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: bad dur {dur!r}")
        if event.get("pid") not in named_pids:
            problems.append(f"{where}: pid {event.get('pid')!r} has no "
                            "process_name metadata")
    return problems


def summarize(recorder: InMemoryRecorder) -> str:
    """Human-readable digest of a recording (for ``repro trace summary``)."""
    lines = [
        f"clock: {recorder.clock}",
        f"events: {len(recorder.events)}",
    ]
    per_track: Dict[str, Dict[str, int]] = {}
    for event in recorder.events:
        bucket = per_track.setdefault(event.track, {})
        bucket[event.kind] = bucket.get(event.kind, 0) + 1
    for track in recorder.tracks():
        kinds = per_track[track]
        detail = ", ".join(f"{k}={kinds[k]}" for k in sorted(kinds))
        lines.append(f"track {track}: {detail}")
    snap = recorder.metrics.snapshot()
    counters = snap["counters"]
    gauges = snap["gauges"]
    hists = snap["histograms"]
    assert isinstance(counters, dict)
    assert isinstance(gauges, dict)
    assert isinstance(hists, dict)
    for name, value in counters.items():
        lines.append(f"counter {name}: {value:g}")
    for name, value in gauges.items():
        lines.append(f"gauge {name}: {value:g}")
    for name, summary in hists.items():
        assert isinstance(summary, dict)
        lines.append(
            f"histogram {name}: count={summary['count']} "
            f"mean={summary['mean']:.6g} p50={summary['p50']:g} "
            f"max={summary['max']:g}"
        )
    return "\n".join(lines)
