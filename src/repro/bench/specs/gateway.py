"""Benchmark spec for the overload-safe request gateway (e26).

e26 drives a seeded open-loop zipf workload at roughly twice the
gateway's service capacity while a fault plan crashes a shard
mid-run and lets it recover.  The gates encode the robustness
contract of ``docs/serving.md``:

* two same-seed runs produce byte-identical outcome logs
  (rejections and latencies included);
* every completed answer matches direct evaluation — overload and
  chaos shed load, they never corrupt results;
* every arrival is resolved (completed or typed rejection) — no
  silent drops, no deadlocks;
* under 2x overload the gateway sheds but keeps a goodput floor —
  it degrades, it does not collapse;
* the crashed shard is probed and readmitted (self-healing ran).

All primary metrics are logical-tick quantities, so the bands are
zero-tolerance.  The wall-clock profile additionally paces the same
workload through the asyncio driver and checks its log matches the
simulated run byte for byte.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, List, Tuple

from ...faults import FaultPlan, ScheduleEntry
from ...gateway import (
    Gateway,
    GatewayConfig,
    GatewayReport,
    GatewayRequest,
    open_loop_arrivals,
    summarize,
)
from ...serve.engines import run_algorithm
from ...serve.request import request_key
from ..registry import Band, BenchSpec, Gate, SpecResult, register_spec

#: Deterministic logical-tick metrics: zero drift tolerated.
EXACT = Band()


def _build(params: Dict[str, Any]) -> Tuple[
    GatewayConfig, FaultPlan, List[Tuple[int, GatewayRequest]]
]:
    config = GatewayConfig(
        num_shards=params["shards"],
        batch_size=params["batch_size"],
        retry_capacity=params["retry_capacity"],
        probe_after=params["probe_after"],
        probe_interval=params["probe_after"],
    )
    plan = FaultPlan(params["seed"], schedule=[ScheduleEntry(
        "crash",
        tick=params["crash_tick"],
        level=params["crash_shard"],
        duration=params["crash_duration"],
    )])
    arrivals = open_loop_arrivals(
        params["num_requests"],
        seed=params["seed"],
        rate=params["rate"],
        zipf_s=params["zipf_s"],
        num_trees=params["num_trees"],
        height=params["height"],
    )
    return config, plan, arrivals


def _run_once(
    config: GatewayConfig,
    plan: FaultPlan,
    arrivals: List[Tuple[int, GatewayRequest]],
) -> GatewayReport:
    with Gateway(config, fault_plan=plan) as gateway:
        return gateway.run(arrivals)


def _wrong_answers(
    report: GatewayReport,
    arrivals: List[Tuple[int, GatewayRequest]],
) -> int:
    by_id = {
        greq.request.request_id: greq.request
        for _tick, greq in arrivals
    }
    expected: Dict[str, Tuple[float, int, int]] = {}
    wrong = 0
    for outcome in report.outcomes:
        if outcome.status != "ok":
            continue
        req = by_id[outcome.request_id]
        key = request_key(req)
        if key not in expected:
            value, steps, work = run_algorithm(
                req.algo, req.tree, req.params_dict()
            )
            expected[key] = (float(value), steps, work)
        if (
            outcome.key != key
            or (outcome.value, outcome.steps, outcome.work)
            != expected[key]
        ):
            wrong += 1
    return wrong


def _run_e26(params: Dict[str, Any], wallclock: bool) -> SpecResult:
    config, plan, arrivals = _build(params)
    report = _run_once(config, plan, arrivals)
    rerun = _run_once(config, plan, arrivals)
    load = summarize(report)
    resolved = load.completed + sum(load.rejected.values())
    metrics = {
        "logs_identical": (
            1.0 if rerun.response_log == report.response_log else 0.0
        ),
        "wrong_answers": float(_wrong_answers(report, arrivals)),
        "all_resolved": (
            1.0 if resolved == load.requests else 0.0
        ),
        "goodput": load.goodput,
        "shed_rate": load.shed_rate,
        "latency_p50": load.p50,
        "latency_p99": load.p99,
        "readmissions": float(load.readmissions),
        "probes": float(load.probes),
        "outages": float(load.outages),
        "max_queue_depth": float(load.max_queue_depth),
        "ticks": float(load.ticks),
    }
    digests = {
        "response_log": hashlib.sha256(
            report.response_log.encode("utf-8")
        ).hexdigest(),
    }
    wc: Dict[str, float] = {}
    if wallclock:
        from ...gateway.aio import run_wallclock

        with Gateway(config, fault_plan=plan) as gateway:
            paced, elapsed = run_wallclock(
                gateway, arrivals,
                tick_seconds=params["tick_seconds"],
            )
        wc = {
            "wallclock_identical": (
                1.0
                if paced.response_log == report.response_log
                else 0.0
            ),
            "elapsed_s": elapsed,
            "ms_per_tick": elapsed / max(1, load.ticks) * 1000.0,
        }
    return SpecResult(
        metrics=metrics, digests=digests, wallclock_metrics=wc
    )


register_spec(BenchSpec(
    name="e26",
    suite="infra",
    title="Gateway overload soak - 2x capacity with shard chaos",
    seed=2026,
    runner=_run_e26,
    params={
        "num_requests": 400, "rate": 16.0, "zipf_s": 1.2,
        "num_trees": 12, "height": 5, "seed": 2026,
        "shards": 2, "batch_size": 6, "retry_capacity": 8,
        "probe_after": 4, "crash_tick": 5, "crash_shard": 0,
        "crash_duration": 12, "tick_seconds": 0.0005,
    },
    quick_params={"num_requests": 160, "height": 4},
    gates=(
        Gate("deterministic_log", "logs_identical", ">=", 1.0),
        Gate("zero_wrong_answers", "wrong_answers", "<=", 0.0),
        Gate("all_resolved", "all_resolved", ">=", 1.0),
        Gate("goodput_floor", "goodput", ">=", 0.2),
        Gate("overload_shed", "shed_rate", ">=", 0.05),
        Gate("self_healing", "readmissions", ">=", 1.0),
        Gate("wallclock_identity", "wallclock_identical", ">=", 1.0,
             wallclock=True),
    ),
    bands={
        "goodput": EXACT, "shed_rate": EXACT,
        "latency_p50": EXACT, "latency_p99": EXACT,
        "max_queue_depth": EXACT, "ticks": EXACT,
    },
))
