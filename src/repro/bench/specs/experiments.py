"""Benchmark specs for the paper experiments (e01-e22).

Each spec wraps one registered experiment function with declarative
metric extractors (:mod:`repro.bench.specs.tables`), per-metric
tolerance bands for snapshot diffs, deterministic paper-invariant
gates, and a quick-profile parameter overlay small enough for CI.

Gate policy: only claims that are theorem-exact (Fact 1/2, Prop 2/3,
Theorem 2 invariants, SSS* dominance) or empirically stable across
profiles (speed-up >= 1, bounded ratios with generous slack) are
gated here; everything else is band-tracked between snapshots.
"""

from __future__ import annotations

from typing import Dict, Mapping

from ..registry import Band, BenchSpec, Gate, register_spec
from .tables import Extractor, table_runner

#: Seed every experiment ensemble derives from (see experiments/*.py).
BASE_SEED = 20260705

#: Band for stable floating aggregates (means, constants).
FLOAT = Band(rel=0.02)

#: Speed-ups may improve freely; shrinking beyond 5% is a regression.
SPEEDUP = Band(rel=0.05, direction="down_bad")

#: Overheads may shrink freely; growing beyond 5% is a regression.
OVERHEAD = Band(rel=0.05, direction="up_bad")

#: Extractors per spec name — also used by the gate-parity tests to
#: recompute registry metrics from a standalone experiment table.
TABLE_EXTRACTORS: Dict[str, Mapping[str, Extractor]] = {
    "e01": {
        "rows": ("count",),
        "min_iid_over_bound": ("ratio_min", "min S iid",
                               "bound d^(n/2)"),
        "min_forced0_over_bound": ("ratio_min", "S forced-0",
                                   "bound d^(n/2)"),
        "max_forced0_over_bound": ("ratio_max", "S forced-0",
                                   "bound d^(n/2)"),
        "total_proof_leaves": ("sum", "proof leaves"),
    },
    "e02": {
        "rows": ("count",),
        "min_ratio_sqrtp": ("min", "hard ratio/sqrt(p)"),
        "max_ratio_sqrtp": ("max", "hard ratio/sqrt(p)"),
        "last_iid_speedup": ("last", "iid speed-up"),
    },
    "e03": {
        "rows": ("count",),
        "min_speedup": ("min", "speed-up"),
        "last_c": ("last", "c = sp/(n+1)"),
        "max_work_ratio": ("max", "work/S (c')"),
        "max_procs": ("max", "procs"),
    },
    "e03b": {
        "rows": ("count",),
        "min_speedup": ("min", "speed-up"),
        "last_c": ("last", "c = sp/(n+1)"),
        "max_procs": ("max", "procs"),
    },
    "e04": {
        "rows": ("count",),
        "total_violations": ("sum", "violations"),
        "max_ratio": ("max", "max P(T)/P(H)"),
    },
    "e05": {
        "rows": ("count",),
        "max_utilisation": ("max", "utilisation"),
    },
    "e06": {
        "rows": ("count",),
        "min_k1_over_n": ("min", "k1/n"),
        "min_k2_over_n": ("min", "k2/n"),
    },
    "e07": {
        "rows": ("count",),
        "min_speedup": ("min", "speed-up"),
        "last_speedup": ("last", "speed-up"),
        "max_procs": ("max", "max procs"),
    },
    "e08": {
        "rows": ("count",),
        "total_checked": ("sum", "steps checked"),
        "total_violations": ("sum", "violations"),
    },
    "e09": {
        "rows": ("count",),
        "min_work_over_bound": ("ratio_min", "min S~ (iid)", "bound"),
        "min_cert_over_bound": ("ratio_min", "mean certificate",
                                "bound"),
    },
    "e10": {
        "rows": ("count",),
        "min_speedup": ("min", "speed-up"),
        "total_prop5_violations": ("sum", "prop5 viol"),
        "max_prop5_ratio": ("max", "prop5 max ratio"),
    },
    "e11": {
        "rows": ("count",),
        "min_speedup": ("min", "speed-up"),
        "min_prop6_ok": ("min", "prop6 ok"),
    },
    "e12": {
        "rows": ("count",),
        "min_ratio": ("min", "ratio"),
        "last_ratio_per_n": ("last", "ratio/(n+1)"),
    },
    "e13": {
        "rows": ("count",),
        "min_ratio": ("min", "ratio"),
        "last_ratio_per_n": ("last", "ratio/(n+1)"),
    },
    "e14": {
        "rows": ("count",),
        "min_speedup": ("min", "speed-up"),
        "max_speedup": ("max", "speed-up"),
        "min_efficiency": ("min", "speed-up/procs"),
    },
    "e15": {
        "rows": ("count",),
        "min_ticks_over_pstar": ("min", "ticks/P*"),
        "max_ticks_over_pstar": ("max", "ticks/P*"),
        "max_machine_speedup": ("max", "speed-up S*/ticks"),
        "total_messages": ("sum", "messages"),
    },
    "e16": {
        "rows": ("count",),
        "min_speedup": ("min", "speed-up"),
        "max_speedup": ("max", "speed-up"),
    },
    "e17": {
        "rows": ("count",),
        "min_ratio": ("min", "ratio"),
        "max_ratio": ("max", "ratio"),
    },
    "e18": {
        "rows": ("count",),
        "min_growth_over_floor": ("ratio_min", "measured ab growth",
                                  "floor sqrt(d)"),
        "max_growth_over_d": ("ratio_max", "measured ab growth",
                              "minimax growth d"),
    },
    "e19": {
        "rows": ("count",),
        "min_sss_le_ab": ("min", "sss* <= ab"),
        "total_ab_leaves": ("sum", "alpha-beta"),
        "total_minimax_leaves": ("sum", "minimax"),
    },
    "e20": {
        "rows": ("count",),
        "min_speedup": ("min", "speed-up"),
        "max_speedup": ("max", "speed-up"),
    },
    "e21": {
        "rows": ("count",),
        "min_speedup": ("min", "speed-up"),
        "min_efficiency": ("min", "sp/procs"),
        "min_hist_within_candidate": ("min", "hist<=cand"),
    },
    "e22": {
        "rows": ("count",),
        "min_c": ("min", "c = sp/(n+1)"),
        "max_c": ("max", "c = sp/(n+1)"),
        "max_procs": ("max", "procs"),
    },
}


def _spec(
    name: str,
    suite: str,
    title: str,
    quick: Dict,
    gates=(),
    bands: Dict[str, Band] = None,
) -> None:
    register_spec(BenchSpec(
        name=name,
        suite=suite,
        title=title,
        seed=BASE_SEED,
        runner=table_runner(name, TABLE_EXTRACTORS[name]),
        quick_params=quick,
        gates=tuple(gates),
        bands=bands or {},
    ))


_spec(
    "e01", "boolean", "Fact 1 - inherent lower bound on total work",
    quick={"configs": ((2, (6, 8, 10)), (3, (4, 6))), "iid_trials": 3},
    gates=[
        Gate("fact1_iid_above_bound", "min_iid_over_bound", ">=", 1.0),
        Gate("fact1_tight_lower", "min_forced0_over_bound", ">=", 1.0),
        Gate("fact1_tight_upper", "max_forced0_over_bound", "<=", 1.0),
    ],
    bands={"m*_over_bound": FLOAT},
)

_spec(
    "e02", "boolean", "Proposition 1 - Team SOLVE tracks sqrt(p)",
    quick={"n": 12, "trials": 2, "max_log2_p": 6},
    gates=[
        Gate("sqrt_tracking_low", "min_ratio_sqrtp", ">=", 0.3),
        Gate("sqrt_tracking_high", "max_ratio_sqrtp", "<=", 2.0),
    ],
    bands={"*_ratio_sqrtp": FLOAT, "last_iid_speedup": SPEEDUP},
)

_spec(
    "e03", "boolean", "Theorem 1 - width-1 linear speed-up",
    quick={"configs": ((2, (8, 10)), (3, (4, 6))), "trials": 3},
    gates=[
        Gate("speedup_ge_1", "min_speedup", ">=", 1.0),
        Gate("work_ratio_bounded", "max_work_ratio", "<=", 3.0),
    ],
    bands={"min_speedup": SPEEDUP, "last_c": FLOAT,
           "max_work_ratio": OVERHEAD},
)

_spec(
    "e03b", "boolean", "Theorem 1 on the worst-case family",
    quick={"configs": ((2, (8, 10)), (3, (5,)))},
    gates=[Gate("speedup_ge_1", "min_speedup", ">=", 1.0)],
    bands={"min_speedup": SPEEDUP, "last_c": FLOAT},
)

_spec(
    "e04", "boolean", "Proposition 2 - skeleton monotonicity",
    quick={"trials": 10},
    gates=[
        Gate("prop2_no_violations", "total_violations", "<=", 0.0),
        Gate("prop2_ratio_le_1", "max_ratio", "<=", 1.0),
    ],
    bands={"max_ratio": FLOAT},
)

_spec(
    "e05", "boolean", "Proposition 3 - degree histogram bound",
    quick={"configs": ((2, 10), (3, 6)), "trials": 4},
    gates=[Gate("prop3_within_bound", "max_utilisation", "<=", 1.0)],
    bands={"max_utilisation": OVERHEAD},
)

_spec(
    "e06", "boolean", "Lemmas 1 & 2 - linear thresholds",
    quick={},
    gates=[
        Gate("k1_linear", "min_k1_over_n", ">=", 0.05),
        Gate("k2_linear", "min_k2_over_n", ">=", 0.05),
    ],
    bands={"min_k*": FLOAT},
)

_spec(
    "e07", "boolean", "Corollary 2 - near-uniform trees",
    quick={"heights": (8, 10), "trials": 2},
    gates=[Gate("speedup_ge_1", "min_speedup", ">=", 1.0)],
    bands={"*_speedup": SPEEDUP},
)

_spec(
    "e08", "minmax", "Theorem 2 - pruning preserves the root value",
    quick={"cases": ((2, 6, 6), (3, 4, 4))},
    gates=[
        Gate("theorem2_no_violations", "total_violations", "<=", 0.0),
        Gate("steps_checked", "total_checked", ">=", 1.0),
    ],
)

_spec(
    "e09", "minmax", "Fact 2 - MIN/MAX inherent lower bound",
    quick={"configs": ((2, (6, 8)), (3, (4, 6))), "trials": 3},
    gates=[
        Gate("fact2_work_above_bound", "min_work_over_bound", ">=",
             1.0),
        Gate("fact2_certificate", "min_cert_over_bound", ">=", 1.0),
    ],
    bands={"min_*_over_bound": FLOAT},
)

_spec(
    "e10", "minmax", "Theorem 3 - parallel alpha-beta speed-up",
    quick={
        "configs": ((2, (6, 8), "cont"), (3, (4, 6), "cont")),
        "trials": 3,
        "worst_cases": ((2, 8),),
    },
    gates=[
        Gate("speedup_ge_1", "min_speedup", ">=", 1.0),
        Gate("prop5_violation_bounded", "max_prop5_ratio", "<=", 2.0),
    ],
    bands={"min_speedup": SPEEDUP, "max_prop5_ratio": OVERHEAD},
)

_spec(
    "e11", "minmax", "Theorem 4 - node-expansion speed-up",
    quick={"configs": ((2, (8, 10)), (3, (5,))), "trials": 3},
    gates=[
        Gate("speedup_ge_1", "min_speedup", ">=", 1.0),
        Gate("prop6_within_bound", "min_prop6_ok", ">=", 1.0),
    ],
    bands={"min_speedup": SPEEDUP},
)

_spec(
    "e12", "minmax", "Theorem 5 - randomized SOLVE speed-up",
    quick={"heights": (8, 10), "num_seeds": 6},
    gates=[Gate("expected_speedup_ge_1", "min_ratio", ">=", 1.0)],
    bands={"min_ratio": SPEEDUP, "last_ratio_per_n": FLOAT},
)

_spec(
    "e13", "minmax", "Theorem 6 - randomized alpha-beta speed-up",
    quick={"configs": ((2, (6, 8)), (3, (4,))), "num_seeds": 5},
    gates=[Gate("expected_speedup_ge_1", "min_ratio", ">=", 1.0)],
    bands={"min_ratio": SPEEDUP, "last_ratio_per_n": FLOAT},
)

_spec(
    "e14", "width_impl", "Althofer setting - width sweep",
    quick={"heights": (10, 12), "trials": 2},
    gates=[Gate("speedups_near_1_or_more", "min_speedup", ">=", 0.9)],
    bands={"*_speedup": SPEEDUP, "min_efficiency": FLOAT},
)

_spec(
    "e15", "width_impl", "Section 7 machine vs ideal model",
    quick={"heights": (8, 10), "budgets": (2, 4)},
    gates=[
        Gate("machine_never_beats_ideal", "min_ticks_over_pstar",
             ">=", 1.0),
        Gate("machine_overhead_bounded", "max_ticks_over_pstar",
             "<=", 8.0),
    ],
    bands={"*_ticks_over_pstar": OVERHEAD,
           "max_machine_speedup": SPEEDUP},
)

_spec(
    "e16", "width_impl", "Section 8 - width sweep constant",
    quick={"n": 10, "widths": (0, 1, 2)},
    gates=[Gate("speedups_near_1_or_more", "min_speedup", ">=", 0.9)],
    bands={"*_speedup": SPEEDUP},
)

_spec(
    "e17", "extension", "Tarsi - SOLVE cost vs exact expectation",
    quick={"configs": ((2, (8, 10)), (3, (5,))), "trials": 10},
    gates=[
        Gate("matches_theory_low", "min_ratio", ">=", 0.8),
        Gate("matches_theory_high", "max_ratio", "<=", 1.25),
    ],
    bands={"*_ratio": FLOAT},
)

_spec(
    "e18", "extension", "Pearl - alpha-beta branching factor",
    quick={"configs": ((2, (6, 8, 10)), (3, (4, 6))), "trials": 6},
    gates=[
        Gate("growth_above_sqrt_d", "min_growth_over_floor", ">=",
             1.0),
        Gate("growth_below_d", "max_growth_over_d", "<=", 1.0),
    ],
    bands={"m*_growth_*": FLOAT},
)

_spec(
    "e19", "extension", "Sequential baselines - SSS* dominance",
    quick={"heights": (6, 8), "trials": 4},
    gates=[Gate("sss_dominance", "min_sss_le_ab", ">=", 1.0)],
)

_spec(
    "e20", "extension", "Ablations - matched procs; scheduling",
    quick={"heights": (10,), "trials": 3, "machine_heights": (10,),
           "budgets": (2, 4)},
    gates=[Gate("speedups_positive", "min_speedup", ">=", 0.1)],
    bands={"*_speedup": SPEEDUP},
)

_spec(
    "e21", "open_problem", "Section 8 open problem - higher widths",
    quick={"iid_heights": (12,), "worst_height": 10,
           "widths": (1, 2)},
    gates=[Gate("speedup_ge_1", "min_speedup", ">=", 1.0)],
    bands={"min_speedup": SPEEDUP, "min_efficiency": FLOAT},
)

_spec(
    "e22", "scale", "Theorem 1 at scale - constant c holds",
    quick={"height_trials": ((12, 2), (14, 2), (16, 1))},
    gates=[Gate("c_stays_positive", "min_c", ">=", 0.25)],
    bands={"m*_c": FLOAT},
)
