"""Declarative metric extraction from experiment tables.

Table-backed benchmark specs describe their metrics as data: a
mapping of metric name to an *extractor* tuple applied to the
:class:`~repro.bench.harness.ExperimentTable` the experiment function
returns.  Supported forms::

    ("count",)                      # number of table rows
    (agg, column)                   # aggregate of one column
    ("ratio_" + agg, num, den)      # aggregate of num[i] / den[i]

with ``agg`` one of ``min`` / ``max`` / ``mean`` / ``sum`` /
``first`` / ``last``.  Boolean cells coerce to 0/1 so dominance
columns (e.g. ``"sss* <= ab"``) gate cleanly via ``min >= 1``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Tuple

from ...errors import WorkloadError
from ..harness import ExperimentTable
from ..registry import SpecResult, SpecRunner

__all__ = ["extract_metrics", "table_runner"]

Extractor = Tuple[str, ...]


def _aggregate(agg: str, values: List[float]) -> float:
    if not values:
        raise WorkloadError("metric extractor saw an empty column")
    if agg == "min":
        return float(min(values))
    if agg == "max":
        return float(max(values))
    if agg == "mean":
        return float(sum(values) / len(values))
    if agg == "sum":
        return float(sum(values))
    if agg == "first":
        return float(values[0])
    if agg == "last":
        return float(values[-1])
    raise WorkloadError(f"unknown extractor aggregate {agg!r}")


def _column(table: ExperimentTable, name: str) -> List[float]:
    try:
        return [float(v) for v in table.column(name)]
    except ValueError as exc:
        raise WorkloadError(
            f"[{table.experiment}] column {name!r} is not numeric: "
            f"{exc}"
        ) from exc


def extract_metrics(
    table: ExperimentTable,
    extractors: Mapping[str, Extractor],
) -> Dict[str, float]:
    """Apply every extractor to ``table``; returns metric mapping."""
    metrics: Dict[str, float] = {}
    for name, how in extractors.items():
        kind = how[0]
        if kind == "count":
            metrics[name] = float(len(table.rows))
        elif kind.startswith("ratio_"):
            num = _column(table, how[1])
            den = _column(table, how[2])
            metrics[name] = _aggregate(
                kind[len("ratio_"):],
                [a / b for a, b in zip(num, den)],
            )
        else:
            metrics[name] = _aggregate(kind, _column(table, how[1]))
    return metrics


def table_runner(
    experiment: str,
    extractors: Mapping[str, Extractor],
) -> SpecRunner:
    """A SpecRunner re-running one registered experiment function.

    ``params`` are forwarded as keyword overrides (this is how the
    quick profile shrinks the workload); the table is *not* saved —
    the snapshot is the artifact of record for registry runs.
    """

    def run(params: Dict[str, Any], wallclock: bool) -> SpecResult:
        from ..harness import run_experiment

        table = run_experiment(experiment, save=False, **params)
        return SpecResult(metrics=extract_metrics(table, extractors))

    return run
