"""The declarative benchmark spec registry (e01-e28).

Importing this package registers every spec:

* :mod:`repro.bench.specs.experiments` — the 22 paper-experiment
  specs, wrapping the experiment functions via declarative table
  metric extractors;
* :mod:`repro.bench.specs.infra` — the 6 infrastructure specs
  (frontier backends, fault overhead, telemetry overhead, serving
  throughput, arena backend speedup, shared-memory hardware speedup)
  with custom runners;
* :mod:`repro.bench.specs.gateway` — the gateway overload soak
  (e26): 2x-capacity chaos run gated on determinism, zero wrong
  answers and shard self-healing.

:func:`gate_bound` is the single source of truth the standalone
benchmark files under ``benchmarks/`` import their acceptance bounds
from, so the registry and the pytest suite can never disagree.
"""

from __future__ import annotations

from typing import Dict

from ..harness import ExperimentTable
from ..registry import get_spec
from . import (  # noqa: F401  (registration imports)
    experiments,
    gateway,
    infra,
)
from .experiments import TABLE_EXTRACTORS
from .tables import extract_metrics

__all__ = ["gate_bound", "metrics_from_table", "TABLE_EXTRACTORS"]


def gate_bound(spec_name: str, gate_name: str) -> float:
    """The registered bound of one gate (e.g. ``("e23", "overhead_drop")``)."""
    return get_spec(spec_name).gate_bound(gate_name)


def metrics_from_table(
    name: str, table: ExperimentTable
) -> Dict[str, float]:
    """Registry metrics recomputed from a standalone experiment table.

    Gate-parity helper: the benchmark files run their experiment once,
    then feed the same table through the same extractors the registry
    spec declares — identical metrics (and gate verdicts) by
    construction.
    """
    return extract_metrics(table, TABLE_EXTRACTORS[name])
