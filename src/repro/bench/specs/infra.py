"""Benchmark specs for the infrastructure subsystems (e21b, e23-e25,
e27 and e28; the e26 gateway overload soak lives in
:mod:`repro.bench.specs.gateway`).

These wrap the gated benchmarks under ``benchmarks/`` — frontier
backends, fault-injection overhead, telemetry overhead and serving
throughput — as registry specs.  The standalone bench files import
their gate bounds from here (via
:func:`repro.bench.specs.gate_bound`), so the two paths can never
disagree about what passes.

Deterministic metrics (step identity, tick ratios, cache hit
structure, response-log digests) are always produced; wall-clock
numbers and their gates only exist when the runner was invoked with
``--wallclock`` in the full profile.
"""

from __future__ import annotations

import hashlib
from statistics import median
from typing import Any, Dict

from ...core import parallel_solve
from ...core.alphabeta import parallel_alpha_beta
from ...core.shm import CalibratedOracle, ShmOptions, ShmSession
from ...faults import ALL_FAULT_KINDS, FaultPlan
from ...serve import ShardedBatchService, response_log, synthetic_stream
from ...simulator import simulate
from ...telemetry import InMemoryRecorder, NullRecorder
from ...trees.canonical import canonical_arrays
from ...trees.generators import iid_boolean
from ...trees.generators.iid import iid_minmax, level_invariant_bias
from ..registry import Band, BenchSpec, Gate, SpecResult, register_spec
from ..wallclock import best_of, median_seconds

#: Band for wall-clock-free ratio metrics of the infra suite.
FLOAT = Band(rel=0.02)

#: Tick-overhead ratios: growth beyond 10% is a regression.
TICKS = Band(rel=0.10, direction="up_bad")


def _signature(result) -> Any:
    return (result.value, result.trace.degrees, result.trace.batches)


def _run_e21b(params: Dict[str, Any], wallclock: bool) -> SpecResult:
    branching, height = params["branching"], params["height"]
    tree = iid_boolean(
        branching, height, level_invariant_bias(branching),
        seed=params["seed"],
    )
    identical = 1.0
    for width in params["widths"]:
        rescan = parallel_solve(
            tree, width, keep_batches=True, backend="rescan"
        )
        incremental = parallel_solve(
            tree, width, keep_batches=True, backend="incremental"
        )
        if _signature(rescan) != _signature(incremental):
            identical = 0.0
    gate_width, gate_procs = params["gate_case"]
    bounded = parallel_solve(
        tree, gate_width, max_processors=gate_procs,
        backend="incremental",
    )
    metrics = {
        "backends_identical": identical,
        "bounded_steps": float(bounded.num_steps),
    }
    wc: Dict[str, float] = {}
    if wallclock:
        repeats = params["repeats"]
        t_rescan = best_of(
            lambda: parallel_solve(
                tree, gate_width, max_processors=gate_procs,
                backend="rescan",
            ),
            repeats,
        )
        t_incremental = best_of(
            lambda: parallel_solve(
                tree, gate_width, max_processors=gate_procs,
                backend="incremental",
            ),
            repeats,
        )
        wc = {
            "rescan_s": t_rescan,
            "incremental_s": t_incremental,
            "speedup": t_rescan / t_incremental,
        }
    return SpecResult(metrics=metrics, wallclock_metrics=wc)


register_spec(BenchSpec(
    name="e21b",
    suite="infra",
    title="Frontier backends - incremental vs per-step rescan",
    seed=2026,
    runner=_run_e21b,
    params={
        "branching": 4, "height": 8, "seed": 2026,
        "widths": (0, 1, 2, 4), "gate_case": (4, 2), "repeats": 2,
    },
    quick_params={"height": 6},
    gates=(
        Gate("step_identity", "backends_identical", ">=", 1.0),
        Gate("incremental_speedup", "speedup", ">=", 5.0,
             wallclock=True),
    ),
))


def _run_e27(params: Dict[str, Any], wallclock: bool) -> SpecResult:
    branching, height = params["branching"], params["height"]
    boolean_tree = iid_boolean(
        branching, height, level_invariant_bias(branching),
        seed=params["seed"],
    )
    minmax_tree = iid_minmax(branching, height, seed=params["seed"])
    solve_identical = 1.0
    for width in params["solve_widths"]:
        incremental = parallel_solve(
            boolean_tree, width, keep_batches=True, backend="incremental"
        )
        arena = parallel_solve(
            boolean_tree, width, keep_batches=True, backend="arena"
        )
        if _signature(arena) != _signature(incremental):
            solve_identical = 0.0
    ab_identical = 1.0
    for width in params["ab_widths"]:
        incremental = parallel_alpha_beta(
            minmax_tree, width, keep_batches=True, backend="incremental"
        )
        arena = parallel_alpha_beta(
            minmax_tree, width, keep_batches=True, backend="arena"
        )
        if _signature(arena) != _signature(incremental):
            ab_identical = 0.0
    solve_w = params["solve_gate_width"]
    ab_w = params["ab_gate_width"]
    solve_run = parallel_solve(boolean_tree, solve_w, backend="arena")
    ab_run = parallel_alpha_beta(minmax_tree, ab_w, backend="arena")
    metrics = {
        "solve_identical": solve_identical,
        "ab_identical": ab_identical,
        "backends_identical": min(solve_identical, ab_identical),
        "solve_steps": float(solve_run.num_steps),
        "ab_steps": float(ab_run.num_steps),
    }
    wc: Dict[str, float] = {}
    if wallclock:
        repeats = params["repeats"]
        # Lowering is memoized per tree and amortized across runs; pay
        # it before the clock starts (the incremental backend likewise
        # rebuilds its FrontierIndex inside every timed run).
        canonical_arrays(boolean_tree)
        canonical_arrays(minmax_tree)
        t_solve_inc = best_of(
            lambda: parallel_solve(
                boolean_tree, solve_w, backend="incremental"
            ),
            repeats,
        )
        t_solve_arena = best_of(
            lambda: parallel_solve(boolean_tree, solve_w, backend="arena"),
            repeats,
        )
        t_ab_inc = best_of(
            lambda: parallel_alpha_beta(
                minmax_tree, ab_w, backend="incremental"
            ),
            repeats,
        )
        t_ab_arena = best_of(
            lambda: parallel_alpha_beta(minmax_tree, ab_w, backend="arena"),
            repeats,
        )
        wc = {
            "solve_incremental_s": t_solve_inc,
            "solve_arena_s": t_solve_arena,
            "solve_speedup": t_solve_inc / t_solve_arena,
            "ab_incremental_s": t_ab_inc,
            "ab_arena_s": t_ab_arena,
            "ab_speedup": t_ab_inc / t_ab_arena,
        }
    return SpecResult(metrics=metrics, wallclock_metrics=wc)


register_spec(BenchSpec(
    name="e27",
    suite="infra",
    title="Arena backend - vectorised columnar sweeps vs incremental",
    seed=2027,
    runner=_run_e27,
    params={
        "branching": 5, "height": 7, "seed": 2027,
        "solve_widths": (2, 4, 8), "ab_widths": (2, 4),
        "solve_gate_width": 8, "ab_gate_width": 12, "repeats": 2,
    },
    # Smaller tree keeps the quick profile cheap; the gate widths grow
    # so the batches stay large enough to clear the 10x bar there too.
    quick_params={
        "height": 6, "solve_gate_width": 12, "ab_gate_width": 16,
    },
    gates=(
        Gate("step_identity", "backends_identical", ">=", 1.0),
        Gate("solve_speedup", "solve_speedup", ">=", 10.0,
             wallclock=True),
        Gate("ab_speedup", "ab_speedup", ">=", 10.0, wallclock=True),
    ),
))


def _run_e28(params: Dict[str, Any], wallclock: bool) -> SpecResult:
    branching, height = params["branching"], params["height"]
    width = params["width"]
    tree = iid_boolean(
        branching, height, level_invariant_bias(branching),
        seed=params["seed"],
    )
    reference = parallel_solve(
        tree, width, keep_batches=True, backend="arena"
    )
    sequential = parallel_solve(tree, 0, backend="arena")
    identical = 1.0
    for p in params["p_grid"]:
        for chunk in params["chunk_sizes"]:
            shm = parallel_solve(
                tree, width, keep_batches=True, backend="arena",
                executor="shm",
                shm_options=ShmOptions(workers=p, chunk_size=chunk),
            )
            if _signature(shm) != _signature(reference):
                identical = 0.0
    # One alpha-beta cell keeps the minmax half of the executor honest
    # without doubling the sweep.
    minmax_tree = iid_minmax(branching, height, seed=params["seed"])
    ab_reference = parallel_alpha_beta(
        minmax_tree, 1, keep_batches=True, backend="arena"
    )
    ab_shm = parallel_alpha_beta(
        minmax_tree, 1, keep_batches=True, backend="arena",
        executor="shm", shm_options=ShmOptions(workers=2),
    )
    ab_identical = (
        1.0 if _signature(ab_shm) == _signature(ab_reference) else 0.0
    )
    # The paper's Theorem 1 speedup is S(T)/steps = c.(n+1); report
    # the measured constant so the trajectory tracks it.
    step_speedup = sequential.num_steps / reference.num_steps
    metrics = {
        "solve_identical": identical,
        "ab_identical": ab_identical,
        "backends_identical": min(identical, ab_identical),
        "steps": float(reference.num_steps),
        "work": float(reference.total_work),
        "seq_steps": float(sequential.num_steps),
        "step_speedup": step_speedup,
        "c_hat": step_speedup / (height + 1),
    }
    wc: Dict[str, float] = {}
    if wallclock:
        oracle = CalibratedOracle(
            params["oracle_cost_s"], params["oracle_mode"]
        )
        repeats = params["repeats"]
        times: Dict[int, float] = {}
        for p in params["p_grid"]:
            with ShmSession(
                tree, ShmOptions(workers=p, oracle=oracle)
            ) as session:
                times[p] = best_of(
                    lambda: session.parallel_solve(width), repeats
                )
        grid = list(params["p_grid"])
        base = times[grid[0]]
        for p in grid:
            wc[f"t_p{p}"] = times[p]
            wc[f"speedup_p{p}"] = base / times[p]
        # Monotone within 5% noise: adding workers never slows a step
        # barrier down by more than jitter.
        monotone = 1.0
        for lo, hi in zip(grid, grid[1:]):
            if times[hi] > times[lo] * 1.05:
                monotone = 0.0
        wc["monotone_speedup"] = monotone
        wc["oracle_floor_s"] = reference.total_work * params[
            "oracle_cost_s"
        ]
    return SpecResult(metrics=metrics, wallclock_metrics=wc)


register_spec(BenchSpec(
    name="e28",
    suite="infra",
    title="Shared-memory leaf evaluation - hardware speedup vs c.(n+1)",
    seed=2028,
    runner=_run_e28,
    params={
        "branching": 3, "height": 6, "width": 1, "seed": 2028,
        "p_grid": (1, 2, 4), "chunk_sizes": (None, 3),
        "oracle_cost_s": 0.004, "oracle_mode": "sleep", "repeats": 2,
    },
    # The quick profile is the CI canary: a smaller tree, p <= 2, one
    # chunking policy, and no wall-clock leg (the snapshot must be
    # byte-identical across runs).
    quick_params={
        "height": 5, "p_grid": (1, 2), "chunk_sizes": (None,),
        "repeats": 1,
    },
    gates=(
        Gate("step_identity", "backends_identical", ">=", 1.0),
        Gate("speedup_p4", "speedup_p4", ">=", 1.8, wallclock=True),
        Gate("monotone", "monotone_speedup", ">=", 1.0,
             wallclock=True),
    ),
))


def _run_e23(params: Dict[str, Any], wallclock: bool) -> SpecResult:
    height = params["height"]
    trees = [
        iid_boolean(2, height, 0.45, seed=s)
        for s in range(params["tree_seeds"])
    ]
    instances = [(t, simulate(t)) for t in trees]
    metrics: Dict[str, float] = {"converged": 1.0}
    for kind in ALL_FAULT_KINDS:
        ratios = []
        for tree, baseline in instances:
            for plan_seed in range(params["plan_seeds"]):
                plan = FaultPlan.with_rate(
                    plan_seed, kind, params["rate"],
                    max_faults=params["max_faults"],
                )
                res = simulate(tree, fault_plan=plan)
                if res.value != baseline.value:
                    metrics["converged"] = 0.0
                ratios.append(res.ticks / baseline.ticks)
        metrics[f"tick_ratio_{kind}"] = float(median(ratios))
    return SpecResult(metrics=metrics)


register_spec(BenchSpec(
    name="e23",
    suite="infra",
    title="Fault-injection overhead on the Section 7 machine",
    seed=0,
    runner=_run_e23,
    params={
        "height": 6, "tree_seeds": 5, "plan_seeds": 3,
        "rate": 0.01, "max_faults": 32,
    },
    quick_params={"tree_seeds": 3, "plan_seeds": 2},
    gates=(
        (Gate("converges", "converged", ">=", 1.0),)
        + tuple(
            Gate(f"overhead_{kind}", f"tick_ratio_{kind}", "<=", 2.0)
            for kind in ALL_FAULT_KINDS
        )
    ),
    bands={"tick_ratio_*": TICKS},
))


def _run_e24(params: Dict[str, Any], wallclock: bool) -> SpecResult:
    branching, height = params["branching"], params["height"]
    width = params["width"]
    tree = iid_boolean(
        branching, height, level_invariant_bias(branching),
        seed=params["seed"],
    )
    baseline = parallel_solve(tree, width, keep_batches=True)
    identical = 1.0
    for recorder in (None, NullRecorder(), InMemoryRecorder()):
        run = parallel_solve(
            tree, width, keep_batches=True, recorder=recorder
        )
        if _signature(run) != _signature(baseline):
            identical = 0.0
    metrics = {
        "recorders_identical": identical,
        "steps": float(baseline.num_steps),
    }
    wc: Dict[str, float] = {}
    if wallclock:
        repeats = params["repeats"]
        t_base, _ = median_seconds(
            lambda: parallel_solve(tree, width), repeats
        )
        t_null, _ = median_seconds(
            lambda: parallel_solve(
                tree, width, recorder=NullRecorder()
            ),
            repeats,
        )
        t_mem, _ = median_seconds(
            lambda: parallel_solve(
                tree, width, recorder=InMemoryRecorder()
            ),
            repeats,
        )
        wc = {
            "base_s": t_base,
            "null_overhead_x": t_null / t_base,
            "inmemory_overhead_x": t_mem / t_base,
        }
    return SpecResult(metrics=metrics, wallclock_metrics=wc)


register_spec(BenchSpec(
    name="e24",
    suite="infra",
    title="Telemetry recorder overhead on the solve hot loop",
    seed=2026,
    runner=_run_e24,
    params={
        "branching": 4, "height": 8, "width": 4, "seed": 2026,
        "repeats": 5,
    },
    quick_params={"height": 6, "repeats": 3},
    gates=(
        Gate("step_identity", "recorders_identical", ">=", 1.0),
        Gate("null_overhead", "null_overhead_x", "<=", 1.05,
             wallclock=True),
        Gate("inmemory_overhead", "inmemory_overhead_x", "<=", 1.5,
             wallclock=True),
    ),
))


def _run_e25(params: Dict[str, Any], wallclock: bool) -> SpecResult:
    num_requests = params["num_requests"]
    stream = synthetic_stream(
        num_requests, seed=params["seed"],
        num_trees=params["num_trees"], height=params["height"],
        zipf_s=params["zipf_s"],
    )
    with ShardedBatchService(2, cache_size=0) as cold_service:
        cold_responses = cold_service.serve(stream)
    cold_log = response_log(cold_responses)
    with ShardedBatchService(2, cache_size=None) as warm_service:
        warm_service.serve(stream)
        warm_responses = warm_service.serve(stream)
        unique = warm_service.stats.evaluated
    warm_log = response_log(warm_responses)
    steps = sorted(r.steps for r in cold_responses)
    p99 = steps[min(len(steps) - 1, int(0.99 * len(steps)))]
    metrics = {
        "logs_identical": 1.0 if warm_log == cold_log else 0.0,
        "unique_evaluated": float(unique),
        "unique_frac": unique / num_requests,
        "steps_p99": float(p99),
        "total_steps": float(sum(steps)),
    }
    digests = {
        "response_log": hashlib.sha256(
            cold_log.encode("utf-8")
        ).hexdigest(),
    }
    wc: Dict[str, float] = {}
    if wallclock:
        repeats = params["repeats"]
        with ShardedBatchService(2, cache_size=0) as cold:
            t_cold, _ = median_seconds(
                lambda: cold.serve(stream), repeats
            )
        with ShardedBatchService(2, cache_size=None) as warm:
            warm.serve(stream)
            t_warm, _ = median_seconds(
                lambda: warm.serve(stream), repeats
            )
        wc = {
            "cold_s": t_cold,
            "warm_s": t_warm,
            "warm_speedup": t_cold / t_warm,
        }
    return SpecResult(
        metrics=metrics, digests=digests, wallclock_metrics=wc
    )


register_spec(BenchSpec(
    name="e25",
    suite="infra",
    title="Serving throughput - warm canonical cache vs cold",
    seed=2025,
    runner=_run_e25,
    params={
        "num_requests": 300, "num_trees": 10, "height": 6,
        "zipf_s": 1.2, "seed": 2025, "repeats": 3,
    },
    # The zipf-dedup premise needs the full stream length; only the
    # wall-clock repeat count shrinks in the quick profile.
    quick_params={"repeats": 2},
    gates=(
        Gate("deterministic_answers", "logs_identical", ">=", 1.0),
        Gate("zipf_dedup", "unique_frac", "<=", 1.0 / 3.0),
        Gate("warm_speedup", "warm_speedup", ">=", 3.0,
             wallclock=True),
    ),
    bands={"unique_frac": Band(rel=0.02), "steps_p99": FLOAT,
           "total_steps": FLOAT},
))
