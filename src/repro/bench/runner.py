"""The registry runner behind ``repro bench --all``.

Executes a selection of :class:`~repro.bench.registry.BenchSpec`
deterministically and assembles one schema-versioned snapshot
document.  Primary metrics are model-step counts and ratios (seeded,
machine-invariant); wall-clock numbers appear only when explicitly
requested and live in a separate, band-free section.
"""

from __future__ import annotations

import datetime
import sys
from typing import Any, Dict, List, Optional, Sequence, TextIO

from ..errors import WorkloadError
from .registry import BenchSpec, select_specs
from .schema import validate_snapshot
from .snapshot import SNAPSHOT_SCHEMA

__all__ = ["run_benchmarks", "failed_gates", "today"]


def today() -> str:
    """Local calendar date for snapshot naming (YYYY-MM-DD)."""
    return datetime.date.today().isoformat()


def _gate_entries(
    spec: BenchSpec,
    metrics: Dict[str, float],
    wallclock_metrics: Dict[str, float],
    profile: str,
    wallclock: bool,
) -> Dict[str, Dict[str, Any]]:
    entries: Dict[str, Dict[str, Any]] = {}
    for gate in spec.gates:
        entry: Dict[str, Any] = {
            "metric": gate.metric,
            "op": gate.op,
            "bound": gate.bound,
            "wallclock": gate.wallclock,
        }
        if gate.wallclock and not (wallclock and profile == "full"):
            # Wall-clock bounds are calibrated for the full profile;
            # without --wallclock there is nothing to compare at all.
            entry.update(skipped=True, value=None, passed=None)
        else:
            source = wallclock_metrics if gate.wallclock else metrics
            if gate.metric not in source:
                raise WorkloadError(
                    f"{spec.name}: gate {gate.name!r} reads missing "
                    f"metric {gate.metric!r}"
                )
            value = float(source[gate.metric])
            entry.update(
                skipped=False, value=value, passed=gate.holds(value)
            )
        entries[gate.name] = entry
    return entries


def run_benchmarks(
    names: Optional[Sequence[str]] = None,
    suites: Optional[Sequence[str]] = None,
    profile: str = "full",
    wallclock: bool = False,
    date: Optional[str] = None,
    progress: Optional[TextIO] = None,
) -> Dict[str, Any]:
    """Run specs and return the snapshot document (validated)."""
    specs = select_specs(names=names, suites=suites)
    if not specs:
        raise WorkloadError("no benchmark specs selected")
    stream = progress if progress is not None else sys.stderr
    doc: Dict[str, Any] = {
        "schema": SNAPSHOT_SCHEMA,
        "date": date if date is not None else today(),
        "profile": profile,
        "wallclock": wallclock,
        "specs": {},
    }
    for spec in specs:
        print(f"bench: {spec.name} [{spec.suite}] ...",
              file=stream, flush=True)
        result = spec.run(profile=profile, wallclock=wallclock)
        entry: Dict[str, Any] = {
            "suite": spec.suite,
            "title": spec.title,
            "seed": spec.seed,
            "params": _jsonable(spec.effective_params(profile)),
            "metrics": {
                k: result.metrics[k] for k in sorted(result.metrics)
            },
            "digests": dict(sorted(result.digests.items())),
            "gates": _gate_entries(
                spec, result.metrics, result.wallclock_metrics,
                profile, wallclock,
            ),
            "bands": {
                metric: spec.band_for(metric).to_dict()
                for metric in sorted(result.metrics)
            },
            "wallclock_metrics": dict(
                sorted(result.wallclock_metrics.items())
            ),
        }
        doc["specs"][spec.name] = entry
    problems = validate_snapshot(doc)
    if problems:
        raise WorkloadError(
            "runner produced an invalid snapshot: "
            + "; ".join(problems[:5])
        )
    return doc


def failed_gates(doc: Dict[str, Any]) -> List[str]:
    """``"spec:gate"`` labels of every evaluated-and-failed gate."""
    failures = []
    for spec_name, entry in sorted(doc.get("specs", {}).items()):
        for gate_name, gate in sorted(entry.get("gates", {}).items()):
            if gate.get("skipped") is False and not gate.get("passed"):
                failures.append(f"{spec_name}:{gate_name}")
    return failures


def _jsonable(value: Any) -> Any:
    """Params as JSON-stable values (tuples become lists)."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value
