"""Snapshot persistence: ``BENCH_<date>.json`` and the table store.

Two artifact families live here:

* **Benchmark snapshots** — the schema-versioned perf-trajectory
  files the runner emits and the diff engine compares.  Serialization
  is canonical (sorted keys, two-space indent, ``allow_nan=False``,
  trailing newline) so a snapshot is byte-identical across runs with
  the same seed, which is itself an acceptance gate.
* **The experiment table store** — ``benchmarks/results/tables.json``,
  the single file every :class:`~repro.bench.harness.ExperimentTable`
  save funnels through (replacing the historical per-experiment
  ``.txt``/``.csv`` pairs).  ``EXPERIMENTS.md`` is regenerated from
  this store.
"""

from __future__ import annotations

import json
import os
import re
from typing import Any, Dict, List, Optional

from ..errors import WorkloadError

__all__ = [
    "SNAPSHOT_SCHEMA",
    "SNAPSHOT_PREFIX",
    "dumps_snapshot",
    "write_snapshot",
    "load_snapshot",
    "history_dir",
    "snapshot_path",
    "list_snapshots",
    "latest_snapshot_path",
    "TABLE_STORE_NAME",
    "table_store_path",
    "load_table_store",
    "save_table_entry",
    "load_table_entry",
]

#: Version tag every snapshot carries; bump on breaking layout change.
SNAPSHOT_SCHEMA = "repro-bench/v1"

#: File-name prefix of committed trajectory points.
SNAPSHOT_PREFIX = "BENCH_"

_DATE_RE = re.compile(r"^\d{4}-\d{2}-\d{2}$")


def _repo_root() -> str:
    here = os.path.dirname(os.path.abspath(__file__))
    return os.path.dirname(os.path.dirname(os.path.dirname(here)))


def history_dir() -> str:
    """``benchmarks/history`` — the committed BENCH_*.json trajectory."""
    return os.path.join(_repo_root(), "benchmarks", "history")


def snapshot_path(date: str, directory: Optional[str] = None) -> str:
    if not _DATE_RE.match(date):
        raise WorkloadError(
            f"snapshot date {date!r} is not YYYY-MM-DD"
        )
    if directory is None:
        directory = history_dir()
    return os.path.join(directory, f"{SNAPSHOT_PREFIX}{date}.json")


def list_snapshots(directory: Optional[str] = None) -> List[str]:
    """Committed snapshot paths, oldest first (dates sort lexically)."""
    if directory is None:
        directory = history_dir()
    if not os.path.isdir(directory):
        return []
    names = [
        name for name in os.listdir(directory)
        if name.startswith(SNAPSHOT_PREFIX) and name.endswith(".json")
    ]
    return [os.path.join(directory, name) for name in sorted(names)]


def latest_snapshot_path(
    directory: Optional[str] = None,
) -> Optional[str]:
    paths = list_snapshots(directory)
    return paths[-1] if paths else None


def dumps_snapshot(doc: Dict[str, Any]) -> str:
    """Canonical byte form: sorted keys, indent 2, no NaN, final LF."""
    return json.dumps(
        doc, sort_keys=True, indent=2, allow_nan=False
    ) + "\n"


def write_snapshot(doc: Dict[str, Any], path: str) -> str:
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(dumps_snapshot(doc))
    return path


def _reject_constant(token: str) -> float:
    raise WorkloadError(
        f"snapshot contains non-finite constant {token!r}"
    )


def load_snapshot(path: str) -> Dict[str, Any]:
    """Parse a snapshot, rejecting NaN/Infinity tokens outright."""
    with open(path, encoding="utf-8") as fh:
        try:
            doc = json.load(fh, parse_constant=_reject_constant)
        except json.JSONDecodeError as exc:
            raise WorkloadError(
                f"snapshot {path} is not valid JSON: {exc}"
            ) from exc
    if not isinstance(doc, dict):
        raise WorkloadError(f"snapshot {path} is not a JSON object")
    return doc


# ---------------------------------------------------------------------------
# experiment table store
# ---------------------------------------------------------------------------

TABLE_STORE_NAME = "tables.json"


def table_store_path(directory: Optional[str] = None) -> str:
    if directory is None:
        directory = os.path.join(_repo_root(), "benchmarks", "results")
    return os.path.join(directory, TABLE_STORE_NAME)


def load_table_store(
    directory: Optional[str] = None,
) -> Dict[str, Dict[str, str]]:
    path = table_store_path(directory)
    if not os.path.exists(path):
        return {}
    with open(path, encoding="utf-8") as fh:
        store = json.load(fh)
    if not isinstance(store, dict):
        raise WorkloadError(f"table store {path} is not a JSON object")
    return store


def save_table_entry(
    experiment: str,
    render: str,
    csv: str,
    directory: Optional[str] = None,
) -> str:
    """Insert/replace one experiment's rendered table in the store."""
    store = load_table_store(directory)
    store[experiment] = {"render": render, "csv": csv}
    path = table_store_path(directory)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(json.dumps(store, sort_keys=True, indent=2) + "\n")
    return path


def load_table_entry(
    experiment: str, directory: Optional[str] = None
) -> Optional[Dict[str, str]]:
    return load_table_store(directory).get(experiment)
