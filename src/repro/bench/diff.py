"""Snapshot diff engine (``repro bench --diff OLD NEW``).

Compares two ``BENCH_<date>.json`` documents metric by metric, using
the per-metric tolerance bands the snapshot embeds (the new
snapshot's bands win, so tightening a band takes effect on the next
diff).  Failure classes:

* a metric drifted beyond its band in the bad direction;
* a determinism digest changed;
* a gate that passed in OLD is evaluated and failing in NEW;
* a metric or spec disappeared (unless ``allow_removed``).

Wall-clock metrics are reported but never fail a diff — machine
variance is normalised out by construction, because the primary
metrics are step counts and ratios.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

from .registry import Band

__all__ = ["DiffReport", "diff_snapshots", "render_report"]


@dataclass
class DiffReport:
    """Outcome of one snapshot comparison."""

    fatal: List[str] = field(default_factory=list)
    regressions: List[str] = field(default_factory=list)
    improvements: List[str] = field(default_factory=list)
    additions: List[str] = field(default_factory=list)
    removals: List[str] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    compared_metrics: int = 0

    @property
    def ok(self) -> bool:
        return not self.fatal and not self.regressions

    @property
    def exit_code(self) -> int:
        if self.fatal:
            return 2
        return 0 if not self.regressions else 1


def _band_for(entry: Dict[str, Any], metric: str) -> Band:
    bands = entry.get("bands") or {}
    data = bands.get(metric)
    if isinstance(data, dict):
        return Band.from_dict(data)
    return Band()


def diff_snapshots(
    old: Dict[str, Any],
    new: Dict[str, Any],
    allow_removed: bool = False,
) -> DiffReport:
    """Compare two parsed snapshot documents."""
    report = DiffReport()
    if old.get("schema") != new.get("schema"):
        report.fatal.append(
            f"schema mismatch: {old.get('schema')!r} vs "
            f"{new.get('schema')!r}"
        )
        return report
    if old.get("profile") != new.get("profile"):
        report.fatal.append(
            f"profile mismatch: OLD is {old.get('profile')!r}, NEW is "
            f"{new.get('profile')!r} — profiles measure different "
            "workload scales and cannot be compared"
        )
        return report
    old_specs: Dict[str, Any] = old.get("specs", {})
    new_specs: Dict[str, Any] = new.get("specs", {})
    for name in sorted(set(old_specs) - set(new_specs)):
        line = f"spec {name} removed"
        (report.notes if allow_removed else report.removals).append(line)
    for name in sorted(set(new_specs) - set(old_specs)):
        report.additions.append(f"spec {name} added")
    for name in sorted(set(old_specs) & set(new_specs)):
        _diff_spec(
            report, name, old_specs[name], new_specs[name],
            allow_removed,
        )
    if not allow_removed:
        report.regressions.extend(report.removals)
    return report


def _diff_spec(
    report: DiffReport,
    name: str,
    old: Dict[str, Any],
    new: Dict[str, Any],
    allow_removed: bool,
) -> None:
    old_metrics: Dict[str, Any] = old.get("metrics", {})
    new_metrics: Dict[str, Any] = new.get("metrics", {})
    if old.get("params") != new.get("params"):
        report.notes.append(
            f"{name}: params changed — drift may be intentional"
        )
    for metric in sorted(set(old_metrics) - set(new_metrics)):
        line = f"{name}.{metric} removed (was {old_metrics[metric]})"
        (report.notes if allow_removed else report.removals).append(line)
    for metric in sorted(set(new_metrics) - set(old_metrics)):
        report.additions.append(
            f"{name}.{metric} added ({new_metrics[metric]})"
        )
    for metric in sorted(set(old_metrics) & set(new_metrics)):
        old_value = float(old_metrics[metric])
        new_value = float(new_metrics[metric])
        band = _band_for(new, metric)
        verdict = band.classify(old_value, new_value)
        report.compared_metrics += 1
        if verdict == "ok":
            continue
        line = (
            f"{name}.{metric}: {old_value:g} -> {new_value:g} "
            f"(band rel={band.rel:g} abs={band.abs_tol:g} "
            f"{band.direction})"
        )
        if verdict == "regression":
            report.regressions.append(line)
        else:
            report.improvements.append(line)
    _diff_digests(report, name, old, new)
    _diff_gates(report, name, old, new)


def _diff_digests(
    report: DiffReport,
    name: str,
    old: Dict[str, Any],
    new: Dict[str, Any],
) -> None:
    old_digests: Dict[str, Any] = old.get("digests", {})
    new_digests: Dict[str, Any] = new.get("digests", {})
    for key in sorted(set(old_digests) & set(new_digests)):
        if old_digests[key] != new_digests[key]:
            report.regressions.append(
                f"{name}.digest[{key}] changed: "
                f"{old_digests[key][:12]}... -> "
                f"{new_digests[key][:12]}... (determinism artifact)"
            )


def _diff_gates(
    report: DiffReport,
    name: str,
    old: Dict[str, Any],
    new: Dict[str, Any],
) -> None:
    old_gates: Dict[str, Any] = old.get("gates", {})
    new_gates: Dict[str, Any] = new.get("gates", {})
    for gate_name in sorted(new_gates):
        gate = new_gates[gate_name]
        if gate.get("skipped"):
            continue
        if not gate.get("passed"):
            was = old_gates.get(gate_name, {})
            previously = (
                "passed" if was.get("passed")
                else "failed" if was.get("skipped") is False
                else "unmeasured"
            )
            report.regressions.append(
                f"{name}.gate[{gate_name}]: FAILED "
                f"({gate.get('value')!r} {gate.get('op')} "
                f"{gate.get('bound')!r} wanted; previously "
                f"{previously})"
            )
        elif old_gates.get(gate_name, {}).get("passed") is False:
            report.improvements.append(
                f"{name}.gate[{gate_name}]: now passing"
            )


def render_report(report: DiffReport) -> str:
    """The human-readable diff summary."""
    lines: List[str] = []
    for label, items in (
        ("FATAL", report.fatal),
        ("REGRESSION", report.regressions),
        ("improvement", report.improvements),
        ("added", report.additions),
        ("note", report.notes),
    ):
        for item in items:
            lines.append(f"{label}: {item}")
    lines.append(
        f"compared {report.compared_metrics} metrics: "
        f"{len(report.regressions)} regression(s), "
        f"{len(report.improvements)} improvement(s), "
        f"{len(report.additions)} addition(s)"
    )
    lines.append("diff: " + ("OK" if report.ok else "FAILED"))
    return "\n".join(lines)
