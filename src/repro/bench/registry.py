"""Declarative benchmark registry: specs, tolerance bands and gates.

A :class:`BenchSpec` describes one benchmark as data — its workload
seed, full/quick parameter profiles, the metrics it produces, the
per-metric tolerance :class:`Band` the diff engine applies between
snapshots, and the :class:`Gate` predicates CI enforces.  The runner
(:mod:`repro.bench.runner`) executes specs; the diff engine
(:mod:`repro.bench.diff`) compares the resulting ``BENCH_<date>.json``
snapshots; the bench files under ``benchmarks/`` import their gate
bounds from here so the standalone suite and the registry can never
disagree about what passes.

Design rule: **primary (gated) metrics are model-step counts and
ratios** — deterministic under a fixed seed, identical across
machines.  Wall-clock seconds are opt-in (lint rule R7), recorded
separately, and never diffed with bands.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..errors import WorkloadError

__all__ = [
    "Band",
    "Gate",
    "BenchSpec",
    "SpecResult",
    "register_spec",
    "get_spec",
    "list_specs",
    "list_suites",
    "select_specs",
    "clear_registry",
    "temporary_registry",
    "PROFILES",
]

#: Recognised execution profiles; ``quick`` overlays reduced params.
PROFILES = ("full", "quick")

#: Band directions: which drift counts as a regression.
_DIRECTIONS = ("any", "up_bad", "down_bad")

#: Gate comparison operators.
_OPS = (">=", "<=")


@dataclass(frozen=True)
class Band:
    """Per-metric tolerance for snapshot diffs.

    ``rel``/``abs_tol`` widen the acceptance interval around the old
    value; ``direction`` says which side of the interval is a
    regression (``"up_bad"`` for overheads, ``"down_bad"`` for
    speed-ups, ``"any"`` for counts that must simply stay put).
    """

    rel: float = 0.0
    abs_tol: float = 0.0
    direction: str = "any"

    def __post_init__(self) -> None:
        if self.rel < 0 or self.abs_tol < 0:
            raise WorkloadError("band tolerances must be >= 0")
        if self.direction not in _DIRECTIONS:
            raise WorkloadError(
                f"band direction {self.direction!r} not in {_DIRECTIONS}"
            )

    def allowance(self, old: float) -> float:
        """The absolute drift allowed around ``old``."""
        return max(self.abs_tol, self.rel * abs(old))

    def classify(self, old: float, new: float) -> str:
        """``"ok"``, ``"regression"`` or ``"improvement"`` for a drift."""
        drift = new - old
        if abs(drift) <= self.allowance(old):
            return "ok"
        if self.direction == "any":
            return "regression"
        worse_up = self.direction == "up_bad"
        if (drift > 0) == worse_up:
            return "regression"
        return "improvement"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rel": self.rel,
            "abs": self.abs_tol,
            "direction": self.direction,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Band":
        return cls(
            rel=float(data.get("rel", 0.0)),
            abs_tol=float(data.get("abs", 0.0)),
            direction=str(data.get("direction", "any")),
        )


@dataclass(frozen=True)
class Gate:
    """A pass/fail predicate over one metric.

    ``wallclock`` gates are only evaluated when the runner measured
    wall-clock (and only in the full profile — quick-profile workloads
    are too small for the calibrated bounds to be meaningful).
    """

    name: str
    metric: str
    op: str
    bound: float
    wallclock: bool = False

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise WorkloadError(f"gate op {self.op!r} not in {_OPS}")

    def holds(self, value: float) -> bool:
        if self.op == ">=":
            return value >= self.bound
        return value <= self.bound


@dataclass
class SpecResult:
    """What one spec execution produced.

    ``metrics`` are the deterministic, gated numbers; ``digests`` are
    exact-match strings (content hashes of determinism artifacts);
    ``wallclock_metrics`` are informational seconds/ratios present
    only when wall-clock measurement was requested.
    """

    metrics: Dict[str, float] = field(default_factory=dict)
    digests: Dict[str, str] = field(default_factory=dict)
    wallclock_metrics: Dict[str, float] = field(default_factory=dict)


#: runner(params, wallclock) -> SpecResult
SpecRunner = Callable[[Dict[str, Any], bool], SpecResult]


@dataclass
class BenchSpec:
    """One declaratively-registered benchmark."""

    name: str
    suite: str
    title: str
    seed: int
    runner: SpecRunner
    #: full-profile parameters (the benchmark files' scale).
    params: Dict[str, Any] = field(default_factory=dict)
    #: quick-profile overrides, merged over ``params``.
    quick_params: Dict[str, Any] = field(default_factory=dict)
    gates: Tuple[Gate, ...] = ()
    #: fnmatch pattern -> band; first match wins, else default_band.
    bands: Dict[str, Band] = field(default_factory=dict)
    default_band: Band = field(default_factory=Band)

    def effective_params(self, profile: str) -> Dict[str, Any]:
        if profile not in PROFILES:
            raise WorkloadError(
                f"unknown profile {profile!r}; expected one of {PROFILES}"
            )
        merged = dict(self.params)
        if profile == "quick":
            merged.update(self.quick_params)
        return merged

    def band_for(self, metric: str) -> Band:
        for pattern, band in self.bands.items():
            if fnmatchcase(metric, pattern):
                return band
        return self.default_band

    def gate_bound(self, gate_name: str) -> float:
        for gate in self.gates:
            if gate.name == gate_name:
                return gate.bound
        raise WorkloadError(
            f"spec {self.name!r} has no gate {gate_name!r}; "
            f"known: {[g.name for g in self.gates]}"
        )

    def run(self, profile: str = "full",
            wallclock: bool = False) -> SpecResult:
        result = self.runner(self.effective_params(profile), wallclock)
        _check_metrics(self.name, result.metrics)
        _check_metrics(self.name, result.wallclock_metrics)
        return result


def _check_metrics(spec: str, metrics: Dict[str, float]) -> None:
    for key, value in metrics.items():
        if isinstance(value, bool) or not isinstance(
            value, (int, float)
        ):
            raise WorkloadError(
                f"{spec}: metric {key!r} is {type(value).__name__}, "
                "expected int or float"
            )
        if value != value or value in (float("inf"), float("-inf")):
            raise WorkloadError(
                f"{spec}: metric {key!r} is {value!r} (NaN/Inf is "
                "not snapshot-able)"
            )


_REGISTRY: Dict[str, BenchSpec] = {}


def register_spec(spec: BenchSpec) -> BenchSpec:
    """Add a spec to the registry; names must be unique."""
    if spec.name in _REGISTRY:
        raise WorkloadError(
            f"benchmark spec {spec.name!r} is already registered"
        )
    _REGISTRY[spec.name] = spec
    return spec


def clear_registry() -> None:
    """Drop every registered spec (tests only)."""
    _REGISTRY.clear()


@contextmanager
def temporary_registry() -> Iterator[None]:
    """Swap in an empty registry for the duration (tests only).

    Restores the previous contents on exit so module-level
    registrations (which only happen once per process) survive.
    """
    # Force the one-time spec-package import *before* the swap, else
    # the registrations land in the temporary registry and are wiped
    # on exit (imports never re-run).
    saved = dict(_loaded())
    _REGISTRY.clear()
    try:
        yield
    finally:
        _REGISTRY.clear()
        _REGISTRY.update(saved)


def _loaded() -> Dict[str, BenchSpec]:
    # Importing the spec package populates the registry on first use.
    from . import specs  # noqa: F401

    return _REGISTRY


def get_spec(name: str) -> BenchSpec:
    registry = _loaded()
    if name not in registry:
        raise WorkloadError(
            f"unknown benchmark spec {name!r}; known: "
            f"{sorted(registry)}"
        )
    return registry[name]


def list_specs() -> List[str]:
    return sorted(_loaded())


def list_suites() -> List[str]:
    return sorted({spec.suite for spec in _loaded().values()})


def select_specs(
    names: Optional[Sequence[str]] = None,
    suites: Optional[Sequence[str]] = None,
) -> List[BenchSpec]:
    """Specs filtered by explicit names and/or suite names, sorted."""
    registry = _loaded()
    if names:
        selected = [get_spec(name) for name in names]
    else:
        selected = list(registry.values())
    if suites:
        known = set(list_suites())
        for suite in suites:
            if suite not in known:
                raise WorkloadError(
                    f"unknown suite {suite!r}; known: {sorted(known)}"
                )
        selected = [s for s in selected if s.suite in suites]
    return sorted(selected, key=lambda s: s.name)
