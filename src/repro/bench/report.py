"""EXPERIMENTS.md generator.

Assembles the paper-vs-measured report from the expectation registry
below plus the result tables the benchmark suite saved under
``benchmarks/results/``.  Regenerate with::

    python -m repro report

after ``pytest benchmarks/ --benchmark-only`` has refreshed the tables.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import List, Optional

from .harness import default_results_dir


@dataclass
class Expectation:
    """What the paper claims and what shape we require of measurements."""

    experiment: str
    paper_claim: str
    expected_shape: str
    commentary: str = ""


EXPECTATIONS: List[Expectation] = [
    Expectation(
        "e01",
        "Fact 1: any algorithm evaluating an instance of B(d, n) "
        "performs total work >= d^(n/2) — the size of a proof tree.",
        "Every measured sequential leaf count is >= the bound; the "
        "forced-0 instance family meets it exactly (the bound is "
        "tight); proof-tree extraction certifies the same number.",
    ),
    Expectation(
        "e02",
        "Proposition 1: Team SOLVE with p processors has speed-up "
        "Omega(sqrt(p)) on every instance, and instances exist capping "
        "it at O(sqrt(p)).",
        "On the all-ones hard family, speed-up / sqrt(p) stays inside "
        "constant bounds across p = 1..256; the speed-up is far below "
        "linear in p.",
    ),
    Expectation(
        "e03",
        "Theorem 1 + Corollary 1: Parallel SOLVE of width 1 achieves "
        "speed-up >= c(n+1) over Sequential SOLVE on every instance of "
        "B(d, n), with n+1 processors; its total work is <= c'S(T).",
        "Speed-up grows with n at fixed d; speed-up/(n+1) levels off "
        "at ~0.35 (d=2) and ~0.5 (d=3); work ratio c' stays ~1.6. The "
        "paper proves only a small c — as its Section 8 notes, "
        "'simulations indicate a better constant is achievable', which "
        "is exactly what we measure. e03b repeats this on the "
        "deterministic worst-case family (S = d^n).",
    ),
    Expectation(
        "e04",
        "Proposition 2: for every width w, P_w(T) <= P_w(H_T) — "
        "running on the skeleton is never faster.",
        "Zero violations over the ensemble for w in {1, 2, 3} (the "
        "paper proves this exactly via Property A).",
    ),
    Expectation(
        "e05",
        "Proposition 3: on skeletons, the number of width-1 steps of "
        "parallel degree k+1 is at most C(n, k)(d-1)^k; the proof's "
        "base-path codes strictly decrease lexicographically and "
        "encode the degree.",
        "Measured histograms never exceed the bound (utilisation <= "
        "1); both code properties verified on every instance.",
    ),
    Expectation(
        "e06",
        "Lemmas 1 & 2: the thresholds k1, k2 grow linearly in n "
        "(k_i >= alpha*n) for n beyond a d-dependent n0.",
        "k1/n and k2/n settle at positive constants (~0.09-0.19, "
        "larger for larger d); x0(d) grows with d as the proof "
        "requires.",
    ),
    Expectation(
        "e07",
        "Corollary 2: the linear speed-up persists on near-uniform "
        "trees (degrees in [alpha*d, d], depths in [beta*n, n]).",
        "Speed-up keeps growing with the height band on random "
        "(0.5, 0.6)-near-uniform trees of base degree 4.",
    ),
    Expectation(
        "e08",
        "Theorem 2: the pruning rule (delete unfinished v when "
        "alpha(v) >= beta(v)) preserves val(T-tilde) = val(T) at every "
        "step, for any evaluation policy.",
        "The invariant is checked after every basic step of width-1 "
        "Parallel alpha-beta across the ensemble: zero violations.",
    ),
    Expectation(
        "e09",
        "Fact 2: evaluating any instance of M(d, n) requires at least "
        "d^floor(n/2) + d^ceil(n/2) - 1 leaf evaluations.",
        "Every measured alpha-beta leaf count and every extracted "
        "two-sided certificate respects the bound.",
    ),
    Expectation(
        "e10",
        "Theorem 3 (+ Proposition 5): Parallel alpha-beta of width 1 "
        "achieves speed-up >= c(n+1) on every instance of M(d, n); "
        "Prop 5 claims P~_w(T) <= P~_w(H~_T).",
        "Speed-up grows with n, with n+1 processors, on continuous "
        "and tie-heavy integer leaves. REPRODUCTION FINDING: the "
        "literal Prop 5 inequality (stated without proof in the "
        "paper) FAILS on ~30-50% of random instances — parallel "
        "evaluation order can leave a node outside H~ unfinished "
        "whose sequential pruning bound is not yet available, "
        "inflating pruning numbers. The violation is always a small "
        "constant factor (max observed ~1.5x, bounded < 2x across all "
        "ensembles), so Theorem 3's conclusion is unaffected: its "
        "proof only needs P~(T) = O(P~(H~_T)).",
    ),
    Expectation(
        "e11",
        "Theorem 4 + Proposition 6: the node-expansion versions keep "
        "the linear speed-up; degree histograms obey the (n-k)C(n,k)"
        "(d-1)^k bound.",
        "Speed-up in expansions-per-step grows with n; skeleton "
        "histograms always within the Prop 6 bound.",
    ),
    Expectation(
        "e12",
        "Theorem 5: E(S*_R)/E(P*_R) >= c(n+1) — the randomized pair "
        "keeps a linear expected speed-up.",
        "On instances that are worst-case for the deterministic "
        "left-to-right order, the randomized ratio grows with n and "
        "the randomized sequential algorithm also beats the "
        "deterministic one (the motivation for Section 6).",
    ),
    Expectation(
        "e13",
        "Theorem 6: R-Parallel alpha-beta of width 1 achieves a "
        "linear expected speed-up over R-Sequential alpha-beta.",
        "Expected ratios grow with n for d = 2 and d = 3.",
    ),
    Expectation(
        "e14",
        "Section 6 discussion (Althofer's setting): on i.i.d. "
        "golden-ratio binary AND/OR trees, expected speed-up is "
        "proportional to the number of processors for moderate "
        "parallelism.",
        "Widths 0-3 use 1, n+1, O(n^2), O(n^3) processors; speed-up "
        "rises with width and speed-up/processors degrades gracefully "
        "(no cliff), matching the expected-case proportionality claim "
        "at moderate widths.",
    ),
    Expectation(
        "e15",
        "Section 7: the message-passing implementation (one processor "
        "per level, six message types, pre-emption rule) preserves "
        "the linear speed-up; a fixed processor budget works via zone "
        "multiplexing.",
        "Simulated wall-ticks stay within ~1.6-2x of the idealized "
        "P* across heights, so speed-up over sequential still grows "
        "with n; with p physical processors the run degrades "
        "gracefully as p shrinks.",
    ),
    Expectation(
        "e16",
        "Section 8 remarks: width w needs O(n^w) processors; the "
        "conjecture is that speed-up remains linear in processors for "
        "fixed width; the provable constant c 'is rather poor' but "
        "simulations indicate better.",
        "Processor usage measured at n+1 / O(n^2) / O(n^3) for widths "
        "1/2/3; speed-ups keep growing with width on all three "
        "instance families; the empirical width-1 constant c is "
        "0.26-0.44 — far better than the proof's.",
    ),
    Expectation(
        "e17",
        "Context (Tarsi 1983, cited for the baseline's optimality): in "
        "the i.i.d. model the left-to-right algorithm's expected cost "
        "follows a known conditional recurrence.",
        "Measured means match the exact expectation within sampling "
        "error for d = 2, 3 at the level-invariant bias — the "
        "sequential baseline behaves exactly as the optimality theory "
        "assumes.",
    ),
    Expectation(
        "e18",
        "Context (Pearl 1982, cited in Section 6): alpha-beta's "
        "branching factor on continuous i.i.d. MIN/MAX trees is "
        "xi_d/(1 - xi_d), strictly between sqrt(d) and d.",
        "Measured per-level growth of the alpha-beta leaf count sits "
        "between sqrt(d) and d and within ~25% of Pearl's asymptotic "
        "constant (finite heights bias it slightly high).",
    ),
    Expectation(
        "e19",
        "Context (Vornberger 1987, reference [11]; Pearl's SCOUT, "
        "reference [7]): the sequential comparators alpha-beta, SCOUT "
        "and SSS* at the leaf-count level.",
        "SSS* never evaluates more leaves than alpha-beta (Stockman "
        "dominance, exact on every instance); SCOUT's distinct-leaf "
        "count matches alpha-beta's ballpark but it re-visits leaves; "
        "minimax reads everything.",
    ),
    Expectation(
        "e20",
        "Ablations of our design choices (not paper claims).",
        "At matched processor budgets Team SOLVE is competitive on "
        "i.i.d. averages — the width policy's value is the "
        "every-instance guarantee (cf. E02's sqrt(p) cap). The "
        "Section 7 machine's critical-cascade-first scheduling is "
        "~3-4x faster than sibling-first, validating the default.",
    ),
    Expectation(
        "e21",
        "Section 8 open problem: the authors believe the speed-up "
        "stays linear in the processors for any fixed width, but the "
        "width-1 counting argument does not generalise.",
        "Measured evidence, no claim asserted: speed-up keeps rising "
        "with width and the per-processor constant stays positive; a "
        "naive generalisation of the Prop 3 binomial bound is "
        "VIOLATED on some instances — concrete confirmation that "
        "'the counting argument that works for width 1 is no longer "
        "applicable', as the paper says.",
    ),
    Expectation(
        "e22",
        "Theorem 1 again, asymptotically: the constant c is defined "
        "for n beyond an instance-family threshold n0, so it should "
        "hold steady as instances grow without bound.",
        "Using the vectorised fast path for S(T), the measured "
        "c = speed-up/(n+1) stays in a narrow band (~0.33-0.36) from "
        "4k-leaf to 4M-leaf instances — no drift toward zero, i.e. "
        "genuine linear-in-(n+1) speed-up, not a small-n artefact.",
    ),
]


def load_table_text(experiment: str,
                    directory: Optional[str] = None) -> str:
    """The saved rendered table for one experiment, if present."""
    from .snapshot import load_table_entry

    if directory is None:
        directory = default_results_dir()
    entry = load_table_entry(experiment, directory)
    if entry is None:
        return "(no saved results — run `pytest benchmarks/` first)"
    return entry["render"].rstrip()


HEADER = """# EXPERIMENTS — paper vs. measured

Reproduction of every theorem/proposition-level claim in Karp & Zhang,
*On Parallel Evaluation of Game Trees* (SPAA 1989).  The paper is
theoretical and contains **no numbered tables or figures**; its
evaluation is the set of claims below, each of which we regenerate
empirically.  Absolute step counts depend on instance ensembles and
seeds (all fixed and printed); what must match the paper is the
*shape* of each result — who wins, how costs scale, where bounds sit.

All measurements use the paper's cost models (basic steps / leaf
evaluations / node expansions), since wall-clock parallel speed-up of
pure Python is unobservable under the GIL; the Section 7 machine is a
discrete-event simulation of the paper's message-passing design.

Regenerate everything with `pytest benchmarks/ --benchmark-only`, then
rebuild this file with `python -m repro report`.
"""


def generate_experiments_md(
    results_dir: Optional[str] = None,
    out_path: Optional[str] = None,
) -> str:
    """Write EXPERIMENTS.md; returns the generated text."""
    parts = [HEADER]
    for exp in EXPECTATIONS:
        parts.append(f"\n## {exp.experiment.upper()}\n")
        parts.append(f"**Paper claim.** {exp.paper_claim}\n")
        parts.append(f"**Expected shape.** {exp.expected_shape}\n")
        if exp.commentary:
            parts.append(f"**Notes.** {exp.commentary}\n")
        parts.append("**Measured.**\n")
        parts.append("```")
        parts.append(load_table_text(exp.experiment, results_dir))
        extra = _extra_tables(exp.experiment, results_dir)
        if extra:
            parts.append("")
            parts.append(extra)
        parts.append("```")
    text = "\n".join(parts) + "\n"
    if out_path is None:
        repo = os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__)))))
        out_path = os.path.join(repo, "EXPERIMENTS.md")
    with open(out_path, "w") as fh:
        fh.write(text)
    return text


def _extra_tables(experiment: str, results_dir: Optional[str]) -> str:
    """Companion tables displayed under the same section."""
    companions = {"e03": ["e03b"]}
    out = []
    for extra in companions.get(experiment, []):
        out.append(load_table_text(extra, results_dir))
    return "\n".join(out)
