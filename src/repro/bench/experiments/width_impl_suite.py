"""Experiments E14-E16: width sweeps, Althofer's setting, Section 7.

E14 reproduces the setting of Althofer's probabilistic analysis
(Section 6's discussion): binary AND/OR trees at the golden-ratio bias,
speed-up versus processors as the width parameter grows.

E15 exercises the Section 7 message-passing implementation and its
fixed-processor zone multiplexing.

E16 addresses the Section 8 remarks: processor usage O(n^w) for width
w, the conjectured linear speed-up at higher widths, and the empirical
constant c ("some simulations we did indicate a better constant").
"""

from __future__ import annotations

import numpy as np

from ...core import parallel_solve, sequential_solve
from ...core.nodeexpansion import n_parallel_solve, n_sequential_solve
from ...simulator import simulate
from ...trees.generators import (
    all_ones,
    golden_ratio_instance,
    iid_boolean,
    sequential_worst_case,
)
from ...trees.generators.iid import level_invariant_bias
from ..harness import ExperimentTable, experiment

BASE_SEED = 20260705


@experiment("e14")
def e14_althofer_iid(
    heights=(10, 12, 14), trials: int = 6, widths=(0, 1, 2, 3)
) -> ExperimentTable:
    """Speed-up vs processors in the golden-ratio i.i.d. setting."""
    table = ExperimentTable(
        "e14",
        "Section 6 (Althofer) - golden-ratio AND/OR trees, width sweep",
        ["n", "w", "trials", "mean S", "mean P_w", "speed-up", "procs",
         "speed-up/procs"],
    )
    for n in heights:
        trees = [
            golden_ratio_instance(n, seed=BASE_SEED + 5 * t)
            for t in range(trials)
        ]
        seqs = [sequential_solve(t).num_steps for t in trees]
        for w in widths:
            steps, procs = [], 0
            for tree in trees:
                par = parallel_solve(tree, w)
                steps.append(par.num_steps)
                procs = max(procs, par.processors)
            speedup = float(np.sum(seqs) / np.sum(steps))
            table.add_row(
                n, w, trials, float(np.mean(seqs)), float(np.mean(steps)),
                speedup, procs, speedup / procs,
            )
    table.add_note(
        "for moderate widths the speed-up stays proportional to the "
        "processors used, matching Althofer's expected-case claim."
    )
    return table


@experiment("e15")
def e15_implementation_sim(
    heights=(8, 10, 12, 14), budgets=(2, 4, 8)
) -> ExperimentTable:
    """Section 7: the message-passing machine versus the ideal model."""
    table = ExperimentTable(
        "e15",
        "Section 7 - message-passing implementation of width-1 SOLVE",
        ["n", "phys procs", "S*", "P*", "ticks", "ticks/P*",
         "speed-up S*/ticks", "expansions", "messages"],
    )
    bias = level_invariant_bias(2)
    for n in heights:
        tree = iid_boolean(2, n, bias, seed=BASE_SEED + n)
        seq = n_sequential_solve(tree)
        par = n_parallel_solve(tree, 1)
        full = simulate(tree)
        assert full.value == seq.value == par.value
        table.add_row(
            n, n + 1, seq.num_steps, par.num_steps, full.ticks,
            float(full.ticks / par.num_steps),
            float(seq.num_steps / full.ticks), full.expansions,
            full.messages,
        )
    # Fixed processor budgets on the largest instance.
    n = max(heights)
    tree = iid_boolean(2, n, bias, seed=BASE_SEED + n)
    seq_steps = n_sequential_solve(tree).num_steps
    par_steps = n_parallel_solve(tree, 1).num_steps
    for p in budgets:
        res = simulate(tree, physical_processors=p)
        table.add_row(
            n, p, seq_steps, par_steps, res.ticks,
            float(res.ticks / par_steps),
            float(seq_steps / res.ticks), res.expansions, res.messages,
        )
    table.add_note(
        "full machine ticks stay within a small constant of the ideal "
        "P*, so the linear speed-up survives the implementation; zone "
        "multiplexing degrades gracefully with fewer processors."
    )
    return table


@experiment("e16")
def e16_width_sweep_constant(
    n: int = 12, widths=(0, 1, 2, 3)
) -> ExperimentTable:
    """Section 8 remarks: higher widths and the empirical constant c."""
    table = ExperimentTable(
        "e16",
        "Section 8 - width sweep (procs ~ n^w) and the constant c",
        ["family", "n", "w", "S", "P_w", "speed-up", "procs",
         "c = sp/(n+1)"],
    )
    bias = level_invariant_bias(2)
    families = [
        ("iid p*", iid_boolean(2, n, bias, seed=BASE_SEED)),
        ("worst-case", sequential_worst_case(2, n)),
        ("all-ones", all_ones(2, n)),
    ]
    for name, tree in families:
        seq = sequential_solve(tree)
        for w in widths:
            par = parallel_solve(tree, w)
            assert par.value == seq.value
            sp = seq.num_steps / par.num_steps
            table.add_row(
                name, n, w, seq.num_steps, par.num_steps, float(sp),
                par.processors, float(sp / (n + 1)),
            )
    table.add_note(
        "width w uses O(n^w) processors; measured speed-ups keep "
        "growing with w (the paper's conjecture), and the empirical c "
        "at width 1 is far better than the provable constant."
    )
    return table
