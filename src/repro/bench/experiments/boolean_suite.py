"""Experiments E1-E7: the Boolean (AND/OR - NOR) results of the paper.

Each experiment regenerates the measurement its paper claim is about;
the benchmark files assert the claim's *shape* on the returned table.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from ...analysis import (
    codes_lex_decreasing,
    degree_matches_code,
    fact1_lower_bound,
    lemma1_k1,
    lemma2_k2,
    proof_tree_leaf_count,
    prop3_bound,
    skeleton_of,
    trace_codes,
    x0_threshold,
)
from ...core import parallel_solve, sequential_solve, team_solve
from ...trees.generators import (
    all_ones,
    forced_value_instance,
    iid_boolean,
    near_uniform_boolean,
    sequential_worst_case,
)
from ...trees.generators.iid import level_invariant_bias
from ..harness import ExperimentTable, experiment

#: Deterministic base seed for every ensemble in the suite.
BASE_SEED = 20260705


@experiment("e01")
def e01_fact1_lower_bound(
    configs=((2, (6, 8, 10, 12, 14)), (3, (4, 6, 8))),
    iid_trials: int = 8,
) -> ExperimentTable:
    """Fact 1: total work >= d**(n//2); tight on minimal instances."""
    table = ExperimentTable(
        "e01",
        "Fact 1 - inherent lower bound on total work, B(d, n)",
        ["d", "n", "bound d^(n/2)", "S forced-0", "S forced-1",
         "min S iid", "proof leaves"],
    )
    for d, heights in configs:
        bias = level_invariant_bias(d)
        for n in heights:
            bound = fact1_lower_bound(d, n)
            s0 = sequential_solve(forced_value_instance(d, n, 0)).total_work
            s1 = sequential_solve(forced_value_instance(d, n, 1)).total_work
            iid_s = min(
                sequential_solve(
                    iid_boolean(d, n, bias, seed=BASE_SEED + t)
                ).total_work
                for t in range(iid_trials)
            )
            proof = proof_tree_leaf_count(d, n, 0)
            table.add_row(d, n, bound, s0, s1, iid_s, proof)
    table.add_note(
        "forced-0 instances meet the bound exactly; every measured S "
        "is >= the bound (the paper's Fact 1)."
    )
    return table


@experiment("e02")
def e02_team_solve_sqrt(
    n: int = 16, trials: int = 5, max_log2_p: int = 8
) -> ExperimentTable:
    """Proposition 1: Team SOLVE speed-up is Theta(sqrt(p))."""
    d = 2
    hard = all_ones(d, n)
    s_hard = sequential_solve(hard).num_steps
    bias = level_invariant_bias(d)
    iid_trees = [
        iid_boolean(d, n, bias, seed=BASE_SEED + t) for t in range(trials)
    ]
    s_iid = [sequential_solve(t).num_steps for t in iid_trees]
    table = ExperimentTable(
        "e02",
        f"Proposition 1 - Team SOLVE speed-up vs sqrt(p), B(2, {n})",
        ["p", "sqrt(p)", "hard steps", "hard speed-up",
         "hard ratio/sqrt(p)", "iid speed-up"],
    )
    for k in range(0, max_log2_p + 1):
        p = 2 ** k
        t_hard = team_solve(hard, p).num_steps
        sp_hard = s_hard / t_hard
        sp_iid = float(
            np.mean(
                [
                    s / team_solve(tree, p).num_steps
                    for s, tree in zip(s_iid, iid_trees)
                ]
            )
        )
        table.add_row(
            p, float(np.sqrt(p)), t_hard, float(sp_hard),
            float(sp_hard / np.sqrt(p)), sp_iid,
        )
    table.add_note(
        "hard = all-ones instance: speed-up tracks sqrt(p) "
        "(bounded ratio), matching the Theta(sqrt(p)) claim."
    )
    return table


@experiment("e03")
def e03_theorem1_linear_speedup(
    configs=((2, (8, 10, 12, 14, 16)), (3, (4, 6, 8, 10))),
    trials: int = 8,
) -> ExperimentTable:
    """Theorem 1 + Corollary 1: width-1 speed-up ~ c(n+1), work ~ c'S."""
    table = ExperimentTable(
        "e03",
        "Theorem 1 - Parallel SOLVE width 1 vs Sequential SOLVE",
        ["d", "n", "trials", "mean S", "mean P", "speed-up", "procs",
         "c = sp/(n+1)", "work/S (c')"],
    )
    for d, heights in configs:
        bias = level_invariant_bias(d)
        for n in heights:
            S, P, W, procs = [], [], [], 0
            for t in range(trials):
                tree = iid_boolean(d, n, bias, seed=BASE_SEED + 31 * t)
                seq = sequential_solve(tree)
                par = parallel_solve(tree, 1)
                assert seq.value == par.value
                S.append(seq.num_steps)
                P.append(par.num_steps)
                W.append(par.total_work)
                procs = max(procs, par.processors)
            speedup = float(np.sum(S) / np.sum(P))
            table.add_row(
                d, n, trials, float(np.mean(S)), float(np.mean(P)),
                speedup, procs, speedup / (n + 1),
                float(np.sum(W) / np.sum(S)),
            )
    table.add_note(
        "procs stays at n+1; c stabilises at a positive constant; the "
        "work ratio c' stays bounded (Corollary 1)."
    )
    return table


@experiment("e04")
def e04_prop2_skeleton_monotonicity(trials: int = 40) -> ExperimentTable:
    """Proposition 2: P_w(T) <= P_w(H_T) for every width."""
    table = ExperimentTable(
        "e04",
        "Proposition 2 - parallel steps on T vs on the skeleton H_T",
        ["w", "trials", "violations", "mean P(T)/P(H)", "max P(T)/P(H)"],
    )
    rng = np.random.default_rng(BASE_SEED)
    cases = []
    for t in range(trials):
        d = int(rng.integers(2, 4))
        n = int(rng.integers(4, 10))
        tree = iid_boolean(d, n, level_invariant_bias(d),
                           seed=BASE_SEED + t)
        cases.append((tree, skeleton_of(tree)))
    for w in (1, 2, 3):
        ratios = []
        violations = 0
        for tree, skel in cases:
            pt = parallel_solve(tree, w).num_steps
            ph = parallel_solve(skel, w).num_steps
            ratios.append(pt / ph)
            if pt > ph:
                violations += 1
        table.add_row(
            w, trials, violations, float(np.mean(ratios)),
            float(np.max(ratios)),
        )
    table.add_note("Boolean Prop 2 is exact: zero violations expected.")
    return table


@experiment("e05")
def e05_prop3_degree_bounds(
    configs=((2, 12), (3, 7)), trials: int = 10
) -> ExperimentTable:
    """Proposition 3: t_{k+1}(H_T) <= C(n,k)(d-1)^k; code properties."""
    table = ExperimentTable(
        "e05",
        "Proposition 3 - step-degree histogram vs binomial bound",
        ["d", "n", "k", "bound", "max t_{k+1}", "mean t_{k+1}",
         "utilisation"],
    )
    all_lex = all_deg = True
    for d, n in configs:
        bias = level_invariant_bias(d)
        hists = []
        for t in range(trials):
            tree = iid_boolean(d, n, bias, seed=BASE_SEED + 7 * t)
            skel = skeleton_of(tree)
            records = trace_codes(skel, width=1)
            all_lex &= codes_lex_decreasing(records)
            all_deg &= degree_matches_code(records)
            hists.append(Counter(r.degree for r in records))
        for k in range(0, 6):
            bound = prop3_bound(n, k, d)
            observed = [h.get(k + 1, 0) for h in hists]
            mx = max(observed)
            table.add_row(
                d, n, k, bound, mx, float(np.mean(observed)),
                (mx / bound) if bound else 0.0,
            )
    table.add_note(f"codes lexicographically decreasing: {all_lex}")
    table.add_note(f"degree == 1 + #nonzero(code) everywhere: {all_deg}")
    return table


@experiment("e06")
def e06_lemma_constants() -> ExperimentTable:
    """Lemmas 1-2: k1, k2 grow linearly in n; x0(d) thresholds."""
    table = ExperimentTable(
        "e06",
        "Lemmas 1 & 2 - k1(n), k2(n) linear in n; x0(d)",
        ["d", "n", "k1", "k2", "k1/n", "k2/n", "x0(d)"],
    )
    for d in (2, 3, 4):
        x0 = x0_threshold(d)
        for n in (20, 40, 80, 160, 320):
            k1 = lemma1_k1(n, d)
            k2 = lemma2_k2(n, d)
            table.add_row(d, n, k1, k2, k1 / n, k2 / n, float(x0))
    table.add_note(
        "k1/n and k2/n settle at positive constants (alpha in the "
        "lemmas), larger for larger d."
    )
    return table


@experiment("e07")
def e07_corollary2_near_uniform(
    heights=(8, 10, 12, 14, 16), trials: int = 8
) -> ExperimentTable:
    """Corollary 2: near-uniform trees keep the linear speed-up."""
    table = ExperimentTable(
        "e07",
        "Corollary 2 - Parallel SOLVE width 1 on near-uniform trees",
        ["n", "alpha", "beta", "trials", "mean S", "mean P", "speed-up",
         "max procs"],
    )
    alpha, beta = 0.5, 0.6
    for n in heights:
        S, P, procs = [], [], 0
        for t in range(trials):
            tree = near_uniform_boolean(
                4, n, alpha, beta, p=0.3, seed=BASE_SEED + 13 * t + n,
            )
            seq = sequential_solve(tree)
            par = parallel_solve(tree, 1)
            assert seq.value == par.value
            S.append(seq.num_steps)
            P.append(par.num_steps)
            procs = max(procs, par.processors)
        table.add_row(
            n, alpha, beta, trials, float(np.mean(S)), float(np.mean(P)),
            float(np.sum(S) / np.sum(P)), procs,
        )
    table.add_note(
        "speed-up keeps growing with n despite irregular degrees "
        "(between alpha*d and d) and depths (between beta*n and n)."
    )
    return table


@experiment("e03b")
def e03b_worst_case_family(
    configs=((2, (8, 10, 12, 14)), (3, (5, 7, 9))),
) -> ExperimentTable:
    """Theorem 1 on the deterministic worst-case family (S = d**n)."""
    table = ExperimentTable(
        "e03b",
        "Theorem 1 on sequential-worst-case instances (S(T) = d^n)",
        ["d", "n", "S", "P", "speed-up", "procs", "c = sp/(n+1)"],
    )
    for d, heights in configs:
        for n in heights:
            tree = sequential_worst_case(d, n)
            seq = sequential_solve(tree)
            par = parallel_solve(tree, 1)
            assert seq.value == par.value
            sp = seq.num_steps / par.num_steps
            table.add_row(
                d, n, seq.num_steps, par.num_steps, float(sp),
                par.processors, float(sp / (n + 1)),
            )
    table.add_note(
        "on the all-leaves-forced family the width-1 algorithm achieves "
        "its strongest speed-ups (dense live frontier)."
    )
    return table
