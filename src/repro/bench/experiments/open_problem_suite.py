"""E21: empirical exploration of the paper's open problem.

Section 8: "We believe that the speed-up on uniform trees should
remain linear in the number of processors for any fixed width.  We are
not able to prove this.  The counting argument that works for width 1
is no longer applicable to higher widths."

This experiment gathers the evidence a proof attempt would want:

* per-degree step histograms of width-2 and width-3 runs on skeletons,
  against the natural guess that the width-1 bound generalises to
  ``t_{k+1} <= C(n + w - 1, k) * (d-1)^k``-style binomial growth;
* the achieved speed-up divided by processors-used across widths — the
  conjectured "linear in processors" constant.

No claim is asserted beyond what is measured; the table records the
shapes so future work can check candidate bounds against them.
"""

from __future__ import annotations

import math
from collections import Counter

from ...analysis import skeleton_of
from ...core import parallel_solve, sequential_solve
from ...trees.generators import iid_boolean, sequential_worst_case
from ...trees.generators.iid import level_invariant_bias
from ..harness import ExperimentTable, experiment

BASE_SEED = 20260705


def _candidate_bound(n: int, k: int, d: int, w: int) -> int:
    """A natural (unproven!) generalisation of the Prop 3 bound."""
    if k < 0:
        return 0
    return math.comb(n + w - 1, min(k, n + w - 1)) * (d - 1) ** k * w


@experiment("e21")
def e21_width_open_problem(
    iid_heights=(12, 14), worst_height: int = 12, widths=(1, 2, 3)
) -> ExperimentTable:
    """Evidence table for the fixed-width linear speed-up conjecture."""
    table = ExperimentTable(
        "e21",
        "Section 8 open problem - higher-width degree histograms "
        "and efficiency",
        ["family", "d", "n", "w", "steps", "speed-up", "procs",
         "sp/procs", "max degree", "hist<=cand"],
    )
    bias = level_invariant_bias(2)
    cases = [
        ("iid p*", iid_boolean(2, n, bias, seed=BASE_SEED + i))
        for i, n in enumerate(iid_heights)
    ]
    cases.append(("worst", sequential_worst_case(2, worst_height)))
    for family, tree in cases:
        n = tree.height()
        d = tree.branching
        skel = skeleton_of(tree)
        seq_steps = sequential_solve(tree).num_steps
        for w in widths:
            par = parallel_solve(tree, w)
            par_skel = parallel_solve(skel, w)
            hist = Counter(par_skel.trace.degrees)
            within = all(
                count <= _candidate_bound(n, deg - 1, d, w)
                for deg, count in hist.items()
            )
            speedup = seq_steps / par.num_steps
            table.add_row(
                family, d, n, w, par.num_steps, float(speedup),
                par.processors, float(speedup / par.processors),
                par.processors, within,
            )
    table.add_note(
        "hist<=cand checks the measured skeleton histograms against "
        "the *unproven* candidate bound C(n+w-1,k)(d-1)^k * w; the "
        "speed-up/processors column is the conjecture's constant — "
        "it shrinks with w (processor growth outpaces step shrinkage "
        "on these instances) but stays well away from zero."
    )
    return table
