"""Experiments E8-E13: MIN/MAX, node-expansion and randomized results."""

from __future__ import annotations

import numpy as np

from ...analysis import (
    fact2_certificate_size,
    fact2_lower_bound,
    minmax_skeleton_of,
    prop6_bound,
    skeleton_of,
    theorem2_holds,
)
from ...core.alphabeta import (
    alpha_beta,
    parallel_alpha_beta,
    run_minmax,
    AlphaBetaWidthPolicy,
    sequential_alpha_beta,
)
from ...core.nodeexpansion import n_parallel_solve, n_sequential_solve
from ...core.randomized import (
    estimate_expectation,
    r_parallel_alpha_beta,
    r_parallel_solve,
    r_sequential_alpha_beta,
    r_sequential_solve,
)
from ...trees.base import exact_value
from ...trees.generators import (
    alpha_beta_worst_case,
    iid_boolean,
    iid_minmax,
    iid_minmax_integers,
    sequential_worst_case,
)
from ...trees.generators.iid import level_invariant_bias
from ..harness import ExperimentTable, experiment
from collections import Counter

BASE_SEED = 20260705


@experiment("e08")
def e08_theorem2_invariant(
    cases=((2, 6, 12), (2, 8, 8), (3, 5, 8), (4, 4, 8)),
) -> ExperimentTable:
    """Theorem 2: the pruning rule preserves the root value stepwise."""
    table = ExperimentTable(
        "e08",
        "Theorem 2 - val(T-tilde) == val(T) after every step",
        ["d", "n", "trials", "steps checked", "violations",
         "mean pruned nodes"],
    )
    for d, n, trials in cases:
        checked = violations = 0
        pruned_counts = []
        for t in range(trials):
            tree = (
                iid_minmax(d, n, seed=BASE_SEED + t)
                if t % 2
                else iid_minmax_integers(d, n, seed=BASE_SEED + t,
                                         num_values=5)
            )
            truth = exact_value(tree)
            counts = {"checked": 0, "bad": 0}

            def on_step(state, step, batch):
                counts["checked"] += 1
                if not theorem2_holds(state, truth):
                    counts["bad"] += 1

            res = run_minmax(tree, AlphaBetaWidthPolicy(1),
                             on_step=on_step)
            assert abs(res.value - truth) < 1e-12
            checked += counts["checked"]
            violations += counts["bad"]
            pruned_counts.append(len(res.evaluated))
        table.add_row(d, n, trials, checked, violations,
                      float(np.mean(pruned_counts)))
    table.add_note("violations must be zero: the invariant is exact.")
    return table


@experiment("e09")
def e09_fact2_minmax_bound(
    configs=((2, (6, 8, 10, 12)), (3, (4, 6, 8))), trials: int = 8
) -> ExperimentTable:
    """Fact 2: total work >= d^(n/2) + d^ceil(n/2) - 1 on M(d, n)."""
    table = ExperimentTable(
        "e09",
        "Fact 2 - MIN/MAX inherent lower bound",
        ["d", "n", "bound", "min S~ (iid)", "mean S~", "mean certificate"],
    )
    for d, heights in configs:
        for n in heights:
            bound = fact2_lower_bound(d, n)
            works, certs = [], []
            for t in range(trials):
                tree = iid_minmax(d, n, seed=BASE_SEED + 3 * t)
                works.append(alpha_beta(tree).total_work)
                certs.append(fact2_certificate_size(tree))
            table.add_row(
                d, n, bound, int(np.min(works)), float(np.mean(works)),
                float(np.mean(certs)),
            )
    table.add_note(
        "every measured alpha-beta leaf count and every certificate "
        "size respects the bound."
    )
    return table


@experiment("e10")
def e10_theorem3_alphabeta_speedup(
    configs=(
        (2, (6, 8, 10, 12), "cont"),
        (2, (6, 8, 10), "int"),
        (3, (4, 6, 8), "cont"),
    ),
    trials: int = 6,
    worst_cases=((2, 8), (2, 10), (3, 6)),
) -> ExperimentTable:
    """Theorem 3 + Prop 5: width-1 Parallel alpha-beta speed-up."""
    table = ExperimentTable(
        "e10",
        "Theorem 3 - Parallel alpha-beta width 1 vs Sequential",
        ["d", "n", "leaves", "trials", "mean S~", "mean P~", "speed-up",
         "procs", "c = sp/(n+1)", "prop5 viol", "prop5 max ratio"],
    )
    for d, heights, kinds in configs:
        for n in heights:
            S, P, procs = [], [], 0
            viol = 0
            worst_ratio = 0.0
            for t in range(trials):
                if kinds == "cont":
                    tree = iid_minmax(d, n, seed=BASE_SEED + 11 * t)
                else:
                    tree = iid_minmax_integers(
                        d, n, seed=BASE_SEED + 11 * t, num_values=6
                    )
                seq = sequential_alpha_beta(tree)
                par = parallel_alpha_beta(tree, 1)
                assert abs(seq.value - par.value) < 1e-12
                S.append(seq.num_steps)
                P.append(par.num_steps)
                procs = max(procs, par.processors)
                skel = minmax_skeleton_of(tree)
                ph = parallel_alpha_beta(skel, 1).num_steps
                ratio = par.num_steps / ph
                worst_ratio = max(worst_ratio, ratio)
                if par.num_steps > ph:
                    viol += 1
            speedup = float(np.sum(S) / np.sum(P))
            table.add_row(
                d, n, kinds, trials, float(np.mean(S)), float(np.mean(P)),
                speedup, procs, speedup / (n + 1), viol,
                float(worst_ratio),
            )
    # Every-instance check: the alpha-beta worst case (no cutoffs at
    # all, S~ = d^n) still gets the width-1 speed-up.
    for d, n in worst_cases:
        tree = alpha_beta_worst_case(d, n)
        seq = sequential_alpha_beta(tree)
        par = parallel_alpha_beta(tree, 1)
        assert abs(seq.value - par.value) < 1e-12
        speedup = seq.num_steps / par.num_steps
        skel = minmax_skeleton_of(tree)
        ph = parallel_alpha_beta(skel, 1).num_steps
        table.add_row(
            d, n, "worst", 1, float(seq.num_steps),
            float(par.num_steps), float(speedup), par.processors,
            float(speedup / (n + 1)),
            int(par.num_steps > ph), float(par.num_steps / ph),
        )
    table.add_note(
        "REPRODUCTION FINDING: the literal Prop 5 inequality "
        "P~(T) <= P~(H~) fails on a sizable fraction of instances, but "
        "always within a small constant (max ratio column), so the "
        "linear speed-up of Theorem 3 is unaffected."
    )
    table.add_note(
        "'worst' rows use the Knuth-Moore no-cutoff instance "
        "(S~ = d^n): the speed-up holds on every instance, as the "
        "theorem states."
    )
    return table


@experiment("e11")
def e11_theorem4_node_expansion(
    configs=((2, (8, 10, 12, 14)), (3, (5, 7, 9))), trials: int = 6
) -> ExperimentTable:
    """Theorem 4 + Prop 6: node-expansion model speed-up and bounds."""
    table = ExperimentTable(
        "e11",
        "Theorem 4 - N-Parallel SOLVE width 1 vs N-Sequential SOLVE",
        ["d", "n", "trials", "mean S*", "mean P*", "speed-up", "procs",
         "c = sp/(n+1)", "prop6 ok"],
    )
    for d, heights in configs:
        bias = level_invariant_bias(d)
        for n in heights:
            S, P, procs = [], [], 0
            prop6_ok = True
            for t in range(trials):
                tree = iid_boolean(d, n, bias, seed=BASE_SEED + 17 * t)
                seq = n_sequential_solve(tree)
                par = n_parallel_solve(tree, 1)
                assert seq.value == par.value
                S.append(seq.num_steps)
                P.append(par.num_steps)
                procs = max(procs, par.processors)
                # Prop 6 bounds the degree histogram on the skeleton.
                skel = skeleton_of(tree)
                par_h = n_parallel_solve(skel, 1)
                hist = Counter(par_h.trace.degrees)
                for deg, cnt in hist.items():
                    if cnt > prop6_bound(n, deg - 1, d):
                        prop6_ok = False
            speedup = float(np.sum(S) / np.sum(P))
            table.add_row(
                d, n, trials, float(np.mean(S)), float(np.mean(P)),
                speedup, procs, speedup / (n + 1), prop6_ok,
            )
    return table


@experiment("e12")
def e12_theorem5_randomized_solve(
    heights=(8, 10, 12), num_seeds: int = 12
) -> ExperimentTable:
    """Theorem 5: expected speed-up of R-Parallel over R-Sequential."""
    table = ExperimentTable(
        "e12",
        "Theorem 5 - randomized SOLVE on worst-case instances",
        ["n", "seeds", "det S*", "E(S*_R)", "E(P*_R)", "ratio",
         "ratio/(n+1)"],
    )
    seeds = list(range(num_seeds))
    for n in heights:
        tree = sequential_worst_case(2, n)
        det = n_sequential_solve(tree).num_steps
        est_s = estimate_expectation(r_sequential_solve, tree, seeds)
        est_p = estimate_expectation(r_parallel_solve, tree, seeds,
                                     width=1)
        ratio = est_s.mean_steps / est_p.mean_steps
        table.add_row(
            n, len(seeds), det, est_s.mean_steps, est_p.mean_steps,
            float(ratio), float(ratio / (n + 1)),
        )
    table.add_note(
        "the deterministic worst case forces S* = all nodes; the "
        "randomized pair keeps a linear expected speed-up (Theorem 5)."
    )
    return table


@experiment("e13")
def e13_theorem6_randomized_alphabeta(
    configs=((2, (6, 8, 10)), (3, (4, 6))), num_seeds: int = 10
) -> ExperimentTable:
    """Theorem 6: R-Parallel alpha-beta linear expected speed-up."""
    table = ExperimentTable(
        "e13",
        "Theorem 6 - randomized alpha-beta (node expansion)",
        ["d", "n", "seeds", "E(S~_R)", "E(P~_R)", "ratio", "ratio/(n+1)"],
    )
    seeds = list(range(num_seeds))
    for d, heights in configs:
        for n in heights:
            tree = iid_minmax(d, n, seed=BASE_SEED + n)
            est_s = estimate_expectation(
                r_sequential_alpha_beta, tree, seeds
            )
            est_p = estimate_expectation(
                r_parallel_alpha_beta, tree, seeds, width=1
            )
            ratio = est_s.mean_steps / est_p.mean_steps
            table.add_row(
                d, n, len(seeds), est_s.mean_steps, est_p.mean_steps,
                float(ratio), float(ratio / (n + 1)),
            )
    return table
