"""Extension experiments E17-E20.

These go beyond the paper's explicit claims, covering the surrounding
literature it builds on and the design choices DESIGN.md calls out:

* E17 — the i.i.d. optimality context (Tarsi): measured Sequential
  SOLVE cost vs the exact expectation recurrence;
* E18 — Pearl's alpha-beta branching factor vs measured growth;
* E19 — sequential baselines head-to-head: minimax / alpha-beta /
  SCOUT / SSS* (the reference [11] comparison's sequential side);
* E20 — ablations: Team vs Parallel at matched processor budgets, and
  the machine's work-priority scheduling choice.
"""

from __future__ import annotations

import numpy as np

from ...analysis import (
    empirical_growth_factor,
    pearl_branching_factor,
    solve_expected_cost,
)
from ...core import parallel_solve, sequential_solve, team_solve
from ...core.alphabeta import alpha_beta, minimax, scout, sss_star
from ...simulator import simulate
from ...trees.generators import iid_boolean, iid_minmax
from ...trees.generators.iid import level_invariant_bias
from ..harness import ExperimentTable, experiment

BASE_SEED = 20260705


@experiment("e17")
def e17_solve_expectation(
    configs=((2, (8, 10, 12)), (3, (5, 7))), trials: int = 30
) -> ExperimentTable:
    """Tarsi's model: measured SOLVE cost vs the exact recurrence."""
    table = ExperimentTable(
        "e17",
        "i.i.d. model - Sequential SOLVE cost vs exact expectation",
        ["d", "n", "p", "trials", "E[S] theory", "mean S measured",
         "ratio"],
    )
    for d, heights in configs:
        p = level_invariant_bias(d)
        for n in heights:
            theory = solve_expected_cost(d, n, p).expected_cost
            measured = float(np.mean([
                sequential_solve(
                    iid_boolean(d, n, p, seed=BASE_SEED + s)
                ).total_work
                for s in range(trials)
            ]))
            table.add_row(
                d, n, float(p), trials, float(theory), measured,
                measured / theory,
            )
    table.add_note(
        "the measured mean tracks the closed-form expectation within "
        "sampling error — the baseline behaves exactly as the theory "
        "the paper's optimality citations assume."
    )
    return table


@experiment("e18")
def e18_pearl_branching_factor(
    configs=((2, (6, 8, 10, 12)), (3, (4, 6, 8))), trials: int = 12
) -> ExperimentTable:
    """Pearl (1982): alpha-beta growth factor on continuous i.i.d."""
    table = ExperimentTable(
        "e18",
        "Pearl's branching factor - alpha-beta vs minimax growth",
        ["d", "heights", "measured ab growth", "pearl xi/(1-xi)",
         "minimax growth d", "floor sqrt(d)"],
    )
    for d, heights in configs:
        costs = []
        for n in heights:
            mean_cost = float(np.mean([
                alpha_beta(iid_minmax(d, n, seed=BASE_SEED + s))
                .total_work
                for s in range(trials)
            ]))
            costs.append((n, mean_cost))
        growth = empirical_growth_factor(costs)
        table.add_row(
            d, str(heights), growth, pearl_branching_factor(d),
            d, float(np.sqrt(d)),
        )
    table.add_note(
        "measured growth sits between sqrt(d) and d, close to Pearl's "
        "asymptotic xi/(1-xi) (finite-height effects bias it high)."
    )
    return table


@experiment("e19")
def e19_sequential_baselines(
    heights=(6, 8, 10), trials: int = 8
) -> ExperimentTable:
    """Minimax vs alpha-beta vs SCOUT vs SSS* leaf counts."""
    table = ExperimentTable(
        "e19",
        "Sequential baselines on M(2, n), continuous i.i.d. leaves",
        ["n", "trials", "minimax", "alpha-beta", "scout events",
         "scout distinct", "sss*", "sss* <= ab"],
    )
    for n in heights:
        mm, ab, sc_e, sc_d, ss = [], [], [], [], []
        dominance = True
        for t in range(trials):
            tree = iid_minmax(2, n, seed=BASE_SEED + 23 * t)
            mm.append(minimax(tree).total_work)
            ab_work = alpha_beta(tree).total_work
            ab.append(ab_work)
            sc = scout(tree)
            sc_e.append(len(sc.evaluated))
            sc_d.append(sc.distinct_leaves)
            ss_work = sss_star(tree).total_work
            ss.append(ss_work)
            dominance &= ss_work <= ab_work
        table.add_row(
            n, trials, float(np.mean(mm)), float(np.mean(ab)),
            float(np.mean(sc_e)), float(np.mean(sc_d)),
            float(np.mean(ss)), dominance,
        )
    table.add_note(
        "SSS* never exceeds alpha-beta (Stockman dominance); SCOUT's "
        "distinct-leaf count is competitive but it re-visits leaves."
    )
    return table


@experiment("e20")
def e20_ablations(
    heights=(10, 12, 14),
    trials: int = 6,
    machine_heights=(10, 12),
    budgets=(2, 4, 8),
) -> ExperimentTable:
    """Design-choice ablations: matched processors; machine scheduling."""
    table = ExperimentTable(
        "e20",
        "Ablations - matched-processor Team vs Parallel; machine "
        "work-priority",
        ["ablation", "n", "setting", "steps/ticks", "speed-up"],
    )
    bias = level_invariant_bias(2)
    # (a) Team SOLVE given exactly the processors Parallel SOLVE uses.
    for n in heights:
        trees = [
            iid_boolean(2, n, bias, seed=BASE_SEED + 7 * t)
            for t in range(trials)
        ]
        seq = [sequential_solve(t).num_steps for t in trees]
        par = [parallel_solve(t, 1) for t in trees]
        procs = max(p.processors for p in par)
        team = [team_solve(t, procs).num_steps for t in trees]
        table.add_row(
            "team@n+1", n, f"p={procs}",
            float(np.mean(team)), float(np.sum(seq) / np.sum(team)),
        )
        par_steps = [p.num_steps for p in par]
        table.add_row(
            "parallel w=1", n, f"p<={procs}",
            float(np.mean(par_steps)),
            float(np.sum(seq) / np.sum(par_steps)),
        )
    # (b) Machine scheduling: critical-cascade-first vs sibling-first.
    for n in machine_heights:
        tree = iid_boolean(2, n, bias, seed=BASE_SEED + n)
        seq_steps = sequential_solve(tree).num_steps
        for priority in ("p_first", "s_first"):
            res = simulate(tree, work_priority=priority)
            table.add_row(
                "machine priority", n, priority, res.ticks,
                float(seq_steps / res.ticks),
            )
    # (c) Fixed-p: idealized bounded-processor model (perfect central
    # scheduler) vs the message-passing machine's zone multiplexing.
    n = max(machine_heights)
    tree = iid_boolean(2, n, bias, seed=BASE_SEED + n)
    seq_steps = sequential_solve(tree).num_steps
    for p in budgets:
        ideal = parallel_solve(tree, 1, max_processors=p)
        machine = simulate(tree, physical_processors=p)
        table.add_row(
            "fixed-p ideal", n, f"p={p}", ideal.num_steps,
            float(seq_steps / ideal.num_steps),
        )
        table.add_row(
            "fixed-p machine", n, f"p={p}", machine.ticks,
            float(seq_steps / machine.ticks),
        )
    table.add_note(
        "honest average-case result: at matched processor counts Team "
        "SOLVE is competitive or slightly faster on i.i.d. instances — "
        "the width policy's value is its EVERY-INSTANCE guarantee "
        "(Team collapses to sqrt(p) on the adversarial families of "
        "e02, where width-1 keeps its linear speed-up, see e03b); the "
        "machine's p-first scheduling choice is confirmed ~3-4x "
        "faster than sibling-first."
    )
    table.add_note(
        "fixed-p rows: the gap between the idealized bounded-processor "
        "model and the zone-multiplexed machine (~4-5x in ticks) is "
        "the price of message latency, pre-emption churn and "
        "round-robin multiplexing — the constant Section 7's analysis "
        "absorbs."
    )
    return table
