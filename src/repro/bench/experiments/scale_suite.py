"""E22: Theorem 1 at scale (million-leaf instances).

The vectorised fast path computes the sequential baseline S(T) on
instances far beyond what a node-walking engine should be asked to do,
so the asymptotic trend of Theorem 1's constant c = speed-up/(n+1) can
be observed over a much longer height range than E03 covers.
"""

from __future__ import annotations

import numpy as np

from ...core import parallel_solve
from ...core.fastpath import uniform_sequential_cost
from ...trees.generators import iid_boolean
from ...trees.generators.iid import level_invariant_bias
from ..harness import ExperimentTable, experiment

BASE_SEED = 20260705


@experiment("e22")
def e22_theorem1_at_scale(
    height_trials=((12, 3), (14, 3), (16, 3), (18, 2), (20, 2),
                   (22, 1)),
) -> ExperimentTable:
    """Width-1 speed-up over heights 12..22 (up to 4M leaves)."""
    table = ExperimentTable(
        "e22",
        "Theorem 1 at scale - heights up to 2^22 leaves",
        ["n", "leaves", "trials", "mean S", "mean P", "speed-up",
         "procs", "c = sp/(n+1)"],
    )
    bias = level_invariant_bias(2)
    for n, trials in height_trials:
        S, P, procs = [], [], 0
        for t in range(trials):
            tree = iid_boolean(2, n, bias, seed=BASE_SEED + 97 * t)
            value, s_cost = uniform_sequential_cost(tree)
            par = parallel_solve(tree, 1)
            assert par.value == value
            S.append(s_cost)
            P.append(par.num_steps)
            procs = max(procs, par.processors)
        speedup = float(np.sum(S) / np.sum(P))
        table.add_row(
            n, 2 ** n, trials, float(np.mean(S)), float(np.mean(P)),
            speedup, procs, speedup / (n + 1),
        )
    table.add_note(
        "S(T) from the vectorised fast path (cross-checked against "
        "the engine in the test suite); P(T) from the step engine. "
        "The constant c holds steady (~0.33-0.35) across a 1000x "
        "range of instance sizes — Theorem 1's linearity, observed "
        "well past the n0 threshold."
    )
    return table
