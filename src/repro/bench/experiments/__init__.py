"""Experiment implementations, one per DESIGN.md index entry.

Importing this package registers every experiment with the harness.
"""

from . import boolean_suite  # noqa: F401  (E1-E7)
from . import extension_suite  # noqa: F401  (E17-E20)
from . import minmax_suite  # noqa: F401  (E8-E13)
from . import open_problem_suite  # noqa: F401  (E21)
from . import scale_suite  # noqa: F401  (E22)
from . import width_impl_suite  # noqa: F401  (E14-E16)

__all__ = [
    "boolean_suite",
    "extension_suite",
    "minmax_suite",
    "open_problem_suite",
    "scale_suite",
    "width_impl_suite",
]
