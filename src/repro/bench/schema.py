"""Structural validation of benchmark snapshots.

``validate_snapshot`` returns a list of human-readable problems (empty
means valid), in the style of ``repro.telemetry.validate_chrome_trace``
and ``repro.lint.flow.validate_sarif``: pure functions over parsed
JSON, no exceptions for invalid *content* (only for unusable input
types).
"""

from __future__ import annotations

import math
import re
from typing import Any, List

from .snapshot import SNAPSHOT_SCHEMA

__all__ = ["validate_snapshot", "REQUIRED_TOP_KEYS", "REQUIRED_SPEC_KEYS"]

REQUIRED_TOP_KEYS = ("date", "profile", "schema", "specs", "wallclock")

REQUIRED_SPEC_KEYS = (
    "bands", "gates", "metrics", "params", "seed", "suite",
)

_DATE_RE = re.compile(r"^\d{4}-\d{2}-\d{2}$")

_PROFILES = ("full", "quick")

_GATE_KEYS = ("bound", "metric", "op", "passed", "skipped", "value")

_BAND_KEYS = ("abs", "direction", "rel")


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(
        value, bool
    )


def _is_finite_number(value: Any) -> bool:
    return _is_number(value) and math.isfinite(value)


def validate_snapshot(doc: Any) -> List[str]:
    """Every structural problem in a parsed snapshot document."""
    problems: List[str] = []
    if not isinstance(doc, dict):
        return ["snapshot root is not an object"]
    for key in REQUIRED_TOP_KEYS:
        if key not in doc:
            problems.append(f"missing top-level key {key!r}")
    if doc.get("schema") != SNAPSHOT_SCHEMA:
        problems.append(
            f"schema is {doc.get('schema')!r}, expected "
            f"{SNAPSHOT_SCHEMA!r}"
        )
    date = doc.get("date")
    if not isinstance(date, str) or not _DATE_RE.match(date):
        problems.append(f"date {date!r} is not YYYY-MM-DD")
    if doc.get("profile") not in _PROFILES:
        problems.append(
            f"profile {doc.get('profile')!r} not in {_PROFILES}"
        )
    if not isinstance(doc.get("wallclock"), bool):
        problems.append("wallclock flag is not a boolean")
    specs = doc.get("specs")
    if not isinstance(specs, dict) or not specs:
        problems.append("specs is not a non-empty object")
        return problems
    for name in specs:
        problems.extend(_validate_spec(name, specs[name]))
    return problems


def _validate_spec(name: str, entry: Any) -> List[str]:
    problems: List[str] = []
    where = f"specs[{name!r}]"
    if not isinstance(entry, dict):
        return [f"{where} is not an object"]
    for key in REQUIRED_SPEC_KEYS:
        if key not in entry:
            problems.append(f"{where} missing key {key!r}")
    if "suite" in entry and not isinstance(entry["suite"], str):
        problems.append(f"{where}.suite is not a string")
    if "seed" in entry and not isinstance(entry["seed"], int):
        problems.append(f"{where}.seed is not an integer")
    metrics = entry.get("metrics")
    if isinstance(metrics, dict):
        if not metrics:
            problems.append(f"{where}.metrics is empty")
        for metric, value in metrics.items():
            if not _is_finite_number(value):
                problems.append(
                    f"{where}.metrics[{metric!r}] is {value!r}, "
                    "expected a finite number"
                )
    elif "metrics" in entry:
        problems.append(f"{where}.metrics is not an object")
    problems.extend(_validate_gates(where, entry.get("gates")))
    problems.extend(_validate_bands(where, entry.get("bands")))
    digests = entry.get("digests", {})
    if not isinstance(digests, dict) or any(
        not isinstance(v, str) for v in digests.values()
    ):
        problems.append(f"{where}.digests is not a string mapping")
    wc = entry.get("wallclock_metrics", {})
    if isinstance(wc, dict):
        for metric, value in wc.items():
            if not _is_finite_number(value):
                problems.append(
                    f"{where}.wallclock_metrics[{metric!r}] is "
                    f"{value!r}, expected a finite number"
                )
    else:
        problems.append(f"{where}.wallclock_metrics is not an object")
    return problems


def _validate_gates(where: str, gates: Any) -> List[str]:
    problems: List[str] = []
    if gates is None:
        return problems
    if not isinstance(gates, dict):
        return [f"{where}.gates is not an object"]
    for gate_name, gate in gates.items():
        at = f"{where}.gates[{gate_name!r}]"
        if not isinstance(gate, dict):
            problems.append(f"{at} is not an object")
            continue
        for key in _GATE_KEYS:
            if key not in gate:
                problems.append(f"{at} missing key {key!r}")
        if gate.get("op") not in (">=", "<="):
            problems.append(f"{at}.op {gate.get('op')!r} is invalid")
        if not _is_finite_number(gate.get("bound")):
            problems.append(f"{at}.bound is not a finite number")
        skipped = gate.get("skipped")
        if not isinstance(skipped, bool):
            problems.append(f"{at}.skipped is not a boolean")
        value = gate.get("value")
        if skipped is True:
            if value is not None:
                problems.append(f"{at}.value set on a skipped gate")
        elif not _is_finite_number(value):
            problems.append(f"{at}.value is not a finite number")
        if not skipped and not isinstance(gate.get("passed"), bool):
            problems.append(f"{at}.passed is not a boolean")
    return problems


def _validate_bands(where: str, bands: Any) -> List[str]:
    problems: List[str] = []
    if bands is None:
        return problems
    if not isinstance(bands, dict):
        return [f"{where}.bands is not an object"]
    for metric, band in bands.items():
        at = f"{where}.bands[{metric!r}]"
        if not isinstance(band, dict):
            problems.append(f"{at} is not an object")
            continue
        for key in _BAND_KEYS:
            if key not in band:
                problems.append(f"{at} missing key {key!r}")
        for key in ("abs", "rel"):
            value = band.get(key)
            if value is not None and (
                not _is_finite_number(value) or value < 0
            ):
                problems.append(f"{at}.{key} is not a number >= 0")
        if band.get("direction") not in ("any", "up_bad", "down_bad"):
            problems.append(
                f"{at}.direction {band.get('direction')!r} is invalid"
            )
    return problems
