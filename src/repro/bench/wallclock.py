"""Wall-clock benchmark path (``repro bench --wallclock``).

Two measurements, both outside the paper's cost model on purpose:

* frontier backend comparison — the incremental engine
  (:mod:`repro.core.frontier`) against the per-step rescan reference,
  same trees, same widths, identical per-step batches (asserted);
* oracle runtime — a CPU-bound leaf oracle dispatched through
  :class:`~repro.models.executors.OracleRuntime`'s process pool vs the
  serial baseline, demonstrating real multi-worker speed-up of the
  width-w schedule.

Everything else in this repository reports model-step counts; this
module is where real elapsed time is allowed (R2 exempts ``bench/``).
"""

from __future__ import annotations

import time
from statistics import median
from typing import Any, Callable, Optional, Sequence, Tuple

from ..core import parallel_solve
from ..core.policies import WidthPolicy
from ..models.executors import OracleRuntime
from ..models.oracle_runner import run_with_oracle
from ..trees.generators import iid_boolean
from ..trees.generators.iid import level_invariant_bias
from .harness import ExperimentTable


def best_of(fn: Callable[[], object], repeats: int = 3) -> float:
    """Fastest elapsed seconds for ``fn`` across ``repeats`` runs.

    The shared timing primitive for every wall-clock benchmark in the
    repository (benchmarks import it from here so raw clock reads stay
    inside this R7-exempt module).
    """
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def median_seconds(
    fn: Callable[[], Any], repeats: int = 3
) -> Tuple[float, Any]:
    """Median elapsed seconds across ``repeats`` runs + last result."""
    samples = []
    result: Any = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        samples.append(time.perf_counter() - t0)
    return median(samples), result


_best_of = best_of


def backend_wallclock_table(
    *,
    branching: int = 4,
    height: int = 8,
    widths: Sequence[int] = (1, 2, 4),
    seed: int = 2026,
    repeats: int = 3,
    backend: Optional[str] = None,
) -> ExperimentTable:
    """Incremental vs rescan frontier backend, wall-clock seconds.

    With ``backend`` set (``rescan``, ``incremental`` or ``arena``)
    the table times that single backend instead of the two-way
    comparison; batches are still asserted identical against the
    incremental reference before the clock starts.  The arena's
    one-time lowering (memoized per tree, see docs/arena.md) is paid
    before timing, mirroring the e27 benchmark.
    """
    tree = iid_boolean(
        branching, height, level_invariant_bias(branching), seed=seed
    )
    configs = [(width, None) for width in widths]
    # The bounded machine is where the incremental engine shines: the
    # rescan re-walks the whole width-w region every step while only
    # ``p`` of its leaves run.
    configs.append((max(widths), 2))
    if backend is not None:
        table = ExperimentTable(
            f"wallclock_backend_{backend}",
            f"frontier backend wall-clock: {backend}",
            columns=(
                "d", "n", "width", "procs", "steps", f"{backend}_s",
            ),
        )
        if backend == "arena":
            from ..trees.canonical import canonical_arrays

            canonical_arrays(tree)
        for width, procs in configs:
            reference = parallel_solve(
                tree, width, max_processors=procs,
                backend="incremental",
            )
            chosen = parallel_solve(
                tree, width, max_processors=procs, backend=backend
            )
            if (chosen.value, chosen.trace.degrees) != (
                reference.value, reference.trace.degrees
            ):
                raise AssertionError(
                    f"backends diverged at width {width}"
                )
            t_backend = _best_of(
                lambda: parallel_solve(
                    tree, width, max_processors=procs, backend=backend
                ),
                repeats,
            )
            table.add_row(
                branching, height, width,
                procs if procs is not None else "-",
                chosen.num_steps, t_backend,
            )
        table.add_note(
            "batches asserted identical to the incremental backend "
            "before timing"
        )
        return table
    table = ExperimentTable(
        "wallclock_backend",
        "frontier backend wall-clock: incremental vs per-step rescan",
        columns=(
            "d", "n", "width", "procs", "steps", "rescan_s",
            "incremental_s", "speedup",
        ),
    )
    for width, procs in configs:
        rescan = parallel_solve(
            tree, width, max_processors=procs, backend="rescan"
        )
        incremental = parallel_solve(
            tree, width, max_processors=procs, backend="incremental"
        )
        if (rescan.value, rescan.trace.degrees) != (
            incremental.value, incremental.trace.degrees
        ):
            raise AssertionError(
                f"backends diverged at width {width}"
            )
        t_rescan = _best_of(
            lambda: parallel_solve(
                tree, width, max_processors=procs, backend="rescan"
            ),
            repeats,
        )
        t_incremental = _best_of(
            lambda: parallel_solve(
                tree, width, max_processors=procs,
                backend="incremental",
            ),
            repeats,
        )
        table.add_row(
            branching, height, width,
            procs if procs is not None else "-", rescan.num_steps,
            t_rescan, t_incremental, t_rescan / t_incremental,
        )
    table.add_note(
        "identical per-step batches asserted before timing; see "
        "docs/frontier_engine.md"
    )
    return table


def _cpu_oracle(payload) -> int:
    """CPU-bound leaf oracle: value survives, the spin is pure burn."""
    value, iters = payload
    acc = 0
    for _ in range(iters):
        acc = (acc * 1103515245 + 12345) & 0x7FFFFFFF
    return int(value) ^ (acc & 0)


def oracle_wallclock_table(
    *,
    branching: int = 2,
    height: int = 6,
    width: int = 2,
    workers: int = 4,
    oracle_iters: int = 20000,
    seed: int = 2026,
) -> ExperimentTable:
    """Serial vs process-pool oracle evaluation of the same schedule."""
    table = ExperimentTable(
        "wallclock_oracle",
        "oracle runtime wall-clock: serial vs process pool",
        columns=(
            "mode", "steps", "work", "oracle_s", "batches",
            "chunks", "retries",
        ),
    )
    tree = iid_boolean(
        branching, height, level_invariant_bias(branching), seed=seed
    )

    def payload(t, leaf):
        return (t.leaf_value(leaf), oracle_iters)

    serial = run_with_oracle(
        tree, _cpu_oracle, WidthPolicy(width), payload=payload
    )
    table.add_row(
        "serial", serial.num_steps, serial.total_work,
        serial.oracle_seconds, serial.num_steps, 0, 0,
    )
    with OracleRuntime(_cpu_oracle, max_workers=workers) as runtime:
        pooled = run_with_oracle(
            tree, _cpu_oracle, WidthPolicy(width),
            payload=payload, runtime=runtime,
        )
        stats = runtime.stats
        table.add_row(
            f"pool(x{workers})", pooled.num_steps, pooled.total_work,
            pooled.oracle_seconds, stats.batches, stats.chunks,
            stats.retries,
        )
    if serial.value != pooled.value:
        raise AssertionError("oracle runtime changed the computed value")
    table.add_note(
        f"per-leaf oracle spins {oracle_iters} iterations; values "
        f"identical across modes"
    )
    return table


def run_wallclock(
    *,
    branching: int = 4,
    height: int = 8,
    widths: Sequence[int] = (1, 2, 4),
    seed: int = 2026,
    workers: Optional[int] = None,
    oracle_iters: int = 20000,
    trace_out: Optional[str] = None,
    backend: Optional[str] = None,
) -> int:
    """CLI driver for ``repro bench --wallclock``.

    ``backend`` narrows the frontier table to a single backend
    (``--backend {rescan,incremental,arena}``); by default the
    two-way incremental-vs-rescan comparison is printed.

    ``trace_out`` additionally records one instrumented run of the
    bench workload (the incremental backend at the first width, under
    a wall-clock-enabled recorder) and writes it as a JSONL trace —
    the same format ``repro trace`` and ``repro chaos --trace-out``
    emit.
    """
    table = backend_wallclock_table(
        branching=branching, height=height, widths=widths, seed=seed,
        backend=backend,
    )
    print(table.render())
    if workers:
        print()
        oracle_table = oracle_wallclock_table(
            workers=workers, oracle_iters=oracle_iters, seed=seed
        )
        print(oracle_table.render())
    if trace_out is not None:
        from ..telemetry import InMemoryRecorder
        from ..telemetry.cli import emit_jsonl_trace

        recorder = InMemoryRecorder(wallclock=True)
        tree = iid_boolean(
            branching, height, level_invariant_bias(branching), seed=seed
        )
        parallel_solve(tree, widths[0], recorder=recorder)
        emit_jsonl_trace(recorder, trace_out)
        print(f"wrote {trace_out} ({len(recorder.events)} events, "
              f"width={widths[0]} seed={seed})")
    return 0
