"""Benchmark harness: experiment registry, tables and workload seeds."""

from .harness import (
    ExperimentTable,
    default_results_dir,
    experiment,
    list_experiments,
    run_experiment,
)

__all__ = [
    "ExperimentTable",
    "experiment",
    "run_experiment",
    "list_experiments",
    "default_results_dir",
]
