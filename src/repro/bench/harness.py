"""Experiment harness: tables, registry and result persistence.

Every experiment in DESIGN.md's index is a function returning an
:class:`ExperimentTable`.  The benchmark files under ``benchmarks/``
call :func:`run_experiment`, assert the paper-shaped properties of the
rows, time a representative kernel with pytest-benchmark, and persist
the rendered table under ``benchmarks/results/`` so EXPERIMENTS.md can
quote measured numbers verbatim.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..errors import WorkloadError


@dataclass
class ExperimentTable:
    """A rendered-result table for one experiment."""

    experiment: str
    title: str
    columns: Sequence[str]
    rows: List[Sequence] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *values) -> None:
        if len(values) != len(self.columns):
            raise WorkloadError(
                f"row has {len(values)} values, table has "
                f"{len(self.columns)} columns"
            )
        self.rows.append(values)

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def column(self, name: str) -> List:
        """All values of one column, for shape assertions."""
        idx = list(self.columns).index(name)
        return [row[idx] for row in self.rows]

    def render(self) -> str:
        def fmt(v) -> str:
            if isinstance(v, float):
                return f"{v:.3f}"
            return str(v)

        cells = [[fmt(v) for v in row] for row in self.rows]
        widths = [
            max(len(str(col)), *(len(r[i]) for r in cells)) if cells
            else len(str(col))
            for i, col in enumerate(self.columns)
        ]
        lines = [f"[{self.experiment}] {self.title}"]
        header = "  ".join(
            str(col).rjust(w) for col, w in zip(self.columns, widths)
        )
        lines.append(header)
        lines.append("-" * len(header))
        for row in cells:
            lines.append(
                "  ".join(v.rjust(w) for v, w in zip(row, widths))
            )
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def to_csv(self) -> str:
        """The table as CSV (columns header + rows), for plotting."""
        import csv
        import io

        buf = io.StringIO()
        writer = csv.writer(buf)
        writer.writerow(self.columns)
        for row in self.rows:
            writer.writerow(row)
        return buf.getvalue()

    def save(self, directory: Optional[str] = None) -> str:
        """Persist render + CSV into the single table store.

        Every save funnels through
        :func:`repro.bench.snapshot.save_table_entry` — one
        ``tables.json`` per results directory instead of the historical
        per-experiment ``.txt``/``.csv`` pairs.
        """
        from .snapshot import save_table_entry

        return save_table_entry(
            self.experiment, self.render(), self.to_csv(),
            directory=directory,
        )


def default_results_dir() -> str:
    """``benchmarks/results`` next to this repository's benchmarks."""
    here = os.path.dirname(os.path.abspath(__file__))
    repo = os.path.dirname(os.path.dirname(os.path.dirname(here)))
    return os.path.join(repo, "benchmarks", "results")


_REGISTRY: Dict[str, Callable[[], ExperimentTable]] = {}


def experiment(name: str):
    """Decorator registering an experiment function under ``name``."""

    def register(fn: Callable[[], ExperimentTable]):
        _REGISTRY[name] = fn
        return fn

    return register


def run_experiment(
    name: str, save: bool = True, **params
) -> ExperimentTable:
    """Run a registered experiment; optionally persist its table.

    ``params`` override the experiment function's keyword defaults —
    this is how the registry's quick profile shrinks workloads without
    duplicating measurement code.
    """
    # Import populates the registry on first use.
    from . import experiments  # noqa: F401

    if name not in _REGISTRY:
        raise WorkloadError(
            f"unknown experiment {name!r}; known: {sorted(_REGISTRY)}"
        )
    table = _REGISTRY[name](**params)
    if save:
        table.save()
    return table


def list_experiments() -> List[str]:
    from . import experiments  # noqa: F401

    return sorted(_REGISTRY)
