"""Executor-level fault hooks for the oracle runtime.

:class:`FaultyExecutor` wraps any :class:`concurrent.futures.Executor`
and injects infrastructure-level failures at the submission boundary —
``BrokenExecutor`` on submit (a dead pool) and futures that resolve to
an injected exception (a task lost to a worker failure).  Unlike
killing real worker processes, the injection is deterministic (seeded)
and runs at thread-pool speed, so the retry / pool-rebuild / circuit
breaker paths of :class:`repro.models.executors.OracleRuntime` can be
exercised exhaustively in unit tests.

All decisions flow from one seeded generator in submission order, so a
failing configuration replays identically from its seed.
"""

from __future__ import annotations

from concurrent.futures import BrokenExecutor, Executor, Future
from typing import Any, Callable, Optional

import numpy as np

from .oracle import InjectedFaultError


class FaultyExecutor(Executor):
    """Executor wrapper injecting seeded submission-time faults.

    Parameters
    ----------
    inner:
        The real executor doing the work.
    seed:
        Explicit seed for the decision stream.
    broken_rate:
        Probability that ``submit`` raises :class:`BrokenExecutor`
        (the caller must rebuild the pool, as with a dead process
        pool).
    task_error_rate:
        Probability that a submitted task's future resolves to an
        :class:`~repro.faults.oracle.InjectedFaultError` instead of
        running.
    max_faults:
        Cap on injected faults; afterwards the wrapper is transparent
        (guarantees overall progress in tests).
    """

    def __init__(
        self,
        inner: Executor,
        *,
        seed: int,
        broken_rate: float = 0.0,
        task_error_rate: float = 0.0,
        max_faults: Optional[int] = None,
    ) -> None:
        if not 0.0 <= broken_rate + task_error_rate <= 1.0:
            raise ValueError("fault rates must sum into [0, 1]")
        self.inner = inner
        self.seed = seed
        self.broken_rate = broken_rate
        self.task_error_rate = task_error_rate
        self.max_faults = max_faults
        self.injected = 0
        self._rng = np.random.default_rng(seed)

    def _armed(self) -> bool:
        return self.max_faults is None or self.injected < self.max_faults

    def submit(
        self, fn: Callable[..., Any], /, *args: Any, **kwargs: Any
    ) -> "Future[Any]":
        u = float(self._rng.random())
        if self._armed():
            if u < self.broken_rate:
                self.injected += 1
                raise BrokenExecutor(
                    f"injected pool breakage (seed={self.seed})"
                )
            if u < self.broken_rate + self.task_error_rate:
                self.injected += 1
                failed: "Future[Any]" = Future()
                failed.set_exception(
                    InjectedFaultError(
                        f"injected task failure (seed={self.seed})"
                    )
                )
                return failed
        return self.inner.submit(fn, *args, **kwargs)

    def shutdown(self, wait: bool = True, *,
                 cancel_futures: bool = False) -> None:
        self.inner.shutdown(wait=wait, cancel_futures=cancel_futures)
