"""Deterministic fault wrapper for leaf oracles.

:class:`FaultyOracle` wraps a real oracle and injects application-level
faults — raised exceptions, hangs (sleeps long enough to exceed the
runtime's per-chunk timeout) and slow calls — exercising the retry,
timeout, pool-rebuild and circuit-breaker machinery of
:class:`repro.models.executors.OracleRuntime` without any real
infrastructure failure.

Decisions are derived by hashing ``(seed, payload)`` with SHA-256, so
they are deterministic *across worker processes* (no shared RNG state
is needed, and ``PYTHONHASHSEED`` does not matter): the same payload
always lands in the same fault bucket for a given seed.  With a
``transient_dir``, each faulty payload misbehaves only on its first
attempt — a sentinel file created on the way down makes the retry
succeed — which is the shape the runtime's recovery machinery is built
for.

This module deliberately sleeps (that is what a hang *is*), so it is
exempt from the R2 wall-clock lint alongside ``models/executors.py``.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass
from typing import Any, Callable, Optional


class InjectedFaultError(RuntimeError):
    """The exception :class:`FaultyOracle` raises on an error fault.

    Deliberately *not* a :class:`~repro.errors.ReproError`: it plays
    the role of a bug in user-supplied oracle code, which the runtime
    must treat as an arbitrary exception.
    """


@dataclass(frozen=True)
class OracleFaultSpec:
    """Configuration of a :class:`FaultyOracle` (picklable, frozen).

    Rates partition the unit interval: a payload whose hash-derived
    uniform lands in ``[0, error_rate)`` raises, in
    ``[error_rate, error_rate + hang_rate)`` hangs for
    ``hang_seconds``, in the next ``slow_rate``-sized band sleeps
    ``slow_seconds`` and then answers normally.

    ``transient_dir`` (a shared directory path) makes error and hang
    faults one-shot per payload: the first attempt misbehaves and
    drops a sentinel file, every later attempt succeeds.  Without it,
    faulty payloads misbehave on every attempt (the shape that trips
    the circuit breaker).
    """

    seed: int
    error_rate: float = 0.0
    hang_rate: float = 0.0
    slow_rate: float = 0.0
    hang_seconds: float = 30.0
    slow_seconds: float = 0.01
    transient_dir: Optional[str] = None

    def __post_init__(self) -> None:
        total = self.error_rate + self.hang_rate + self.slow_rate
        if not 0.0 <= total <= 1.0:
            raise ValueError("fault rates must sum into [0, 1]")


class FaultyOracle:
    """Picklable oracle wrapper injecting seeded faults.

    Use exactly like the wrapped oracle::

        oracle = FaultyOracle(real_oracle, OracleFaultSpec(
            seed=7, error_rate=0.1, transient_dir=str(tmp)))
        with OracleRuntime(oracle, ...) as rt:
            rt.evaluate(payloads)
    """

    def __init__(
        self, oracle: Callable[[Any], Any], spec: OracleFaultSpec
    ) -> None:
        self.oracle = oracle
        self.spec = spec

    def _draw(self, payload: Any) -> tuple:
        """Deterministic ``(uniform, digest)`` for one payload."""
        blob = f"{self.spec.seed}:{payload!r}".encode()
        digest = hashlib.sha256(blob).hexdigest()
        return int(digest[:12], 16) / float(16 ** 12), digest

    def _transient_spent(self, digest: str) -> bool:
        """True when this payload already misbehaved once (sentinel)."""
        if self.spec.transient_dir is None:
            return False
        sentinel = os.path.join(self.spec.transient_dir, digest[:24])
        if os.path.exists(sentinel):
            return True
        with open(sentinel, "w"):
            pass
        return False

    def __call__(self, payload: Any) -> Any:
        spec = self.spec
        u, digest = self._draw(payload)
        if u < spec.error_rate:
            if not self._transient_spent(digest):
                raise InjectedFaultError(
                    f"injected oracle error (seed={spec.seed})"
                )
        elif u < spec.error_rate + spec.hang_rate:
            if not self._transient_spent(digest):
                time.sleep(spec.hang_seconds)
        elif u < spec.error_rate + spec.hang_rate + spec.slow_rate:
            time.sleep(spec.slow_seconds)
        return self.oracle(payload)
