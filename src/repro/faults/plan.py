"""Deterministic, seeded fault plans for the Section 7 machine.

A :class:`FaultPlan` is the single source of every fault decision in a
simulated run: the machine consults it at dispatch time (drop /
duplicate / delay a message), at delivery time (reorder one tick's
arrival batch) and once per tick per level (crash / stall a
processor).  All randomness comes from one ``numpy`` generator
constructed from an explicit seed, and the machine consults the plan
in a deterministic order, so a run with a given ``(tree, plan seed)``
pair replays bit-identically — a failing chaos run is always
reproducible from its seed alone.

Two decision sources compose:

* **rates** — per-message / per-(level, tick) probabilities drawn from
  the seeded generator, optionally capped by ``max_faults`` so the
  tail of a run is guaranteed fault-free;
* **schedule** — explicit :class:`ScheduleEntry` rows that fire
  deterministically (by message sequence number or by ``(tick,
  level)``), used to script exact failure scenarios in tests.

The plan never imports the simulator; the machine holds the only
reference, so the dependency points one way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import FaultPlanError

#: Message-level fault kinds a plan may inject at dispatch time.
MESSAGE_FAULTS = ("drop", "duplicate", "delay")

#: Processor-level fault kinds a plan may inject per (level, tick).
PROCESSOR_FAULTS = ("crash", "stall")

#: Every fault kind accepted by :meth:`FaultPlan.with_rate` / the CLI.
ALL_FAULT_KINDS = MESSAGE_FAULTS + ("reorder",) + PROCESSOR_FAULTS


@dataclass(frozen=True)
class ScheduleEntry:
    """One explicitly scripted fault.

    Message faults (``drop`` / ``duplicate`` / ``delay``) target the
    message whose global sequence number equals ``seq``; processor
    faults (``crash`` / ``stall``) target ``level`` at ``tick``.
    ``duration`` is the extra delivery delay in ticks for ``delay``
    and the outage length for ``crash`` / ``stall``.
    """

    kind: str
    seq: Optional[int] = None
    tick: Optional[int] = None
    level: Optional[int] = None
    duration: int = 1

    def __post_init__(self) -> None:
        if self.kind not in MESSAGE_FAULTS + PROCESSOR_FAULTS:
            raise FaultPlanError(
                f"unknown scheduled fault kind {self.kind!r} in {self}"
            )
        if self.kind in MESSAGE_FAULTS:
            if self.seq is None:
                raise FaultPlanError(
                    f"{self.kind!r} schedule entries need seq=: {self}"
                )
            if self.seq < 0:
                raise FaultPlanError(
                    f"negative message sequence number in {self}"
                )
        if self.kind in PROCESSOR_FAULTS:
            if self.tick is None or self.level is None:
                raise FaultPlanError(
                    f"{self.kind!r} schedule entries need tick= and "
                    f"level=: {self}"
                )
            if self.tick < 0:
                raise FaultPlanError(f"negative tick in {self}")
            if self.level < 0:
                raise FaultPlanError(f"negative level in {self}")
        if self.duration < 1:
            raise FaultPlanError(
                f"duration must be >= 1 tick in {self}"
            )


class FaultPlan:
    """Seeded fault schedule consulted by the machine.

    Parameters
    ----------
    seed:
        Explicit RNG seed; two plans with equal configuration and seed
        make identical decisions.
    drop / duplicate / delay / reorder / crash / stall:
        Fault rates.  The first three are per-message probabilities
        (mutually exclusive per message), ``reorder`` is a
        per-delivery-batch probability of shuffling that tick's
        arrivals, and ``crash`` / ``stall`` are per-(level, tick)
        probabilities.
    max_delay:
        Delayed messages arrive ``1 + U{1..max_delay}`` ticks late.
    stall_ticks / restart_ticks:
        Outage lengths for stalls and crash restarts.
    schedule:
        Explicit :class:`ScheduleEntry` rows, applied on top of (and
        regardless of) the rates and ``max_faults``.
    max_faults:
        Cap on the number of *rate-driven* faults injected per run;
        ``None`` means unlimited.  A finite cap guarantees the tail of
        the run is fault-free, which bounds recovery time in tests.
    """

    def __init__(
        self,
        seed: int,
        *,
        drop: float = 0.0,
        duplicate: float = 0.0,
        delay: float = 0.0,
        reorder: float = 0.0,
        crash: float = 0.0,
        stall: float = 0.0,
        max_delay: int = 3,
        stall_ticks: int = 4,
        restart_ticks: int = 2,
        schedule: Sequence[ScheduleEntry] = (),
        max_faults: Optional[int] = None,
    ):
        rates = dict(drop=drop, duplicate=duplicate, delay=delay,
                     reorder=reorder, crash=crash, stall=stall)
        for name, rate in rates.items():
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} rate must be in [0, 1]")
        if drop + duplicate + delay > 1.0:
            raise ValueError("drop + duplicate + delay must be <= 1")
        if crash + stall > 1.0:
            raise ValueError("crash + stall must be <= 1")
        if max_delay < 1:
            raise ValueError("max_delay must be >= 1")
        if stall_ticks < 1 or restart_ticks < 1:
            raise ValueError("outage lengths must be >= 1")
        self.seed = seed
        self.drop = drop
        self.duplicate = duplicate
        self.delay = delay
        self.reorder = reorder
        self.crash = crash
        self.stall = stall
        self.max_delay = max_delay
        self.stall_ticks = stall_ticks
        self.restart_ticks = restart_ticks
        self.schedule = tuple(schedule)
        self.max_faults = max_faults
        # Validate at construction: duplicate targets would silently
        # shadow one another mid-run, so they are rejected up front
        # with the offending entry named.
        self._message_schedule: Dict[Optional[int], ScheduleEntry] = {}
        self._proc_schedule: Dict[
            Tuple[Optional[int], Optional[int]], ScheduleEntry
        ] = {}
        for entry in self.schedule:
            if entry.kind in MESSAGE_FAULTS:
                if entry.seq in self._message_schedule:
                    raise FaultPlanError(
                        f"duplicate schedule entry for message "
                        f"seq={entry.seq}: {entry} collides with "
                        f"{self._message_schedule[entry.seq]}"
                    )
                self._message_schedule[entry.seq] = entry
            else:
                slot = (entry.tick, entry.level)
                if slot in self._proc_schedule:
                    raise FaultPlanError(
                        f"duplicate schedule entry for (tick={entry.tick}, "
                        f"level={entry.level}): {entry} collides with "
                        f"{self._proc_schedule[slot]}"
                    )
                self._proc_schedule[slot] = entry
        self.begin_run()

    # -- lifecycle ---------------------------------------------------------
    def begin_run(self) -> None:
        """Reset the generator and counters for a (re)play of one run."""
        self._rng = np.random.default_rng(self.seed)
        self.injected = 0

    @property
    def _armed(self) -> bool:
        return self.max_faults is None or self.injected < self.max_faults

    def _count(self) -> None:
        self.injected += 1

    # -- decision points ---------------------------------------------------
    def message_fault(
        self, seq: int, kind_name: str, tick: int
    ) -> Optional[Tuple[str, int]]:
        """Dispatch-time decision for one message.

        Returns ``None`` (deliver normally) or ``(fault, duration)``
        where fault is ``"drop"`` / ``"duplicate"`` / ``"delay"`` and
        ``duration`` is the extra delay in ticks (0 unless delaying).
        """
        entry = self._message_schedule.get(seq)
        if entry is not None:
            return entry.kind, entry.duration if entry.kind == "delay" else 0
        if self.drop == self.duplicate == self.delay == 0.0:
            return None
        u = float(self._rng.random())
        if not self._armed:
            return None
        if u < self.drop:
            self._count()
            return "drop", 0
        if u < self.drop + self.duplicate:
            self._count()
            return "duplicate", 0
        if u < self.drop + self.duplicate + self.delay:
            self._count()
            return "delay", int(self._rng.integers(1, self.max_delay + 1))
        return None

    def reorder_batch(self, tick: int, size: int) -> Optional[List[int]]:
        """Delivery-time decision: permutation of one tick's arrivals.

        Returns ``None`` to keep arrival order, else a permutation of
        ``range(size)`` to apply before the batch is handed to the
        processors.
        """
        if size < 2 or self.reorder == 0.0:
            return None
        u = float(self._rng.random())
        if not self._armed or u >= self.reorder:
            return None
        perm = [int(i) for i in self._rng.permutation(size)]
        if perm == sorted(perm):
            return None
        self._count()
        return perm

    def processor_fault(
        self, level: int, tick: int
    ) -> Optional[Tuple[str, int]]:
        """Per-(level, tick) decision: ``(kind, outage_ticks)`` or None."""
        entry = self._proc_schedule.get((tick, level))
        if entry is not None:
            return entry.kind, entry.duration
        if self.crash == self.stall == 0.0:
            return None
        u = float(self._rng.random())
        if not self._armed:
            return None
        if u < self.crash:
            self._count()
            return "crash", self.restart_ticks
        if u < self.crash + self.stall:
            self._count()
            return "stall", self.stall_ticks
        return None

    # -- convenience -------------------------------------------------------
    @classmethod
    def with_rate(
        cls, seed: int, kind: str, rate: float, **kwargs
    ) -> "FaultPlan":
        """Plan injecting a single fault ``kind`` at ``rate``."""
        if kind not in ALL_FAULT_KINDS:
            raise FaultPlanError(
                f"unknown fault kind {kind!r} "
                f"(known: {', '.join(ALL_FAULT_KINDS)})"
            )
        return cls(seed, **{kind: rate}, **kwargs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        rates = ", ".join(
            f"{name}={getattr(self, name)}"
            for name in ALL_FAULT_KINDS
            if getattr(self, name)
        )
        return f"FaultPlan(seed={self.seed}, {rates or 'quiet'})"
