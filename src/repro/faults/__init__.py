"""Deterministic fault injection and recovery (``repro.faults``).

Two injection surfaces share one discipline — every fault decision
flows through an explicitly seeded source, so any failing run replays
bit-identically from its seed:

* **Simulator faults** — :class:`FaultPlan` drives the Section 7
  machine (``repro.simulator``): drop / duplicate / delay / reorder
  messages, crash or stall level processors.  The machine's recovery
  protocol (acknowledged, retransmitted ``val`` messages; heartbeat
  supervision re-issuing pre-empting invocations; checkpointed
  restarts) keeps every faulty run convergent to the fault-free
  ``val(root)``.
* **Runtime faults** — :class:`FaultyOracle` and
  :class:`FaultyExecutor` drive the process-pool oracle runtime
  (``repro.models.executors``): injected exceptions, hangs, slow
  calls, and broken pools, exercising retries, per-chunk timeouts,
  pool rebuilds and the circuit breaker.

``python -m repro chaos`` sweeps fault rates over both surfaces and
prints a convergence/overhead table; see ``docs/fault_injection.md``.
"""

from ..errors import FaultPlanError
from .chaos import run_chaos
from .oracle import FaultyOracle, InjectedFaultError, OracleFaultSpec
from .plan import (
    ALL_FAULT_KINDS,
    MESSAGE_FAULTS,
    PROCESSOR_FAULTS,
    FaultPlan,
    ScheduleEntry,
)
from .runtime import FaultyExecutor

__all__ = [
    "ALL_FAULT_KINDS",
    "MESSAGE_FAULTS",
    "PROCESSOR_FAULTS",
    "FaultPlan",
    "FaultPlanError",
    "FaultyExecutor",
    "FaultyOracle",
    "InjectedFaultError",
    "OracleFaultSpec",
    "ScheduleEntry",
    "run_chaos",
]
