"""The ``repro chaos`` sweep: convergence and overhead under faults.

For every (fault kind, rate) cell the sweep runs the Section 7 machine
on seeded trees with a seeded :class:`FaultPlan`, checks that the run
converges to the fault-free ``val(root)``, replays the first seed to
confirm bit-identical event logs, and reports tick/message overhead
relative to the fault-free baseline.  With ``--runtime`` it also
drives the process-pool oracle runtime through a
:class:`FaultyExecutor` and reports retry/rebuild counts.

Everything here is model-step accounting on seeded instances — no
wall-clock, no unseeded randomness — so a failing cell is reproducible
from the printed seed alone.
"""

from __future__ import annotations

from statistics import median
from typing import List, Optional, Sequence, Tuple

from ..errors import SimulationError
from .plan import ALL_FAULT_KINDS, FaultPlan

#: Default sweep grid (mirrors the acceptance matrix).
DEFAULT_RATES = (0.01, 0.05, 0.2)
DEFAULT_KINDS = ALL_FAULT_KINDS


def _chaos_cell(
    kind: str,
    rate: float,
    *,
    height: int,
    seeds: Sequence[int],
    max_faults: Optional[int],
) -> Tuple[List[str], bool]:
    """Run one (kind, rate) cell; returns (table rows, all converged)."""
    from ..simulator import simulate
    from ..trees.generators import iid_boolean

    tick_ratios: List[float] = []
    msg_ratios: List[float] = []
    converged = 0
    injected = 0
    replay_ok = True
    for i, seed in enumerate(seeds):
        tree = iid_boolean(2, height, 0.45, seed=seed)
        baseline = simulate(tree)
        plan = FaultPlan.with_rate(seed, kind, rate, max_faults=max_faults)
        try:
            faulty = simulate(tree, fault_plan=plan)
        except SimulationError:
            replay_ok = replay_ok and True
            continue
        if faulty.value == baseline.value:
            converged += 1
        assert faulty.fault_stats is not None
        injected += faulty.fault_stats.injected
        tick_ratios.append(faulty.ticks / baseline.ticks)
        msg_ratios.append(faulty.messages / baseline.messages)
        if i == 0:
            # Replay determinism: same seed, same event log, twice.
            first = simulate(tree, fault_plan=plan, trace_events=True)
            second = simulate(tree, fault_plan=plan, trace_events=True)
            replay_ok = replay_ok and first.events == second.events
    row = (
        f"{kind:>9} {rate:>6.2f} {converged:>5}/{len(seeds):<3} "
        f"{injected:>8} "
        f"{median(tick_ratios) if tick_ratios else float('nan'):>8.2f} "
        f"{median(msg_ratios) if msg_ratios else float('nan'):>8.2f} "
        f"{'yes' if replay_ok else 'NO':>7}"
    )
    return [row], converged == len(seeds) and replay_ok


def _runtime_section(seeds: Sequence[int]) -> Tuple[List[str], bool]:
    """Chaos-test the oracle runtime through injected executor faults."""
    from concurrent.futures import ThreadPoolExecutor

    from ..errors import DegradedRunError, WorkerCrashError
    from ..models.executors import OracleRuntime
    from .runtime import FaultyExecutor

    lines = ["", "oracle runtime (FaultyExecutor, thread pool):",
             f"{'seed':>6} {'outcome':>10} {'retries':>8} "
             f"{'rebuilds':>9} {'faults':>7}"]
    ok = True
    for seed in seeds:
        # Each rebuilt pool gets a seed derived from the build count:
        # replaying one fixed stream after every rebuild could repeat
        # the same breakage forever, which is not the drill's point.
        builds: List[int] = []

        def factory(s: int = seed) -> FaultyExecutor:
            builds.append(1)
            return FaultyExecutor(
                ThreadPoolExecutor(max_workers=2),
                seed=1000 * s + len(builds),
                broken_rate=0.1, task_error_rate=0.2, max_faults=8,
            )
        rt = OracleRuntime(
            _square, chunk_size=2, max_retries=8,
            backoff_seconds=0.0, executor_factory=factory,
            sleep=lambda _s: None,
        )
        outcome = "ok"
        with rt:
            try:
                out = rt.evaluate(list(range(16)))
                if out != [x * x for x in range(16)]:
                    outcome, ok = "WRONG", False
            except (WorkerCrashError, DegradedRunError) as exc:
                outcome = type(exc).__name__
        faults = rt.stats.retries + rt.stats.pool_restarts
        lines.append(
            f"{seed:>6} {outcome:>10} {rt.stats.retries:>8} "
            f"{rt.stats.pool_restarts:>9} {faults:>7}"
        )
    return lines, ok


def _square(x: int) -> int:
    return x * x


def _emit_trace(
    path: str,
    *,
    height: int,
    seed: int,
    kind: str,
    rate: float,
    max_faults: Optional[int],
) -> None:
    """Record one representative faulty run and write its JSONL trace."""
    from ..simulator import simulate
    from ..telemetry import InMemoryRecorder
    from ..telemetry.cli import emit_jsonl_trace
    from ..trees.generators import iid_boolean

    recorder = InMemoryRecorder()
    tree = iid_boolean(2, height, 0.45, seed=seed)
    plan = FaultPlan.with_rate(seed, kind, rate, max_faults=max_faults)
    try:
        simulate(tree, fault_plan=plan, recorder=recorder)
    except SimulationError as exc:
        print(f"trace run aborted ({exc}); writing the partial trace")
    emit_jsonl_trace(recorder, path)
    print(f"wrote {path} ({len(recorder.events)} events, "
          f"kind={kind} rate={rate} seed={seed})")


def run_chaos(
    *,
    height: int = 6,
    num_seeds: int = 5,
    rates: Sequence[float] = DEFAULT_RATES,
    kinds: Sequence[str] = DEFAULT_KINDS,
    max_faults: Optional[int] = 64,
    quick: bool = False,
    runtime: bool = False,
    trace_out: Optional[str] = None,
) -> int:
    """Run the chaos sweep; returns the process exit status.

    ``trace_out`` additionally records one representative faulty run
    (first kind, first rate, first seed) under a telemetry recorder
    and writes it as a JSONL trace — the same format ``repro trace``
    and ``repro bench --trace-out`` emit.
    """
    if quick:
        height, num_seeds = 4, 2
        rates, kinds = (0.05,), ("drop", "crash")
        runtime = True
    for kind in kinds:
        if kind not in ALL_FAULT_KINDS:
            print(f"chaos: unknown fault kind {kind!r} "
                  f"(known: {', '.join(ALL_FAULT_KINDS)})")
            return 2
    seeds = list(range(num_seeds))
    print(f"chaos sweep: binary NOR trees, height {height}, "
          f"seeds {seeds[0]}..{seeds[-1]}, max_faults={max_faults}")
    print(f"{'kind':>9} {'rate':>6} {'conv':>9} {'faults':>8} "
          f"{'ticks_x':>8} {'msgs_x':>8} {'replay':>7}")
    all_ok = True
    for kind in kinds:
        for rate in rates:
            rows, ok = _chaos_cell(
                kind, rate, height=height, seeds=seeds,
                max_faults=max_faults,
            )
            all_ok = all_ok and ok
            for row in rows:
                print(row)
    if runtime:
        lines, ok = _runtime_section(seeds)
        all_ok = all_ok and ok
        for line in lines:
            print(line)
    if trace_out is not None:
        _emit_trace(trace_out, height=height, seed=seeds[0],
                    kind=kinds[0], rate=rates[0], max_faults=max_faults)
    print()
    print("all runs converged and replayed deterministically"
          if all_ok else "CHAOS FAILURES — see table above")
    return 0 if all_ok else 1
