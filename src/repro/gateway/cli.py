"""``repro gateway`` — overload-safe serving with chaos and reports.

Generates a seeded open-loop workload, runs it through the
deterministic gateway, and prints the load report.  ``--chaos``
schedules a shard crash with recovery via a
:class:`~repro.faults.FaultPlan`, exercising failover, probing and
re-admission; ``--log-out`` writes the byte-replayable outcome log
the CI ``gateway-smoke`` job compares across same-seed runs;
``--wallclock`` opts into the asyncio real-time driver (same answers,
real pacing).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from ..faults import FaultPlan, ScheduleEntry
from .gateway import Gateway, GatewayConfig
from .loadgen import open_loop_arrivals, render_report, summarize

__all__ = ["add_gateway_arguments", "run_gateway"]


def add_gateway_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--num-requests", type=int, default=200)
    parser.add_argument("--seed", type=int, default=2026)
    parser.add_argument(
        "--rate", type=float, default=8.0,
        help="mean arrivals per tick (open loop)",
    )
    parser.add_argument("--zipf", type=float, default=1.2)
    parser.add_argument("--num-trees", type=int, default=12)
    parser.add_argument("--branching", type=int, default=2)
    parser.add_argument("--height", type=int, default=4)
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument(
        "--batch-size", type=int, default=8,
        help="max requests per dispatch round (capacity knob)",
    )
    parser.add_argument(
        "--queue-capacity", type=int, default=None, metavar="N",
        help="override every priority class's queue bound",
    )
    parser.add_argument("--retry-capacity", type=int, default=8)
    parser.add_argument("--retry-refill", type=float, default=0.25)
    parser.add_argument("--probe-after", type=int, default=4)
    parser.add_argument(
        "--chaos", action="store_true",
        help="crash one shard mid-run with scheduled recovery",
    )
    parser.add_argument("--chaos-shard", type=int, default=0)
    parser.add_argument("--chaos-tick", type=int, default=5)
    parser.add_argument("--chaos-duration", type=int, default=12)
    parser.add_argument(
        "--verify", action="store_true",
        help="re-evaluate every completed response inline and compare",
    )
    parser.add_argument(
        "--log-out", type=str, default=None, metavar="PATH",
        help="write the deterministic outcome log",
    )
    parser.add_argument(
        "--trace-out", type=str, default=None, metavar="PATH",
        help="write a JSONL telemetry trace of the run",
    )
    parser.add_argument(
        "--wallclock", action="store_true",
        help="asyncio real-time pacing (opt-in; same answers)",
    )
    parser.add_argument(
        "--tick-seconds", type=float, default=0.001,
        help="real seconds per tick in --wallclock mode",
    )


def _count_mismatches(outcomes, arrivals) -> int:
    """Compare every completed outcome against direct evaluation.

    Results are memoised by canonical key, so each unique computation
    is re-run once no matter how hot the zipf stream is.
    """
    from ..serve.engines import run_algorithm
    from ..serve.request import request_key

    by_id = {
        greq.request.request_id: greq.request
        for _tick, greq in arrivals
    }
    expected: dict = {}
    wrong = 0
    for outcome in outcomes:
        if outcome.status != "ok":
            continue
        req = by_id[outcome.request_id]
        key = request_key(req)
        if key not in expected:
            value, steps, work = run_algorithm(
                req.algo, req.tree, req.params_dict()
            )
            expected[key] = (float(value), steps, work)
        if (
            outcome.key != key
            or (outcome.value, outcome.steps, outcome.work)
            != expected[key]
        ):
            wrong += 1
            print(
                f"MISMATCH id={outcome.request_id} "
                f"algo={outcome.algo}: served "
                f"({outcome.value}, {outcome.steps}, {outcome.work})"
                f" != direct {expected[key]}",
                file=sys.stderr,
            )
    return wrong


def run_gateway(args: argparse.Namespace) -> int:
    if not 0 <= args.chaos_shard < args.shards:
        print(
            f"--chaos-shard must be in [0, {args.shards})",
            file=sys.stderr,
        )
        return 2

    arrivals = open_loop_arrivals(
        args.num_requests,
        seed=args.seed,
        rate=args.rate,
        zipf_s=args.zipf,
        num_trees=args.num_trees,
        branching=args.branching,
        height=args.height,
    )

    plan: Optional[FaultPlan] = None
    if args.chaos:
        plan = FaultPlan(args.seed, schedule=[ScheduleEntry(
            "crash",
            tick=args.chaos_tick,
            level=args.chaos_shard,
            duration=args.chaos_duration,
        )])

    recorder = None
    if args.trace_out is not None:
        from ..telemetry import InMemoryRecorder

        recorder = InMemoryRecorder()

    capacities = None
    if args.queue_capacity is not None:
        capacities = {
            name: args.queue_capacity
            for name in ("interactive", "batch", "bulk")
        }
    config = GatewayConfig(
        num_shards=args.shards,
        batch_size=args.batch_size,
        retry_capacity=args.retry_capacity,
        retry_refill_per_tick=args.retry_refill,
        probe_after=args.probe_after,
        probe_interval=args.probe_after,
        **({"queue_capacities": capacities} if capacities else {}),
    )

    with Gateway(
        config, fault_plan=plan, recorder=recorder
    ) as gateway:
        if args.wallclock:
            from .aio import run_wallclock

            report, elapsed = run_wallclock(
                gateway, arrivals, tick_seconds=args.tick_seconds
            )
        else:
            report, elapsed = gateway.run(arrivals), None

    if args.log_out is not None:
        with open(args.log_out, "w", encoding="utf-8") as fh:
            fh.write(report.response_log)

    if recorder is not None:
        from ..telemetry.cli import emit_jsonl_trace

        emit_jsonl_trace(recorder, args.trace_out)

    load = summarize(report)
    print(render_report(load))
    if elapsed is not None:
        ticks = max(1, load.ticks)
        print(
            f"  wall-clock: {elapsed:.3f}s for {ticks} tick(s) "
            f"({elapsed / ticks * 1000:.3f} ms/tick)"
        )

    if args.verify:
        wrong = _count_mismatches(report.outcomes, arrivals)
        if wrong:
            print(
                f"verify: {wrong} mismatch(es)", file=sys.stderr
            )
            return 1
        print(
            f"verify: all {load.completed} completed response(s) "
            f"correct"
        )
    return 0
