"""Opt-in asyncio wall-clock driver for the gateway.

The deterministic gateway is a tick-driven state machine
(:meth:`~repro.gateway.gateway.Gateway.step`); this module paces that
*same* state machine with real time: one tick every ``tick_seconds``,
arrivals released when their tick comes up.  Because all gateway
decisions remain functions of the logical tick, the outcome log of a
wall-clock run is byte-identical to the simulated run of the same
workload — wall-clock mode adds pacing and an elapsed-seconds
measurement, never different answers.

Clock discipline (lint rules R2/R7): this is one of the few modules
allowed to read real time, and every raw clock read below carries an
explicit ``# lint: disable=R7`` acknowledgment, same as the oracle
runtime.  Everything else in :mod:`repro.gateway` stays wall-clock
free.
"""

from __future__ import annotations

import asyncio
import time
from typing import Dict, List, Sequence, Tuple

from .gateway import Gateway, GatewayReport
from .types import GatewayRequest

__all__ = ["run_wallclock", "drive_wallclock"]


async def drive_wallclock(
    gateway: Gateway,
    arrivals: Sequence[Tuple[int, GatewayRequest]],
    *,
    tick_seconds: float = 0.001,
) -> Tuple[GatewayReport, float]:
    """Pace ``gateway`` through ``arrivals`` in real time.

    Returns ``(report, elapsed_seconds)``.  The report's outcome log
    matches :meth:`Gateway.run` on the same inputs byte for byte.
    """
    if tick_seconds <= 0:
        raise ValueError("tick_seconds must be positive")
    by_tick: Dict[int, List[GatewayRequest]] = {}
    last_arrival = 0
    for tick, greq in arrivals:
        by_tick.setdefault(tick, []).append(greq)
        last_arrival = max(last_arrival, tick)

    start = time.monotonic()  # lint: disable=R7
    while gateway.tick <= last_arrival or gateway.pending() > 0:
        if gateway.tick > last_arrival + gateway.config.max_drain_ticks:
            raise RuntimeError(
                f"gateway failed to drain within "
                f"{gateway.config.max_drain_ticks} ticks of the last "
                f"arrival ({gateway.pending()} request(s) stuck)"
            )
        gateway.step(by_tick.get(gateway.tick, ()))
        await asyncio.sleep(tick_seconds)
    elapsed = time.monotonic() - start  # lint: disable=R7
    report = GatewayReport(
        outcomes=list(gateway.outcomes), stats=gateway.stats
    )
    return report, elapsed


def run_wallclock(
    gateway: Gateway,
    arrivals: Sequence[Tuple[int, GatewayRequest]],
    *,
    tick_seconds: float = 0.001,
) -> Tuple[GatewayReport, float]:
    """Synchronous entry point: ``asyncio.run`` the wall-clock driver."""
    return asyncio.run(drive_wallclock(
        gateway, arrivals, tick_seconds=tick_seconds
    ))
