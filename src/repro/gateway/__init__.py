"""Deterministic overload-safe request gateway (``repro.gateway``).

The coordination layer in front of
:class:`~repro.serve.service.ShardedBatchService`: bounded
multi-class admission queues with typed load shedding
(:mod:`~repro.gateway.admission`), per-request deadlines, a global
retry token bucket (:mod:`~repro.gateway.retry`), fault-plan-driven
shard outages (:mod:`~repro.gateway.chaos`) and probe-based shard
re-admission (:mod:`~repro.gateway.health`).  The default driver is a
logical-clock event loop — same seed + same fault plan ⇒
byte-identical outcome logs — with an opt-in asyncio wall-clock pacer
(:mod:`~repro.gateway.aio`).  ``python -m repro gateway`` drives it
from the command line; benchmark e26 gates the overload behaviour.
See ``docs/serving.md``.
"""

from .admission import AdmissionQueue
from .chaos import ShardOutageController
from .gateway import Gateway, GatewayConfig, GatewayReport, GatewayStats
from .health import DEGRADED, HEALTHY, PROBING, HealthSupervisor
from .loadgen import (
    DEFAULT_DEADLINES,
    DEFAULT_PRIORITY_WEIGHTS,
    LoadReport,
    open_loop_arrivals,
    percentile,
    render_report,
    summarize,
)
from .retry import RetryBudget
from .types import (
    PRIORITIES,
    REJECT_REASONS,
    GatewayOutcome,
    GatewayRequest,
    gateway_response_log,
    gateway_response_record,
)

__all__ = [
    "PRIORITIES",
    "REJECT_REASONS",
    "HEALTHY",
    "DEGRADED",
    "PROBING",
    "DEFAULT_DEADLINES",
    "DEFAULT_PRIORITY_WEIGHTS",
    "AdmissionQueue",
    "Gateway",
    "GatewayConfig",
    "GatewayOutcome",
    "GatewayReport",
    "GatewayRequest",
    "GatewayStats",
    "HealthSupervisor",
    "LoadReport",
    "RetryBudget",
    "ShardOutageController",
    "gateway_response_log",
    "gateway_response_record",
    "open_loop_arrivals",
    "percentile",
    "render_report",
    "summarize",
]
