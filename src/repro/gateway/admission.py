"""Bounded multi-class admission queues with deterministic shedding.

One :class:`AdmissionQueue` holds a FIFO deque per priority class,
each with its own hard capacity — the gateway's *only* buffering, so
queueing is bounded by construction.  ``offer`` either admits a
request or returns the typed rejection reason, ``expire`` sweeps
deadline-passed entries, and ``take`` drains up to a batch budget in
strict priority order (then FIFO within a class).

No clocks, no randomness: every decision is a pure function of the
call sequence, which is what makes the gateway's outcome log
byte-replayable.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Mapping, Optional

from .types import PRIORITIES, GatewayRequest

__all__ = ["AdmissionQueue"]


class AdmissionQueue:
    """Per-priority bounded FIFO queues.

    Parameters
    ----------
    capacities:
        Maximum queued requests per priority class; classes absent
        from the mapping get ``default_capacity``.
    default_capacity:
        Capacity for classes not named in ``capacities``.
    """

    def __init__(
        self,
        capacities: Optional[Mapping[str, int]] = None,
        *,
        default_capacity: int = 64,
    ) -> None:
        caps = dict(capacities or {})
        for name in caps:
            if name not in PRIORITIES:
                raise ValueError(
                    f"unknown priority {name!r}; expected one of "
                    f"{PRIORITIES}"
                )
        self.capacities: Dict[str, int] = {
            name: int(caps.get(name, default_capacity))
            for name in PRIORITIES
        }
        for name, cap in self.capacities.items():
            if cap < 1:
                raise ValueError(
                    f"capacity for {name!r} must be >= 1, got {cap}"
                )
        self._queues: Dict[str, Deque[GatewayRequest]] = {
            name: deque() for name in PRIORITIES
        }

    # -- admission ---------------------------------------------------------
    def offer(self, greq: GatewayRequest) -> Optional[str]:
        """Admit ``greq`` or return the typed rejection reason."""
        queue = self._queues[greq.priority]
        if len(queue) >= self.capacities[greq.priority]:
            return "queue-full"
        queue.append(greq)
        return None

    def requeue_front(self, batch: List[GatewayRequest]) -> None:
        """Put a failed dispatch back at the head of its queues.

        Order within the batch is preserved, so a retried batch drains
        in the same order it was first taken — a determinism
        requirement, not an optimisation.  Requeueing is exempt from
        the capacity check: the entries already held queue slots when
        they were taken.
        """
        for greq in reversed(batch):
            self._queues[greq.priority].appendleft(greq)

    # -- expiry ------------------------------------------------------------
    def expire(self, now: int) -> List[GatewayRequest]:
        """Remove and return every entry whose deadline precedes ``now``."""
        expired: List[GatewayRequest] = []
        for name in PRIORITIES:
            queue = self._queues[name]
            kept: Deque[GatewayRequest] = deque()
            while queue:
                greq = queue.popleft()
                if greq.deadline < now:
                    expired.append(greq)
                else:
                    kept.append(greq)
            self._queues[name] = kept
        return expired

    # -- dispatch ----------------------------------------------------------
    def take(self, budget: int) -> List[GatewayRequest]:
        """Drain up to ``budget`` requests, priority then FIFO order."""
        batch: List[GatewayRequest] = []
        for name in PRIORITIES:
            queue = self._queues[name]
            while queue and len(batch) < budget:
                batch.append(queue.popleft())
            if len(batch) >= budget:
                break
        return batch

    # -- introspection -----------------------------------------------------
    def depth(self, priority: Optional[str] = None) -> int:
        """Queued entries in one class, or in total."""
        if priority is not None:
            return len(self._queues[priority])
        return sum(len(q) for q in self._queues.values())

    def depths(self) -> Dict[str, int]:
        return {name: len(q) for name, q in self._queues.items()}
