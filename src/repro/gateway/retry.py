"""Global retry budget: a token bucket over the logical clock.

Retries are the classic overload amplifier — a service at 2× capacity
that retries every failure once is suddenly at 4×.  The gateway
therefore draws every retry from one shared token bucket: ``capacity``
tokens, refilled at ``refill_per_tick`` as the logical clock advances.
When the bucket is dry, failed dispatches are *rejected* (typed
``"retry-budget"``), not retried — the budget converts retry storms
into visible, bounded shed.

Deterministic by construction: state is a pure function of the
``advance``/``try_spend`` call sequence.
"""

from __future__ import annotations

__all__ = ["RetryBudget"]


class RetryBudget:
    """Token bucket; integer spends, fractional refill.

    Parameters
    ----------
    capacity:
        Maximum (and initial) token count.
    refill_per_tick:
        Tokens added per logical tick, saturating at ``capacity``.
    """

    def __init__(self, capacity: int, refill_per_tick: float) -> None:
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        if refill_per_tick < 0:
            raise ValueError("refill_per_tick must be >= 0")
        self.capacity = capacity
        self.refill_per_tick = refill_per_tick
        self._tokens = float(capacity)
        #: total tokens ever spent (for reports).
        self.spent = 0
        #: spend attempts refused on an empty bucket.
        self.exhausted = 0

    @property
    def tokens(self) -> float:
        return self._tokens

    def advance(self, ticks: int = 1) -> None:
        """Refill for ``ticks`` elapsed logical ticks."""
        if ticks < 0:
            raise ValueError("ticks must be >= 0")
        self._tokens = min(
            float(self.capacity),
            self._tokens + ticks * self.refill_per_tick,
        )

    def try_spend(self, tokens: int = 1) -> bool:
        """Spend ``tokens`` atomically; False (and no change) if short."""
        if tokens < 0:
            raise ValueError("tokens must be >= 0")
        if self._tokens < tokens:
            self.exhausted += 1
            return False
        self._tokens -= tokens
        self.spent += tokens
        return True
