"""Seeded open-loop load generation and latency reporting.

*Open loop* means arrivals do not wait for responses — the defining
property of real overload: traffic keeps coming whether or not the
service keeps up (a closed-loop generator self-throttles and can
never overload anything).  Arrivals are Poisson with configurable
mean rate (requests per tick) over a zipf-skewed
:func:`~repro.serve.stream.synthetic_stream`, priorities drawn from a
weighted mix, deadlines assigned per class — all from one seeded
``numpy`` generator, so a workload is reproducible from
``(seed, knobs)`` alone.

:func:`summarize` reduces a gateway run to the operator numbers:
p50/p99/p999 latency over completed requests, goodput, shed rate and
the recovery counters.  Latency percentiles are logical ticks —
deterministic, hence benchmarkable with zero tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..serve.stream import synthetic_stream
from .gateway import GatewayReport
from .types import PRIORITIES, GatewayRequest

__all__ = [
    "open_loop_arrivals",
    "percentile",
    "LoadReport",
    "summarize",
    "render_report",
    "DEFAULT_PRIORITY_WEIGHTS",
    "DEFAULT_DEADLINES",
]

#: Default traffic mix: mostly batch, some interactive, some bulk.
DEFAULT_PRIORITY_WEIGHTS: Mapping[str, float] = {
    "interactive": 0.2, "batch": 0.5, "bulk": 0.3,
}

#: Default deadline (ticks from arrival) per priority class.
DEFAULT_DEADLINES: Mapping[str, int] = {
    "interactive": 30, "batch": 120, "bulk": 400,
}


def open_loop_arrivals(
    num_requests: int,
    *,
    seed: int,
    rate: float,
    zipf_s: float = 1.2,
    num_trees: int = 12,
    branching: int = 2,
    height: int = 4,
    priority_weights: Optional[Mapping[str, float]] = None,
    deadlines: Optional[Mapping[str, int]] = None,
) -> List[Tuple[int, GatewayRequest]]:
    """A seeded ``(tick, GatewayRequest)`` arrival schedule.

    ``rate`` is the mean arrivals per tick; per-tick counts are
    Poisson, so bursts above and lulls below the mean both occur —
    the shape admission control exists for.
    """
    if num_requests < 1:
        raise ValueError("need at least one request")
    if rate <= 0:
        raise ValueError("rate must be positive")
    weights = dict(priority_weights or DEFAULT_PRIORITY_WEIGHTS)
    deadline_for = dict(deadlines or DEFAULT_DEADLINES)
    for name in PRIORITIES:
        if name not in weights:
            raise ValueError(f"priority_weights missing {name!r}")
        if name not in deadline_for:
            raise ValueError(f"deadlines missing {name!r}")
    total = sum(weights[name] for name in PRIORITIES)
    probs = [weights[name] / total for name in PRIORITIES]

    stream = synthetic_stream(
        num_requests,
        seed=seed,
        num_trees=num_trees,
        zipf_s=zipf_s,
        branching=branching,
        height=height,
    )
    # A separate sub-seed stream for arrival times and priorities, so
    # the request *content* stays comparable across rates.
    rng = np.random.default_rng(seed + 1_000_003)
    arrivals: List[Tuple[int, GatewayRequest]] = []
    tick = 0
    index = 0
    while index < num_requests:
        count = int(rng.poisson(rate))
        for _ in range(min(count, num_requests - index)):
            req = stream[index]
            priority = PRIORITIES[
                int(rng.choice(len(PRIORITIES), p=probs))
            ]
            arrivals.append((tick, GatewayRequest(
                request=req,
                priority=priority,
                arrival=tick,
                deadline=tick + deadline_for[priority],
            )))
            index += 1
        tick += 1
    return arrivals


def percentile(sorted_values: Sequence[int], q: float) -> float:
    """Nearest-rank percentile over pre-sorted values (0 if empty)."""
    if not sorted_values:
        return 0.0
    if not 0.0 <= q <= 1.0:
        raise ValueError("q must be in [0, 1]")
    rank = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return float(sorted_values[rank])


@dataclass
class LoadReport:
    """Operator-facing summary of one gateway run."""

    requests: int
    completed: int
    rejected: Dict[str, int]
    p50: float
    p99: float
    p999: float
    goodput: float
    shed_rate: float
    dispatch_rounds: int
    retried_requests: int
    probes: int
    readmissions: int
    outages: int
    max_queue_depth: int
    ticks: int


def summarize(report: GatewayReport) -> LoadReport:
    """Reduce a :class:`GatewayReport` to the headline numbers."""
    stats = report.stats
    latencies = report.latencies
    total = stats.completed + stats.total_rejected
    return LoadReport(
        requests=stats.arrivals,
        completed=stats.completed,
        rejected=dict(sorted(stats.rejected.items())),
        p50=percentile(latencies, 0.50),
        p99=percentile(latencies, 0.99),
        p999=percentile(latencies, 0.999),
        goodput=stats.completed / total if total else 0.0,
        shed_rate=stats.total_rejected / total if total else 0.0,
        dispatch_rounds=stats.dispatch_rounds,
        retried_requests=stats.retried_requests,
        probes=stats.probes,
        readmissions=stats.readmissions,
        outages=stats.outages,
        max_queue_depth=stats.max_queue_depth,
        ticks=stats.ticks,
    )


def render_report(load: LoadReport) -> str:
    """The ``repro gateway`` stdout report."""
    rejected = ", ".join(
        f"{reason}={count}"
        for reason, count in load.rejected.items()
    ) or "none"
    lines = [
        f"gateway: {load.requests} arrival(s) over {load.ticks} "
        f"tick(s), {load.dispatch_rounds} dispatch round(s)",
        f"  completed {load.completed} "
        f"(goodput {load.goodput:.3f}), rejected "
        f"{sum(load.rejected.values())} "
        f"(shed rate {load.shed_rate:.3f}: {rejected})",
        f"  latency ticks p50 {load.p50:.0f} / p99 {load.p99:.0f} "
        f"/ p999 {load.p999:.0f}, max queue depth "
        f"{load.max_queue_depth}",
        f"  recovery: {load.outages} outage(s), {load.probes} "
        f"probe(s), {load.readmissions} readmission(s), "
        f"{load.retried_requests} retried request(s)",
    ]
    return "\n".join(lines)
