"""Fault-plan-driven shard outages for the gateway.

Reuses :class:`repro.faults.FaultPlan` — the same seeded decision
source the Section 7 machine consults — as the gateway's chaos
driver: each logical tick, :meth:`ShardOutageController.begin_tick`
asks the plan for a processor fault per shard (``level`` plays the
shard index) in ascending shard order, so the plan's RNG stream is
consumed identically on every same-seed run.  A ``crash`` or
``stall`` verdict takes the shard down for the fault's duration.

While a shard is down, the oracle wrapper
(:meth:`ShardOutageController.oracle_for_shard`) raises
:class:`~repro.faults.InjectedFaultError` for every payload — the
"arbitrary oracle bug" shape the runtime's retry and circuit-breaker
machinery must absorb — and the shard's runtime degrades exactly as a
real outage would.  Once the window passes, probes succeed and the
health supervisor readmits the shard.

The wrappers close over in-process state, so chaos runs require the
``"serial"`` (or ``"thread"``) pool flavour — which the deterministic
gateway uses anyway.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from ..faults import FaultPlan
from ..faults.oracle import InjectedFaultError

__all__ = ["ShardOutageController"]

Oracle = Callable[[Dict[str, Any]], Dict[str, Any]]


class ShardOutageController:
    """Tick-synchronised shard up/down state driven by a fault plan."""

    def __init__(self, num_shards: int, plan: FaultPlan) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        self.num_shards = num_shards
        self.plan = plan
        #: first tick each shard is healthy again (0 = never down).
        self._down_until = [0] * num_shards
        #: injected outage windows, for reports.
        self.outages = 0
        self._tick = -1

    def begin_run(self) -> None:
        """Reset plan RNG and outage state for a fresh same-seed run."""
        self.plan.begin_run()
        self._down_until = [0] * self.num_shards
        self.outages = 0
        self._tick = -1

    def begin_tick(self, tick: int) -> None:
        """Consult the plan once per shard, in shard order.

        Must be called exactly once per tick — the fixed consult
        count/order is what keeps the plan's RNG stream aligned
        across replays.
        """
        for shard in range(self.num_shards):
            fault = self.plan.processor_fault(level=shard, tick=tick)
            if fault is None:
                continue
            _kind, duration = fault
            self.outages += 1
            self._down_until[shard] = max(
                self._down_until[shard], tick + duration
            )
        self._tick = tick

    def is_down(self, shard: int) -> bool:
        if self._tick < 0:
            return False  # no tick begun yet: nothing is down
        return self._tick < self._down_until[shard]

    def down_shards(self) -> List[int]:
        return [s for s in range(self.num_shards) if self.is_down(s)]

    def oracle_for_shard(
        self, base: Oracle
    ) -> Callable[[int], Oracle]:
        """Per-shard oracle factory for ``ShardedBatchService``.

        The wrapper consults the controller's *current tick* state on
        every call, so a shard that was up at dispatch time and down
        at retry time behaves exactly like a machine that died
        mid-request.
        """

        def for_shard(shard: int) -> Oracle:
            def oracle(payload: Dict[str, Any]) -> Dict[str, Any]:
                if self.is_down(shard):
                    raise InjectedFaultError(
                        f"shard {shard} is down until tick "
                        f"{self._down_until[shard]}"
                    )
                return base(payload)

            return oracle

        return for_shard

    @property
    def tick(self) -> Optional[int]:
        """The last tick passed to :meth:`begin_tick` (None before)."""
        return self._tick if self._tick >= 0 else None
