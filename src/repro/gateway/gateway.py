"""The deterministic overload-safe request gateway.

:class:`Gateway` fronts a :class:`~repro.serve.service.ShardedBatchService`
with the coordination layer the paper's always-available machine model
omits:

* **admission control** — bounded per-priority queues
  (:mod:`repro.gateway.admission`); a full queue sheds with a typed
  ``"queue-full"`` rejection, never unbounded buffering;
* **deadlines** — every request carries an absolute deadline tick;
  entries that expire while queued are cancelled with a typed
  ``"deadline"`` rejection before any work is spent on them;
* **backpressure** — the service model is a single logical server:
  dispatch rounds of at most ``batch_size`` requests, each round
  busying the server for ``base_service_ticks`` plus
  ``ticks_per_eval`` per unique cache-miss evaluation.  Under
  overload the queues fill, deadlines fire and the shed rate rises —
  the gateway degrades, it does not collapse;
* **retry budget** — a dispatch round that fails terminally
  (:class:`~repro.errors.AllShardsDegradedError`) is retried only
  while the global token bucket (:mod:`repro.gateway.retry`) has
  tokens; otherwise its requests are rejected ``"retry-budget"``, so
  retries can never amplify an outage;
* **shard self-healing** — degradations reported by the service feed
  the :class:`~repro.gateway.health.HealthSupervisor`; after a
  cooldown the gateway probes the shard
  (:meth:`ShardedBatchService.probe_shard`) and readmits it
  (:meth:`ShardedBatchService.readmit`) on success, extending the
  service's one-way degradation into a full circuit-breaker loop.

Everything runs on a **logical clock**: one ``step()`` call is one
tick, faults come from a seeded :class:`~repro.faults.FaultPlan` via
:class:`~repro.gateway.chaos.ShardOutageController`, and the outcome
log is a pure function of ``(arrivals, config, plan)`` — two
same-seed runs are byte-identical, which the e26 benchmark and the CI
``gateway-smoke`` job enforce.  The opt-in asyncio wall-clock driver
lives in :mod:`repro.gateway.aio` and paces the very same ``step()``
state machine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import AllShardsDegradedError
from ..faults import FaultPlan
from ..serve.engines import evaluate_payload
from ..serve.request import EvalRequest, request_to_dict
from ..serve.service import ShardedBatchService
from ..telemetry import Recorder, live
from ..trees.uniform import UniformTree
from .admission import AdmissionQueue
from .chaos import ShardOutageController
from .health import HealthSupervisor
from .retry import RetryBudget
from .types import (
    GatewayOutcome,
    GatewayRequest,
    gateway_response_log,
)

__all__ = ["Gateway", "GatewayConfig", "GatewayStats", "GatewayReport"]


@dataclass(frozen=True)
class GatewayConfig:
    """Knobs of the gateway's admission/service/recovery model."""

    num_shards: int = 2
    cache_size: Optional[int] = None
    #: per-priority admission queue capacities.
    queue_capacities: Mapping[str, int] = field(
        default_factory=lambda: {
            "interactive": 16, "batch": 32, "bulk": 32,
        }
    )
    #: max requests per dispatch round (the service's batch window).
    batch_size: int = 8
    #: fixed ticks every dispatch round busies the server.
    base_service_ticks: int = 1
    #: extra ticks per unique cache-miss evaluation in a round.
    ticks_per_eval: int = 1
    #: retry token bucket.
    retry_capacity: int = 8
    retry_refill_per_tick: float = 0.25
    #: shard health supervision.
    probe_after: int = 4
    probe_interval: int = 4
    #: per-shard runtime retry rounds (inner, not gateway retries).
    shard_max_retries: int = 1
    #: safety bound on post-arrival drain ticks (deadlocks surface as
    #: a hard error instead of an infinite loop).
    max_drain_ticks: int = 10_000

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.base_service_ticks < 1:
            raise ValueError("base_service_ticks must be >= 1")
        if self.ticks_per_eval < 0:
            raise ValueError("ticks_per_eval must be >= 0")
        if self.max_drain_ticks < 1:
            raise ValueError("max_drain_ticks must be >= 1")


@dataclass
class GatewayStats:
    """Aggregate accounting for one gateway run."""

    arrivals: int = 0
    admitted: int = 0
    completed: int = 0
    #: typed rejections by reason.
    rejected: Dict[str, int] = field(default_factory=dict)
    dispatch_rounds: int = 0
    #: dispatch rounds that failed terminally and were requeued.
    retried_rounds: int = 0
    #: requests requeued by the retry path.
    retried_requests: int = 0
    probes: int = 0
    readmissions: int = 0
    outages: int = 0
    max_queue_depth: int = 0
    ticks: int = 0

    def reject(self, reason: str, n: int = 1) -> None:
        self.rejected[reason] = self.rejected.get(reason, 0) + n

    @property
    def total_rejected(self) -> int:
        return sum(self.rejected.values())


@dataclass
class GatewayReport:
    """Everything one gateway run produced."""

    outcomes: List[GatewayOutcome]
    stats: GatewayStats

    @property
    def response_log(self) -> str:
        """The byte-replayable outcome log."""
        return gateway_response_log(self.outcomes)

    @property
    def latencies(self) -> List[int]:
        """Sorted completion latencies (ticks) of ok outcomes."""
        return sorted(
            o.latency for o in self.outcomes if o.status == "ok"
        )


def _probe_payload() -> Dict[str, object]:
    """A minimal, constant evaluation payload for health probes."""
    req = EvalRequest.make(
        -1, "sequential", UniformTree(2, 1, [0, 1])
    )
    data = request_to_dict(req)
    del data["id"]
    return data


class Gateway:
    """Tick-driven front-end over a sharded batch service.

    Drive it either with :meth:`run` (the deterministic event loop)
    or by calling :meth:`step` once per tick from an external pacer
    (the asyncio wall-clock driver).  A gateway instance is
    single-run; build a fresh one per run.
    """

    def __init__(
        self,
        config: GatewayConfig = GatewayConfig(),
        *,
        fault_plan: Optional[FaultPlan] = None,
        recorder: Optional[Recorder] = None,
    ) -> None:
        self.config = config
        self._rec = live(recorder)
        self.chaos: Optional[ShardOutageController] = None
        oracle_for_shard = None
        if fault_plan is not None:
            self.chaos = ShardOutageController(
                config.num_shards, fault_plan
            )
            self.chaos.begin_run()
            oracle_for_shard = self.chaos.oracle_for_shard(
                evaluate_payload
            )
        self.service = ShardedBatchService(
            config.num_shards,
            cache_size=config.cache_size,
            pool="serial",
            oracle_for_shard=oracle_for_shard,
            max_retries=config.shard_max_retries,
            max_consecutive_rebuilds=1,
            recorder=recorder,
        )
        self.queue = AdmissionQueue(config.queue_capacities)
        self.budget = RetryBudget(
            config.retry_capacity, config.retry_refill_per_tick
        )
        self.health = HealthSupervisor(
            config.num_shards,
            probe_after=config.probe_after,
            probe_interval=config.probe_interval,
        )
        self.stats = GatewayStats()
        self.outcomes: List[GatewayOutcome] = []
        self._probe = _probe_payload()
        self._tick = 0
        self._busy_until = 0
        self._closed = False

    # -- lifecycle ---------------------------------------------------------
    def __enter__(self) -> "Gateway":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def close(self) -> None:
        if not self._closed:
            self.service.close()
            self._closed = True

    # -- the state machine -------------------------------------------------
    @property
    def tick(self) -> int:
        return self._tick

    def pending(self) -> int:
        """Requests admitted but not yet answered."""
        return self.queue.depth()

    def step(self, arrivals: Sequence[GatewayRequest] = ()) -> None:
        """Advance one logical tick.

        Order within a tick is fixed (chaos, budget refill, probes,
        expiry, admission, expiry of new arrivals, dispatch) — the
        determinism contract depends on it.
        """
        now = self._tick
        rec = self._rec
        if self.chaos is not None:
            self.chaos.begin_tick(now)
            self.stats.outages = self.chaos.outages
        if now > 0:
            self.budget.advance(1)

        # Half-open probes for degraded shards whose cooldown passed.
        for shard in self.health.due_probes(now):
            self.stats.probes += 1
            ok = self.service.probe_shard(shard, dict(self._probe))
            self.health.on_probe_result(shard, ok, now)
            if ok:
                self.service.readmit(shard)
                self.stats.readmissions += 1
                if rec is not None:
                    rec.event(
                        "gateway.readmitted",
                        track="gateway",
                        shard=shard,
                        tick=now,
                    )

        # Deadline cancellation for queued work, before admission so a
        # freed slot can be reused by this tick's arrivals.
        for greq in self.queue.expire(now):
            self._reject(greq, "deadline", now)

        # Admission: bounded queues, typed shed.
        for greq in arrivals:
            self.stats.arrivals += 1
            reason = self.queue.offer(greq)
            if reason is not None:
                self._reject(greq, reason, now)
            else:
                self.stats.admitted += 1
        depth = self.queue.depth()
        self.stats.max_queue_depth = max(
            self.stats.max_queue_depth, depth
        )
        if rec is not None:
            rec.sample("gateway.queue_depth", depth, track="gateway")

        # Dispatch when the logical server is idle and a shard can
        # serve.  With every shard degraded the gateway holds work
        # (deadlines keep shedding it) until a probe readmits one.
        if (
            now >= self._busy_until
            and self.queue.depth() > 0
            and len(self.service.degraded_shards)
            < self.config.num_shards
        ):
            self._dispatch(now)

        self._tick = now + 1
        self.stats.ticks = self._tick
        if rec is not None:
            rec.advance(self._tick)

    def _dispatch(self, now: int) -> None:
        batch = self.queue.take(self.config.batch_size)
        if not batch:
            return
        self.stats.dispatch_rounds += 1
        evaluated_before = self.service.stats.evaluated
        try:
            responses = self.service.serve(
                [g.request for g in batch]
            )
        except AllShardsDegradedError:
            self._sync_health(now)
            self._busy_until = now + self.config.base_service_ticks
            if self.budget.try_spend(len(batch)):
                self.stats.retried_rounds += 1
                self.stats.retried_requests += len(batch)
                self.queue.requeue_front(batch)
                if self._rec is not None:
                    self._rec.count(
                        "gateway.retries", len(batch)
                    )
            else:
                for greq in batch:
                    self._reject(greq, "retry-budget", now)
            return
        self._sync_health(now)
        evaluated = (
            self.service.stats.evaluated - evaluated_before
        )
        cost = (
            self.config.base_service_ticks
            + self.config.ticks_per_eval * evaluated
        )
        self._busy_until = now + cost
        finish = self._busy_until
        for greq, resp in zip(batch, responses):
            self.stats.completed += 1
            self.outcomes.append(
                GatewayOutcome.completed(greq, resp, finish)
            )
        if self._rec is not None:
            self._rec.count("gateway.completed", len(batch))

    def _sync_health(self, now: int) -> None:
        """Feed service-observed degradations into the supervisor."""
        for shard in self.service.degraded_shards:
            self.health.on_degraded(shard, now)

    def _reject(
        self, greq: GatewayRequest, reason: str, now: int
    ) -> None:
        self.stats.reject(reason)
        self.outcomes.append(
            GatewayOutcome.rejected(greq, reason, now)
        )
        if self._rec is not None:
            self._rec.count(f"gateway.rejected.{reason}")

    # -- the deterministic event loop --------------------------------------
    def run(
        self, arrivals: Sequence[Tuple[int, GatewayRequest]]
    ) -> GatewayReport:
        """Run to completion over a logical arrival schedule.

        ``arrivals`` are ``(tick, request)`` pairs, non-decreasing in
        tick.  The loop steps through every arrival tick and then
        drains: it keeps ticking until each admitted request has been
        answered or rejected, bounded by ``max_drain_ticks``.
        """
        by_tick: Dict[int, List[GatewayRequest]] = {}
        last_arrival = 0
        previous = 0
        for tick, greq in arrivals:
            if tick < previous:
                raise ValueError(
                    "arrival ticks must be non-decreasing"
                )
            previous = tick
            by_tick.setdefault(tick, []).append(greq)
            last_arrival = max(last_arrival, tick)

        while self._tick <= last_arrival or self.pending() > 0:
            if self._tick > last_arrival + self.config.max_drain_ticks:
                raise RuntimeError(
                    f"gateway failed to drain within "
                    f"{self.config.max_drain_ticks} ticks of the last "
                    f"arrival ({self.pending()} request(s) stuck)"
                )
            self.step(by_tick.get(self._tick, ()))
        return GatewayReport(
            outcomes=list(self.outcomes), stats=self.stats
        )
