"""Gateway request/response types and the deterministic outcome log.

The gateway's unit of work is a :class:`GatewayRequest` — an
:class:`~repro.serve.request.EvalRequest` wrapped with the admission
metadata the front-end needs: a priority class, the logical arrival
tick and the absolute deadline tick.  Every admitted-or-not request
produces exactly one :class:`GatewayOutcome`, either

* ``status="ok"`` — the evaluation completed before its deadline and
  carries the deterministic ``(value, steps, work)`` answer plus its
  queueing/service latency in ticks; or
* ``status="rejected"`` — a typed refusal (:data:`REJECT_REASONS`),
  never a silent drop and never an unbounded queue.

The outcome log (:func:`gateway_response_log`) is the gateway's
determinism artifact: same request stream + same config + same fault
plan ⇒ byte-identical logs, rejections and latencies included,
because every field is derived from the logical clock and seeded
decisions only.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Optional, Sequence

from ..serve.request import EvalRequest, EvalResponse

__all__ = [
    "PRIORITIES",
    "REJECT_REASONS",
    "GatewayRequest",
    "GatewayOutcome",
    "gateway_response_record",
    "gateway_response_log",
]

#: Priority classes, highest first; dispatch drains them in this order.
PRIORITIES = ("interactive", "batch", "bulk")

#: Every reason a request can be refused.  Typed — callers switch on
#: these strings, and the log schema freezes them.
REJECT_REASONS = (
    "queue-full",     # admission queue at capacity (load shed)
    "deadline",       # deadline passed while queued
    "retry-budget",   # service dispatch failed, no retry tokens left
)


@dataclass(frozen=True)
class GatewayRequest:
    """One admitted-or-shed unit of gateway work."""

    request: EvalRequest
    priority: str
    #: logical tick the request entered the gateway.
    arrival: int
    #: absolute tick after which the request must not be answered.
    deadline: int

    def __post_init__(self) -> None:
        if self.priority not in PRIORITIES:
            raise ValueError(
                f"unknown priority {self.priority!r}; "
                f"expected one of {PRIORITIES}"
            )
        if self.deadline < self.arrival:
            raise ValueError(
                f"deadline {self.deadline} precedes arrival "
                f"{self.arrival}"
            )


@dataclass(frozen=True)
class GatewayOutcome:
    """The gateway's answer for one request (completed or rejected)."""

    request_id: int
    status: str                       # "ok" | "rejected"
    priority: str
    arrival: int
    finish: int                       # completion / rejection tick
    reason: Optional[str] = None      # rejections only
    #: completed requests carry the deterministic evaluation result.
    key: Optional[str] = None
    algo: Optional[str] = None
    value: Optional[float] = None
    steps: Optional[int] = None
    work: Optional[int] = None

    @property
    def latency(self) -> int:
        """Ticks from arrival to completion/rejection."""
        return self.finish - self.arrival

    @classmethod
    def completed(
        cls, greq: GatewayRequest, resp: EvalResponse, finish: int
    ) -> "GatewayOutcome":
        return cls(
            request_id=greq.request.request_id,
            status="ok",
            priority=greq.priority,
            arrival=greq.arrival,
            finish=finish,
            key=resp.key,
            algo=resp.algo,
            value=resp.value,
            steps=resp.steps,
            work=resp.work,
        )

    @classmethod
    def rejected(
        cls, greq: GatewayRequest, reason: str, finish: int
    ) -> "GatewayOutcome":
        if reason not in REJECT_REASONS:
            raise ValueError(
                f"unknown rejection reason {reason!r}; "
                f"expected one of {REJECT_REASONS}"
            )
        return cls(
            request_id=greq.request.request_id,
            status="rejected",
            priority=greq.priority,
            arrival=greq.arrival,
            finish=finish,
            reason=reason,
        )


def gateway_response_record(outcome: GatewayOutcome) -> str:
    """One compact, sorted-key JSON line for an outcome."""
    record = {
        "id": outcome.request_id,
        "status": outcome.status,
        "priority": outcome.priority,
        "arrival": outcome.arrival,
        "finish": outcome.finish,
        "latency": outcome.latency,
    }
    if outcome.status == "ok":
        record.update(
            key=outcome.key,
            algo=outcome.algo,
            value=outcome.value,
            steps=outcome.steps,
            work=outcome.work,
        )
    else:
        record["reason"] = outcome.reason
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def gateway_response_log(outcomes: Sequence[GatewayOutcome]) -> str:
    """The newline-terminated outcome log (the determinism artifact)."""
    return "".join(
        gateway_response_record(o) + "\n" for o in outcomes
    )
