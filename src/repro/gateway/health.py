"""Shard health supervision: degraded → half-open probe → readmission.

:class:`~repro.serve.service.ShardedBatchService` marks a failing
shard degraded and never looks at it again — correct for a single
batch, wasteful for a long-running gateway where most outages are
transient.  :class:`HealthSupervisor` closes the loop with the
standard circuit-breaker shape:

* ``HEALTHY`` — in rotation;
* ``DEGRADED`` — out of rotation; after ``probe_after`` ticks the
  shard becomes due for a probe;
* ``PROBING`` (half-open) — exactly one probe request is sent; on
  success the shard is readmitted, on failure it returns to
  ``DEGRADED`` and waits ``probe_interval`` ticks before the next
  attempt.

The supervisor is pure bookkeeping over the logical clock — the
gateway performs the actual probe via
:meth:`ShardedBatchService.probe_shard` and reports the verdict back
— so the state machine is deterministic and directly unit-testable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

__all__ = ["HealthSupervisor", "ShardState", "HEALTHY", "DEGRADED", "PROBING"]

HEALTHY = "healthy"
DEGRADED = "degraded"
PROBING = "probing"


@dataclass
class ShardState:
    """Supervision record for one shard."""

    state: str = HEALTHY
    #: tick of the most recent degradation.
    degraded_at: int = 0
    #: earliest tick the next probe may fire.
    next_probe: int = 0
    probes: int = 0
    readmissions: int = 0


class HealthSupervisor:
    """Per-shard circuit-breaker state over the logical clock.

    Parameters
    ----------
    num_shards:
        Shards to supervise (indices ``0..num_shards-1``).
    probe_after:
        Ticks a shard stays degraded before its first probe.
    probe_interval:
        Ticks between failed probes.
    """

    def __init__(
        self,
        num_shards: int,
        *,
        probe_after: int = 4,
        probe_interval: int = 4,
    ) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if probe_after < 1 or probe_interval < 1:
            raise ValueError("probe timings must be >= 1 tick")
        self.probe_after = probe_after
        self.probe_interval = probe_interval
        self.shards: Dict[int, ShardState] = {
            shard: ShardState() for shard in range(num_shards)
        }

    # -- transitions -------------------------------------------------------
    def on_degraded(self, shard: int, tick: int) -> None:
        """Record a degradation (idempotent while already degraded)."""
        record = self.shards[shard]
        if record.state == DEGRADED:
            return
        record.state = DEGRADED
        record.degraded_at = tick
        record.next_probe = tick + self.probe_after

    def due_probes(self, tick: int) -> List[int]:
        """Shards whose probe window opened; marks them half-open.

        Returned in ascending shard order — the deterministic probe
        order the gateway relies on.
        """
        due = []
        for shard in sorted(self.shards):
            record = self.shards[shard]
            if record.state == DEGRADED and tick >= record.next_probe:
                record.state = PROBING
                record.probes += 1
                due.append(shard)
        return due

    def on_probe_result(self, shard: int, ok: bool, tick: int) -> None:
        """Close the half-open state with the probe's verdict."""
        record = self.shards[shard]
        if record.state != PROBING:
            raise ValueError(
                f"shard {shard} is {record.state!r}, not probing"
            )
        if ok:
            record.state = HEALTHY
            record.readmissions += 1
        else:
            record.state = DEGRADED
            record.next_probe = tick + self.probe_interval

    # -- introspection -----------------------------------------------------
    def state(self, shard: int) -> str:
        return self.shards[shard].state

    def degraded(self) -> List[int]:
        return [
            shard for shard in sorted(self.shards)
            if self.shards[shard].state != HEALTHY
        ]

    @property
    def total_probes(self) -> int:
        return sum(r.probes for r in self.shards.values())

    @property
    def total_readmissions(self) -> int:
        return sum(r.readmissions for r in self.shards.values())
