"""E23 — fault-injection overhead on the Section 7 machine.

Convergence first: every faulty run below must return the exact
fault-free ``val(root)``.  Then overhead: at a 1% fault rate the
recovery protocol (acks, retransmission, heartbeat supervision) must
be cheap — the median tick count across seeds stays within 2x of the
fault-free run for every fault kind.  Higher rates only have to
converge; their cost is reported, not gated.
"""

from statistics import median

import pytest

from repro.bench.specs import gate_bound
from repro.faults import ALL_FAULT_KINDS, FaultPlan
from repro.simulator import simulate
from repro.trees.generators import iid_boolean

HEIGHT = 6
TREE_SEEDS = range(5)
PLAN_SEEDS = range(3)


@pytest.fixture(scope="module")
def instances():
    trees = [
        iid_boolean(2, HEIGHT, 0.45, seed=s) for s in TREE_SEEDS
    ]
    return [(t, simulate(t)) for t in trees]


def _tick_ratios(instances, kind, rate):
    ratios = []
    for tree, baseline in instances:
        for plan_seed in PLAN_SEEDS:
            plan = FaultPlan.with_rate(
                plan_seed, kind, rate, max_faults=32
            )
            res = simulate(tree, fault_plan=plan)
            assert res.value == baseline.value, (
                f"{kind}@{rate} seed {plan_seed} diverged"
            )
            ratios.append(res.ticks / baseline.ticks)
    return ratios


@pytest.mark.experiment("e23")
def test_low_rate_overhead_is_bounded(instances):
    print()
    for kind in ALL_FAULT_KINDS:
        ratios = _tick_ratios(instances, kind, 0.01)
        med = median(ratios)
        print(f"e23: {kind:>9} @0.01  median_ticks_x={med:.2f} "
              f"worst={max(ratios):.2f}")
        # The acceptance bar: rare faults must not degrade the run.
        # The bound is owned by the registry spec (gate parity).
        assert med <= gate_bound("e23", f"overhead_{kind}"), (kind, med)


@pytest.mark.experiment("e23")
def test_high_rates_still_converge(instances):
    for kind in ALL_FAULT_KINDS:
        for rate in (0.05, 0.2):
            ratios = _tick_ratios(instances, kind, rate)
            print(f"e23: {kind:>9} @{rate:.2f}  "
                  f"median_ticks_x={median(ratios):.2f}")


@pytest.mark.experiment("e23")
def test_faulty_run_kernel(benchmark):
    tree = iid_boolean(2, HEIGHT, 0.45, seed=0)
    plan = FaultPlan(
        1, drop=0.05, duplicate=0.02, delay=0.02, crash=0.01,
        max_faults=32,
    )
    truth = simulate(tree).value

    def kernel():
        return simulate(tree, fault_plan=plan).value

    assert benchmark(kernel) == truth
