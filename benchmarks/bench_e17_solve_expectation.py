"""E17 — measured Sequential SOLVE cost vs the exact i.i.d. recurrence."""

import pytest

from repro.analysis import solve_expected_cost
from repro.bench import run_experiment
from repro.trees.generators.iid import level_invariant_bias


@pytest.fixture(scope="module")
def table():
    return run_experiment("e17")


@pytest.mark.experiment("e17")
def test_measured_matches_expectation(table, benchmark):
    # Sampling means stay within 20% of the closed form everywhere.
    for ratio in table.column("ratio"):
        assert 0.8 <= ratio <= 1.2

    benchmark(
        lambda: solve_expected_cost(2, 18, level_invariant_bias(2))
        .expected_cost
    )
    print("\n" + table.render())
