"""E17 — measured Sequential SOLVE cost vs the exact i.i.d. recurrence."""

import pytest

from repro.analysis import solve_expected_cost
from repro.bench import run_experiment
from repro.trees.generators.iid import level_invariant_bias


@pytest.fixture(scope="module")
def table():
    return run_experiment("e17")


@pytest.mark.experiment("e17")
def test_measured_matches_expectation(table, benchmark):
    # Sampling means stay within 20% of the closed form everywhere.
    for ratio in table.column("ratio"):
        assert 0.8 <= ratio <= 1.2

    benchmark(
        lambda: solve_expected_cost(2, 18, level_invariant_bias(2))
        .expected_cost
    )
    print("\n" + table.render())


@pytest.mark.experiment("e17")
def test_registry_gate_parity(table):
    """Gate parity: the registry spec's verdicts on this very table."""
    from repro.bench.registry import get_spec
    from repro.bench.specs import metrics_from_table

    spec = get_spec("e17")
    metrics = metrics_from_table("e17", table)
    assert spec.gates, "spec declares at least one gate"
    for gate in spec.gates:
        if gate.wallclock:
            continue
        assert gate.holds(metrics[gate.metric]), (
            gate.name, metrics[gate.metric], gate.op, gate.bound
        )
