"""E16 — Section 8 remarks: width sweep and the empirical constant c."""

import pytest

from repro.bench import run_experiment
from repro.core import parallel_solve
from repro.trees.generators import sequential_worst_case


@pytest.fixture(scope="module")
def table():
    return run_experiment("e16")


@pytest.mark.experiment("e16")
def test_width_sweep_shape(table, benchmark):
    n = 12
    for family in ("iid p*", "worst-case", "all-ones"):
        rows = [r for r in table.rows if r[0] == family]
        procs = [r[6] for r in rows]
        speedups = [r[5] for r in rows]
        # Processor usage grows polynomially with the width: n+1 at
        # width 1, O(n^2) at width 2, O(n^3) at width 3.
        assert procs[1] <= n + 1
        assert procs[1] < procs[2] <= (n + 1) ** 2
        assert procs[2] < procs[3] <= (n + 1) ** 3
        # The Section 8 conjecture's shape: speed-up keeps growing.
        assert speedups == sorted(speedups)
    # The empirical width-1 constant c is far better than the provable
    # one (the paper: "a better constant is achievable").
    width1_c = [r[7] for r in table.rows if r[2] == 1]
    assert min(width1_c) > 0.2

    tree = sequential_worst_case(2, 10)
    benchmark(lambda: parallel_solve(tree, 3).num_steps)
    print("\n" + table.render())


@pytest.mark.experiment("e16")
def test_registry_gate_parity(table):
    """Gate parity: the registry spec's verdicts on this very table."""
    from repro.bench.registry import get_spec
    from repro.bench.specs import metrics_from_table

    spec = get_spec("e16")
    metrics = metrics_from_table("e16", table)
    assert spec.gates, "spec declares at least one gate"
    for gate in spec.gates:
        if gate.wallclock:
            continue
        assert gate.holds(metrics[gate.metric]), (
            gate.name, metrics[gate.metric], gate.op, gate.bound
        )
