"""E27 — arena backend: vectorised columnar sweeps vs incremental.

Step-identity first: the arena backend must replay exactly the
per-step batches (and therefore steps, degrees and final values) the
incremental engine produces, on both the SOLVE and the alpha-beta
loops.  Then wall-clock: on uniform d=5 trees with batch-sized widths
the arena's level-batched settle/cascade sweeps must beat the
incremental object-graph engine by at least 10x on both loops.  The
one-time lowering (``canonical_arrays``) is memoized per tree and paid
outside the clock, mirroring how a caller amortises it over repeated
solves.
"""

import pytest

from repro.bench.specs import gate_bound
from repro.bench.wallclock import best_of
from repro.core import parallel_solve
from repro.core.alphabeta import parallel_alpha_beta
from repro.trees.canonical import canonical_arrays
from repro.trees.generators import iid_boolean
from repro.trees.generators.iid import iid_minmax, level_invariant_bias

BRANCHING = 5
HEIGHT = 7
SOLVE_WIDTH = 8
AB_WIDTH = 12


@pytest.fixture(scope="module")
def boolean_tree():
    return iid_boolean(
        BRANCHING, HEIGHT, level_invariant_bias(BRANCHING), seed=2027
    )


@pytest.fixture(scope="module")
def minmax_tree():
    return iid_minmax(BRANCHING, HEIGHT, seed=2027)


def _signature(result):
    return (result.value, result.trace.degrees, result.trace.batches)


@pytest.mark.experiment("e27")
def test_solve_step_identical(boolean_tree):
    for width in (2, 4, SOLVE_WIDTH):
        incremental = parallel_solve(
            boolean_tree, width, keep_batches=True, backend="incremental"
        )
        arena = parallel_solve(
            boolean_tree, width, keep_batches=True, backend="arena"
        )
        assert _signature(arena) == _signature(incremental), width
    for width, procs in ((4, 2), (8, 5)):
        incremental = parallel_solve(
            boolean_tree, width, max_processors=procs,
            keep_batches=True, backend="incremental",
        )
        arena = parallel_solve(
            boolean_tree, width, max_processors=procs,
            keep_batches=True, backend="arena",
        )
        assert _signature(arena) == _signature(incremental), (width, procs)


@pytest.mark.experiment("e27")
def test_alphabeta_step_identical(minmax_tree):
    for width in (2, 4):
        incremental = parallel_alpha_beta(
            minmax_tree, width, keep_batches=True, backend="incremental"
        )
        arena = parallel_alpha_beta(
            minmax_tree, width, keep_batches=True, backend="arena"
        )
        assert _signature(arena) == _signature(incremental), width
        assert arena.evaluated == incremental.evaluated, width


@pytest.mark.experiment("e27")
def test_solve_wallclock_speedup(boolean_tree, benchmark):
    canonical_arrays(boolean_tree)
    t_incremental = best_of(lambda: parallel_solve(
        boolean_tree, SOLVE_WIDTH, backend="incremental"
    ), repeats=2)
    t_arena = best_of(lambda: parallel_solve(
        boolean_tree, SOLVE_WIDTH, backend="arena"
    ), repeats=2)
    speedup = t_incremental / t_arena
    print(
        f"\nSOLVE d={BRANCHING} n={HEIGHT} w={SOLVE_WIDTH}: "
        f"incremental={t_incremental:.3f}s arena={t_arena:.4f}s "
        f"speedup={speedup:.1f}x"
    )
    # Measured ~17x on this configuration; the bound is owned by the
    # registry spec so this file and `repro bench` can never disagree.
    assert speedup >= gate_bound("e27", "solve_speedup")


@pytest.mark.experiment("e27")
def test_alphabeta_wallclock_speedup(minmax_tree, benchmark):
    canonical_arrays(minmax_tree)
    t_incremental = best_of(lambda: parallel_alpha_beta(
        minmax_tree, AB_WIDTH, backend="incremental"
    ), repeats=2)
    t_arena = best_of(lambda: parallel_alpha_beta(
        minmax_tree, AB_WIDTH, backend="arena"
    ), repeats=2)
    speedup = t_incremental / t_arena
    print(
        f"\nAB d={BRANCHING} n={HEIGHT} w={AB_WIDTH}: "
        f"incremental={t_incremental:.3f}s arena={t_arena:.4f}s "
        f"speedup={speedup:.1f}x"
    )
    # Measured ~19x on this configuration.
    assert speedup >= gate_bound("e27", "ab_speedup")
