"""E13 — Theorem 6: randomized alpha-beta expected speed-up."""

import pytest

from repro.bench import run_experiment
from repro.core.randomized import r_parallel_alpha_beta
from repro.trees.generators import iid_minmax


@pytest.fixture(scope="module")
def table():
    return run_experiment("e13")


@pytest.mark.experiment("e13")
def test_theorem6_expected_speedup(table, benchmark):
    for d in (2, 3):
        ratios = [r[5] for r in table.rows if r[0] == d]
        assert ratios[-1] > ratios[0], "expected speed-up grows with n"
    assert max(table.column("ratio")) > 2.0

    tree = iid_minmax(2, 9, seed=12)
    benchmark(lambda: r_parallel_alpha_beta(tree, 1, seed=0).num_steps)
    print("\n" + table.render())


@pytest.mark.experiment("e13")
def test_registry_gate_parity(table):
    """Gate parity: the registry spec's verdicts on this very table."""
    from repro.bench.registry import get_spec
    from repro.bench.specs import metrics_from_table

    spec = get_spec("e13")
    metrics = metrics_from_table("e13", table)
    assert spec.gates, "spec declares at least one gate"
    for gate in spec.gates:
        if gate.wallclock:
            continue
        assert gate.holds(metrics[gate.metric]), (
            gate.name, metrics[gate.metric], gate.op, gate.bound
        )
