"""E28 — shared-memory leaf evaluation: hardware speedup vs c.(n+1).

Step-identity first: with ``executor="shm"`` the run must replay
exactly the per-step batches the serial arena produces, at every
worker count and chunking policy, because only the leaf *evaluation
site* moves across processes.  Then wall-clock: with a calibrated
constant-cost leaf oracle (sleep mode, so the measurement is
independent of the host's core count) the step barrier must show a
monotone speedup curve over p = 1, 2, 4 reaching at least the
registry's bound at p=4 — the hardware shadow of the paper's
``c.(n+1)`` step-count speedup (Theorem 1).
"""

import pytest

from repro.bench.specs import gate_bound
from repro.bench.wallclock import best_of
from repro.core import parallel_solve
from repro.core.alphabeta import parallel_alpha_beta
from repro.core.shm import CalibratedOracle, ShmOptions, ShmSession
from repro.trees.generators import iid_boolean
from repro.trees.generators.iid import iid_minmax, level_invariant_bias

BRANCHING = 3
HEIGHT = 6
WIDTH = 1
ORACLE_COST_S = 0.004
P_GRID = (1, 2, 4)


@pytest.fixture(scope="module")
def boolean_tree():
    return iid_boolean(
        BRANCHING, HEIGHT, level_invariant_bias(BRANCHING), seed=2028
    )


@pytest.fixture(scope="module")
def minmax_tree():
    return iid_minmax(BRANCHING, HEIGHT, seed=2028)


def _signature(result):
    return (result.value, result.trace.degrees, result.trace.batches)


@pytest.mark.experiment("e28")
def test_solve_step_identical_across_p(boolean_tree):
    reference = parallel_solve(
        boolean_tree, WIDTH, keep_batches=True, backend="arena"
    )
    for p in P_GRID:
        for chunk in (None, 3):
            shm = parallel_solve(
                boolean_tree, WIDTH, keep_batches=True, backend="arena",
                executor="shm",
                shm_options=ShmOptions(workers=p, chunk_size=chunk),
            )
            assert _signature(shm) == _signature(reference), (p, chunk)


@pytest.mark.experiment("e28")
def test_alphabeta_step_identical(minmax_tree):
    reference = parallel_alpha_beta(
        minmax_tree, WIDTH, keep_batches=True, backend="arena"
    )
    shm = parallel_alpha_beta(
        minmax_tree, WIDTH, keep_batches=True, backend="arena",
        executor="shm", shm_options=ShmOptions(workers=2),
    )
    assert _signature(shm) == _signature(reference)


@pytest.mark.experiment("e28")
def test_wallclock_speedup_curve(boolean_tree, benchmark):
    oracle = CalibratedOracle(ORACLE_COST_S, "sleep")
    times = {}
    for p in P_GRID:
        with ShmSession(
            boolean_tree, ShmOptions(workers=p, oracle=oracle)
        ) as session:
            times[p] = best_of(
                lambda: session.parallel_solve(WIDTH), repeats=2
            )
    speedups = {p: times[1] / times[p] for p in P_GRID}
    print(
        f"\nSHM d={BRANCHING} n={HEIGHT} w={WIDTH} "
        f"cost={ORACLE_COST_S * 1e3:.1f}ms: "
        + " ".join(
            f"p={p}: {times[p]:.3f}s ({speedups[p]:.2f}x)"
            for p in P_GRID
        )
    )
    # Monotone within 5% noise, and the registry owns the p=4 bound
    # (measured ~2.8x on this configuration).
    for lo, hi in zip(P_GRID, P_GRID[1:]):
        assert times[hi] <= times[lo] * 1.05, (lo, hi)
    assert speedups[4] >= gate_bound("e28", "speedup_p4")
