"""E4 — Proposition 2: P_w(T) <= P_w(H_T), exactly, for Boolean trees."""

import pytest

from repro.analysis import skeleton_of
from repro.bench import run_experiment
from repro.trees.generators import iid_boolean
from repro.trees.generators.iid import level_invariant_bias


@pytest.fixture(scope="module")
def table():
    return run_experiment("e04")


@pytest.mark.experiment("e04")
def test_prop2_no_violations(table, benchmark):
    assert all(v == 0 for v in table.column("violations"))
    assert all(r <= 1.0 for r in table.column("max P(T)/P(H)"))

    tree = iid_boolean(2, 12, level_invariant_bias(2), seed=3)
    benchmark(lambda: skeleton_of(tree).num_nodes())
    print("\n" + table.render())


@pytest.mark.experiment("e04")
def test_registry_gate_parity(table):
    """Gate parity: the registry spec's verdicts on this very table."""
    from repro.bench.registry import get_spec
    from repro.bench.specs import metrics_from_table

    spec = get_spec("e04")
    metrics = metrics_from_table("e04", table)
    assert spec.gates, "spec declares at least one gate"
    for gate in spec.gates:
        if gate.wallclock:
            continue
        assert gate.holds(metrics[gate.metric]), (
            gate.name, metrics[gate.metric], gate.op, gate.bound
        )
