"""Shared fixtures for the benchmark suite.

Each ``bench_eXX`` file regenerates one experiment table from
DESIGN.md's index (saved under ``benchmarks/results/``), asserts the
paper-claim's shape on its rows, and times a representative kernel
with pytest-benchmark.
"""

def pytest_configure(config):
    config.addinivalue_line(
        "markers", "experiment(name): marks which paper experiment a "
        "benchmark regenerates",
    )
