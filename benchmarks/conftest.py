"""Shared fixtures for the benchmark suite.

Each ``bench_eXX`` file regenerates one experiment table from
DESIGN.md's index, asserts the paper-claim's shape on its rows, checks
gate parity against the declarative spec registry
(:mod:`repro.bench.specs`), and times a representative kernel with
pytest-benchmark.  Saved tables funnel through the single store at
``benchmarks/results/tables.json`` (see
:func:`repro.bench.snapshot.save_table_entry`); ``EXPERIMENTS.md`` is
regenerated from that store, and the registry runner's
``BENCH_<date>.json`` snapshots under ``benchmarks/history/`` are the
perf trajectory of record.
"""


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "experiment(name): marks which paper experiment a "
        "benchmark regenerates",
    )
