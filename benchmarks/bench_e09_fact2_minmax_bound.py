"""E9 — Fact 2: inherent MIN/MAX lower bound d^(n/2)+d^ceil(n/2)-1."""

import pytest

from repro.analysis import fact2_certificate_size
from repro.bench import run_experiment
from repro.trees.generators import iid_minmax


@pytest.fixture(scope="module")
def table():
    return run_experiment("e09")


@pytest.mark.experiment("e09")
def test_fact2_bound_respected(table, benchmark):
    for bound, smin, cert in zip(
        table.column("bound"),
        table.column("min S~ (iid)"),
        table.column("mean certificate"),
    ):
        assert smin >= bound
        assert cert >= bound

    tree = iid_minmax(2, 10, seed=6)
    benchmark(lambda: fact2_certificate_size(tree))
    print("\n" + table.render())


@pytest.mark.experiment("e09")
def test_registry_gate_parity(table):
    """Gate parity: the registry spec's verdicts on this very table."""
    from repro.bench.registry import get_spec
    from repro.bench.specs import metrics_from_table

    spec = get_spec("e09")
    metrics = metrics_from_table("e09", table)
    assert spec.gates, "spec declares at least one gate"
    for gate in spec.gates:
        if gate.wallclock:
            continue
        assert gate.holds(metrics[gate.metric]), (
            gate.name, metrics[gate.metric], gate.op, gate.bound
        )
