"""E2 — Proposition 1: Team SOLVE speed-up is Theta(sqrt(p))."""

import pytest

from repro.bench import run_experiment
from repro.core import team_solve
from repro.trees.generators import all_ones


@pytest.fixture(scope="module")
def table():
    return run_experiment("e02")


@pytest.mark.experiment("e02")
def test_team_speedup_tracks_sqrt_p(table, benchmark):
    ratios = table.column("hard ratio/sqrt(p)")
    # Theta(sqrt(p)): the speed-up divided by sqrt(p) stays within
    # constant bounds on the hard family (away from saturation).
    for ratio in ratios[:-1]:
        assert 0.3 <= ratio <= 3.0
    # Monotone: more processors never slow the team down.
    speedups = table.column("hard speed-up")
    assert all(b >= a * 0.999 for a, b in zip(speedups, speedups[1:]))
    # And the speed-up is far from linear: at p = 256 it is well below
    # p/4 on the hard instance.
    p_values = table.column("p")
    final = speedups[p_values.index(256)]
    assert final < 256 / 4

    tree = all_ones(2, 16)
    benchmark(lambda: team_solve(tree, 64).num_steps)
    print("\n" + table.render())


@pytest.mark.experiment("e02")
def test_registry_gate_parity(table):
    """Gate parity: the registry spec's verdicts on this very table."""
    from repro.bench.registry import get_spec
    from repro.bench.specs import metrics_from_table

    spec = get_spec("e02")
    metrics = metrics_from_table("e02", table)
    assert spec.gates, "spec declares at least one gate"
    for gate in spec.gates:
        if gate.wallclock:
            continue
        assert gate.holds(metrics[gate.metric]), (
            gate.name, metrics[gate.metric], gate.op, gate.bound
        )
