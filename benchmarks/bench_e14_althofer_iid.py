"""E14 — Section 6: golden-ratio i.i.d. setting, speed-up vs width."""

import pytest

from repro.bench import run_experiment
from repro.core import parallel_solve
from repro.trees.generators import golden_ratio_instance


@pytest.fixture(scope="module")
def table():
    return run_experiment("e14")


@pytest.mark.experiment("e14")
def test_althofer_proportional_speedup(table, benchmark):
    for n in (10, 12, 14):
        rows = [r for r in table.rows if r[0] == n]
        speedups = [r[5] for r in rows]
        widths = [r[1] for r in rows]
        assert widths == [0, 1, 2, 3]
        assert speedups == sorted(speedups), "wider is faster"
        # Speed-up proportional to processors for moderate widths:
        # efficiency does not collapse going from w=1 to w=2.
        eff = [r[7] for r in rows]
        assert eff[2] > 0.15 * eff[1]

    tree = golden_ratio_instance(13, seed=21)
    benchmark(lambda: parallel_solve(tree, 2).num_steps)
    print("\n" + table.render())


@pytest.mark.experiment("e14")
def test_registry_gate_parity(table):
    """Gate parity: the registry spec's verdicts on this very table."""
    from repro.bench.registry import get_spec
    from repro.bench.specs import metrics_from_table

    spec = get_spec("e14")
    metrics = metrics_from_table("e14", table)
    assert spec.gates, "spec declares at least one gate"
    for gate in spec.gates:
        if gate.wallclock:
            continue
        assert gate.holds(metrics[gate.metric]), (
            gate.name, metrics[gate.metric], gate.op, gate.bound
        )
