"""E14 — Section 6: golden-ratio i.i.d. setting, speed-up vs width."""

import pytest

from repro.bench import run_experiment
from repro.core import parallel_solve
from repro.trees.generators import golden_ratio_instance


@pytest.fixture(scope="module")
def table():
    return run_experiment("e14")


@pytest.mark.experiment("e14")
def test_althofer_proportional_speedup(table, benchmark):
    for n in (10, 12, 14):
        rows = [r for r in table.rows if r[0] == n]
        speedups = [r[5] for r in rows]
        widths = [r[1] for r in rows]
        assert widths == [0, 1, 2, 3]
        assert speedups == sorted(speedups), "wider is faster"
        # Speed-up proportional to processors for moderate widths:
        # efficiency does not collapse going from w=1 to w=2.
        eff = [r[7] for r in rows]
        assert eff[2] > 0.15 * eff[1]

    tree = golden_ratio_instance(13, seed=21)
    benchmark(lambda: parallel_solve(tree, 2).num_steps)
    print("\n" + table.render())
