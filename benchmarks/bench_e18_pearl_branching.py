"""E18 — Pearl's alpha-beta branching factor vs measured growth."""

import pytest

from repro.bench import run_experiment
from repro.core.alphabeta import alpha_beta
from repro.trees.generators import iid_minmax


@pytest.fixture(scope="module")
def table():
    return run_experiment("e18")


@pytest.mark.experiment("e18")
def test_growth_between_sqrt_d_and_d(table, benchmark):
    for row in table.rows:
        _d, _hs, measured, pearl, mm_growth, floor = row
        assert floor < measured < mm_growth
        # Finite heights bias the measured factor up; it should sit
        # within ~25% of Pearl's asymptotic value.
        assert measured == pytest.approx(pearl, rel=0.25)

    tree = iid_minmax(2, 12, seed=0)
    benchmark(lambda: alpha_beta(tree).total_work)
    print("\n" + table.render())


@pytest.mark.experiment("e18")
def test_registry_gate_parity(table):
    """Gate parity: the registry spec's verdicts on this very table."""
    from repro.bench.registry import get_spec
    from repro.bench.specs import metrics_from_table

    spec = get_spec("e18")
    metrics = metrics_from_table("e18", table)
    assert spec.gates, "spec declares at least one gate"
    for gate in spec.gates:
        if gate.wallclock:
            continue
        assert gate.holds(metrics[gate.metric]), (
            gate.name, metrics[gate.metric], gate.op, gate.bound
        )
