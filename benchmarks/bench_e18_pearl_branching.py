"""E18 — Pearl's alpha-beta branching factor vs measured growth."""

import pytest

from repro.bench import run_experiment
from repro.core.alphabeta import alpha_beta
from repro.trees.generators import iid_minmax


@pytest.fixture(scope="module")
def table():
    return run_experiment("e18")


@pytest.mark.experiment("e18")
def test_growth_between_sqrt_d_and_d(table, benchmark):
    for row in table.rows:
        _d, _hs, measured, pearl, mm_growth, floor = row
        assert floor < measured < mm_growth
        # Finite heights bias the measured factor up; it should sit
        # within ~25% of Pearl's asymptotic value.
        assert measured == pytest.approx(pearl, rel=0.25)

    tree = iid_minmax(2, 12, seed=0)
    benchmark(lambda: alpha_beta(tree).total_work)
    print("\n" + table.render())
