"""E11 — Theorem 4 + Prop 6: node-expansion model linear speed-up."""

import pytest

from repro.bench import run_experiment
from repro.core.nodeexpansion import n_parallel_solve
from repro.trees.generators import iid_boolean
from repro.trees.generators.iid import level_invariant_bias


@pytest.fixture(scope="module")
def table():
    return run_experiment("e11")


@pytest.mark.experiment("e11")
def test_theorem4_shape(table, benchmark):
    for n, procs in zip(table.column("n"), table.column("procs")):
        assert procs <= n + 1
    for d in (2, 3):
        sp = [r[5] for r in table.rows if r[0] == d]
        assert sp == sorted(sp), "speed-up grows with n"
    assert all(table.column("prop6 ok"))

    tree = iid_boolean(2, 13, level_invariant_bias(2), seed=2)
    benchmark(lambda: n_parallel_solve(tree, 1).num_steps)
    print("\n" + table.render())


@pytest.mark.experiment("e11")
def test_registry_gate_parity(table):
    """Gate parity: the registry spec's verdicts on this very table."""
    from repro.bench.registry import get_spec
    from repro.bench.specs import metrics_from_table

    spec = get_spec("e11")
    metrics = metrics_from_table("e11", table)
    assert spec.gates, "spec declares at least one gate"
    for gate in spec.gates:
        if gate.wallclock:
            continue
        assert gate.holds(metrics[gate.metric]), (
            gate.name, metrics[gate.metric], gate.op, gate.bound
        )
