"""E6 — Lemmas 1 & 2: k1 and k2 grow linearly in the height."""

import pytest

from repro.analysis import lemma1_k1, lemma2_k2
from repro.bench import run_experiment


@pytest.fixture(scope="module")
def table():
    return run_experiment("e06")


@pytest.mark.experiment("e06")
def test_lemma_constants_linear(table, benchmark):
    # k2 >= k1 always (Lemma 2's proof), and both fractions settle at a
    # positive constant as n grows.
    for k1, k2 in zip(table.column("k1"), table.column("k2")):
        assert k2 >= k1 >= 0
    for d in (2, 3, 4):
        fracs = [r[5] for r in table.rows if r[0] == d]
        assert fracs[-1] >= 0.05, "k2/n must stay bounded away from 0"
        # Larger n should not collapse the fraction.
        assert fracs[-1] >= fracs[0] * 0.8

    benchmark(lambda: (lemma1_k1(320, 2), lemma2_k2(320, 2)))
    print("\n" + table.render())


@pytest.mark.experiment("e06")
def test_registry_gate_parity(table):
    """Gate parity: the registry spec's verdicts on this very table."""
    from repro.bench.registry import get_spec
    from repro.bench.specs import metrics_from_table

    spec = get_spec("e06")
    metrics = metrics_from_table("e06", table)
    assert spec.gates, "spec declares at least one gate"
    for gate in spec.gates:
        if gate.wallclock:
            continue
        assert gate.holds(metrics[gate.metric]), (
            gate.name, metrics[gate.metric], gate.op, gate.bound
        )
