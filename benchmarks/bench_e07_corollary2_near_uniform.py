"""E7 — Corollary 2: near-uniform trees keep the linear speed-up."""

import pytest

from repro.bench import run_experiment
from repro.core import parallel_solve
from repro.trees.generators import near_uniform_boolean


@pytest.fixture(scope="module")
def table():
    return run_experiment("e07")


@pytest.mark.experiment("e07")
def test_corollary2_speedup_grows(table, benchmark):
    speedups = table.column("speed-up")
    # Speed-up grows with the height band on (alpha, beta)-near-uniform
    # trees just as on uniform ones.
    assert speedups[-1] > speedups[0]
    assert speedups[-1] > 3.0

    tree = near_uniform_boolean(4, 12, 0.5, 0.6, p=0.3, seed=9)
    benchmark(lambda: parallel_solve(tree, 1).num_steps)
    print("\n" + table.render())


@pytest.mark.experiment("e07")
def test_registry_gate_parity(table):
    """Gate parity: the registry spec's verdicts on this very table."""
    from repro.bench.registry import get_spec
    from repro.bench.specs import metrics_from_table

    spec = get_spec("e07")
    metrics = metrics_from_table("e07", table)
    assert spec.gates, "spec declares at least one gate"
    for gate in spec.gates:
        if gate.wallclock:
            continue
        assert gate.holds(metrics[gate.metric]), (
            gate.name, metrics[gate.metric], gate.op, gate.bound
        )
