"""E19 — minimax / alpha-beta / SCOUT / SSS* head-to-head."""

import pytest

from repro.bench import run_experiment
from repro.core.alphabeta import sss_star
from repro.trees.generators import iid_minmax


@pytest.fixture(scope="module")
def table():
    return run_experiment("e19")


@pytest.mark.experiment("e19")
def test_baseline_ordering(table, benchmark):
    for row in table.rows:
        n, _trials, mm, ab, sc_events, sc_distinct, ss, dominance = row
        assert dominance, "SSS* must never exceed alpha-beta"
        assert ss <= ab <= mm
        assert sc_distinct <= mm
        # SCOUT re-visits leaves: events >= distinct.
        assert sc_events >= sc_distinct
        # minimax reads all 2^n leaves.
        assert mm == 2 ** n

    tree = iid_minmax(2, 10, seed=1)
    benchmark(lambda: sss_star(tree).total_work)
    print("\n" + table.render())


@pytest.mark.experiment("e19")
def test_registry_gate_parity(table):
    """Gate parity: the registry spec's verdicts on this very table."""
    from repro.bench.registry import get_spec
    from repro.bench.specs import metrics_from_table

    spec = get_spec("e19")
    metrics = metrics_from_table("e19", table)
    assert spec.gates, "spec declares at least one gate"
    for gate in spec.gates:
        if gate.wallclock:
            continue
        assert gate.holds(metrics[gate.metric]), (
            gate.name, metrics[gate.metric], gate.op, gate.bound
        )
