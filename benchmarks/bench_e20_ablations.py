"""E20 — design-choice ablations (matched processors; machine
scheduling priority)."""

import pytest

from repro.bench import run_experiment
from repro.simulator import simulate
from repro.trees.generators import iid_boolean
from repro.trees.generators.iid import level_invariant_bias


@pytest.fixture(scope="module")
def table():
    return run_experiment("e20")


@pytest.mark.experiment("e20")
def test_ablation_shapes(table, benchmark):
    rows = table.rows
    # Matched-processor comparison exists for every height and both
    # arms computed the same instances (speed-ups positive).
    team = [r for r in rows if r[0] == "team@n+1"]
    par = [r for r in rows if r[0] == "parallel w=1"]
    assert len(team) == len(par) >= 3
    for t_row, p_row in zip(team, par):
        assert t_row[4] > 1.0 and p_row[4] > 1.0
        # Average-case: the two are within a small factor of each
        # other at equal processor budgets.
        assert 0.5 <= t_row[4] / p_row[4] <= 2.5
    # The machine's default p-first scheduling beats sibling-first.
    prio = [r for r in rows if r[0] == "machine priority"]
    by_n = {}
    for r in prio:
        by_n.setdefault(r[1], {})[r[2]] = r[3]
    for n, settings in by_n.items():
        assert settings["p_first"] < settings["s_first"]

    tree = iid_boolean(2, 10, level_invariant_bias(2), seed=2)
    benchmark(lambda: simulate(tree, work_priority="s_first").ticks)
    print("\n" + table.render())


@pytest.mark.experiment("e20")
def test_registry_gate_parity(table):
    """Gate parity: the registry spec's verdicts on this very table."""
    from repro.bench.registry import get_spec
    from repro.bench.specs import metrics_from_table

    spec = get_spec("e20")
    metrics = metrics_from_table("e20", table)
    assert spec.gates, "spec declares at least one gate"
    for gate in spec.gates:
        if gate.wallclock:
            continue
        assert gate.holds(metrics[gate.metric]), (
            gate.name, metrics[gate.metric], gate.op, gate.bound
        )
