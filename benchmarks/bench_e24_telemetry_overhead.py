"""E24 — telemetry overhead gates on the E21 workload.

The recorder parameter threads through every engine hot loop, so its
cost must be provably negligible when telemetry is off and bounded
when it is on.  On the E21 benchmark tree (uniform d=4, n=8, the
frontier-backend workload) this file gates:

* ``recorder=None`` / ``NullRecorder`` — ≤ 1.05x the pre-PR baseline
  (the guard is one ``is not None`` test per basic step);
* ``InMemoryRecorder`` — ≤ 1.5x median step time (one span append,
  two registry updates and one counter sample per step).

Both gates compare median-of-repeats step time on identical runs, and
both directions are checked for step-identity first so a timing win
can never hide a semantic regression.
"""

import pytest

from repro.bench.specs import gate_bound
from repro.bench.wallclock import median_seconds
from repro.core import parallel_solve
from repro.telemetry import InMemoryRecorder, NullRecorder
from repro.trees.generators import iid_boolean
from repro.trees.generators.iid import level_invariant_bias

BRANCHING = 4
HEIGHT = 8
WIDTH = 4
REPEATS = 5


@pytest.fixture(scope="module")
def tree():
    return iid_boolean(
        BRANCHING, HEIGHT, level_invariant_bias(BRANCHING), seed=2026
    )


def _median_step_seconds(tree, recorder, repeats=REPEATS):
    """Median over repeats of per-step wall time for one solve run."""
    med, result = median_seconds(
        lambda: parallel_solve(tree, WIDTH, recorder=recorder), repeats
    )
    return med / result.num_steps, result


@pytest.mark.experiment("e24")
def test_recorders_step_identical(tree):
    baseline = parallel_solve(tree, WIDTH, keep_batches=True)
    for recorder in (None, NullRecorder(), InMemoryRecorder()):
        run = parallel_solve(
            tree, WIDTH, keep_batches=True, recorder=recorder
        )
        assert run.value == baseline.value, recorder
        assert run.trace.degrees == baseline.trace.degrees, recorder
        assert run.trace.batches == baseline.trace.batches, recorder


@pytest.mark.experiment("e24")
def test_null_recorder_overhead_gate(tree):
    t_base, _ = _median_step_seconds(tree, None)
    t_null, _ = _median_step_seconds(tree, NullRecorder())
    ratio = t_null / t_base
    print(f"\nNullRecorder overhead: {ratio:.3f}x "
          f"(base {t_base * 1e6:.1f}us/step, null {t_null * 1e6:.1f}us)")
    # Generous slack over the measured ~1.00x: the guard is a single
    # `is not None` per step, so anything near the gate is a bug.
    assert ratio <= gate_bound("e24", "null_overhead")


@pytest.mark.experiment("e24")
def test_inmemory_recorder_overhead_gate(tree, benchmark):
    t_base, _ = _median_step_seconds(tree, None)
    t_mem, run = _median_step_seconds(tree, InMemoryRecorder())
    ratio = t_mem / t_base
    print(f"\nInMemoryRecorder overhead: {ratio:.3f}x "
          f"(base {t_base * 1e6:.1f}us/step, mem {t_mem * 1e6:.1f}us)")
    assert ratio <= gate_bound("e24", "inmemory_overhead")
    assert run.num_steps > 0

    benchmark(lambda: parallel_solve(
        tree, WIDTH, recorder=InMemoryRecorder()
    ).num_steps)
