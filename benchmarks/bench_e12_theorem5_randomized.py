"""E12 — Theorem 5: randomized SOLVE's expected linear speed-up."""

import pytest

from repro.bench import run_experiment
from repro.core.randomized import r_parallel_solve
from repro.trees.generators import sequential_worst_case


@pytest.fixture(scope="module")
def table():
    return run_experiment("e12")


@pytest.mark.experiment("e12")
def test_theorem5_expected_speedup(table, benchmark):
    ratios = table.column("ratio")
    assert ratios == sorted(ratios), "expected speed-up grows with n"
    assert ratios[-1] > 3.0
    # Deterministic S* certifies the instances really are worst-case.
    for n, det in zip(table.column("n"), table.column("det S*")):
        assert det >= 2 ** n  # expands every leaf (and more)

    tree = sequential_worst_case(2, 10)
    benchmark(lambda: r_parallel_solve(tree, 1, seed=0).num_steps)
    print("\n" + table.render())


@pytest.mark.experiment("e12")
def test_registry_gate_parity(table):
    """Gate parity: the registry spec's verdicts on this very table."""
    from repro.bench.registry import get_spec
    from repro.bench.specs import metrics_from_table

    spec = get_spec("e12")
    metrics = metrics_from_table("e12", table)
    assert spec.gates, "spec declares at least one gate"
    for gate in spec.gates:
        if gate.wallclock:
            continue
        assert gate.holds(metrics[gate.metric]), (
            gate.name, metrics[gate.metric], gate.op, gate.bound
        )
