"""E12 — Theorem 5: randomized SOLVE's expected linear speed-up."""

import pytest

from repro.bench import run_experiment
from repro.core.randomized import r_parallel_solve
from repro.trees.generators import sequential_worst_case


@pytest.fixture(scope="module")
def table():
    return run_experiment("e12")


@pytest.mark.experiment("e12")
def test_theorem5_expected_speedup(table, benchmark):
    ratios = table.column("ratio")
    assert ratios == sorted(ratios), "expected speed-up grows with n"
    assert ratios[-1] > 3.0
    # Deterministic S* certifies the instances really are worst-case.
    for n, det in zip(table.column("n"), table.column("det S*")):
        assert det >= 2 ** n  # expands every leaf (and more)

    tree = sequential_worst_case(2, 10)
    benchmark(lambda: r_parallel_solve(tree, 1, seed=0).num_steps)
    print("\n" + table.render())
