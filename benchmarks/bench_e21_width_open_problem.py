"""E21 — the Section 8 open problem, measured."""

import pytest

from repro.bench import run_experiment
from repro.core import parallel_solve
from repro.trees.generators import iid_boolean
from repro.trees.generators.iid import level_invariant_bias


@pytest.fixture(scope="module")
def table():
    return run_experiment("e21")


@pytest.mark.experiment("e21")
def test_open_problem_evidence_shapes(table, benchmark):
    for family in ("iid p*", "worst"):
        rows = [r for r in table.rows if r[0] == family]
        # Speed-ups keep increasing with width...
        by_instance = {}
        for r in rows:
            by_instance.setdefault((r[1], r[2]), []).append(r)
        for case_rows in by_instance.values():
            speedups = [r[5] for r in case_rows]
            assert speedups == sorted(speedups)
            # ...and the per-processor constant stays positive.
            assert all(r[7] > 0.03 for r in case_rows)
    # Honest open-problem evidence: the naive candidate bound is NOT
    # universally satisfied (if this flips to all-True, the candidate
    # deserves a second look as a conjecture).
    verdicts = table.column("hist<=cand")
    assert not all(verdicts) or len(set(verdicts)) == 1

    tree = iid_boolean(2, 12, level_invariant_bias(2), seed=9)
    benchmark(lambda: parallel_solve(tree, 2).num_steps)
    print("\n" + table.render())


@pytest.mark.experiment("e21")
def test_registry_gate_parity(table):
    """Gate parity: the registry spec's verdicts on this very table."""
    from repro.bench.registry import get_spec
    from repro.bench.specs import metrics_from_table

    spec = get_spec("e21")
    metrics = metrics_from_table("e21", table)
    assert spec.gates, "spec declares at least one gate"
    for gate in spec.gates:
        if gate.wallclock:
            continue
        assert gate.holds(metrics[gate.metric]), (
            gate.name, metrics[gate.metric], gate.op, gate.bound
        )
