"""E25 — serving throughput: the canonical cache must carry real load.

A zipf-skewed stream over a finite tree pool is the serving workload
the cache exists for: a small set of hot (tree, algorithm) pairs
dominates traffic.  This file gates the architecture's point —
warm-cache serving must process the same stream at least **3x**
faster than serving with the cache disabled — and re-pins the
determinism contract on the way (the sped-up configuration answers
byte-identically, so the win can never come from answering less).

Wall-clock lives here rather than in ``repro.serve`` itself: the
serving core is wall-clock-free by lint rule R2, and benchmarks are
the one place timing is allowed.
"""

import pytest

from repro.bench.specs import gate_bound
from repro.bench.wallclock import median_seconds
from repro.serve import ShardedBatchService, response_log, synthetic_stream

NUM_REQUESTS = 300
NUM_TREES = 10
HEIGHT = 6
ZIPF_S = 1.2
REPEATS = 3
GATE = gate_bound("e25", "warm_speedup")


@pytest.fixture(scope="module")
def stream():
    return synthetic_stream(
        NUM_REQUESTS, seed=2025, num_trees=NUM_TREES,
        height=HEIGHT, zipf_s=ZIPF_S,
    )


def _serve_seconds(service, stream, repeats=REPEATS):
    """Median wall time to serve the stream (and the last log)."""
    med, responses = median_seconds(
        lambda: service.serve(stream), repeats
    )
    return med, response_log(responses)


@pytest.mark.experiment("e25")
def test_warm_cache_throughput_gate(stream):
    with ShardedBatchService(2, cache_size=0) as cold_service:
        t_cold, cold_log = _serve_seconds(cold_service, stream)

    with ShardedBatchService(2, cache_size=None) as warm_service:
        warm_service.serve(stream)  # populate the cache
        t_warm, warm_log = _serve_seconds(warm_service, stream)

    ratio = t_cold / t_warm
    rps_cold = NUM_REQUESTS / t_cold
    rps_warm = NUM_REQUESTS / t_warm
    print(f"\ne25: cold {rps_cold:,.0f} req/s, warm {rps_warm:,.0f} "
          f"req/s, speedup {ratio:.1f}x (gate >= {GATE}x)")

    # Determinism before speed: the warm log answers identically.
    assert warm_log == cold_log
    # Only the populate pass missed; every timed pass was pure hits.
    assert warm_service.stats.cache.misses == warm_service.stats.evaluated
    assert ratio >= GATE


@pytest.mark.experiment("e25")
def test_zipf_skew_drives_the_hit_rate(stream):
    # The workload premise: under zipf(1.2) over 10 trees, far fewer
    # unique keys than requests — the cache's reason to exist.
    with ShardedBatchService(1, cache_size=None) as service:
        service.serve(stream)
        unique = service.stats.evaluated
    assert unique / NUM_REQUESTS <= gate_bound("e25", "zipf_dedup")


@pytest.mark.experiment("e25")
def test_warm_serving_kernel(stream, benchmark):
    with ShardedBatchService(1, cache_size=None) as service:
        service.serve(stream)
        benchmark(lambda: len(service.serve(stream)))
