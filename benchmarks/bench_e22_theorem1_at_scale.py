"""E22 — Theorem 1 on million-leaf instances via the fast path."""

import pytest

from repro.bench import run_experiment
from repro.core.fastpath import uniform_sequential_cost
from repro.trees.generators import iid_boolean
from repro.trees.generators.iid import level_invariant_bias


@pytest.fixture(scope="module")
def table():
    return run_experiment("e22")


@pytest.mark.experiment("e22")
def test_constant_holds_at_scale(table, benchmark):
    speedups = table.column("speed-up")
    assert speedups == sorted(speedups), "speed-up grows with n"
    constants = table.column("c = sp/(n+1)")
    # Theorem 1's constant: bounded away from zero, and stable (no
    # systematic collapse) across the entire height range.
    assert min(constants) > 0.2
    assert constants[-1] >= constants[0] * 0.8
    for n, procs in zip(table.column("n"), table.column("procs")):
        assert procs <= n + 1

    tree = iid_boolean(2, 20, level_invariant_bias(2), seed=5)
    benchmark(lambda: uniform_sequential_cost(tree)[1])
    print("\n" + table.render())


@pytest.mark.experiment("e22")
def test_registry_gate_parity(table):
    """Gate parity: the registry spec's verdicts on this very table."""
    from repro.bench.registry import get_spec
    from repro.bench.specs import metrics_from_table

    spec = get_spec("e22")
    metrics = metrics_from_table("e22", table)
    assert spec.gates, "spec declares at least one gate"
    for gate in spec.gates:
        if gate.wallclock:
            continue
        assert gate.holds(metrics[gate.metric]), (
            gate.name, metrics[gate.metric], gate.op, gate.bound
        )
