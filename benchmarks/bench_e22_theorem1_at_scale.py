"""E22 — Theorem 1 on million-leaf instances via the fast path."""

import pytest

from repro.bench import run_experiment
from repro.core.fastpath import uniform_sequential_cost
from repro.trees.generators import iid_boolean
from repro.trees.generators.iid import level_invariant_bias


@pytest.fixture(scope="module")
def table():
    return run_experiment("e22")


@pytest.mark.experiment("e22")
def test_constant_holds_at_scale(table, benchmark):
    speedups = table.column("speed-up")
    assert speedups == sorted(speedups), "speed-up grows with n"
    constants = table.column("c = sp/(n+1)")
    # Theorem 1's constant: bounded away from zero, and stable (no
    # systematic collapse) across the entire height range.
    assert min(constants) > 0.2
    assert constants[-1] >= constants[0] * 0.8
    for n, procs in zip(table.column("n"), table.column("procs")):
        assert procs <= n + 1

    tree = iid_boolean(2, 20, level_invariant_bias(2), seed=5)
    benchmark(lambda: uniform_sequential_cost(tree)[1])
    print("\n" + table.render())
