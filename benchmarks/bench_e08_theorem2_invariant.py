"""E8 — Theorem 2: the pruning process preserves the root value."""

import pytest

from repro.bench import run_experiment
from repro.core.alphabeta import sequential_alpha_beta
from repro.trees.generators import iid_minmax


@pytest.fixture(scope="module")
def table():
    return run_experiment("e08")


@pytest.mark.experiment("e08")
def test_theorem2_invariant_exact(table, benchmark):
    assert all(v == 0 for v in table.column("violations"))
    assert sum(table.column("steps checked")) > 100

    tree = iid_minmax(2, 12, seed=4)
    benchmark(lambda: sequential_alpha_beta(tree).num_steps)
    print("\n" + table.render())
