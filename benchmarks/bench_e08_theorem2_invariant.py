"""E8 — Theorem 2: the pruning process preserves the root value."""

import pytest

from repro.bench import run_experiment
from repro.core.alphabeta import sequential_alpha_beta
from repro.trees.generators import iid_minmax


@pytest.fixture(scope="module")
def table():
    return run_experiment("e08")


@pytest.mark.experiment("e08")
def test_theorem2_invariant_exact(table, benchmark):
    assert all(v == 0 for v in table.column("violations"))
    assert sum(table.column("steps checked")) > 100

    tree = iid_minmax(2, 12, seed=4)
    benchmark(lambda: sequential_alpha_beta(tree).num_steps)
    print("\n" + table.render())


@pytest.mark.experiment("e08")
def test_registry_gate_parity(table):
    """Gate parity: the registry spec's verdicts on this very table."""
    from repro.bench.registry import get_spec
    from repro.bench.specs import metrics_from_table

    spec = get_spec("e08")
    metrics = metrics_from_table("e08", table)
    assert spec.gates, "spec declares at least one gate"
    for gate in spec.gates:
        if gate.wallclock:
            continue
        assert gate.holds(metrics[gate.metric]), (
            gate.name, metrics[gate.metric], gate.op, gate.bound
        )
