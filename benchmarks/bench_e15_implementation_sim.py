"""E15 — Section 7: the message-passing machine on binary NOR trees."""

import pytest

from repro.bench import run_experiment
from repro.simulator import simulate
from repro.trees.generators import iid_boolean
from repro.trees.generators.iid import level_invariant_bias


@pytest.fixture(scope="module")
def table():
    return run_experiment("e15")


@pytest.mark.experiment("e15")
def test_implementation_preserves_speedup(table, benchmark):
    full_rows = [r for r in table.rows if r[1] == r[0] + 1]
    # The machine stays within a constant factor of the ideal model.
    assert all(r[5] < 4.0 for r in full_rows), "ticks/P* bounded"
    # And the speed-up over sequential grows with n.
    speedups = [r[6] for r in full_rows]
    assert speedups[-1] > speedups[0]
    # Zone multiplexing: more physical processors, fewer ticks.
    fixed_rows = [r for r in table.rows if r[1] != r[0] + 1]
    ticks = [r[4] for r in fixed_rows]
    assert ticks == sorted(ticks, reverse=True)

    tree = iid_boolean(2, 11, level_invariant_bias(2), seed=30)
    benchmark(lambda: simulate(tree).ticks)
    print("\n" + table.render())


@pytest.mark.experiment("e15")
def test_registry_gate_parity(table):
    """Gate parity: the registry spec's verdicts on this very table."""
    from repro.bench.registry import get_spec
    from repro.bench.specs import metrics_from_table

    spec = get_spec("e15")
    metrics = metrics_from_table("e15", table)
    assert spec.gates, "spec declares at least one gate"
    for gate in spec.gates:
        if gate.wallclock:
            continue
        assert gate.holds(metrics[gate.metric]), (
            gate.name, metrics[gate.metric], gate.op, gate.bound
        )
