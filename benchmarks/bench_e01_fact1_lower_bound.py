"""E1 — Fact 1: inherent lower bound on total work for B(d, n)."""

import pytest

from repro.bench import run_experiment
from repro.core import sequential_solve
from repro.trees.generators import forced_value_instance


@pytest.fixture(scope="module")
def table():
    return run_experiment("e01")


@pytest.mark.experiment("e01")
def test_fact1_bound_tight_and_respected(table, benchmark):
    bounds = table.column("bound d^(n/2)")
    for col in ("S forced-0", "S forced-1", "min S iid"):
        for bound, measured in zip(bounds, table.column(col)):
            assert measured >= bound
    # Tightness: the forced-0 family meets the bound exactly.
    assert table.column("S forced-0") == bounds
    # Proof-tree sizes certify the bound.
    assert table.column("proof leaves") == bounds

    tree = forced_value_instance(2, 14, 0)
    benchmark(lambda: sequential_solve(tree).total_work)
    print("\n" + table.render())


@pytest.mark.experiment("e01")
def test_registry_gate_parity(table):
    """Gate parity: the registry spec's verdicts on this very table."""
    from repro.bench.registry import get_spec
    from repro.bench.specs import metrics_from_table

    spec = get_spec("e01")
    metrics = metrics_from_table("e01", table)
    assert spec.gates, "spec declares at least one gate"
    for gate in spec.gates:
        if gate.wallclock:
            continue
        assert gate.holds(metrics[gate.metric]), (
            gate.name, metrics[gate.metric], gate.op, gate.bound
        )
