"""E21b — frontier backends: incremental engine vs per-step rescan.

Step-identity first: both backends must produce the same per-step
batches on every configuration checked here (the property suite under
``tests/properties/`` covers randomised instances; this file pins the
benchmark tree).  Then wall-clock: on a uniform d=4, n=8 tree the
incremental engine must be at least 5x faster than the rescan
reference on the bounded width-w schedule, where the rescan re-walks
the whole in-range region every basic step while only ``p`` leaves
run.
"""

import pytest

from repro.bench.specs import gate_bound
from repro.bench.wallclock import best_of
from repro.core import parallel_solve, team_solve
from repro.trees.generators import iid_boolean
from repro.trees.generators.iid import level_invariant_bias

BRANCHING = 4
HEIGHT = 8


@pytest.fixture(scope="module")
def tree():
    return iid_boolean(
        BRANCHING, HEIGHT, level_invariant_bias(BRANCHING), seed=2026
    )


def _signature(result):
    return (result.value, result.trace.degrees, result.trace.batches)


@pytest.mark.experiment("e21b")
def test_backends_step_identical(tree):
    for width in (0, 1, 2, 4):
        rescan = parallel_solve(
            tree, width, keep_batches=True, backend="rescan"
        )
        incremental = parallel_solve(
            tree, width, keep_batches=True, backend="incremental"
        )
        assert _signature(rescan) == _signature(incremental), width
    for width, procs in ((4, 2), (4, 4), (2, 3)):
        rescan = parallel_solve(
            tree, width, max_processors=procs,
            keep_batches=True, backend="rescan",
        )
        incremental = parallel_solve(
            tree, width, max_processors=procs,
            keep_batches=True, backend="incremental",
        )
        assert _signature(rescan) == _signature(incremental), (width, procs)
    team_rescan = team_solve(tree, 8, keep_batches=True, backend="rescan")
    team_incr = team_solve(tree, 8, keep_batches=True, backend="incremental")
    assert _signature(team_rescan) == _signature(team_incr)


@pytest.mark.experiment("e21b")
def test_incremental_wallclock_speedup(tree, benchmark):
    width, procs = 4, 2
    t_rescan = best_of(lambda: parallel_solve(
        tree, width, max_processors=procs, backend="rescan"
    ), repeats=2)
    t_incremental = best_of(lambda: parallel_solve(
        tree, width, max_processors=procs, backend="incremental"
    ), repeats=2)
    speedup = t_rescan / t_incremental
    print(
        f"\nd={BRANCHING} n={HEIGHT} w={width} p={procs}: "
        f"rescan={t_rescan:.3f}s incremental={t_incremental:.3f}s "
        f"speedup={speedup:.1f}x"
    )
    # The acceptance bar; measured ~7-8x on this configuration.  The
    # bound is owned by the registry spec so this file and
    # `repro bench` can never disagree.
    assert speedup >= gate_bound("e21b", "incremental_speedup")

    benchmark(lambda: parallel_solve(
        tree, width, max_processors=procs, backend="incremental"
    ).num_steps)
