"""E10 — Theorem 3 + Prop 5: Parallel alpha-beta's linear speed-up.

Also records the reproduction finding on Proposition 5: the literal
inequality P~(T) <= P~(H~) fails on a sizable fraction of instances,
but always within a small constant factor, leaving Theorem 3 intact.
"""

import pytest

from repro.bench import run_experiment
from repro.core.alphabeta import parallel_alpha_beta
from repro.trees.generators import iid_minmax


@pytest.fixture(scope="module")
def table():
    return run_experiment("e10")


@pytest.mark.experiment("e10")
def test_theorem3_shape(table, benchmark):
    for n, procs in zip(table.column("n"), table.column("procs")):
        assert procs <= n + 1
    # Speed-up grows with n within each (d, leaf-kind) family.
    for d, kind in ((2, "cont"), (2, "int"), (3, "cont")):
        sp = [r[6] for r in table.rows if r[0] == d and r[2] == kind]
        assert sp[-1] > sp[0]
    assert [r[6] for r in table.rows if r[0] == 2][-1] > 2.0
    # Prop 5 finding: violations exist but are small.
    assert max(table.column("prop5 max ratio")) < 2.0

    tree = iid_minmax(2, 11, seed=8)
    benchmark(lambda: parallel_alpha_beta(tree, 1).num_steps)
    print("\n" + table.render())


@pytest.mark.experiment("e10")
def test_registry_gate_parity(table):
    """Gate parity: the registry spec's verdicts on this very table."""
    from repro.bench.registry import get_spec
    from repro.bench.specs import metrics_from_table

    spec = get_spec("e10")
    metrics = metrics_from_table("e10", table)
    assert spec.gates, "spec declares at least one gate"
    for gate in spec.gates:
        if gate.wallclock:
            continue
        assert gate.holds(metrics[gate.metric]), (
            gate.name, metrics[gate.metric], gate.op, gate.bound
        )
