"""E5 — Proposition 3: step-degree histogram vs the binomial bound."""

import pytest

from repro.analysis import skeleton_of, trace_codes
from repro.bench import run_experiment
from repro.trees.generators import iid_boolean
from repro.trees.generators.iid import level_invariant_bias


@pytest.fixture(scope="module")
def table():
    return run_experiment("e05")


@pytest.mark.experiment("e05")
def test_prop3_histogram_within_bound(table, benchmark):
    # t_{k+1}(H_T) never exceeds C(n, k)(d-1)^k.
    for bound, mx in zip(table.column("bound"), table.column("max t_{k+1}")):
        assert mx <= bound
    assert all(u <= 1.0 for u in table.column("utilisation"))
    # The two code properties verified inside the experiment.
    assert "codes lexicographically decreasing: True" in table.notes[0]
    assert "degree == 1 + #nonzero(code) everywhere: True" in table.notes[1]

    tree = iid_boolean(2, 11, level_invariant_bias(2), seed=5)
    skel = skeleton_of(tree)
    benchmark(lambda: len(trace_codes(skel, 1)))
    print("\n" + table.render())


@pytest.mark.experiment("e05")
def test_registry_gate_parity(table):
    """Gate parity: the registry spec's verdicts on this very table."""
    from repro.bench.registry import get_spec
    from repro.bench.specs import metrics_from_table

    spec = get_spec("e05")
    metrics = metrics_from_table("e05", table)
    assert spec.gates, "spec declares at least one gate"
    for gate in spec.gates:
        if gate.wallclock:
            continue
        assert gate.holds(metrics[gate.metric]), (
            gate.name, metrics[gate.metric], gate.op, gate.bound
        )
