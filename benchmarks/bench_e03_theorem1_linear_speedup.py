"""E3 — Theorem 1 + Corollary 1: linear speed-up of width-1 SOLVE."""

import pytest

from repro.bench import run_experiment
from repro.core import parallel_solve
from repro.trees.generators import iid_boolean
from repro.trees.generators.iid import level_invariant_bias


@pytest.fixture(scope="module")
def table():
    return run_experiment("e03")


@pytest.fixture(scope="module")
def table_worst():
    return run_experiment("e03b")


@pytest.mark.experiment("e03")
def test_theorem1_shape(table, table_worst, benchmark):
    # Processors used stay at n + 1.
    for n, procs in zip(table.column("n"), table.column("procs")):
        assert procs <= n + 1
    # The normalised constant stays bounded away from zero at the
    # largest heights (Theorem 1's c), and the speed-up itself grows
    # with n within each branching factor.
    rows_d2 = [r for r in table.rows if r[0] == 2]
    speedups = [r[5] for r in rows_d2]
    assert speedups == sorted(speedups), "speed-up must grow with n"
    assert rows_d2[-1][7] > 0.15  # c at the largest n
    # Corollary 1: the total-work blow-up c' stays bounded.
    assert max(table.column("work/S (c')")) < 4.0
    # Worst-case family: speed-up also grows with n (it is an
    # every-instance theorem, not an average-case one).
    for d in (2, 3):
        sp = [r[4] for r in table_worst.rows if r[0] == d]
        assert sp == sorted(sp)

    tree = iid_boolean(2, 14, level_invariant_bias(2), seed=1)
    benchmark(lambda: parallel_solve(tree, 1).num_steps)
    print("\n" + table.render())
    print("\n" + table_worst.render())


@pytest.mark.experiment("e03")
def test_registry_gate_parity(table):
    """Gate parity: the registry spec's verdicts on this very table."""
    from repro.bench.registry import get_spec
    from repro.bench.specs import metrics_from_table

    spec = get_spec("e03")
    metrics = metrics_from_table("e03", table)
    assert spec.gates, "spec declares at least one gate"
    for gate in spec.gates:
        if gate.wallclock:
            continue
        assert gate.holds(metrics[gate.metric]), (
            gate.name, metrics[gate.metric], gate.op, gate.bound
        )


@pytest.mark.experiment("e03b")
def test_registry_gate_parity_worst(table_worst):
    """Gate parity: the registry spec's verdicts on this very table."""
    from repro.bench.registry import get_spec
    from repro.bench.specs import metrics_from_table

    spec = get_spec("e03b")
    metrics = metrics_from_table("e03b", table_worst)
    assert spec.gates, "spec declares at least one gate"
    for gate in spec.gates:
        if gate.wallclock:
            continue
        assert gate.holds(metrics[gate.metric]), (
            gate.name, metrics[gate.metric], gate.op, gate.bound
        )
