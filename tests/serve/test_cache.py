"""LRU semantics and metrics of the canonical result cache."""

import pytest

from repro.serve import ResultCache


def _outcome(i):
    return {"value": float(i), "steps": i, "work": i}


def test_unbounded_cache_never_evicts():
    cache = ResultCache(None)
    for i in range(100):
        cache.put(f"k{i}", _outcome(i))
    assert len(cache) == 100
    assert cache.stats.insertions == 100
    assert cache.stats.evictions == 0
    assert cache.get("k0") == _outcome(0)


def test_disabled_cache_stores_nothing():
    cache = ResultCache(0)
    cache.put("k", _outcome(1))
    assert len(cache) == 0
    assert cache.get("k") is None
    assert cache.stats.misses == 1
    assert cache.stats.insertions == 0


def test_lru_evicts_least_recently_used():
    cache = ResultCache(2)
    cache.put("a", _outcome(1))
    cache.put("b", _outcome(2))
    assert cache.get("a") is not None  # refresh "a": "b" is now LRU
    cache.put("c", _outcome(3))
    assert "b" not in cache
    assert "a" in cache and "c" in cache
    assert cache.stats.evictions == 1


def test_put_refreshes_recency_without_reinserting():
    cache = ResultCache(2)
    cache.put("a", _outcome(1))
    cache.put("b", _outcome(2))
    cache.put("a", _outcome(10))  # refresh + overwrite, no new slot
    assert cache.stats.insertions == 2
    cache.put("c", _outcome(3))
    assert "b" not in cache
    assert cache.get("a") == _outcome(10)


def test_eviction_order_is_insertion_order_without_lookups():
    cache = ResultCache(3)
    for key in ("a", "b", "c", "d", "e"):
        cache.put(key, _outcome(0))
    assert list(["c" in cache, "d" in cache, "e" in cache]) == [True] * 3
    assert "a" not in cache and "b" not in cache
    assert cache.stats.evictions == 2


def test_hit_miss_counters_and_hit_rate():
    cache = ResultCache(None)
    assert cache.stats.hit_rate == 0.0
    cache.put("a", _outcome(1))
    assert cache.get("a") is not None
    assert cache.get("nope") is None
    assert cache.stats.hits == 1
    assert cache.stats.misses == 1
    assert cache.stats.lookups == 2
    assert cache.stats.hit_rate == pytest.approx(0.5)


def test_clear_drops_entries_but_keeps_stats():
    cache = ResultCache(None)
    cache.put("a", _outcome(1))
    cache.get("a")
    cache.clear()
    assert len(cache) == 0
    assert cache.stats.hits == 1
    assert cache.stats.insertions == 1


def test_negative_capacity_rejected():
    with pytest.raises(ValueError):
        ResultCache(-1)
