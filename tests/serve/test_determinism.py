"""The determinism contract: response logs are configuration-blind.

The response log of a request stream must be byte-identical across
shard counts, cache capacities, repeat serving (warm cache) and chaos
mode — placement and recomputation may change, answers may not.
"""

import itertools

import pytest

from repro.serve import ShardedBatchService, response_log, synthetic_stream
from repro.serve.engines import evaluate_payload


def _stream():
    # Mixed algorithms over both tree kinds, with zipf-repeated trees
    # so caching and dedup actually engage.
    return synthetic_stream(
        30, seed=424, num_trees=6, height=3, zipf_s=1.1,
    )


def _log(num_shards, cache_size, oracle_for_shard=None):
    with ShardedBatchService(
        num_shards,
        cache_size=cache_size,
        oracle_for_shard=oracle_for_shard,
    ) as service:
        return response_log(service.serve(_stream()))


BASELINE_CONFIG = (1, None)


@pytest.mark.parametrize(
    "num_shards,cache_size",
    [
        pair for pair in itertools.product((1, 2, 4), (0, 64, None))
        if pair != BASELINE_CONFIG
    ],
    ids=lambda v: str(v),
)
def test_log_identical_across_shards_and_cache_sizes(
    num_shards, cache_size
):
    assert _log(num_shards, cache_size) == _log(*BASELINE_CONFIG)


def test_log_identical_on_warm_cache():
    requests = _stream()
    with ShardedBatchService(2, cache_size=None) as service:
        cold = response_log(service.serve(requests))
        warm = response_log(service.serve(requests))
    assert warm == cold
    assert service.stats.cache.hits > 0  # the warm pass really cached


def test_log_identical_under_chaos():
    def crash_first_shard(shard):
        if shard == 0:
            def _crash(payload):
                raise RuntimeError("chaos")
            return _crash
        return evaluate_payload

    chaotic = _log(3, 64, oracle_for_shard=crash_first_shard)
    assert chaotic == _log(*BASELINE_CONFIG)


def test_log_is_reproducible_across_service_instances():
    assert _log(2, 16) == _log(2, 16)
