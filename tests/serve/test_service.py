"""Unit tests for the sharded batch service: dedup, routing, failover."""

import pytest

from repro.errors import DegradedRunError
from repro.serve import (
    EvalRequest,
    ShardedBatchService,
    make_tree_pool,
    request_key,
    run_algorithm,
    shard_of,
    synthetic_stream,
)
from repro.telemetry import InMemoryRecorder
from repro.trees import ExplicitTree, UniformTree, exact_value
from repro.trees.generators import iid_boolean


def _bool_requests(n, seed=11, height=3):
    pool = make_tree_pool(
        4, seed=seed, height=height, minmax_fraction=0.0,
    )
    return synthetic_stream(
        n, seed=seed, pool=pool, algos=["sequential"],
    )


def _always_crash(payload):
    raise RuntimeError("injected shard failure")


def test_responses_align_with_requests_and_are_correct():
    requests = _bool_requests(10)
    with ShardedBatchService(2) as service:
        responses = service.serve(requests)
    assert [r.request_id for r in responses] == [
        req.request_id for req in requests
    ]
    for req, resp in zip(requests, responses):
        assert resp.algo == req.algo
        assert resp.value == float(exact_value(req.tree))
        direct = run_algorithm(req.algo, req.tree, req.params_dict())
        assert (resp.value, resp.steps, resp.work) == (
            float(direct[0]), direct[1], direct[2]
        )


def test_in_batch_dedup_evaluates_each_unique_key_once():
    tree = iid_boolean(2, 3, 0.5, seed=5)
    requests = [
        EvalRequest.make(i, "sequential", tree) for i in range(6)
    ]
    with ShardedBatchService(1) as service:
        responses = service.serve(requests)
    assert service.stats.evaluated == 1
    assert service.stats.deduplicated == 5
    assert len({r.key for r in responses}) == 1
    assert len({(r.value, r.steps, r.work) for r in responses}) == 1


def test_representation_equal_trees_share_one_key():
    uniform = UniformTree(2, 2, [0, 1, 1, 0])
    explicit = ExplicitTree.from_nested([[0, 1], [1, 0]])
    a = EvalRequest.make(0, "sequential", uniform)
    b = EvalRequest.make(1, "sequential", explicit)
    assert request_key(a) == request_key(b)
    with ShardedBatchService(1) as service:
        service.serve([a, b])
    assert service.stats.evaluated == 1
    assert service.stats.deduplicated == 1


def test_params_distinguish_keys():
    tree = iid_boolean(2, 3, 0.5, seed=5)
    a = EvalRequest.make(0, "parallel", tree, width=1)
    b = EvalRequest.make(1, "parallel", tree, width=2)
    assert request_key(a) != request_key(b)


def test_cache_answers_repeat_batches():
    requests = _bool_requests(8)
    with ShardedBatchService(2, cache_size=None) as service:
        first = service.serve(requests)
        evaluated_once = service.stats.evaluated
        second = service.serve(requests)
    assert service.stats.evaluated == evaluated_once  # nothing recomputed
    assert service.stats.cache.hits == evaluated_once
    assert [
        (r.key, r.value, r.steps, r.work) for r in first
    ] == [(r.key, r.value, r.steps, r.work) for r in second]


def test_disabled_cache_recomputes_every_batch():
    requests = _bool_requests(8)
    with ShardedBatchService(2, cache_size=0) as service:
        service.serve(requests)
        evaluated_once = service.stats.evaluated
        service.serve(requests)
    assert service.stats.evaluated == 2 * evaluated_once
    assert service.stats.cache.hits == 0


def test_requests_route_to_their_key_shard():
    requests = _bool_requests(12, seed=3)
    rec = InMemoryRecorder()
    with ShardedBatchService(3, recorder=rec) as service:
        service.serve(requests)
    expected = [0, 0, 0]
    for key in {request_key(req) for req in requests}:
        expected[shard_of(key, 3)] += 1
    for shard in range(3):
        counted = rec.metrics.counters.get(
            f"serve.shard.{shard}.requests", 0
        )
        assert counted == expected[shard]


def test_failover_answers_the_whole_batch():
    requests = _bool_requests(16, seed=7)
    num_shards = 3
    crash_shard = shard_of(request_key(requests[0]), num_shards)
    routed_to_crash = len({
        key for key in (request_key(r) for r in requests)
        if shard_of(key, num_shards) == crash_shard
    })
    rec = InMemoryRecorder()

    def oracle_for_shard(shard):
        from repro.serve.engines import evaluate_payload
        return _always_crash if shard == crash_shard else evaluate_payload

    with ShardedBatchService(
        num_shards, oracle_for_shard=oracle_for_shard, recorder=rec,
    ) as service:
        responses = service.serve(requests)
    assert service.degraded_shards == [crash_shard]
    assert service.stats.failovers == routed_to_crash
    for req, resp in zip(requests, responses):
        assert resp.value == float(exact_value(req.tree))
    degraded = [
        e for e in rec.events
        if e.kind == "instant" and e.name == "serve.shard_degraded"
    ]
    assert len(degraded) == 1
    assert degraded[0].track == f"serve-shard-{crash_shard}"
    assert rec.metrics.counters["serve.failover.requests"] == routed_to_crash
    assert rec.metrics.counters["serve.failover.recovered"] == routed_to_crash


def test_all_shards_degraded_raises():
    requests = _bool_requests(4)
    with ShardedBatchService(
        2, oracle_for_shard=lambda shard: _always_crash,
    ) as service:
        with pytest.raises(DegradedRunError):
            service.serve(requests)


def test_degraded_shard_stays_out_of_later_batches():
    requests = _bool_requests(16, seed=7)
    num_shards = 2
    crash_shard = shard_of(request_key(requests[0]), num_shards)

    def oracle_for_shard(shard):
        from repro.serve.engines import evaluate_payload
        return _always_crash if shard == crash_shard else evaluate_payload

    with ShardedBatchService(
        num_shards, cache_size=0, oracle_for_shard=oracle_for_shard,
    ) as service:
        service.serve(requests)
        assert service.degraded_shards == [crash_shard]
        responses = service.serve(requests)  # no new degradations
    assert service.degraded_shards == [crash_shard]
    for req, resp in zip(requests, responses):
        assert resp.value == float(exact_value(req.tree))


def test_invalid_configuration_rejected():
    with pytest.raises(ValueError):
        ShardedBatchService(0)
    with pytest.raises(ValueError):
        ShardedBatchService(1, pool="bogus")
