"""Cache-correctness properties.

Serving identical streams with cache capacities 0 (always recompute),
a tiny evicting LRU, and unbounded must produce identical responses —
the cache can only change *whether* work is recomputed.  And the
canonical key must be collision-free in practice: hash-equal trees
are semantically equal over every generated corpus we can throw at
it.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve import (
    EvalRequest,
    ShardedBatchService,
    request_key,
    response_log,
)
from repro.trees import canonical_hash, trees_equal
from repro.trees.generators import iid_boolean, iid_minmax_integers

from ..conftest import boolean_tree_from_spec, nested_boolean


def _spec_requests(specs, repeats):
    """A stream over the spec trees with hypothesis-chosen repeats."""
    trees = [boolean_tree_from_spec(spec) for spec in specs]
    requests = []
    for rid, idx in enumerate(repeats):
        requests.append(EvalRequest.make(
            rid, "sequential", trees[idx % len(trees)]
        ))
    return requests


@settings(max_examples=25, deadline=None)
@given(
    st.lists(nested_boolean(), min_size=1, max_size=4),
    st.lists(st.integers(min_value=0, max_value=9),
             min_size=1, max_size=12),
)
def test_cache_capacity_never_changes_responses(specs, repeats):
    requests = _spec_requests(specs, repeats)
    logs = []
    for capacity in (0, 2, None):
        with ShardedBatchService(2, cache_size=capacity) as service:
            logs.append(response_log(service.serve(requests)))
    assert logs[0] == logs[1] == logs[2]


@settings(max_examples=25, deadline=None)
@given(
    st.lists(nested_boolean(), min_size=1, max_size=4),
    st.lists(st.integers(min_value=0, max_value=9),
             min_size=1, max_size=12),
)
def test_tiny_evicting_cache_still_serves_correctly(specs, repeats):
    requests = _spec_requests(specs, repeats)
    with ShardedBatchService(1, cache_size=1) as service:
        responses = service.serve(requests)
        # Evictions may have happened; every response still matches a
        # fresh uncached evaluation.
        with ShardedBatchService(1, cache_size=0) as fresh:
            again = fresh.serve(requests)
    assert response_log(responses) == response_log(again)


@settings(max_examples=40, deadline=None)
@given(nested_boolean(), nested_boolean())
def test_hash_equality_iff_semantic_equality(spec_a, spec_b):
    a = boolean_tree_from_spec(spec_a)
    b = boolean_tree_from_spec(spec_b)
    assert (canonical_hash(a) == canonical_hash(b)) == trees_equal(a, b)


def test_no_key_collisions_over_generated_corpus():
    """Distinct (tree, algo, params) triples produce distinct keys."""
    trees = [
        iid_boolean(2, h, 0.5, seed=s)
        for h in (2, 3, 4) for s in range(4)
    ] + [
        iid_minmax_integers(2, h, seed=s, num_values=3)
        for h in (2, 3, 4) for s in range(4)
    ]
    seen = {}
    for i, tree in enumerate(trees):
        algo = "sequential" if i < 12 else "minimax"
        key = request_key(EvalRequest.make(i, algo, tree))
        if key in seen:
            assert trees_equal(tree, seen[key]), (
                "canonical-key collision between semantically "
                "different requests"
            )
        seen[key] = tree
    # sanity: hash-identical duplicates would shrink the key set a lot
    assert len(seen) >= len(trees) - 2
