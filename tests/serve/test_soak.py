"""Soak tests: sustained mixed-algorithm load under fault injection.

The fast variant (a few hundred requests) runs in every suite and in
the CI ``serve-smoke`` job; the 10k-request variant is marked
``slow`` (deselect with ``-m 'not slow'``).  Both assert the same
invariants: zero wrong answers (the faulted run's response log equals
a clean run's byte for byte), bounded queue depth, and — because the
faults are transient — no shard permanently degraded.
"""

from __future__ import annotations

import pytest

from repro.faults import FaultyOracle, OracleFaultSpec
from repro.serve import ShardedBatchService, response_log, synthetic_stream
from repro.serve.engines import evaluate_payload
from repro.telemetry import InMemoryRecorder


def _faulty_oracle_for_shard(tmp_path, error_rate=0.25):
    """Every shard gets a transiently crashing oracle.

    ``transient_dir`` is shared, so a payload faults exactly once
    service-wide and the runtime's retry rounds absorb it.
    """
    transient = tmp_path / "transient"
    transient.mkdir(exist_ok=True)

    def for_shard(shard):
        return FaultyOracle(
            evaluate_payload,
            OracleFaultSpec(
                seed=99, error_rate=error_rate,
                transient_dir=str(transient),
            ),
        )

    return for_shard


def _run_soak(tmp_path, num_requests, batch_size, *, num_shards=3):
    requests = synthetic_stream(
        num_requests, seed=31, num_trees=10, height=3, zipf_s=1.1,
    )
    batches = [
        requests[i:i + batch_size]
        for i in range(0, len(requests), batch_size)
    ]
    rec = InMemoryRecorder()
    with ShardedBatchService(
        num_shards,
        cache_size=None,
        max_retries=8,
        oracle_for_shard=_faulty_oracle_for_shard(tmp_path),
        recorder=rec,
    ) as faulted:
        faulted_logs = [
            response_log(faulted.serve(batch)) for batch in batches
        ]
        stats = faulted.stats

    with ShardedBatchService(1, cache_size=None) as clean:
        clean_logs = [
            response_log(clean.serve(batch)) for batch in batches
        ]

    # Zero wrong answers: byte-identical logs, batch by batch.
    assert faulted_logs == clean_logs

    # The injected faults really exercised the retry machinery.
    retries = sum(s.retries for s in stats.shard_stats)
    assert retries > 0

    # Transient faults must not permanently degrade shards.
    assert stats.degraded_shards == []
    assert stats.requests == num_requests

    # Bounded queue depth: samples never exceed the largest batch and
    # every batch drains to zero.
    depths = [
        e.value for e in rec.events
        if e.kind == "counter" and e.name == "serve.queue_depth"
    ]
    assert depths, "queue depth was never sampled"
    assert max(depths) <= batch_size
    assert depths[-1] == 0
    return stats


def test_soak_fast_profile(tmp_path):
    stats = _run_soak(tmp_path, num_requests=300, batch_size=50)
    # The zipf stream repeats trees, so the cache must carry real load.
    assert stats.cache.hits > 0
    assert stats.deduplicated > 0


@pytest.mark.slow
def test_soak_10k_requests(tmp_path):
    stats = _run_soak(
        tmp_path, num_requests=10_000, batch_size=500, num_shards=4,
    )
    # At 10k requests over a finite pool the cache dominates: unique
    # evaluations are a tiny fraction of traffic.
    assert stats.evaluated < 1_000
    assert stats.cache.hits + stats.deduplicated > 9_000
