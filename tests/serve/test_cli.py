"""``repro serve`` end-to-end: logs, traces, chaos, round-trips."""

import json

import pytest

from repro.__main__ import main
from repro.telemetry.export import SCHEMA_VERSION


def _parse_trace(path):
    lines = path.read_text().splitlines()
    header = json.loads(lines[0])
    records = [json.loads(line) for line in lines[1:-1]]
    footer = json.loads(lines[-1])
    return header, records, footer


def test_serve_writes_log_and_valid_trace(tmp_path, capsys):
    log = tmp_path / "responses.jsonl"
    trace = tmp_path / "trace.jsonl"
    rc = main([
        "serve", "--num-requests", "30", "--height", "3",
        "--shards", "2", "--verify",
        "--log-out", str(log), "--trace-out", str(trace),
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "served 30 request(s)" in out
    assert "verify: all 30 response(s) correct" in out

    lines = log.read_text().splitlines()
    assert len(lines) == 30
    for line in lines:
        record = json.loads(line)
        assert set(record) == {
            "id", "key", "algo", "value", "steps", "work"
        }

    header, records, footer = _parse_trace(trace)
    assert header["kind"] == "meta"
    assert header["schema"] == SCHEMA_VERSION
    assert header["events"] == len(records)
    assert footer["kind"] == "metrics"
    assert footer["counters"]["serve.responses"] == 30
    assert any(
        r["kind"] == "counter" and r["name"] == "serve.queue_depth"
        for r in records
    )


def test_serve_log_identical_across_shard_counts(tmp_path, capsys):
    logs = []
    for shards, cache in (("1", "inf"), ("2", "64"), ("4", "0")):
        out = tmp_path / f"log-{shards}-{cache}.jsonl"
        rc = main([
            "serve", "--num-requests", "25", "--height", "3",
            "--shards", shards, "--cache-size", cache,
            "--log-out", str(out),
        ])
        assert rc == 0
        logs.append(out.read_bytes())
    assert logs[0] == logs[1] == logs[2]


def test_serve_chaos_fails_over_and_verifies(tmp_path, capsys):
    log = tmp_path / "chaos.jsonl"
    clean = tmp_path / "clean.jsonl"
    trace = tmp_path / "chaos-trace.jsonl"
    rc = main([
        "serve", "--num-requests", "30", "--height", "3",
        "--shards", "3", "--chaos", "--verify",
        "--log-out", str(log), "--trace-out", str(trace),
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "DEGRADED" in out
    assert "failover re-dispatched" in out

    rc = main([
        "serve", "--num-requests", "30", "--height", "3",
        "--shards", "1", "--log-out", str(clean),
    ])
    assert rc == 0
    assert log.read_bytes() == clean.read_bytes()

    _header, records, _footer = _parse_trace(trace)
    degraded = [
        r for r in records if r["name"] == "serve.shard_degraded"
    ]
    assert len(degraded) == 1
    assert degraded[0]["attrs"]["shard"] == 0


def test_serve_request_stream_round_trip(tmp_path, capsys):
    stream = tmp_path / "stream.jsonl"
    first = tmp_path / "first.jsonl"
    second = tmp_path / "second.jsonl"
    rc = main([
        "serve", "--num-requests", "20", "--height", "3",
        "--save-requests", str(stream), "--log-out", str(first),
    ])
    assert rc == 0
    rc = main([
        "serve", "--requests", str(stream),
        "--shards", "2", "--log-out", str(second),
    ])
    assert rc == 0
    assert first.read_bytes() == second.read_bytes()


def test_serve_rejects_bad_chaos_shard(capsys):
    rc = main([
        "serve", "--num-requests", "5", "--height", "2",
        "--shards", "2", "--chaos", "--chaos-shard", "5",
    ])
    assert rc == 2
    assert "--chaos-shard" in capsys.readouterr().err


def test_serve_rejects_negative_cache_size(capsys):
    with pytest.raises(ValueError):
        main([
            "serve", "--num-requests", "5", "--cache-size", "-3",
        ])
