"""Shard re-admission, probes, and the typed total-collapse error."""

import pytest

from repro.errors import (
    AllShardsDegradedError,
    DegradedRunError,
    ReproError,
)
from repro.serve import (
    EvalRequest,
    ShardedBatchService,
    make_tree_pool,
    request_key,
    response_log,
    shard_of,
    synthetic_stream,
)
from repro.serve.request import request_to_dict
from repro.telemetry import InMemoryRecorder
from repro.trees import UniformTree, exact_value


def _bool_requests(n, seed=11, height=3):
    pool = make_tree_pool(
        4, seed=seed, height=height, minmax_fraction=0.0,
    )
    return synthetic_stream(
        n, seed=seed, pool=pool, algos=["sequential"],
    )


def _probe_payload():
    req = EvalRequest.make(-1, "sequential", UniformTree(2, 1, [0, 1]))
    data = request_to_dict(req)
    del data["id"]
    return data


def _switchable_oracle(broken_shards):
    """Oracle factory whose failure set can be edited mid-run."""
    from repro.serve.engines import evaluate_payload

    def for_shard(shard):
        def oracle(payload):
            if shard in broken_shards:
                raise RuntimeError(f"shard {shard} is broken")
            return evaluate_payload(payload)
        return oracle

    return for_shard


def test_all_shards_degraded_error_is_typed_and_carries_stats():
    requests = _bool_requests(4)
    with ShardedBatchService(
        2, oracle_for_shard=_switchable_oracle({0, 1}),
    ) as service:
        with pytest.raises(AllShardsDegradedError) as info:
            service.serve(requests)
    exc = info.value
    assert isinstance(exc, DegradedRunError)  # old handlers still catch
    assert isinstance(exc, ReproError)
    assert exc.stats is service.stats
    assert exc.pending > 0
    assert sorted(exc.stats.degraded_shards) == [0, 1]


def test_probe_and_readmit_return_a_recovered_shard_to_rotation():
    requests = _bool_requests(16, seed=7)
    broken = {0}
    rec = InMemoryRecorder()
    with ShardedBatchService(
        2, cache_size=0,
        oracle_for_shard=_switchable_oracle(broken),
        recorder=rec,
    ) as service:
        service.serve(requests)
        assert service.degraded_shards == [0]
        assert service.is_degraded(0)

        # Still broken: the probe fails and nothing is readmitted.
        assert service.probe_shard(0, _probe_payload()) is False
        assert service.degraded_shards == [0]

        broken.clear()  # the outage ends
        assert service.probe_shard(0, _probe_payload()) is True
        service.readmit(0)
        assert service.degraded_shards == []
        assert not service.is_degraded(0)
        assert service.stats.readmissions == 1

        # The readmitted shard serves its key range again.
        failovers_before = service.stats.failovers
        responses = service.serve(requests)
        assert service.stats.failovers == failovers_before
        assert service.degraded_shards == []
    for req, resp in zip(requests, responses):
        assert resp.value == float(exact_value(req.tree))
    readmitted = [
        e for e in rec.events
        if e.kind == "instant" and e.name == "serve.shard_readmitted"
    ]
    assert len(readmitted) == 1
    assert readmitted[0].track == "serve-shard-0"


def test_readmit_is_a_noop_on_a_healthy_shard():
    with ShardedBatchService(2) as service:
        service.readmit(1)
        assert service.stats.readmissions == 0
        assert service.degraded_shards == []


def test_shard_index_is_range_checked():
    with ShardedBatchService(2) as service:
        with pytest.raises(ValueError):
            service.probe_shard(2, _probe_payload())
        with pytest.raises(ValueError):
            service.readmit(-1)
        with pytest.raises(ValueError):
            service.is_degraded(5)


def test_failover_preserves_response_log_byte_identity():
    requests = _bool_requests(20, seed=5)
    crash_shard = shard_of(request_key(requests[0]), 3)
    with ShardedBatchService(3) as healthy:
        baseline = response_log(healthy.serve(requests))
    with ShardedBatchService(
        3, oracle_for_shard=_switchable_oracle({crash_shard}),
    ) as degraded:
        survived = response_log(degraded.serve(requests))
        assert degraded.degraded_shards == [crash_shard]
        assert degraded.stats.failovers > 0
    assert survived == baseline


def test_serve_cli_exits_cleanly_when_every_shard_degrades(capsys):
    from repro.__main__ import main

    rc = main([
        "serve", "--num-requests", "6", "--height", "2",
        "--shards", "1", "--chaos",
    ])
    assert rc == 3
    captured = capsys.readouterr()
    assert "serve:" in captured.err
    assert "progress before collapse" in captured.err
    assert "Traceback" not in captured.err
