"""Run the library's docstring examples as tests."""

import doctest

import pytest

import repro.trees.explicit


@pytest.mark.parametrize("module", [repro.trees.explicit])
def test_doctests(module):
    result = doctest.testmod(module)
    assert result.failed == 0
    assert result.attempted >= 1
